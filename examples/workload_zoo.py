"""Workload zoo tour: partition, diagnose, tune, and verify a model.

Runs the general-DAG partitioner over a few zoo models, prints the fusion
groups it finds and the rejections it diagnoses, then compiles one group
end to end and checks the fused kernel against the unfused graph
execution.

Run with:  PYTHONPATH=src python examples/workload_zoo.py
"""

import numpy as np

from repro import (
    A100,
    MCFuserTuner,
    SessionConfig,
    build_workload,
    compile_schedule,
    workload_names,
)
from repro.frontend.partition import partition_graph

QUICK = SessionConfig.make(
    seed=0, population_size=96, top_n=6, max_rounds=3, min_rounds=2
)


def main() -> None:
    print("model-level workloads:", ", ".join(workload_names(level="model")))
    for name in ("ffn-base", "lora-base", "gqa-32x8", "resbranch"):
        graph = build_workload(name)
        partition = partition_graph(graph, A100)
        print(f"\n{name}: {len(partition.subgraphs)} fusion group(s)")
        for sg in partition.subgraphs:
            loops = ", ".join(f"{l}={s}" for l, s in sg.chain.loops.items())
            print(f"  {sg.output}  [{sg.kind}]  batch={sg.chain.batch} {loops}")
        for rej in partition.rejected:
            print(f"  rejected {rej.anchor}: {rej.reason} — {rej.detail}")

    # End to end on the LoRA update: tune -> codegen -> interpreter check.
    graph = build_workload("lora-base")
    partition = partition_graph(graph, A100)
    sg = partition.subgraphs[0]
    report = MCFuserTuner(A100, config=QUICK).tune(sg.chain)
    module = compile_schedule(report.best_schedule, A100)
    env = graph.execute(graph.random_feed(seed=0, scale=0.05))
    fused = module.run(sg.bind_inputs(env))[sg.chain.output]
    np.testing.assert_allclose(
        sg.extract_output(fused, graph), env[sg.output], rtol=1e-3, atol=1e-4
    )
    print(f"\nlora-base fused group verified: {report.best_candidate.describe()} "
          f"({report.best_time * 1e6:.1f} us)")


if __name__ == "__main__":
    main()
