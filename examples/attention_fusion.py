"""Fused self-attention: MCFuser vs FlashAttention vs everything else.

Takes the BERT-Base attention module (S2 in the paper's Table III), runs
every baseline, and shows that the search *discovers* the FlashAttention
loop structure (a flat tiling with full K/H extents) — and then beats the
handcrafted kernel by also tuning the tile sizes and grid.

Run:  python examples/attention_fusion.py
"""

import numpy as np

from repro import A100, MCFuserTuner, SessionConfig, attention_chain, compile_schedule
from repro.baselines import default_baselines
from repro.utils import fmt_time


def main() -> None:
    chain = attention_chain(heads=12, m=512, n=512, k=64, h=64, name="S2 (Bert-Base)")
    print(f"workload: {chain}\n")

    # --- all baselines --------------------------------------------------------
    print(f"{'system':18s} {'time':>10s} {'vs PyTorch':>11s} {'tuning':>10s}")
    results = {}
    for baseline in default_baselines(ansor_trials=256):
        r = baseline.run_chain(chain, A100, seed=0)
        if r is None:
            print(f"{baseline.name:18s} {'unsupported':>10s}")
            continue
        results[baseline.name] = r
    pytorch = results["PyTorch"].time
    for name, r in results.items():
        print(f"{name:18s} {fmt_time(r.time):>10s} {pytorch / r.time:>10.2f}x "
              f"{fmt_time(r.tuning_seconds):>10s}")

    # --- what did the search find? --------------------------------------------
    report = MCFuserTuner(A100, config=SessionConfig.make(seed=0)).tune(chain)
    best = report.best_candidate
    print(f"\nMCFuser's best candidate: {best.describe()}")
    if not best.expr.is_deep:
        print("-> a FLAT tiling: the loop structure FlashAttention hand-codes,")
        print("   found automatically by the comprehensive search space.")
    else:
        print("-> a deep tiling won on this shape (grid parallelism beat reuse).")
    print("\nfused kernel (online softmax runs inside the n-loop):")
    print(report.best_schedule.pretty())

    # --- exactness: online softmax == two-pass softmax --------------------------
    module = compile_schedule(report.best_schedule, A100)
    inputs = chain.random_inputs(seed=0)
    fused = module.run(inputs)["O"]
    reference = chain.reference(inputs)["O"]
    print(f"\nmax abs err vs exact softmax attention: "
          f"{float(np.max(np.abs(fused - reference))):.2e}")
    assert np.allclose(fused, reference, rtol=1e-4, atol=1e-5)


if __name__ == "__main__":
    main()
