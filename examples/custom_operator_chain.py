"""Extending MCFuser to a custom operator chain: a triple-GEMM MLP.

The paper's machinery "naturally extends to scenarios with more
compute-intensive operators" (§III-A). This example defines a 3-block
chain ``G = ((A x B) x D) x F`` with five cross-tile loops, lets the
system enumerate its (much larger) expression space, tunes it, and checks
numerics — no framework changes needed.

Run:  python examples/custom_operator_chain.py
"""

import numpy as np

from repro import A100, MCFuserTuner, SessionConfig, compile_schedule
from repro.baselines import PyTorchBaseline
from repro.ir import ComputeBlock, ComputeChain, TensorRef
from repro.tiling import all_tilings
from repro.utils import fmt_time


def triple_gemm(batch=1, m=512, n=256, k=64, h=64, g=128) -> ComputeChain:
    """C = A@B;  E = relu(C)@D;  G = E@F  — a small fused MLP stack."""
    return ComputeChain(
        "triple-gemm",
        {"m": m, "n": n, "k": k, "h": h, "g": g},
        (
            ComputeBlock("C", ("A", "B"), "C", ("m", "n"), ("k",), epilogue="relu"),
            ComputeBlock("E", ("C", "D"), "E", ("m", "h"), ("n",)),
            ComputeBlock("G", ("E", "F"), "G", ("m", "g"), ("h",)),
        ),
        {
            "A": TensorRef("A", ("m", "k"), "input"),
            "B": TensorRef("B", ("k", "n"), "input"),
            "C": TensorRef("C", ("m", "n"), "intermediate"),
            "D": TensorRef("D", ("n", "h"), "input"),
            "E": TensorRef("E", ("m", "h"), "intermediate"),
            "F": TensorRef("F", ("h", "g"), "input"),
            "G": TensorRef("G", ("m", "g"), "output"),
        },
        batch=batch,
    )


def main() -> None:
    chain = triple_gemm()
    exprs = all_tilings(chain)
    deep = sum(1 for e in exprs if e.is_deep)
    print(f"chain: {chain}")
    print(f"tiling expressions: {len(exprs)} ({deep} deep = 5!, {len(exprs) - deep} flat)")
    print(f"MBCI on A100? {chain.is_mbci(A100)}\n")

    report = MCFuserTuner(A100, config=SessionConfig.make(seed=0)).tune(chain)
    print(f"pruning funnel: {report.pruning.funnel()}")
    print(f"best: {report.best_candidate.describe()}")
    print(f"fused time: {fmt_time(report.best_time)}  "
          f"(tuned in {fmt_time(report.tuning_seconds)})\n")
    print(report.best_schedule.pretty())

    module = compile_schedule(report.best_schedule, A100)
    inputs = chain.random_inputs(0)
    fused = module.run(inputs)["G"]
    reference = chain.reference(inputs)["G"]
    rel_err = float(np.max(np.abs(fused - reference)) / np.max(np.abs(reference)))
    print(f"\nmax relative err vs reference: {rel_err:.2e}")
    assert np.allclose(fused, reference, rtol=1e-4, atol=1e-3)

    pytorch = PyTorchBaseline().run_chain(chain, A100, seed=0)
    print(f"PyTorch (3 GEMM launches + epilogue): {fmt_time(pytorch.time)}")
    print(f"MCFuser speedup: {pytorch.time / report.best_time:.2f}x")


if __name__ == "__main__":
    main()
