"""Quickstart: fuse a memory-bound GEMM chain with MCFuser.

Tunes the paper's G2 workload (Table II) for a simulated A100, prints the
chosen tiling expression and schedule, verifies numerical correctness
against an unfused reference, and compares against the PyTorch baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import A100, Session, SessionConfig, compile_schedule, gemm_chain
from repro.baselines import PyTorchBaseline
from repro.utils import fmt_time


def main() -> None:
    # C[m,n] = A[m,k] x B[k,n];  E[m,h] = C[m,n] x D[n,h]   (the paper's G2)
    chain = gemm_chain(batch=1, m=512, n=256, k=64, h=128, name="G2")
    print(f"workload: {chain}")
    print(f"arithmetic intensity (fused): {chain.arithmetic_intensity():.0f} flops/byte")
    print(f"A100 ridge point: {A100.flops_per_byte:.0f} flops/byte")
    print(f"memory-bound compute-intensive (MBCI)? {chain.is_mbci(A100)}\n")

    # --- tune ---------------------------------------------------------------
    # One SessionConfig carries every knob; cache_enabled=False keeps the
    # example self-contained (no persistent schedule cache on disk).
    session = Session(SessionConfig.make(seed=0, cache_enabled=False))
    report = session.tune(chain)
    print(f"searched {report.pruning.after_rule4} candidates "
          f"(pruned from {report.pruning.original:,})")
    print(f"tuning time (simulated): {fmt_time(report.tuning_seconds)}, "
          f"{report.search.num_measurements} hardware measurements")
    print(f"best candidate: {report.best_candidate.describe()}")
    print(f"fused kernel time: {fmt_time(report.best_time)} "
          f"({report.tflops:.1f} TFLOP/s)\n")
    print("schedule:")
    print(report.best_schedule.pretty())

    # --- verify -------------------------------------------------------------
    module = compile_schedule(report.best_schedule, A100)
    inputs = chain.random_inputs(seed=0)
    fused = module.run(inputs)[chain.output]
    reference = chain.reference(inputs)[chain.output]
    max_err = float(np.max(np.abs(fused - reference)))
    print(f"\nnumerical check vs unfused reference: max abs err = {max_err:.2e}")
    assert np.allclose(fused, reference, rtol=1e-4, atol=1e-5)

    # --- compare ------------------------------------------------------------
    pytorch = PyTorchBaseline().run_chain(chain, A100, seed=0)
    print(f"\nPyTorch (unfused, eager): {fmt_time(pytorch.time)}")
    print(f"MCFuser speedup: {pytorch.time / report.best_time:.2f}x")


if __name__ == "__main__":
    main()
