"""End-to-end BERT compilation (the paper's Fig. 9 workflow).

Builds the BERT-Small encoder, partitions out the MBCI attention
sub-graphs, compiles under every strategy, and reports execution +
tuning-time trade-offs. MCFuser+Relay should beat even fully-tuned Ansor
while tuning in minutes instead of hours.

Run:  python examples/end_to_end_bert.py
"""

from repro import A100, SessionConfig, bert_encoder, compile_model, partition_graph
from repro.frontend.executor import STRATEGIES
from repro.utils import fmt_time, format_table


def main() -> None:
    graph = bert_encoder("Bert-Small", seq_len=512)
    print(f"model: {graph.name} — {len(graph.nodes)} operators, "
          f"{graph.total_flops() / 1e9:.1f} GFLOPs\n")

    # --- what does the partitioner find? -----------------------------------
    partition = partition_graph(graph, A100)
    print(f"MBCI sub-graphs found: {len(partition.subgraphs)}")
    sg = partition.subgraphs[0]
    print(f"  each: {sg.kind}, loops {sg.chain.loops}, "
          f"heads folded into batch={sg.chain.batch}")
    print(f"  absorbed graph nodes: {', '.join(sg.nodes)}\n")

    # --- compile under every strategy ---------------------------------------
    rows = []
    results = {}
    config = SessionConfig.make(seed=0)
    for strategy in STRATEGIES:
        r = compile_model(graph, A100, strategy, config=config)
        results[strategy] = r
        rows.append(
            [
                strategy,
                fmt_time(r.time),
                f"{r.kernel_count}",
                f"{r.mbci_subgraphs}",
                fmt_time(r.tuning_seconds),
            ]
        )
    print(format_table(["strategy", "exec time", "kernels", "fused MBCI", "tuning"], rows))

    relay = results["relay"]
    mc_relay = results["mcfuser+relay"]
    ansor = results["ansor"]
    print(f"\nMCFuser+Relay vs Relay:  {relay.time / mc_relay.time:.2f}x faster, "
          f"+{fmt_time(mc_relay.tuning_seconds - relay.tuning_seconds)} tuning")
    print(f"MCFuser+Relay vs Ansor:  {ansor.time / mc_relay.time:.2f}x faster, "
          f"{ansor.tuning_seconds / mc_relay.tuning_seconds:.0f}x less tuning")


if __name__ == "__main__":
    main()
