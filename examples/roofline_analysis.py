"""Roofline analysis: when does a compute-intensive operator become MBCI?

Reproduces the paper's Fig. 2 sweep interactively and classifies a few
user-specified shapes, showing the ``phi < P/W`` criterion in action.

Run:  python examples/roofline_analysis.py
"""

from repro import A100, RTX3080, attention_chain, gemm_chain
from repro.experiments.fig2_roofline import matmul_points, phi
from repro.utils import format_table


def main() -> None:
    print(f"A100 ridge point:    {A100.flops_per_byte:.0f} flops/byte")
    print(f"RTX 3080 ridge point: {RTX3080.flops_per_byte:.0f} flops/byte\n")

    # --- the Fig. 2 sweep -----------------------------------------------------
    print("MatMul at constant work (M*N*K = 1024^3), shrinking K/M:")
    rows = []
    for p in matmul_points(A100, num_points=8):
        rows.append([f"{p.k_over_m:.4f}", p.m, p.k, f"{p.phi_ops_per_byte:.1f}",
                     f"{p.tflops:.1f}", p.bound])
    print(format_table(["K/M", "M=N", "K", "phi (ops/B)", "TFLOPS", "bound"], rows))
    print()

    # --- the paper's K=1024 -> K=1 anecdote ------------------------------------
    for k in (1024, 64, 1):
        ratio = phi(256, 1024, 1024, k) / 2.0
        print(f"GEMM 1024x1024x{k:<5d}: phi = {ratio:7.1f} ops/byte "
              f"-> {'compute' if ratio > A100.flops_per_byte else 'memory'}-bound on A100")
    print()

    # --- classify real chains ---------------------------------------------------
    chains = [
        gemm_chain(1, 512, 256, 64, 64, name="G1"),
        gemm_chain(1, 512, 512, 1024, 256, name="G6"),
        gemm_chain(1, 4096, 4096, 4096, 4096, name="big-square"),
        attention_chain(12, 512, 512, 64, 64, name="S2"),
        attention_chain(16, 2048, 2048, 64, 64, name="long-seq"),
    ]
    rows = []
    for chain in chains:
        unfused_phi = chain.total_flops() / chain.unfused_dram_bytes()
        rows.append([
            chain.name,
            f"{unfused_phi:.0f}",
            f"{chain.arithmetic_intensity():.0f}",
            "yes" if chain.is_mbci(A100) else "no",
            "yes" if chain.is_mbci(RTX3080) else "no",
        ])
    print(format_table(
        ["chain", "phi unfused", "phi fused", "MBCI on A100", "MBCI on 3080"], rows
    ))
    print("\nMBCI chains are where fusion pays: the fused kernel trades DRAM")
    print("round-trips of intermediates for on-chip reuse (the paper's premise).")


if __name__ == "__main__":
    main()
