"""Legacy setup shim: lets ``pip install -e .`` work without network access
(the environment has no ``wheel`` package, so PEP-517 editable installs
fail; the legacy ``setup.py develop`` path does not need it)."""

from setuptools import setup

setup()
