"""Small shared utilities: deterministic hashing, seeded RNG, table formatting.

Everything here is dependency-free (stdlib + numpy) and used across all
subpackages. Determinism matters: the GPU simulator derives measurement
jitter from :func:`stable_hash` so that repeated "measurements" of the same
kernel are reproducible across processes (python's builtin ``hash`` is
salted per process and must not be used).
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "stable_hash",
    "unit_jitter",
    "rng_for",
    "ceil_div",
    "prod",
    "geomean",
    "fmt_time",
    "fmt_bytes",
    "format_table",
    "pearson",
]


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Parts are stringified with ``repr``; floats are rounded to 12 significant
    digits first so that values that survived a round-trip through
    arithmetic still hash identically.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        if isinstance(part, float):
            part = float(f"{part:.12g}")
        h.update(repr(part).encode())
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


def unit_jitter(*parts: object) -> float:
    """Deterministic pseudo-random value in ``[-1, 1]`` derived from ``parts``."""
    return stable_hash(*parts) / float(2**63) - 1.0


def rng_for(*parts: object) -> np.random.Generator:
    """A numpy Generator seeded deterministically from ``parts``."""
    return np.random.default_rng(stable_hash(*parts))


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; ``b`` must be positive."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def prod(values: Iterable[int | float]) -> int | float:
    """Product of an iterable (1 for empty input)."""
    out: int | float = 1
    for v in values:
        out *= v
    return out


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (nan for empty input)."""
    if not values:
        return float("nan")
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


def fmt_time(seconds: float) -> str:
    """Human-readable duration: 12.3us / 4.56ms / 7.89s / 2.1h."""
    if seconds != seconds:  # nan
        return "n/a"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 3600.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 3600.0:.2f}h"


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count (binary units)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (used by the experiment drivers)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (nan if degenerate)."""
    if len(xs) != len(ys):
        raise ValueError("pearson needs equal-length sequences")
    if len(xs) < 2:
        return float("nan")
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return float("nan")
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))
