"""SessionConfig: one typed, serializable configuration object.

Seven PRs of feature growth each added a few keyword arguments that had to
be hand-threaded through five layers (tuner → batch tuner → service →
``compile_model`` → CLI), with the validation copy-pasted at every hop.
This module is the single source of truth for every tunable knob:

* **Typed & frozen** — :class:`SessionConfig` is an immutable dataclass of
  nested sub-configs (:class:`SearchConfig`, :class:`ExecConfig`,
  :class:`CacheConfig`, :class:`ServeConfig`, :class:`ObsConfig`). Invalid
  values raise :class:`ValueError` at *construction*, not deep inside a
  tune; downstream layers assert they received an already-validated config
  instead of re-checking.
* **Serializable** — :meth:`SessionConfig.to_json` /
  :meth:`SessionConfig.from_json` round-trip losslessly, and ``from_json``
  tolerates unknown keys (forward compatibility: a config written by a
  newer release still loads). This is what a multi-process serving tier
  ships to worker processes and uses to warm-start replicas.
* **Env-overridable** — every leaf field has a ``REPRO_*`` environment
  variable (:func:`apply_env`; e.g. ``REPRO_SEARCH_SEED=3``,
  ``REPRO_EXEC_BACKEND=compiled``, and the pre-existing
  ``REPRO_CACHE_DIR``). :meth:`SessionConfig.default` is the
  env-applied default config.
* **Cache-key stable** — :attr:`SessionConfig.variant_key` reproduces the
  historical :func:`~repro.cache.signature.variant_key` strings exactly
  (``"mcfuser"``, ``"mcfuser+random"``, ``"mcfuser+topk1"``, ...), so no
  persistent-store entry written before this layer existed is orphaned;
  :meth:`SessionConfig.content_hash` is a stable digest of the whole
  config for replica hand-off and snapshot naming.

The legacy kwarg constructors (``MCFuserTuner(gpu, population_size=...)``
etc.) still work for one release: they build a :class:`SessionConfig`
internally via :meth:`SessionConfig.make` and emit a
:class:`DeprecationWarning` naming the replacement field.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.cache.signature import DEFAULT_DYNAMIC_LOOPS, variant_key
from repro.codegen.interpreter import EXEC_BACKENDS

__all__ = [
    "CONFIG_VERSION",
    "VERIFY_MODES",
    "DYNAMIC_MODES",
    "VARIANTS",
    "SearchConfig",
    "ExecConfig",
    "CacheConfig",
    "ServeConfig",
    "ObsConfig",
    "SessionConfig",
    "FLAT_FIELDS",
    "TUNER_KNOBS",
    "search_overrides",
    "build_legacy_config",
    "apply_env",
    "env_var_for",
    "field_paths",
    "describe_fields",
]

#: Bumped when the config schema changes shape incompatibly. Serialized
#: configs carry it; :meth:`SessionConfig.from_dict` ignores unknown keys,
#: so additive growth does not need a bump.
CONFIG_VERSION = 1

#: Tuner variants (full system vs the restricted MCFuser-Chimera baseline).
VARIANTS = ("mcfuser", "chimera")

#: Numeric verification modes: ``"off"`` (no checking), ``"best"`` (execute
#: the winning schedule once against the unfused reference), ``"all"``
#: (execute every hardware-measured candidate — numerically wrong programs
#: count as launch failures and are blacklisted).
VERIFY_MODES = ("off", "best", "all")

#: Dynamic-shape handling: ``"off"`` keys the cache by exact extents;
#: ``"buckets"`` tunes once per power-of-two sequence-length bucket (at the
#: bucket ceiling) and replays the schedule — tail tiles masked — on every
#: in-bucket length.
DYNAMIC_MODES = ("off", "buckets")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class SearchConfig:
    """Everything that shapes one tuning run (§IV / Algorithm 1).

    Attributes:
        variant: ``"mcfuser"`` (full system) or ``"chimera"`` (restricted
            space + data-movement objective).
        strategy: Registered search-strategy name (``"evolutionary"``,
            ``"random"``, ``"exhaustive"``, ``"annealing"``, or a custom
            registration). Cached schedules are keyed per strategy.
        population_size/top_n/epsilon/max_rounds/min_rounds: Algorithm-1
            parameters (paper uses ``n = 8``).
        seed: Controls search randomness and simulator jitter.
        workers: Measurement thread-pool width for the per-round top-n
            batch (deterministic for any width).
        cost_model: Attach the persistent learned cost model (the
            :class:`~repro.search.cost_model.LearnedCostModel` living next
            to the schedule cache) to every tune.
        measure_topk: With a cost model, hardware-measure only the model's
            predicted-best ``k`` candidates per round (0 disables; guided
            entries cache under a ``+topk{k}`` variant key).
    """

    variant: str = "mcfuser"
    strategy: str = "evolutionary"
    population_size: int = 512
    top_n: int = 8
    epsilon: float = 0.01
    max_rounds: int = 16
    min_rounds: int = 5
    seed: int = 0
    workers: int = 1
    cost_model: bool = False
    measure_topk: int = 0

    def __post_init__(self) -> None:
        _require(
            self.variant in VARIANTS,
            f"unknown tuner variant {self.variant!r}; pick from {VARIANTS}",
        )
        from repro.search.engine.strategy import strategy_names

        _require(
            self.strategy in strategy_names(),
            f"unknown search strategy {self.strategy!r}; "
            f"pick from {tuple(strategy_names())}",
        )
        _require(
            self.population_size >= 1,
            f"population_size must be >= 1, got {self.population_size}",
        )
        _require(self.top_n >= 1, f"top_n must be >= 1, got {self.top_n}")
        _require(self.epsilon >= 0, f"epsilon must be >= 0, got {self.epsilon}")
        _require(self.max_rounds >= 1, f"max_rounds must be >= 1, got {self.max_rounds}")
        _require(self.min_rounds >= 0, f"min_rounds must be >= 0, got {self.min_rounds}")
        _require(self.workers >= 1, f"workers must be >= 1, got {self.workers}")
        _require(
            self.measure_topk >= 0,
            f"measure_topk must be >= 0, got {self.measure_topk}",
        )


@dataclass(frozen=True)
class ExecConfig:
    """How tuned schedules are executed and checked.

    Attributes:
        backend: Numeric execution engine — ``"auto"`` (compiled when
            available and worthwhile, then vectorized, then scalar),
            ``"compiled"``, ``"vectorized"``, or ``"scalar"``.
        verify: :data:`VERIFY_MODES` member.
        dynamic: :data:`DYNAMIC_MODES` member.
        dynamic_loops: Loop names treated as dynamic under bucketing
            (default: the sequence-length dims ``("m", "n")``).
    """

    backend: str = "auto"
    verify: str = "off"
    dynamic: str = "off"
    dynamic_loops: tuple[str, ...] = DEFAULT_DYNAMIC_LOOPS

    def __post_init__(self) -> None:
        _require(
            self.backend in EXEC_BACKENDS,
            f"unknown exec backend {self.backend!r}; pick from {EXEC_BACKENDS}",
        )
        _require(
            self.verify in VERIFY_MODES,
            f"unknown verify mode {self.verify!r}; pick from {VERIFY_MODES}",
        )
        _require(
            self.dynamic in DYNAMIC_MODES,
            f"unknown dynamic mode {self.dynamic!r}; pick from {DYNAMIC_MODES}",
        )
        object.__setattr__(self, "dynamic_loops", tuple(self.dynamic_loops))
        _require(
            all(isinstance(l, str) and l for l in self.dynamic_loops),
            f"dynamic_loops must be non-empty loop names, got {self.dynamic_loops!r}",
        )


@dataclass(frozen=True)
class CacheConfig:
    """The persistent schedule cache (and cost-model home directory).

    Attributes:
        enabled: Consult/fill the persistent schedule cache.
        dir: Cache directory; ``None`` means the default
            (``$REPRO_CACHE_DIR`` or ``~/.cache/mcfuser-repro``).
    """

    enabled: bool = True
    dir: str | None = None

    def __post_init__(self) -> None:
        _require(
            self.dir is None or (isinstance(self.dir, str) and self.dir),
            f"cache dir must be None or a non-empty path, got {self.dir!r}",
        )

    def resolved_dir(self) -> str:
        """The concrete cache directory this config points at."""
        from repro.cache.cache import default_cache_dir

        return self.dir or default_cache_dir()


@dataclass(frozen=True)
class ServeConfig:
    """The compile service (admission queue + tune worker pool).

    Attributes:
        workers: Tune worker-thread count.
        queue_limit: Bounded tune-queue depth; submits beyond it load-shed.
    """

    workers: int = 4
    queue_limit: int = 256

    def __post_init__(self) -> None:
        _require(self.workers >= 1, f"workers must be >= 1, got {self.workers}")
        _require(
            self.queue_limit >= 1,
            f"queue_limit must be >= 1, got {self.queue_limit}",
        )


@dataclass(frozen=True)
class ObsConfig:
    """Observability: span tracing and metrics export.

    Attributes:
        trace: Enable the process-global span tracer for the session.
    """

    trace: bool = False


#: ``section name -> sub-config type`` — the schema's table of contents.
_SECTIONS: dict[str, type] = {
    "search": SearchConfig,
    "exec": ExecConfig,
    "cache": CacheConfig,
    "serve": ServeConfig,
    "obs": ObsConfig,
}


@dataclass(frozen=True)
class SessionConfig:
    """Every tunable knob of a tuning/serving session, in one object.

    ``gpu`` is the *name* of a registered GPU spec (``"a100"``,
    ``"rtx3080"``) so the config stays serializable; layers that accept a
    live :class:`~repro.gpu.specs.GPUSpec` object (for custom hardware
    descriptions) take it separately and use the config for knobs only.
    """

    gpu: str = "a100"
    search: SearchConfig = field(default_factory=SearchConfig)
    exec: ExecConfig = field(default_factory=ExecConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        _require(
            isinstance(self.gpu, str) and bool(self.gpu),
            f"gpu must be a registered GPU name, got {self.gpu!r}",
        )
        for name, cls in _SECTIONS.items():
            value = getattr(self, name)
            if isinstance(value, Mapping):  # convenience: dicts coerce
                object.__setattr__(self, name, cls(**value))
            elif not isinstance(value, cls):
                raise ValueError(
                    f"config section {name!r} must be a {cls.__name__}, "
                    f"got {type(value).__name__}"
                )

    # -- construction ---------------------------------------------------------

    @classmethod
    def default(cls, environ: Mapping[str, str] | None = None) -> "SessionConfig":
        """The default config with ``REPRO_*`` environment overrides applied."""
        return apply_env(cls(), environ)

    @classmethod
    def make(cls, base: "SessionConfig | None" = None, **flat: Any) -> "SessionConfig":
        """Build a config from *flat* keyword names (the legacy kwarg set).

        ``SessionConfig.make(seed=3, exec_backend="compiled")`` routes each
        flat name to its nested field via :data:`FLAT_FIELDS` — exactly the
        names the deprecated keyword signatures accepted. Unknown names
        raise a :class:`ValueError` naming the valid set.
        """
        cfg = base if base is not None else cls()
        return cfg.evolve(**flat)

    def evolve(self, **flat: Any) -> "SessionConfig":
        """A copy with flat-named overrides applied (see :data:`FLAT_FIELDS`)."""
        updates: dict[str, dict[str, Any]] = {}
        top: dict[str, Any] = {}
        for name, value in flat.items():
            if value is None and name != "cache_dir":
                # None means "not set" for every knob except cache.dir,
                # where None is a real value (the default directory).
                continue
            path = FLAT_FIELDS.get(name)
            if path is None:
                raise ValueError(
                    f"unknown config field {name!r}; valid flat names: "
                    f"{', '.join(sorted(FLAT_FIELDS))}"
                )
            section, _, leaf = path.partition(".")
            if not leaf:
                top[section] = value
            else:
                updates.setdefault(section, {})[leaf] = value
        replacements: dict[str, Any] = dict(top)
        for section, kv in updates.items():
            replacements[section] = dataclasses.replace(getattr(self, section), **kv)
        return dataclasses.replace(self, **replacements)

    def update(self, path: str, value: Any) -> "SessionConfig":
        """A copy with one dotted-path field replaced (``"search.seed"``)."""
        section, _, leaf = path.partition(".")
        if not leaf:
            if section not in ("gpu",):
                raise ValueError(f"unknown config path {path!r}")
            return dataclasses.replace(self, gpu=value)
        if section not in _SECTIONS:
            raise ValueError(f"unknown config section {section!r} in path {path!r}")
        sub = getattr(self, section)
        if leaf not in {f.name for f in fields(sub)}:
            raise ValueError(f"unknown config field {leaf!r} in section {section!r}")
        return dataclasses.replace(
            self, **{section: dataclasses.replace(sub, **{leaf: value})}
        )

    def get(self, path: str) -> Any:
        """Read one dotted-path field (``"exec.backend"``)."""
        obj: Any = self
        for part in path.split("."):
            obj = getattr(obj, part)
        return obj

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-able nested dict (tuples rendered as lists)."""
        payload: dict[str, Any] = {"version": CONFIG_VERSION, "gpu": self.gpu}
        for name in _SECTIONS:
            sub = getattr(self, name)
            payload[name] = {
                f.name: (
                    list(v) if isinstance(v := getattr(sub, f.name), tuple) else v
                )
                for f in fields(sub)
            }
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SessionConfig":
        """Rebuild from :meth:`to_dict` output.

        Unknown keys — top-level or inside any section — are ignored, so a
        config serialized by a newer release still loads here (forward
        compatibility); missing keys take their defaults. Invalid *values*
        still raise at construction.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"config payload must be a JSON object, got {type(payload).__name__}"
            )
        kwargs: dict[str, Any] = {}
        if "gpu" in payload:
            kwargs["gpu"] = payload["gpu"]
        for name, sub_cls in _SECTIONS.items():
            raw = payload.get(name)
            if raw is None:
                continue
            if not isinstance(raw, Mapping):
                raise ValueError(f"config section {name!r} must be a JSON object")
            known = {f.name: f for f in fields(sub_cls)}
            sub_kwargs: dict[str, Any] = {}
            for key, value in raw.items():
                spec = known.get(key)
                if spec is None:
                    continue  # unknown key: forward compatibility
                if isinstance(value, list):
                    value = tuple(value)
                sub_kwargs[key] = value
            kwargs[name] = sub_cls(**sub_kwargs)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SessionConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid config JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str) -> "SessionConfig":
        """Read a config file written by :meth:`save` (or ``config dump``)."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
        return path

    # -- identity -------------------------------------------------------------

    @property
    def variant_key(self) -> str:
        """The cache-key variant string this config tunes under.

        Bit-identical to the historical
        :func:`~repro.cache.signature.variant_key` composition
        (``"mcfuser"``, ``"mcfuser+random"``, ``"mcfuser+topk1"``, ...),
        so cache entries written before :class:`SessionConfig` existed
        keep their exact keys.
        """
        return variant_key(
            self.search.variant, self.search.strategy, self.search.measure_topk
        )

    def content_hash(self) -> str:
        """Stable 32-char digest of the whole config (canonical JSON).

        Two processes holding equal configs compute equal hashes — the
        hand-off token a serving tier uses to confirm a worker process
        was warm-started with the intended configuration.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


# -- flat-name routing (legacy kwargs, CLI flags, env vars) --------------------

#: ``flat name -> dotted config path``: the vocabulary the deprecated
#: keyword signatures, :meth:`SessionConfig.make`, and the CLI flag table
#: all share. ``workers`` keeps its historical tuner meaning (measurement
#: pool width); the service pool is ``serve_workers``.
FLAT_FIELDS: dict[str, str] = {
    "gpu": "gpu",
    "variant": "search.variant",
    "strategy": "search.strategy",
    "population_size": "search.population_size",
    "top_n": "search.top_n",
    "epsilon": "search.epsilon",
    "max_rounds": "search.max_rounds",
    "min_rounds": "search.min_rounds",
    "seed": "search.seed",
    "workers": "search.workers",
    "cost_model": "search.cost_model",
    "measure_topk": "search.measure_topk",
    "exec_backend": "exec.backend",
    "verify": "exec.verify",
    "dynamic": "exec.dynamic",
    "dynamic_loops": "exec.dynamic_loops",
    "cache_enabled": "cache.enabled",
    "cache_dir": "cache.dir",
    "serve_workers": "serve.workers",
    "queue_limit": "serve.queue_limit",
    "trace": "obs.trace",
}

#: The flat names the old ``MCFuserTuner`` keyword signature (and the
#: ``tuner_kwargs`` escape hatches) accepted — all typed config fields now.
TUNER_KNOBS = (
    "variant",
    "strategy",
    "population_size",
    "top_n",
    "epsilon",
    "max_rounds",
    "min_rounds",
    "seed",
    "workers",
    "exec_backend",
    "verify",
    "measure_topk",
    "dynamic",
    "dynamic_loops",
)


def search_overrides(tuner_kwargs: Mapping[str, Any]) -> dict[str, Any]:
    """Translate a legacy ``tuner_kwargs`` dict into flat config overrides.

    Every key must be a known tuner knob; an unknown key raises a
    :class:`ValueError` that names the typed replacement field — the
    untyped escape hatch is gone.
    """
    overrides: dict[str, Any] = {}
    for key, value in tuner_kwargs.items():
        if key not in TUNER_KNOBS:
            hint = FLAT_FIELDS.get(key)
            if hint is not None:
                raise ValueError(
                    f"tuner_kwargs key {key!r} is not a tuner knob; set "
                    f"SessionConfig field {hint!r} instead"
                )
            raise ValueError(
                f"unknown tuner_kwargs key {key!r}; tuner_kwargs is replaced "
                f"by typed SessionConfig fields — valid knobs: "
                f"{', '.join(TUNER_KNOBS)}"
            )
        overrides[key] = value
    return overrides


def build_legacy_config(
    entry_point: str,
    legacy: Mapping[str, Any],
    base: "SessionConfig | None" = None,
) -> SessionConfig:
    """Build a :class:`SessionConfig` from a deprecated keyword signature.

    Shared by every shimmed entry point (``MCFuserTuner``, ``BatchTuner``,
    ``CompileService``, ``compile_model``): the legacy flat kwargs are
    routed through :data:`FLAT_FIELDS` into a validated config, and one
    :class:`DeprecationWarning` is emitted naming the replacement fields.
    An empty ``legacy`` dict builds the default (or ``base``) config
    silently — omitting every knob was never deprecated.
    """
    config = SessionConfig.make(base, **legacy)
    if legacy:
        import warnings

        replacements = ", ".join(
            sorted(FLAT_FIELDS[k] for k in legacy if k in FLAT_FIELDS)
        )
        warnings.warn(
            f"configuring {entry_point} through keyword arguments "
            f"({', '.join(sorted(legacy))}) is deprecated and will be removed "
            f"next release; pass config=SessionConfig.make(...) instead "
            f"(fields: {replacements})",
            DeprecationWarning,
            stacklevel=3,
        )
    return config


# -- environment overrides -----------------------------------------------------


def env_var_for(path: str) -> str:
    """The ``REPRO_*`` environment variable overriding one config path.

    ``"gpu"`` → ``REPRO_GPU``; ``"cache.dir"`` → ``REPRO_CACHE_DIR`` (the
    variable the cache layer has honored since PR 1); ``"search.seed"`` →
    ``REPRO_SEARCH_SEED``; and so on.
    """
    return "REPRO_" + path.replace(".", "_").upper()


_TRUE = frozenset(("1", "true", "yes", "on"))
_FALSE = frozenset(("0", "false", "no", "off"))


def _parse_env(raw: str, example: Any, var: str) -> Any:
    """Parse one environment string by the type of the field it overrides."""
    if isinstance(example, bool):
        lowered = raw.strip().lower()
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
        raise ValueError(f"{var}={raw!r} is not a boolean (use 1/0/true/false)")
    if isinstance(example, int):
        try:
            return int(raw)
        except ValueError as exc:
            raise ValueError(f"{var}={raw!r} is not an integer") from exc
    if isinstance(example, float):
        try:
            return float(raw)
        except ValueError as exc:
            raise ValueError(f"{var}={raw!r} is not a number") from exc
    if isinstance(example, tuple):
        return tuple(part.strip() for part in raw.split(",") if part.strip())
    return raw


def field_paths() -> list[str]:
    """Every leaf config path, in schema order (``gpu``, ``search.variant``, ...)."""
    paths = ["gpu"]
    for name, cls in _SECTIONS.items():
        paths.extend(f"{name}.{f.name}" for f in fields(cls))
    return paths


def describe_fields() -> list[dict]:
    """Schema table: path, type, default, env var — for docs and parity tests."""
    defaults = SessionConfig()
    rows = []
    for path in field_paths():
        value = defaults.get(path)
        rows.append(
            {
                "path": path,
                "type": type(value).__name__ if value is not None else "str",
                "default": value,
                "env": env_var_for(path),
            }
        )
    return rows


def apply_env(
    config: SessionConfig, environ: Mapping[str, str] | None = None
) -> SessionConfig:
    """Apply ``REPRO_*`` environment overrides on top of ``config``.

    Environment wins over whatever the config holds (file or defaults);
    explicit CLI flags are applied *after* this, so the precedence is
    defaults < config file < environment < flags. Unset variables leave
    their fields untouched; malformed values raise :class:`ValueError`.
    """
    environ = os.environ if environ is None else environ
    out = config
    for path in field_paths():
        raw = environ.get(env_var_for(path))
        if raw is None:
            continue
        example = SessionConfig().get(path)
        if example is None:  # cache.dir: a string-typed optional
            example = ""
        out = out.update(path, _parse_env(raw, example, env_var_for(path)))
    return out
