"""Baseline systems the paper compares against, all driving the same GPU
simulator so comparisons are apples-to-apples.

``BASELINES`` is the registry the experiment drivers iterate (the order
matches the Fig. 8 legend)."""

from repro.baselines.ansor import ANSOR_DEFAULT_TRIALS, AnsorBaseline, candidate_features
from repro.baselines.base import Baseline, BaselineResult
from repro.baselines.bolt import BOLTBaseline
from repro.baselines.chimera import MCFuserChimeraBaseline
from repro.baselines.flash_attention import FlashAttentionBaseline, fa1_block_sizes
from repro.baselines.gbt import GradientBoostedTrees, RegressionTree
from repro.baselines.library import (
    PyTorchBaseline,
    chain_unfused_kernels,
    elementwise_kernel,
    gemm_kernel,
    normalization_kernel,
    softmax_kernel,
    transpose_kernel,
)
from repro.baselines.mcfuser import MCFuserBaseline
from repro.baselines.relay import RelayBaseline


def default_baselines(ansor_trials: int = ANSOR_DEFAULT_TRIALS) -> list[Baseline]:
    """The Fig. 8 baseline lineup, in legend order."""
    return [
        PyTorchBaseline(),
        AnsorBaseline(trials=ansor_trials),
        BOLTBaseline(),
        FlashAttentionBaseline(),
        MCFuserChimeraBaseline(),
        MCFuserBaseline(),
    ]


__all__ = [
    "Baseline",
    "BaselineResult",
    "PyTorchBaseline",
    "RelayBaseline",
    "AnsorBaseline",
    "ANSOR_DEFAULT_TRIALS",
    "candidate_features",
    "BOLTBaseline",
    "FlashAttentionBaseline",
    "fa1_block_sizes",
    "MCFuserChimeraBaseline",
    "MCFuserBaseline",
    "GradientBoostedTrees",
    "RegressionTree",
    "gemm_kernel",
    "softmax_kernel",
    "elementwise_kernel",
    "normalization_kernel",
    "transpose_kernel",
    "chain_unfused_kernels",
    "default_baselines",
]
