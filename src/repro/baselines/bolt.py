"""The BOLT baseline: CUTLASS-template-based dual-GEMM fusion.

BOLT (MLSys'22) bridges auto-tuners and hardware-native templates: it
pattern-matches sub-graphs against a CUTLASS template table, instantiates
matching templates, measures them all, and dispatches the best. The
constraints the paper leans on:

* only **back-to-back GEMM** patterns fuse — self-attention (with its
  interleaved softmax) is not in the pattern table (``run_chain`` returns
  an unfused fallback, and ``supports_fusion`` is False);
* CUTLASS b2b-GEMM requires the *full* ``n`` extent per threadblock
  (``TN = N``) so the intermediate stays register/shared-resident — large
  ``N`` overflows shared memory and falls back to unfused (the paper's
  G11/G12 "extreme cases");
* no sm86 support: on the RTX 3080 BOLT is absent from Fig. 8 entirely
  (``run_chain`` returns ``None``).
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.baselines.library import chain_unfused_kernels
from repro.gpu.occupancy import SharedMemoryExceeded
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.tuning_cost import TuningClock
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule
from repro.utils import ceil_div

__all__ = ["BOLTBaseline", "BOLT_TEMPLATE_TM", "BOLT_TEMPLATE_TK"]

#: CUTLASS b2b-GEMM threadblock tile menu (m and k dimensions; n is fixed
#: to the full problem N, h to the full H — the template's RF-fusion rule).
BOLT_TEMPLATE_TM = (32, 64, 128, 256)
BOLT_TEMPLATE_TK = (16, 32, 64)


class BOLTBaseline(Baseline):
    """BOLT: template-based fusion on top of TVM + CUTLASS."""

    name = "BOLT"

    def supports_gpu(self, gpu: GPUSpec) -> bool:
        """BOLT's CUTLASS kernels do not build for sm86 (paper §VI-B1)."""
        return gpu.arch == "sm80"

    def supports_fusion(self, chain: ComputeChain) -> bool:
        """Only plain dual-GEMM chains match the pattern table."""
        if len(chain.blocks) != 2:
            return False
        return all(b.softmax_over is None for b in chain.blocks)

    def run_chain(self, chain: ComputeChain, gpu: GPUSpec, seed: int = 0) -> BaselineResult | None:
        if not self.supports_gpu(gpu):
            return None
        clock = TuningClock()
        sim = GPUSimulator(gpu, seed=seed)

        best_fused = float("inf")
        best_template = None
        templates_tried = 0
        if self.supports_fusion(chain):
            n_full = ceil_div(chain.loops["n"], 16) * 16
            h_full = ceil_div(chain.loops["h"], 16) * 16
            expr = TilingExpr.parse("mhnk")
            for tm in BOLT_TEMPLATE_TM:
                for tk in BOLT_TEMPLATE_TK:
                    tiles = {
                        "m": min(tm, ceil_div(chain.loops["m"], 16) * 16),
                        "n": n_full,
                        "k": min(tk, ceil_div(chain.loops["k"], 16) * 16),
                        "h": h_full,
                    }
                    sched = build_schedule(chain, expr, tiles, optimize=True)
                    templates_tried += 1
                    try:
                        t = sim.run(sched.kernel_launch(gpu, codegen="cutlass"))
                    except SharedMemoryExceeded:
                        clock.charge("bolt_template")
                        continue
                    clock.charge("bolt_template", runtime=100 * t)
                    if t < best_fused:
                        best_fused = t
                        best_template = sched.describe()

        # Epilogue-fused-but-unfused-chain fallback (BOLT inherits Relay's
        # per-op path when no template matches).
        unfused = chain_unfused_kernels(chain, gpu, codegen="cutlass", seed=seed)
        unfused_time = sim.run_sequence(unfused)
        clock.charge("bolt_template", count=2)  # profile the fallback too

        fused = best_fused < unfused_time
        return BaselineResult(
            name=self.name,
            chain=chain.name,
            gpu=gpu.name,
            time=min(best_fused, unfused_time),
            tuning_seconds=clock.seconds,
            fused=fused,
            detail={
                "templates": templates_tried,
                "best_template": best_template,
                "unfused_time": unfused_time,
            },
        )
