"""Gradient-boosted regression trees, from scratch on NumPy.

Ansor ranks candidate programs with an XGBoost cost model trained online
on measured samples; no ML library is available offline, so this is a
small, exact reimplementation of the core algorithm: squared-loss gradient
boosting over depth-limited regression trees with greedy variance-gain
splits. It is intentionally modest (a few thousand samples, ~10 features)
— which matches Ansor's per-task training regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def to_json(self) -> dict:
        if self.is_leaf:
            return {"value": self.value}
        assert self.left is not None and self.right is not None
        return {
            "feature": self.feature,
            "threshold": self.threshold,
            "value": self.value,
            "left": self.left.to_json(),
            "right": self.right.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "_Node":
        if "left" not in data:
            return cls(value=float(data["value"]))
        return cls(
            feature=int(data["feature"]),
            threshold=float(data["threshold"]),
            value=float(data["value"]),
            left=cls.from_json(data["left"]),
            right=cls.from_json(data["right"]),
        )


class RegressionTree:
    """CART regression tree with greedy variance-reduction splits."""

    def __init__(self, max_depth: int = 3, min_samples: int = 4) -> None:
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.root: _Node | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        self.root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < self.min_samples or np.ptp(y) == 0.0:
            return node
        best_gain = 0.0
        base_sse = float(((y - y.mean()) ** 2).sum())
        best: tuple[int, float, np.ndarray] | None = None
        for f in range(x.shape[1]):
            values = np.unique(x[:, f])
            if len(values) < 2:
                continue
            # Candidate thresholds: midpoints of up to 16 quantile cuts.
            if len(values) > 16:
                values = np.quantile(values, np.linspace(0.05, 0.95, 16))
            for thr in (values[:-1] + values[1:]) / 2.0:
                mask = x[:, f] <= thr
                n_l = int(mask.sum())
                if n_l == 0 or n_l == len(y):
                    continue
                yl, yr = y[mask], y[~mask]
                sse = float(((yl - yl.mean()) ** 2).sum() + ((yr - yr.mean()) ** 2).sum())
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (f, float(thr), mask)
        if best is None:
            return node
        f, thr, mask = best
        node.feature, node.threshold = f, thr
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        assert self.root is not None, "tree not fitted"
        out = np.empty(len(x), dtype=np.float64)
        for i, row in enumerate(x):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out

    def to_json(self) -> dict:
        """Plain-JSON form (inverse of :meth:`from_json`)."""
        assert self.root is not None, "tree not fitted"
        return {
            "max_depth": self.max_depth,
            "min_samples": self.min_samples,
            "root": self.root.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "RegressionTree":
        tree = cls(max_depth=int(data["max_depth"]), min_samples=int(data["min_samples"]))
        tree.root = _Node.from_json(data["root"])
        return tree


class GradientBoostedTrees:
    """Squared-loss gradient boosting (the XGBoost-lite cost model)."""

    def __init__(
        self,
        n_trees: int = 40,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        min_samples: int = 4,
    ) -> None:
        self.n_trees = n_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.base: float = 0.0
        self.trees: list[RegressionTree] = []
        self._fitted = False

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("GBT.fit expects x:(n,f), y:(n,)")
        if len(y) == 0:
            raise ValueError("GBT.fit needs at least one sample")
        self.base = float(y.mean())
        self.trees = []
        self._fitted = True
        # Constant targets or sample-starved fits collapse to the prior
        # mean: boosting on them would only grow degenerate zero-gain
        # trees (or chase noise through tiny leaves).
        if len(y) < self.min_samples or np.ptp(y) == 0.0:
            return self
        residual = y - self.base
        for _ in range(self.n_trees):
            tree = RegressionTree(self.max_depth, self.min_samples).fit(x, residual)
            update = tree.predict(x)
            residual = residual - self.learning_rate * update
            self.trees.append(tree)
            if float(np.abs(residual).max(initial=0.0)) < 1e-12:
                break
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("GBT.predict called before fit")
        x = np.asarray(x, dtype=np.float64)
        out = np.full(len(x), self.base, dtype=np.float64)
        for tree in self.trees:
            out += self.learning_rate * tree.predict(x)
        return out

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def to_json(self) -> dict:
        """Plain-JSON form (inverse of :meth:`from_json`); requires a fit."""
        if not self._fitted:
            raise RuntimeError("GBT.to_json called before fit")
        return {
            "n_trees": self.n_trees,
            "learning_rate": self.learning_rate,
            "max_depth": self.max_depth,
            "min_samples": self.min_samples,
            "base": self.base,
            "trees": [tree.to_json() for tree in self.trees],
        }

    @classmethod
    def from_json(cls, data: dict) -> "GradientBoostedTrees":
        model = cls(
            n_trees=int(data["n_trees"]),
            learning_rate=float(data["learning_rate"]),
            max_depth=int(data["max_depth"]),
            min_samples=int(data["min_samples"]),
        )
        model.base = float(data["base"])
        model.trees = [RegressionTree.from_json(t) for t in data["trees"]]
        model._fitted = True
        return model
