"""MCFuser itself, wrapped in the common baseline interface so the
experiment drivers can treat all systems uniformly."""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.config import SessionConfig, search_overrides
from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.tuner import MCFuserTuner

__all__ = ["MCFuserBaseline"]


class MCFuserBaseline(Baseline):
    """The full system: comprehensive space + analytical model + search."""

    name = "MCFuser"

    def __init__(self, **tuner_kwargs) -> None:
        self.config = SessionConfig.make(
            variant="mcfuser", **search_overrides(tuner_kwargs)
        )

    def run_chain(self, chain: ComputeChain, gpu: GPUSpec, seed: int = 0) -> BaselineResult:
        tuner = MCFuserTuner(gpu, config=self.config.evolve(seed=seed))
        report = tuner.tune(chain)
        return BaselineResult(
            name=self.name,
            chain=chain.name,
            gpu=gpu.name,
            time=report.best_time,
            tuning_seconds=report.tuning_seconds,
            fused=True,
            detail={
                "best": report.best_candidate.describe(),
                "rounds": report.search.rounds,
                "measurements": report.search.num_measurements,
                "pruning": report.pruning.funnel(),
            },
        )
