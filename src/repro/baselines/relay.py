"""The Relay baseline: template-scheduled per-op execution.

Relay (TVM's graph-level compiler without auto-tuning) executes each
operator with a pre-defined template schedule — no per-shape fine-tuning,
so kernel quality trails cuBLAS — but applies classic *epilogue fusion*
(GEMM + bias + activation in one kernel). It never fuses multiple
compute-intensive operators; for MBCI chains it behaves like the library
path with cheaper codegen.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.baselines.library import chain_unfused_kernels
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.tuning_cost import TuningClock

__all__ = ["RelayBaseline"]


class RelayBaseline(Baseline):
    """TVM Relay with default (template) schedules."""

    name = "Relay"

    def run_chain(self, chain: ComputeChain, gpu: GPUSpec, seed: int = 0) -> BaselineResult:
        clock = TuningClock()
        clock.charge("relay_compile")
        kernels = chain_unfused_kernels(chain, gpu, codegen="relay", seed=seed)
        sim = GPUSimulator(gpu, seed=seed)
        return BaselineResult(
            name=self.name,
            chain=chain.name,
            gpu=gpu.name,
            time=sim.run_sequence(kernels),
            tuning_seconds=clock.seconds,
            fused=False,
            detail={"kernels": len(kernels)},
        )
