"""MCFuser-Chimera: Chimera's search space inside the MCFuser framework.

The paper cannot compare against closed-source Chimera directly, so it
re-implements Chimera's search space (deep tilings / nested block
execution orders only, no flat tilings, no extent-1 DAG optimization) and
Chimera's objective (minimize data movement, ignoring compute redundancy
and parallelism) inside MCFuser — §VI-A. We do exactly the same via
``MCFuserTuner(variant="chimera")``.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.config import SessionConfig, search_overrides
from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.tuner import MCFuserTuner

__all__ = ["MCFuserChimeraBaseline"]


class MCFuserChimeraBaseline(Baseline):
    """Deep-tiling-only, data-movement-objective variant of the tuner."""

    name = "MCFuser-Chimera"

    def __init__(self, **tuner_kwargs) -> None:
        self.config = SessionConfig.make(
            variant="chimera", **search_overrides(tuner_kwargs)
        )

    def run_chain(self, chain: ComputeChain, gpu: GPUSpec, seed: int = 0) -> BaselineResult:
        tuner = MCFuserTuner(gpu, config=self.config.evolve(seed=seed))
        report = tuner.tune(chain)
        return BaselineResult(
            name=self.name,
            chain=chain.name,
            gpu=gpu.name,
            time=report.best_time,
            tuning_seconds=report.tuning_seconds,
            fused=True,
            detail={
                "best": report.best_candidate.describe(),
                "rounds": report.search.rounds,
                "measurements": report.search.num_measurements,
            },
        )
