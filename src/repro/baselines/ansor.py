"""The Ansor baseline: ML-cost-model-guided schedule search.

Faithful to the traits the paper contrasts against (§II-B, Table I):

* **Search space** — loop-transformation sketches: deep tilings only,
  power-of-two tile sizes, memory statements at the rightmost related loop
  but *no* extent-1 DAG optimization and *no* flat tilings.
* **Exploration** — evolutionary search guided by a gradient-boosted-tree
  cost model trained online on measured programs, with a fixed trial
  budget (the paper uses 1000 trials per sub-graph) instead of a
  convergence criterion.
* **Cost** — every trial is a TVM build + measurement (seconds each), and
  each round retrains the model; tuning takes hours where MCFuser takes
  seconds (Table IV).
* **Fusion behaviour** — Ansor prefers fused sub-graphs when its space
  contains a runnable candidate, but falls back to per-operator tuned
  kernels when fusion fails (the paper's G12 case) or when unfused is
  faster under its own measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import Baseline, BaselineResult
from repro.baselines.gbt import GradientBoostedTrees
from repro.baselines.library import chain_unfused_kernels
from repro.gpu.occupancy import SharedMemoryExceeded
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.features import ANSOR_FEATURE_NAMES, is_pow2, schedule_features
from repro.search.space import Candidate, SearchSpace, generate_space
from repro.search.tuning_cost import TuningClock
from repro.tiling.schedule import Schedule, build_schedule
from repro.utils import rng_for

__all__ = ["AnsorBaseline", "candidate_features", "ANSOR_DEFAULT_TRIALS"]

#: Paper setup: "we conduct 1000 tuning trials for each subgraph".
ANSOR_DEFAULT_TRIALS = 1000

_ROUND = 64  # measurements per search round (Ansor's default batch)


def candidate_features(schedule: Schedule, gpu: GPUSpec) -> np.ndarray:
    """Feature vector of one candidate program for the cost model.

    Mirrors Ansor's hand-engineered features: work quantities (log scale),
    tile shape, parallelism and shared-memory pressure. Since the shared
    extractor landed this is a view of its leading components
    (:data:`~repro.search.features.ANSOR_FEATURE_NAMES`) — Ansor's
    historical vector, value-identical to the pre-refactor code, without
    the analytic-prior features MCFuser's own cost model also sees (Ansor
    has no such model to lean on).
    """
    return schedule_features(schedule, gpu)[: len(ANSOR_FEATURE_NAMES)]


@dataclass
class AnsorReport:
    """Extra detail from one Ansor tuning run."""

    trials: int
    rounds: int
    fused: bool
    best_fused_time: float
    unfused_time: float


class AnsorBaseline(Baseline):
    """Ansor auto-scheduler (search-space- and cost-model-restricted)."""

    name = "Ansor"

    def __init__(self, trials: int = ANSOR_DEFAULT_TRIALS, seed: int = 0) -> None:
        self.trials = trials
        self.seed = seed

    # -- sketch space ----------------------------------------------------------

    def sketch_space(self, chain: ComputeChain, gpu: GPUSpec) -> list[Candidate]:
        """Ansor's fused-kernel sketches: deep tilings, pow2 tiles, no
        extent-1 optimization."""
        space: SearchSpace = generate_space(
            chain, gpu, deep_only=True, optimize_schedules=False
        )
        return [
            c
            for c in space.candidates
            if all(is_pow2(t) for _, t in c.tiles)
        ]

    # -- tuning loop --------------------------------------------------------------

    def run_chain(self, chain: ComputeChain, gpu: GPUSpec, seed: int = 0) -> BaselineResult:
        clock = TuningClock()
        clock.charge("ansor_sketch")
        sim = GPUSimulator(gpu, seed=seed)
        rng = rng_for("ansor", chain.name, gpu.name, self.seed, seed)
        candidates = self.sketch_space(chain, gpu)

        measured: dict[tuple, float] = {}
        feats: list[np.ndarray] = []
        targets: list[float] = []
        schedules: dict[tuple, Schedule] = {}

        def sched_of(cand: Candidate) -> Schedule:
            if cand.key not in schedules:
                schedules[cand.key] = build_schedule(
                    chain, cand.expr, cand.tile_dict, optimize=False
                )
            return schedules[cand.key]

        def measure(cand: Candidate) -> float:
            if cand.key in measured:
                return measured[cand.key]
            sched = sched_of(cand)
            try:
                t = sim.run(sched.kernel_launch(gpu, codegen="ansor"))
            except SharedMemoryExceeded:
                t = float("inf")
            measured[cand.key] = t
            clock.charge("ansor_trial", runtime=0.0 if t == float("inf") else 100 * t)
            feats.append(candidate_features(sched, gpu))
            targets.append(np.log1p(1e6 * min(t, 1.0)))
            return t

        best_fused = float("inf")
        rounds = 0
        trials_done = 0
        model = GradientBoostedTrees()
        if candidates:
            budget = min(self.trials, max(len(candidates) * 2, _ROUND))
            while trials_done < budget:
                rounds += 1
                batch = min(_ROUND, budget - trials_done)
                pool_ids = rng.choice(
                    len(candidates), size=min(len(candidates), 512), replace=False
                )
                pool = [candidates[int(i)] for i in pool_ids]
                if model.is_fitted:
                    x = np.stack([candidate_features(sched_of(c), gpu) for c in pool])
                    scores = model.predict(x)
                    order = np.argsort(scores)
                    # epsilon-greedy: mostly model-ranked, some random.
                    n_greedy = int(batch * 0.9)
                    chosen = [pool[int(i)] for i in order[:n_greedy]]
                    rest = [pool[int(i)] for i in order[n_greedy:]]
                    if rest:
                        extra = rng.choice(len(rest), size=batch - n_greedy, replace=True)
                        chosen += [rest[int(i)] for i in extra]
                else:
                    ids = rng.choice(len(pool), size=min(batch, len(pool)), replace=False)
                    chosen = [pool[int(i)] for i in ids]
                for cand in chosen:
                    best_fused = min(best_fused, measure(cand))
                    trials_done += 1
                if len(feats) >= 16:
                    model.fit(np.stack(feats), np.array(targets))
                    clock.charge("ansor_train_round")

        # Per-operator fallback: Ansor always tunes the unfused form too
        # (single-op kernels come out much better than its fused attempts).
        unfused = chain_unfused_kernels(chain, gpu, codegen="ansor_op", seed=seed)
        unfused_time = sim.run_sequence(unfused)
        per_op_trials = min(128, self.trials // 4) * len(unfused)
        clock.charge("ansor_trial", count=per_op_trials, runtime=0.0)

        fused_wins = best_fused < unfused_time
        return BaselineResult(
            name=self.name,
            chain=chain.name,
            gpu=gpu.name,
            time=min(best_fused, unfused_time),
            tuning_seconds=clock.seconds,
            fused=fused_wins,
            detail={
                "trials": trials_done + per_op_trials,
                "rounds": rounds,
                "best_fused_time": best_fused,
                "unfused_time": unfused_time,
                "sketch_candidates": len(candidates),
            },
        )
