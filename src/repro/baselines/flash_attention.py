"""The FlashAttention-1 baseline: handcrafted fused attention.

FlashAttention (NeurIPS'22, v1 — the version the paper benchmarks) fuses
the attention chain with a fixed, expert-written schedule. The paper calls
out three rigidities, all modeled here:

* ``K == H`` required — modules with differing QK/V head dims cannot fuse
  (``run_chain`` returns ``None``);
* only the ``m`` and ``n`` sequence dimensions are tiled; ``k``/``h`` are
  kept whole, with block sizes from a fixed head-dim-keyed table rather
  than a search;
* v1 parallelizes over **batch x heads only** (sequence-dimension
  parallelism arrived in v2), and its outer loop runs over KV blocks with
  the output tile re-read and re-scaled per iteration — so small-batch
  workloads under-fill the GPU, the effect behind MCFuser's ~3x win in
  Fig. 8(c,d).
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.gpu.kernel import KernelLaunch
from repro.gpu.memory import TileBuffer, measure_shared_memory
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.utils import ceil_div

__all__ = ["FlashAttentionBaseline", "fa1_block_sizes"]

_MAX_HEAD_DIM = 128


def fa1_block_sizes(head_dim: int, gpu: GPUSpec) -> tuple[int, int]:
    """FlashAttention-1's (Br, Bc) table: larger blocks for small head
    dims, shrinking as the K/V tiles eat shared memory."""
    if head_dim <= 32:
        return 128, 256
    if head_dim <= 64:
        return 128, 128
    if head_dim <= 96:
        return 64, 128
    return 64, 64


class FlashAttentionBaseline(Baseline):
    """Handcrafted fused attention kernel (v1 semantics)."""

    name = "FlashAttention"

    def supports(self, chain: ComputeChain, gpu: GPUSpec) -> bool:
        if len(chain.blocks) != 2 or chain.blocks[1].softmax_over is None:
            return False
        if chain.loops["k"] != chain.loops["h"]:
            return False  # the rigid K == H constraint
        return chain.loops["k"] <= _MAX_HEAD_DIM

    def run_chain(self, chain: ComputeChain, gpu: GPUSpec, seed: int = 0) -> BaselineResult | None:
        if not self.supports(chain, gpu):
            return None
        m, n = chain.loops["m"], chain.loops["n"]
        d = ceil_div(chain.loops["k"], 16) * 16  # padded head dim
        br, bc = fa1_block_sizes(d, gpu)
        br, bc = min(br, m), min(bc, n)
        batch = chain.batch
        dt = chain.dtype_bytes

        n_blocks_m = ceil_div(m, br)
        n_blocks_n = ceil_div(n, bc)
        # v1: one CTA per (batch x head); m-loop inside the kernel.
        grid = batch
        # Traffic: K,V streamed once; Q re-read per KV block; O (+ running
        # stats) read+written once per KV block — v1's outer-loop-over-KV
        # cost that v2 later removed.
        q_bytes = batch * m * d * dt * n_blocks_n
        kv_bytes = batch * n * d * dt * 2
        o_rw = batch * m * d * dt * (2 * n_blocks_n - 1) + batch * m * 4 * n_blocks_n
        flops = 2.0 * batch * m * n * d * 2 + 7.0 * batch * m * n

        buffers = [
            TileBuffer("Q", br, d, dt, role="operand"),
            TileBuffer("K", bc, d, dt, role="operand", double_buffered=True),
            TileBuffer("V", bc, d, dt, role="operand", double_buffered=True),
            TileBuffer("S", br, bc, dt, role="stage"),
            TileBuffer("O", br, d, dt, role="accumulator"),
        ]
        shm = measure_shared_memory(buffers, gpu).total_bytes
        kernel = KernelLaunch(
            name=f"flash_attention_v1:{chain.name}",
            grid=grid,
            flops=flops,
            dram_read_bytes=q_bytes + kv_bytes + o_rw / 2,
            dram_write_bytes=o_rw / 2,
            shared_mem_bytes=min(shm, gpu.shared_mem_per_block),
            tile_m=br,
            tile_n=bc,
            tile_k=min(d, 64),
            inner_contig_bytes=d * dt,
            codegen="cutlass",  # expert-written CUDA
            extra={"br": br, "bc": bc, "layout": "v1 outer-KV"},
        )
        sim = GPUSimulator(gpu, seed=seed)
        return BaselineResult(
            name=self.name,
            chain=chain.name,
            gpu=gpu.name,
            time=sim.run(kernel),
            tuning_seconds=0.0,  # handcrafted: nothing to tune
            fused=True,
            detail={"br": br, "bc": bc, "grid": grid},
        )
