"""Common interface all baselines implement.

A baseline takes a :class:`ComputeChain` and a GPU and produces a
:class:`BaselineResult` — or ``None`` when the workload/hardware is
outside its support envelope (BOLT on sm86, FlashAttention with K != H,
BOLT on attention...), mirroring the gaps in the paper's Fig. 8 bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain

__all__ = ["BaselineResult", "Baseline"]


@dataclass
class BaselineResult:
    """Outcome of running one baseline on one chain."""

    name: str
    chain: str
    gpu: str
    time: float  # best kernel(-sequence) time, seconds
    tuning_seconds: float = 0.0
    fused: bool = False  # whether an actually fused kernel was produced
    detail: dict = field(default_factory=dict)

    @property
    def tflops_label(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.time * 1e6:.1f}us"


class Baseline:
    """Base class; subclasses set ``name`` and implement ``run_chain``."""

    name = "baseline"

    def run_chain(self, chain: ComputeChain, gpu: GPUSpec, seed: int = 0) -> BaselineResult | None:
        raise NotImplementedError

    def supports(self, chain: ComputeChain, gpu: GPUSpec) -> bool:
        """Cheap support check (default: attempt and compare to None)."""
        return True
