"""Vendor-library execution model: the PyTorch (cuBLAS/cuDNN) baseline.

PyTorch executes an MBCI chain *unfused*: every contraction is a separate
cuBLAS batched-GEMM launch and every softmax a separate memory-bound
kernel, with all intermediates round-tripping through DRAM. Library GEMMs
are extremely well tuned per tile (``codegen="cublas"``), so the only
thing MCFuser can beat them on is exactly what the paper exploits: DRAM
traffic and launch count.

The kernel constructors here are shared by the Relay/BOLT/Ansor fallback
paths and by the end-to-end executor, parameterized by code-generator
quality.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.gpu.kernel import KernelLaunch
from repro.gpu.memory import TileBuffer, measure_shared_memory
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.utils import ceil_div, prod

__all__ = [
    "gemm_kernel",
    "softmax_kernel",
    "elementwise_kernel",
    "normalization_kernel",
    "transpose_kernel",
    "chain_unfused_kernels",
    "PyTorchBaseline",
]

#: cuBLAS-style threadblock tile menu (tm, tn); tk candidates below.
_TILE_MENU = [
    (256, 128),
    (128, 256),
    (128, 128),
    (128, 64),
    (64, 128),
    (64, 64),
    (64, 32),
    (32, 64),
    (32, 32),
    (16, 16),
]
_TK_MENU = [64, 32, 16]


def _round16(x: int) -> int:
    return max(16, ceil_div(x, 16) * 16)


def _gemm_shm(tm: int, tn: int, tk: int, gpu: GPUSpec, dtype_bytes: int = 2) -> int:
    buffers = [
        TileBuffer("a", tm, tk, dtype_bytes, role="operand", double_buffered=True),
        TileBuffer("b", tk, tn, dtype_bytes, role="operand", double_buffered=True),
        TileBuffer("c", tm, tn, dtype_bytes, role="accumulator"),
    ]
    return measure_shared_memory(buffers, gpu).total_bytes


def gemm_kernel(
    name: str,
    batch: int,
    m: int,
    n: int,
    k: int,
    gpu: GPUSpec,
    codegen: str = "cublas",
    seed: int = 0,
) -> KernelLaunch:
    """One library batched-GEMM launch with a dispatch-table tile choice.

    The library evaluates its (small) tile menu with the timing model and
    dispatches the best — the moral equivalent of cuBLAS's heuristics
    table. Traffic is the classic panel-reuse model: each column of blocks
    re-reads the A panel, each row re-reads the B panel.
    """
    sim = GPUSimulator(gpu, seed=seed, jitter=False)
    best: KernelLaunch | None = None
    best_time = float("inf")
    for tm, tn in _TILE_MENU:
        tm_c, tn_c = min(tm, _round16(m)), min(tn, _round16(n))
        for tk in _TK_MENU:
            tk_c = min(tk, _round16(k))
            shm = _gemm_shm(tm_c, tn_c, tk_c, gpu)
            if shm > gpu.shared_mem_per_block:
                continue
            grid_m, grid_n = ceil_div(m, tm_c), ceil_div(n, tn_c)
            grid = batch * grid_m * grid_n
            reads = (grid_n * m * k + grid_m * k * n) * batch * 2.0
            writes = m * n * batch * 2.0
            # Library kernels lose throughput on strided-batched layouts
            # and on short accumulation loops (pipeline prologue/epilogue
            # dominates when K is small) — the shapes where fused kernels
            # shine (Fig. 2's premise).
            derate = 1.0
            if batch > 1:
                derate *= 0.70
            derate *= min(1.0, 0.55 + 0.45 * k / 256.0)
            kernel = KernelLaunch(
                name=f"{name}[{tm_c}x{tn_c}x{tk_c}]",
                grid=grid,
                flops=2.0 * batch * m * n * k,
                dram_read_bytes=reads,
                dram_write_bytes=writes,
                shared_mem_bytes=shm,
                tile_m=tm_c,
                tile_n=tn_c,
                tile_k=tk_c,
                inner_contig_bytes=min(tn_c, n) * 2,
                codegen=codegen,
                efficiency=derate,
                dram_compulsory_read_bytes=(m * k + k * n) * batch * 2.0,
            )
            t = sim.run(kernel)
            if t < best_time:
                best, best_time = kernel, t
    assert best is not None
    return best


def softmax_kernel(
    name: str, batch: int, m: int, n: int, gpu: GPUSpec, codegen: str = "cublas"
) -> KernelLaunch:
    """Row-wise softmax: memory-bound, with a two-pass read (max, then
    exp-and-normalize) as in library implementations."""
    elements = batch * m * n
    return KernelLaunch(
        name=name,
        grid=max(1, batch * ceil_div(m, 4)),
        flops=5.0 * elements,
        dram_read_bytes=2.0 * 2.0 * elements,
        dram_write_bytes=2.0 * elements,
        shared_mem_bytes=4 * 1024,
        tile_m=4,
        tile_n=min(n, 1024),
        tile_k=16,
        inner_contig_bytes=min(n, 1024) * 2,
        codegen=codegen,
    )


def elementwise_kernel(
    name: str,
    elements: int,
    gpu: GPUSpec,
    flops_per_element: float = 1.0,
    num_inputs: int = 1,
    codegen: str = "cublas",
) -> KernelLaunch:
    """Fused elementwise kernel: ``num_inputs`` reads, one write.

    One 256-thread block per ~1K elements (4 elements/thread), the usual
    grid-stride sizing of library elementwise kernels.
    """
    return KernelLaunch(
        name=name,
        grid=max(1, ceil_div(elements, 1024)),
        flops=flops_per_element * elements,
        dram_read_bytes=2.0 * elements * num_inputs,
        dram_write_bytes=2.0 * elements,
        shared_mem_bytes=0,
        tile_m=16,
        tile_n=128,
        tile_k=16,
        inner_contig_bytes=256,
        codegen=codegen,
    )


def normalization_kernel(
    name: str, rows: int, cols: int, gpu: GPUSpec, codegen: str = "cublas"
) -> KernelLaunch:
    """LayerNorm-style kernel: two passes over the rows."""
    elements = rows * cols
    return KernelLaunch(
        name=name,
        grid=max(1, ceil_div(rows, 4)),
        flops=8.0 * elements,
        dram_read_bytes=2.0 * elements * 1.5,
        dram_write_bytes=2.0 * elements,
        shared_mem_bytes=2 * 1024,
        tile_m=4,
        tile_n=min(cols, 1024),
        tile_k=16,
        inner_contig_bytes=min(cols, 1024) * 2,
        codegen=codegen,
    )


def transpose_kernel(name: str, elements: int, gpu: GPUSpec, codegen: str = "cublas") -> KernelLaunch:
    """Materializing layout change: read + write every element."""
    return KernelLaunch(
        name=name,
        grid=max(1, ceil_div(elements, 2048)),
        flops=0.0,
        dram_read_bytes=2.0 * elements,
        dram_write_bytes=2.0 * elements,
        shared_mem_bytes=32 * 32 * 2,
        tile_m=32,
        tile_n=32,
        tile_k=16,
        inner_contig_bytes=64,
        codegen=codegen,
    )


def chain_unfused_kernels(
    chain: ComputeChain, gpu: GPUSpec, codegen: str = "cublas", seed: int = 0
) -> list[KernelLaunch]:
    """The launch sequence a library framework issues for one chain:
    one batched GEMM per block, plus a standalone softmax where fused
    attention would have hidden it."""
    kernels: list[KernelLaunch] = []
    for block in chain.blocks:
        out_dims = chain.tensors[block.output].dims
        m = chain.loops[out_dims[0]]
        n = chain.loops[out_dims[-1]]
        k = int(prod(chain.loops[r] for r in block.reduction))
        if block.softmax_over is not None:
            first = chain.tensors[block.inputs[0]]
            sm_m = chain.loops[first.dims[0]]
            sm_n = chain.loops[first.dims[-1]]
            kernels.append(
                softmax_kernel(
                    f"{chain.name}.softmax", chain.batch, sm_m, sm_n, gpu, codegen
                )
            )
        kernels.append(
            gemm_kernel(
                f"{chain.name}.{block.name}", chain.batch, m, n, k, gpu, codegen, seed
            )
        )
        if block.epilogue is not None:
            elements = chain.batch * m * n
            kernels.append(
                elementwise_kernel(
                    f"{chain.name}.{block.name}.{block.epilogue}",
                    elements,
                    gpu,
                    flops_per_element=8.0 if block.epilogue == "gelu" else 1.0,
                    codegen=codegen,
                )
            )
    return kernels


#: Framework dispatch cost of one eager-mode op (type checks, stream
#: bookkeeping, allocator) — on top of the raw CUDA launch overhead.
EAGER_OVERHEAD_PER_OP = 7.0e-6


class PyTorchBaseline(Baseline):
    """PyTorch eager execution: unfused library kernels (Fig. 8's unit bar)."""

    name = "PyTorch"

    def run_chain(self, chain: ComputeChain, gpu: GPUSpec, seed: int = 0) -> BaselineResult:
        kernels = chain_unfused_kernels(chain, gpu, codegen="cublas", seed=seed)
        sim = GPUSimulator(gpu, seed=seed)
        time = sim.run_sequence(kernels) + EAGER_OVERHEAD_PER_OP * len(kernels)
        return BaselineResult(
            name=self.name,
            chain=chain.name,
            gpu=gpu.name,
            time=time,
            tuning_seconds=0.0,
            fused=False,
            detail={"kernels": len(kernels)},
        )
