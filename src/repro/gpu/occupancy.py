"""Occupancy and wave arithmetic for the GPU simulator.

A fused kernel's thread blocks are dispatched one-per-SM-slot; how many
slots exist depends on the per-block shared-memory footprint. The paper's
slowdown factor (eq. 5) is a smooth approximation of this; the simulator
uses the exact wave-quantized version so that the analytical model and the
"hardware" disagree in realistic ways (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec
from repro.utils import ceil_div

__all__ = ["Occupancy", "occupancy_for", "SharedMemoryExceeded"]


class SharedMemoryExceeded(ValueError):
    """Raised when a block requests more shared memory than the GPU allows.

    This is the simulator-side equivalent of a CUDA launch failure; the
    search treats such candidates as unmeasurable (they are the points above
    ``Shm_max`` in Fig. 10 that PTX lowering rejects).
    """

    def __init__(self, requested: int, limit: int) -> None:
        super().__init__(
            f"shared memory request {requested}B exceeds per-block limit {limit}B"
        )
        self.requested = requested
        self.limit = limit


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy for one kernel on one GPU.

    Attributes:
        blocks_per_sm: Resident blocks per SM (shared-memory limited).
            Residency helps latency hiding but does not multiply an SM's
            throughput — timing quantizes over *SMs*, not block slots.
        concurrent_blocks: Blocks resident simultaneously across the GPU.
        waves: SM rounds needed for the whole grid (``ceil(grid / SMs)``).
        quantization: ``waves * SMs / grid`` — the exact tail-effect
            multiplier (>= 1). A grid of 24 blocks on a 108-SM GPU leaves
            most of the machine's compute idle; this factor captures that.
    """

    blocks_per_sm: int
    concurrent_blocks: int
    waves: int
    quantization: float


def occupancy_for(grid: int, shared_mem_bytes: int, gpu: GPUSpec) -> Occupancy:
    """Compute occupancy for ``grid`` blocks each using ``shared_mem_bytes``.

    Raises:
        SharedMemoryExceeded: if one block alone does not fit.
    """
    if grid <= 0:
        raise ValueError("grid must be positive")
    if shared_mem_bytes > gpu.shared_mem_per_block:
        raise SharedMemoryExceeded(shared_mem_bytes, gpu.shared_mem_per_block)
    if shared_mem_bytes <= 0:
        blocks_per_sm = gpu.max_blocks_per_sm
    else:
        blocks_per_sm = min(
            gpu.max_blocks_per_sm, gpu.shared_mem_per_sm // shared_mem_bytes
        )
        blocks_per_sm = max(blocks_per_sm, 1)
    concurrent = min(grid, gpu.num_sms * blocks_per_sm)
    waves = ceil_div(grid, gpu.num_sms)
    quantization = waves * gpu.num_sms / grid
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        concurrent_blocks=concurrent,
        waves=waves,
        quantization=quantization,
    )
