"""GPU hardware descriptions used by the simulator and the performance model.

The paper evaluates on an NVIDIA A100-PCIe-40GB and a GeForce RTX 3080; we
model both with datasheet numbers. ``peak_flops`` is the half-precision
tensor-core peak, ``mem_bandwidth`` the theoretical DRAM bandwidth — the
ratio ``P/W`` is what classifies an operator as memory-bound
compute-intensive (MBCI) in the paper (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUSpec", "A100", "RTX3080", "GENERIC", "by_name"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU used for simulation.

    Attributes:
        name: Marketing name, used in reports.
        arch: Compute-capability string (``sm80``, ``sm86`` ...). Baselines
            use this for support checks (e.g. BOLT rejects ``sm86``).
        num_sms: Number of streaming multiprocessors.
        peak_flops: Peak half-precision tensor-core throughput (FLOP/s).
        mem_bandwidth: Theoretical DRAM bandwidth (bytes/s).
        shared_mem_per_block: Maximum dynamic shared memory one thread block
            may allocate (bytes), including opt-in carveout ("Shm_max" in
            the paper's Rule 4 and Fig. 10).
        shared_mem_per_sm: Shared memory capacity of one SM (bytes); bounds
            occupancy when several blocks are resident.
        register_file_per_sm: Register file size per SM (bytes). Accumulator
            tiles that fit in registers do not consume shared memory in the
            *measured* allocation (see :mod:`repro.gpu.memory`).
        max_blocks_per_sm: Hardware scheduling limit on resident blocks.
        kernel_launch_overhead: Host-side launch latency per kernel (s).
        dram_latency: Fixed latency component per kernel wave (s).
    """

    name: str
    arch: str
    num_sms: int
    peak_flops: float
    mem_bandwidth: float
    shared_mem_per_block: int
    shared_mem_per_sm: int
    register_file_per_sm: int = 256 * 1024
    max_blocks_per_sm: int = 16
    l2_bytes: int = 4 * 1024 * 1024
    kernel_launch_overhead: float = 4.0e-6
    dram_latency: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("peak_flops and mem_bandwidth must be positive")
        if self.shared_mem_per_block > self.shared_mem_per_sm:
            raise ValueError("per-block shared memory cannot exceed per-SM capacity")

    @property
    def flops_per_byte(self) -> float:
        """The roofline ridge point ``P/W`` (operations per byte).

        A kernel whose compute/memory ratio ``phi`` falls below this value is
        memory-bound on this GPU — the MBCI criterion of the paper (§II-A).
        """
        return self.peak_flops / self.mem_bandwidth

    def with_overrides(self, **kwargs: object) -> "GPUSpec":
        """Return a copy with some fields replaced (test helper)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: NVIDIA A100-PCIe-40GB (sm80): 108 SMs, 312 TFLOP/s FP16 tensor core,
#: 1555 GB/s HBM2, 164 KiB shared memory per SM (163 KiB usable per block).
A100 = GPUSpec(
    name="A100",
    arch="sm80",
    num_sms=108,
    peak_flops=312e12,
    mem_bandwidth=1555e9,
    shared_mem_per_block=163 * 1024,
    shared_mem_per_sm=164 * 1024,
    l2_bytes=40 * 1024 * 1024,
)

#: GeForce RTX 3080 (sm86, GA102): 68 SMs, 119 TFLOP/s FP16 tensor core,
#: 760 GB/s GDDR6X, 100 KiB shared memory per SM (99 KiB usable per block).
RTX3080 = GPUSpec(
    name="RTX3080",
    arch="sm86",
    num_sms=68,
    peak_flops=119e12,
    mem_bandwidth=760e9,
    shared_mem_per_block=99 * 1024,
    shared_mem_per_sm=100 * 1024,
    l2_bytes=5 * 1024 * 1024,
)

#: A small fictional GPU used by unit tests to exercise occupancy edge cases.
GENERIC = GPUSpec(
    name="GENERIC",
    arch="sm00",
    num_sms=4,
    peak_flops=1e12,
    mem_bandwidth=100e9,
    shared_mem_per_block=48 * 1024,
    shared_mem_per_sm=64 * 1024,
)

_REGISTRY = {spec.name.lower(): spec for spec in (A100, RTX3080, GENERIC)}


def by_name(name: str) -> GPUSpec:
    """Look up a built-in GPU spec by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown GPU {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
