"""Shared-memory *measurement*: what the backend actually allocates.

The paper prunes candidates with the simple analytic estimate of eq. (1)
(sum of tile footprints) but validates against the allocation reported by
the NVPTX backend (Fig. 10). The two differ in both directions:

* the backend **adds** memory the estimate does not know about — double
  buffering for software pipelining of operand tiles, bank-conflict skew
  padding, fp32 staging of spilled accumulators, a static reserve;
* the backend **removes** memory the estimate over-counts — accumulator
  tiles small enough to live in the register file never touch shared
  memory.

This module is that backend. It consumes a neutral list of
:class:`TileBuffer` records (produced by :mod:`repro.tiling.schedule`) so it
can stay a leaf dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec

__all__ = [
    "TileBuffer",
    "SharedMemoryReport",
    "measure_shared_memory",
    "estimate_shared_memory",
    "STATIC_RESERVE_BYTES",
    "ACCUM_BYTES",
]

#: Driver/static shared-memory reserve per block (bytes).
STATIC_RESERVE_BYTES = 1024

#: Accumulators are kept in fp32 regardless of the storage dtype.
ACCUM_BYTES = 4


@dataclass(frozen=True)
class TileBuffer:
    """One logical tile that a fused kernel keeps on-chip.

    Attributes:
        tensor: Tensor name (for reporting).
        rows/cols: Tile shape (elements). ``rows`` is the slower dimension.
        dtype_bytes: Element size of the stored tile.
        role: ``"operand"`` (loaded from DRAM), ``"stage"`` (intermediate
            produced and consumed on-chip), or ``"accumulator"`` (running
            reduction output).
        double_buffered: Operand tiles loaded inside a reduction loop are
            pipelined and need two copies.
        copies: Number of live tiles (>1 when a schedule keeps several
            partial tiles alive — the situation Rule 2 prunes).
    """

    tensor: str
    rows: int
    cols: int
    dtype_bytes: int = 2
    role: str = "operand"
    double_buffered: bool = False
    copies: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"tile {self.tensor!r}: non-positive shape")
        if self.role not in ("operand", "stage", "accumulator"):
            raise ValueError(f"tile {self.tensor!r}: bad role {self.role!r}")
        if self.copies < 1:
            raise ValueError(f"tile {self.tensor!r}: copies must be >= 1")

    @property
    def elements(self) -> int:
        return self.rows * self.cols * self.copies


@dataclass(frozen=True)
class SharedMemoryReport:
    """Result of measuring a candidate's shared-memory footprint."""

    total_bytes: int
    per_buffer: tuple[tuple[str, int], ...]
    register_resident: tuple[str, ...]

    def fits(self, gpu: GPUSpec) -> bool:
        """True when the allocation fits in one block's shared memory."""
        return self.total_bytes <= gpu.shared_mem_per_block


def estimate_shared_memory(buffers: list[TileBuffer]) -> int:
    """The paper's eq. (1): sum of tile footprints at storage precision.

    Deliberately naive — no double buffering, no padding, no register
    allocation, single copy per tensor. Rule 4 compares this against
    ``1.2 * Shm_max``.
    """
    return sum(b.rows * b.cols * b.dtype_bytes for b in buffers)


def _skew_padding(cols: int, dtype_bytes: int) -> int:
    """Bank-conflict skew: pad rows whose pitch is a multiple of 128B.

    Shared memory has 32 banks x 4B; a power-of-two row pitch makes column
    accesses hit one bank, so backends add an 8-element skew.
    """
    return 8 if (cols * dtype_bytes) % 128 == 0 else 0


def _fits_in_registers(buf: TileBuffer, gpu: GPUSpec) -> bool:
    """Whether an accumulator tile can live entirely in the register file.

    We budget half the SM register file for accumulators of a single block
    (the other half holds operand fragments and address arithmetic).
    """
    budget = gpu.register_file_per_sm // 2
    return buf.elements * ACCUM_BYTES <= budget


def measure_shared_memory(buffers: list[TileBuffer], gpu: GPUSpec) -> SharedMemoryReport:
    """Compute the allocation the backend would actually make.

    Rules applied, in order:

    1. accumulator tiles that fit the register budget are *removed* from
       shared memory (reported in ``register_resident``);
    2. spilled accumulators are staged in fp32 (``ACCUM_BYTES``);
    3. operand tiles flagged ``double_buffered`` are doubled;
    4. every buffer's row pitch gets bank-conflict skew padding;
    5. a static reserve is added once.
    """
    per_buffer: list[tuple[str, int]] = []
    in_registers: list[str] = []
    total = STATIC_RESERVE_BYTES
    for buf in buffers:
        if buf.role == "accumulator" and _fits_in_registers(buf, gpu):
            in_registers.append(buf.tensor)
            continue
        dtype_bytes = ACCUM_BYTES if buf.role == "accumulator" else buf.dtype_bytes
        cols = buf.cols + _skew_padding(buf.cols, dtype_bytes)
        nbytes = buf.rows * cols * dtype_bytes * buf.copies
        if buf.double_buffered and buf.role == "operand":
            nbytes *= 2
        per_buffer.append((buf.tensor, nbytes))
        total += nbytes
    return SharedMemoryReport(
        total_bytes=total,
        per_buffer=tuple(per_buffer),
        register_resident=tuple(in_registers),
    )
