"""GPU substrate: hardware specs, occupancy, shared-memory backend, simulator.

This package replaces the paper's physical A100 / RTX 3080 testbed (see
DESIGN.md, "Hardware substitution"). Everything above it interacts with
"hardware" exclusively through :class:`~repro.gpu.kernel.KernelLaunch` and
:class:`~repro.gpu.simulator.GPUSimulator`.
"""

from repro.gpu.kernel import CODEGEN_QUALITY, CodegenQuality, KernelLaunch
from repro.gpu.memory import (
    SharedMemoryReport,
    TileBuffer,
    estimate_shared_memory,
    measure_shared_memory,
)
from repro.gpu.occupancy import Occupancy, SharedMemoryExceeded, occupancy_for
from repro.gpu.simulator import GPUSimulator, KernelTiming, compute_efficiency, memory_efficiency
from repro.gpu.specs import A100, GENERIC, RTX3080, GPUSpec, by_name

__all__ = [
    "A100",
    "RTX3080",
    "GENERIC",
    "GPUSpec",
    "by_name",
    "KernelLaunch",
    "CodegenQuality",
    "CODEGEN_QUALITY",
    "GPUSimulator",
    "KernelTiming",
    "compute_efficiency",
    "memory_efficiency",
    "Occupancy",
    "occupancy_for",
    "SharedMemoryExceeded",
    "TileBuffer",
    "SharedMemoryReport",
    "estimate_shared_memory",
    "measure_shared_memory",
]
