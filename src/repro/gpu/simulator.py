"""Deterministic analytical GPU simulator — the reproduction's "hardware".

The paper measures candidate kernels on real A100/RTX 3080 GPUs; we price a
:class:`~repro.gpu.kernel.KernelLaunch` with a roofline-with-frictions
model. Compared to MCFuser's analytical performance model (eqs. 2-5 in the
paper, implemented in :mod:`repro.search.perf_model`), the simulator
additionally knows about:

* tensor-core efficiency as a function of the MMA tile shape (small tiles
  under-utilize the MMA pipeline),
* DRAM efficiency as a function of access contiguity (coalescing),
* code-generator quality (cuBLAS > CUTLASS > Triton > Ansor > Relay),
* exact wave quantization from shared-memory-limited occupancy (the model
  only has the smooth ``alpha`` factor),
* partial compute/memory overlap,
* deterministic measurement jitter.

That gap is what makes the model-vs-measurement studies (Fig. 10, Fig. 11)
and the top-k-measure search loop meaningful in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.gpu.kernel import CODEGEN_QUALITY, KernelLaunch
from repro.gpu.occupancy import Occupancy, SharedMemoryExceeded, occupancy_for
from repro.gpu.specs import GPUSpec
from repro.utils import unit_jitter

__all__ = ["KernelTiming", "GPUSimulator", "SharedMemoryExceeded"]

#: Fraction of the shorter of (compute, memory) phases that cannot be hidden
#: behind the longer one. 0 would be perfect overlap, 1 no overlap.
_OVERLAP_FRICTION = 0.2

#: Relative amplitude of the deterministic measurement jitter.
_JITTER = 0.02


def _saturation(x: float, half: float) -> float:
    """Smooth saturating curve in (0, 1): 0.5 at ``x == half``, -> 1."""
    return x / (x + half)


def compute_efficiency(tile_m: int, tile_n: int, tile_k: int, codegen: str) -> float:
    """Fraction of peak FLOP/s achieved by an MMA loop with this tile shape.

    Small tiles starve the tensor-core pipeline (not enough independent
    MMAs in flight); very large accumulator tiles hit register pressure.
    Calibrated so a 128x128x64 Triton tile reaches ~55-60% of peak, the
    common ballpark for fused fp16 kernels.
    """
    quality = CODEGEN_QUALITY[codegen]
    eff = (
        quality
        * _saturation(tile_m, 16.0)
        * _saturation(tile_n, 16.0)
        * _saturation(tile_k, 8.0)
    )
    accum = tile_m * tile_n
    if accum > 128 * 128:  # register pressure / spill penalty
        eff *= (128 * 128 / accum) ** 0.5
    return eff


def memory_efficiency(inner_contig_bytes: int, codegen: str = "triton") -> float:
    """Fraction of peak DRAM bandwidth for accesses with this contiguity.

    32B rows reach ~1/3 of peak (uncoalesced transactions dominate); 256B
    and above approach peak. Code-generator quality enters with a square
    root: poorly vectorized loads (Ansor/Relay) waste some bandwidth, but
    far less than they waste MMA throughput.
    """
    contig = _saturation(float(max(inner_contig_bytes, 1)), 64.0)
    return contig * CODEGEN_QUALITY[codegen] ** 0.5


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one simulated kernel execution."""

    total: float
    compute_time: float
    memory_time: float
    occupancy: Occupancy
    compute_eff: float
    memory_eff: float
    jitter: float

    @property
    def bound(self) -> str:
        """Which resource dominated: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_time >= self.memory_time else "memory"


class GPUSimulator:
    """Prices kernel launches on a :class:`GPUSpec`.

    Args:
        gpu: Hardware description.
        seed: Jitter seed. Two simulators with the same seed return
            identical timings for identical launches.
        jitter: Set ``False`` for exact, noise-free timings (useful in
            tests and in the roofline experiment).
        exec_backend: Default numeric execution engine for
            :meth:`execute` (``"auto"``/``"compiled"``/``"vectorized"``/``"scalar"`` —
            see :func:`repro.codegen.interpreter.execute_schedule`).
            Timing (:meth:`run`) is analytic and backend-independent.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        seed: int = 0,
        jitter: bool = True,
        exec_backend: str = "auto",
    ) -> None:
        from repro.codegen.interpreter import validate_exec_backend

        self.gpu = gpu
        self.seed = seed
        self.jitter_enabled = jitter
        self.exec_backend = validate_exec_backend(exec_backend)

    # -- single kernels ----------------------------------------------------

    def _effective_dram_bytes(self, kernel: KernelLaunch) -> float:
        """DRAM traffic after within-kernel L2 reuse.

        Reads beyond the compulsory traffic re-touch resident data (GEMM
        panel re-reads, reloads of hoisted tiles); when the working set
        fits L2, ~90% of them are served on-chip. Inter-kernel L2 reuse is
        deliberately not modeled (documented limitation in DESIGN.md).
        """
        reads = kernel.dram_read_bytes
        compulsory = kernel.dram_compulsory_read_bytes
        if compulsory is None:
            return reads + kernel.dram_write_bytes
        compulsory = min(max(compulsory, 0.0), reads)
        rereads = reads - compulsory
        working_set = max(compulsory + kernel.dram_write_bytes, 1.0)
        hit = 0.9 * min(1.0, self.gpu.l2_bytes / working_set)
        return compulsory + rereads * (1.0 - hit) + kernel.dram_write_bytes

    def time_kernel(self, kernel: KernelLaunch) -> KernelTiming:
        """Simulate one launch; raises SharedMemoryExceeded if it cannot run."""
        gpu = self.gpu
        occ = occupancy_for(kernel.grid, kernel.shared_mem_bytes, gpu)
        eff_c = compute_efficiency(
            kernel.tile_m, kernel.tile_n, kernel.tile_k, kernel.codegen
        ) * kernel.efficiency
        eff_m = memory_efficiency(kernel.inner_contig_bytes, kernel.codegen) * kernel.efficiency
        t_compute = kernel.flops / (gpu.peak_flops * eff_c) if kernel.flops else 0.0
        t_memory = self._effective_dram_bytes(kernel) / (gpu.mem_bandwidth * eff_m)
        # Wave quantization: a grid smaller than the machine, or a ragged
        # tail wave, leaves SMs idle for whole block-durations. Compute
        # throughput is strictly per-SM, so it scales with the full
        # quantization factor; DRAM bandwidth is a shared resource that a
        # handful of blocks can still drive at ~4x their fair share.
        t_compute_q = t_compute * occ.quantization
        t_memory_q = t_memory * max(1.0, occ.quantization / 4.0)
        longer, shorter = max(t_compute_q, t_memory_q), min(t_compute_q, t_memory_q)
        busy = longer + _OVERLAP_FRICTION * shorter
        exec_time = busy + occ.waves * gpu.dram_latency
        jit = 0.0
        if self.jitter_enabled:
            jit = _JITTER * unit_jitter("kernel", self.seed, kernel.signature())
        total = (gpu.kernel_launch_overhead + exec_time) * (1.0 + jit)
        return KernelTiming(
            total=total,
            compute_time=t_compute,
            memory_time=t_memory,
            occupancy=occ,
            compute_eff=eff_c,
            memory_eff=eff_m,
            jitter=jit,
        )

    def run(self, kernel: KernelLaunch) -> float:
        """Total time (s) of one launch."""
        return self.time_kernel(kernel).total

    def execute(self, schedule, inputs, backend: str | None = None) -> dict:
        """Functionally execute a schedule "on the device" (NumPy backends).

        The timing model above never runs the numerics; this entry point is
        what measurement-time verification and `OperatorModule.run` use.
        ``backend`` overrides the simulator-wide :attr:`exec_backend`.
        """
        from repro.codegen.interpreter import execute_schedule

        return execute_schedule(
            schedule, inputs, backend=backend or self.exec_backend
        )

    # -- kernel sequences ---------------------------------------------------

    def run_sequence(self, kernels: Iterable[KernelLaunch]) -> float:
        """Time a dependent sequence of launches (a sub-graph or model)."""
        return sum(self.run(k) for k in kernels)

    def achieved_tflops(self, kernel: KernelLaunch) -> float:
        """Sustained TFLOP/s of one launch (for roofline plots, Fig. 2)."""
        timing = self.time_kernel(kernel)
        if timing.total <= 0.0:
            return 0.0
        return kernel.flops / timing.total / 1e12
