"""Backend-neutral description of a GPU kernel launch.

Every execution path in this reproduction — MCFuser-fused kernels, library
calls (the PyTorch/cuBLAS baseline), Ansor-generated kernels, CUTLASS
templates — reduces the work it wants to run to a :class:`KernelLaunch`.
The simulator (:mod:`repro.gpu.simulator`) then prices that launch on a
:class:`~repro.gpu.specs.GPUSpec`. Keeping this interface narrow is what
makes cross-baseline comparisons apples-to-apples: everybody is billed for
the FLOPs they execute and the DRAM bytes they move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelLaunch", "CodegenQuality", "CODEGEN_QUALITY"]


#: Relative intra-tile code quality per code generator. The paper delegates
#: intra-block optimization to Triton (§V-A); hand-written libraries are a
#: bit better, naive template code a bit worse. These scale the simulator's
#: compute-efficiency term only — memory traffic is what it is.
CODEGEN_QUALITY: dict[str, float] = {
    "cublas": 0.97,
    "cutlass": 0.93,
    "triton": 0.90,
    "ansor": 0.55,  # Ansor-generated fused CUDA rarely reaches tensor-core peak
    "ansor_op": 0.80,  # single-op kernels after ~1000 trials fare much better
    "relay": 0.68,
    "naive": 0.50,
}


class CodegenQuality:
    """Namespace of known code-generator identifiers (see CODEGEN_QUALITY)."""

    CUBLAS = "cublas"
    CUTLASS = "cutlass"
    TRITON = "triton"
    ANSOR = "ansor"
    RELAY = "relay"
    NAIVE = "naive"


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel launch, summarized by the quantities that determine time.

    Attributes:
        name: Identifier used in reports and for deterministic jitter.
        grid: Number of thread blocks launched.
        flops: Total floating point operations across the whole grid.
        dram_read_bytes: Bytes read from global memory (across the grid).
        dram_write_bytes: Bytes written to global memory.
        shared_mem_bytes: Shared memory requested per block (the *measured*
            allocation, after double buffering / bank-conflict padding).
        tile_m/tile_n/tile_k: Representative MMA tile shape of the inner
            compute; drives the tensor-core efficiency model.
        inner_contig_bytes: Contiguous bytes per global-memory row access;
            drives the DRAM-efficiency model (coalescing).
        codegen: Key into CODEGEN_QUALITY.
        extra: Free-form metadata (not hashed into jitter).
    """

    name: str
    grid: int
    flops: float
    dram_read_bytes: float
    dram_write_bytes: float
    shared_mem_bytes: int
    tile_m: int = 64
    tile_n: int = 64
    tile_k: int = 32
    inner_contig_bytes: int = 128
    codegen: str = CodegenQuality.TRITON
    #: Kernel-specific throughput derate (both compute and memory), for
    #: effects outside the generic model — e.g. cuBLAS strided-batched
    #: layouts or short-K pipeline drain. 1.0 = no derate.
    efficiency: float = 1.0
    #: Compulsory read traffic (each input byte once). Reads beyond this
    #: are re-reads of resident data and get L2 relief in the simulator.
    #: ``None`` means "all reads compulsory" (no relief).
    dram_compulsory_read_bytes: float | None = None
    extra: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.grid <= 0:
            raise ValueError(f"kernel {self.name!r}: grid must be positive")
        if self.flops < 0 or self.dram_read_bytes < 0 or self.dram_write_bytes < 0:
            raise ValueError(f"kernel {self.name!r}: negative work quantities")
        if self.codegen not in CODEGEN_QUALITY:
            raise ValueError(
                f"kernel {self.name!r}: unknown codegen {self.codegen!r}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"kernel {self.name!r}: efficiency must be in (0, 1]")

    @property
    def dram_bytes(self) -> float:
        """Total DRAM traffic in bytes."""
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte (the paper's ``phi``); inf for zero traffic."""
        if self.dram_bytes == 0:
            return float("inf")
        return self.flops / self.dram_bytes

    def signature(self) -> tuple:
        """Stable identity used for measurement caching and jitter."""
        return (
            self.name,
            self.grid,
            round(self.flops, 3),
            round(self.dram_read_bytes, 3),
            round(self.dram_write_bytes, 3),
            self.shared_mem_bytes,
            self.tile_m,
            self.tile_n,
            self.tile_k,
            self.inner_contig_bytes,
            self.codegen,
            round(self.efficiency, 4),
            None
            if self.dram_compulsory_read_bytes is None
            else round(self.dram_compulsory_read_bytes, 3),
        )
