"""MCFuser reproduction: high-performance and rapid fusion of memory-bound
compute-intensive (MBCI) operator chains — SC'24.

Quick start::

    from repro import A100, attention_chain, MCFuserTuner

    chain = attention_chain(heads=12, m=512, n=512, k=64, h=64)
    report = MCFuserTuner(A100).tune(chain)
    print(report.best_schedule.pretty())
    print(f"{report.best_time * 1e6:.1f} us, tuned in {report.tuning_seconds:.0f} simulated s")

Layers (see docs/architecture.md):

* :mod:`repro.gpu`        — the simulated hardware (A100 / RTX 3080)
* :mod:`repro.ir`         — tensor IR: graphs, operators, ComputeChain
* :mod:`repro.tiling`     — tiling expressions, schedules, DAG analysis
* :mod:`repro.search`     — pruning rules, perf model, search engine, tuner
* :mod:`repro.cache`      — persistent schedule cache + batch tuning
* :mod:`repro.codegen`    — TIR / Triton-IR / PTX emission + interpreter
* :mod:`repro.baselines`  — PyTorch, Relay, Ansor, BOLT, FlashAttention, Chimera
* :mod:`repro.frontend`   — model builders, partitioner, end-to-end executor
* :mod:`repro.serving`    — compile service: coalescing, tiered cache, telemetry
* :mod:`repro.workloads`  — Tables II and III
* :mod:`repro.experiments`— one driver per paper figure/table
"""

from repro.cache import BatchTuner, ScheduleCache, default_cache, workload_signature
from repro.codegen import (
    EXEC_BACKENDS,
    OperatorModule,
    compile_schedule,
    execute_schedule,
    lower_schedule,
    resolve_exec_backend,
)
from repro.config import (
    CacheConfig,
    ExecConfig,
    ObsConfig,
    SearchConfig,
    ServeConfig,
    SessionConfig,
)
from repro.frontend import (
    bert_encoder,
    compile_model,
    legacy_partition_graph,
    partition_graph,
)
from repro.gpu import A100, RTX3080, GPUSimulator, GPUSpec, KernelLaunch
from repro.ir import ComputeChain, Graph, attention_chain, gemm3_chain, gemm_chain
from repro.search import (
    LearnedCostModel,
    MCFuserTuner,
    MeasurementDataset,
    SearchStrategy,
    TuneReport,
    generate_space,
    make_strategy,
    register_strategy,
    schedule_features,
    strategy_names,
)
from repro.serving import CompileService, MetricsRegistry, TieredCache
from repro.session import Session
from repro.tiling import Schedule, TilingExpr, build_schedule
from repro.workloads import (
    attention_workload,
    build_workload,
    gemm_workload,
    get_workload,
    register_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SessionConfig",
    "SearchConfig",
    "ExecConfig",
    "CacheConfig",
    "ServeConfig",
    "ObsConfig",
    "Session",
    "A100",
    "RTX3080",
    "GPUSpec",
    "GPUSimulator",
    "KernelLaunch",
    "ComputeChain",
    "Graph",
    "gemm_chain",
    "gemm3_chain",
    "attention_chain",
    "TilingExpr",
    "Schedule",
    "build_schedule",
    "MCFuserTuner",
    "TuneReport",
    "generate_space",
    "LearnedCostModel",
    "MeasurementDataset",
    "schedule_features",
    "SearchStrategy",
    "register_strategy",
    "make_strategy",
    "strategy_names",
    "ScheduleCache",
    "BatchTuner",
    "default_cache",
    "workload_signature",
    "CompileService",
    "TieredCache",
    "MetricsRegistry",
    "OperatorModule",
    "compile_schedule",
    "execute_schedule",
    "resolve_exec_backend",
    "lower_schedule",
    "EXEC_BACKENDS",
    "bert_encoder",
    "compile_model",
    "partition_graph",
    "legacy_partition_graph",
    "gemm_workload",
    "attention_workload",
    "build_workload",
    "get_workload",
    "register_workload",
    "workload_names",
]
