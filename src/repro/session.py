"""Session: the long-lived resources a :class:`SessionConfig` implies.

A :class:`~repro.config.SessionConfig` is pure data — every knob, nothing
alive. A :class:`Session` turns it into the working set those knobs call
for, created lazily and shared across everything the session runs:

* the persistent :class:`~repro.cache.cache.ScheduleCache` (when
  ``config.cache.enabled``),
* the persistent :class:`~repro.search.cost_model.LearnedCostModel` +
  measurement dataset (when the config asks for cost-model guidance),
* a :class:`~repro.serving.telemetry.MetricsRegistry`,
* the process tracer (enabled when ``config.obs.trace``),
* and, on first use, a :class:`~repro.serving.service.CompileService`.

So instead of hand-wiring five objects::

    cache = ScheduleCache(default_cache_dir())
    model = LearnedCostModel.load(...) or LearnedCostModel(...)
    tuner = MCFuserTuner(A100, cache=cache, cost_model=model, seed=3, ...)
    report = tuner.tune(chain)

callers write::

    from repro import Session, SessionConfig

    session = Session(SessionConfig.make(seed=3, strategy="evolutionary"))
    report = session.tune(chain)            # chain-level
    result = session.compile("bert-small")  # model-level

The session is a context manager; ``close()`` shuts down the compile
service (if one was started) and persists the cost model (if one learned
anything new).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import SessionConfig
from repro.gpu.specs import GPUSpec, by_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import ScheduleCache
    from repro.frontend.executor import E2EResult
    from repro.ir.chain import ComputeChain
    from repro.search.cost_model import LearnedCostModel
    from repro.search.tuner import MCFuserTuner, TuneReport
    from repro.serving.service import CompileService
    from repro.serving.telemetry import MetricsRegistry

__all__ = ["Session"]

#: Sentinel for "attribute not materialized yet" (``None`` is a real value:
#: e.g. the cache of a ``cache.enabled=False`` session).
_LAZY = object()


class Session:
    """Owns the shared resources of one tuning/serving session.

    Args:
        config: The session's :class:`~repro.config.SessionConfig`;
            ``None`` means :meth:`SessionConfig.default` (defaults with
            ``REPRO_*`` environment overrides applied).
        gpu: A live :class:`~repro.gpu.specs.GPUSpec` for custom hardware
            descriptions; ``None`` resolves the registered spec named by
            ``config.gpu``.

    Every resource is created lazily on first access and cached on the
    session, so a ``Session`` is cheap to construct and only pays for what
    the caller actually touches. Resources are *owned* singletons: every
    tuner, batch tuner, compile, and the compile service built by this
    session share the same cache, cost model, and metrics registry —
    that sharing is the point of having a session.
    """

    def __init__(
        self, config: SessionConfig | None = None, gpu: "GPUSpec | None" = None
    ) -> None:
        self.config = config if config is not None else SessionConfig.default()
        if not isinstance(self.config, SessionConfig):
            raise ValueError(
                f"config must be a SessionConfig, got {type(self.config).__name__}"
            )
        self.gpu = gpu if gpu is not None else by_name(self.config.gpu)
        self._cache = _LAZY
        self._cost_model = _LAZY
        self._metrics = _LAZY
        self._service: "CompileService | None" = None
        if self.config.obs.trace:
            from repro.obs import enable_tracing

            enable_tracing()

    # -- owned resources ------------------------------------------------------

    @property
    def cache(self) -> "ScheduleCache | None":
        """The persistent schedule cache (``None`` when disabled)."""
        if self._cache is _LAZY:
            if self.config.cache.enabled:
                from repro.cache.cache import ScheduleCache

                self._cache = ScheduleCache(self.config.cache.resolved_dir())
            else:
                self._cache = None
        return self._cache

    @property
    def cost_model(self) -> "LearnedCostModel | None":
        """The persistent learned cost model + dataset pair.

        Materialized only when the config asks for guidance
        (``search.cost_model`` or ``search.measure_topk > 0``); restored
        from the cache directory's snapshot when one exists so learning
        accumulates across processes.
        """
        if self._cost_model is _LAZY:
            if self.config.search.cost_model or self.config.search.measure_topk > 0:
                from repro.search.cost_model import (
                    LearnedCostModel,
                    MeasurementDataset,
                    default_dataset_path,
                    default_model_path,
                )

                directory = self.config.cache.resolved_dir()
                dataset = MeasurementDataset(default_dataset_path(directory))
                model = LearnedCostModel.load(
                    default_model_path(directory), dataset=dataset
                )
                if model is None:
                    model = LearnedCostModel(
                        dataset, seed=self.config.search.seed
                    )
                self._cost_model = model
            else:
                self._cost_model = None
        return self._cost_model

    @property
    def metrics(self) -> "MetricsRegistry":
        """The session's metrics registry (shared with its service)."""
        if self._metrics is _LAZY:
            from repro.serving.telemetry import MetricsRegistry

            self._metrics = MetricsRegistry()
        return self._metrics

    @property
    def tracer(self):
        """The process tracer (a no-op tracer unless ``obs.trace`` or a
        caller enabled tracing)."""
        from repro.obs import get_tracer

        return get_tracer()

    @property
    def service(self) -> "CompileService":
        """The session's compile service, started on first access."""
        if self._service is None:
            from repro.serving.service import CompileService

            self._service = CompileService(
                self.gpu,
                cache=self.cache,
                telemetry=self.metrics,
                cost_model=self.cost_model,
                config=self.config,
            )
        return self._service

    # -- the work -------------------------------------------------------------

    def tuner(self) -> "MCFuserTuner":
        """A fresh tuner wired to the session's cache and cost model."""
        from repro.search.tuner import MCFuserTuner

        return MCFuserTuner(
            self.gpu,
            cache=self.cache,
            cost_model=self.cost_model,
            config=self.config,
        )

    def tune(self, chain: "ComputeChain") -> "TuneReport":
        """Tune one compute chain under the session config."""
        return self.tuner().tune(chain)

    def tune_all(self, chains, max_workers: int = 4):
        """Batch-tune many chains (signature-deduplicated, concurrent)."""
        from repro.cache.batch import BatchTuner

        return BatchTuner(
            self.gpu, cache=self.cache, max_workers=max_workers,
            config=self.config,
        ).tune_all(chains)

    def compile(
        self, model, strategy: str = "mcfuser+relay", use_service: bool = False
    ) -> "E2EResult":
        """Compile a whole model (a :class:`~repro.ir.graph.Graph` or a
        model-level workload name) end to end under the session config.

        ``use_service=True`` routes MBCI sub-graph tuning through the
        session's :attr:`service` (coalescing + tiered cache + telemetry)
        instead of a private per-call tuner.
        """
        from repro.frontend.executor import compile_model

        return compile_model(
            model,
            self.gpu,
            strategy,
            cache=self.cache,
            cost_model=self.cost_model,
            service=self.service if use_service else None,
            config=self.config,
        )

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut down the service (if started) and persist what learned.

        Idempotent. The cost model is refit from any new measurements and
        snapshotted next to the cache so the next session warm-starts.
        """
        if self._service is not None:
            self._service.close()
            self._service = None
        model = self._cost_model
        if model is not _LAZY and model is not None:
            from repro.search.cost_model import default_model_path

            model.fit()
            if model.ready:
                model.save(
                    default_model_path(self.config.cache.resolved_dir())
                )

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Session(gpu={self.gpu.name!r}, "
            f"variant_key={self.config.variant_key!r}, "
            f"hash={self.config.content_hash()[:8]})"
        )
