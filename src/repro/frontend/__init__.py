"""Front-end: model builders, MBCI partitioner, end-to-end executor."""

from repro.frontend.executor import STRATEGIES, E2EResult, compile_model
from repro.frontend.grouping import NodeClass, Rejection, classify_node
from repro.frontend.models import BERT_CONFIGS, BertConfig, bert_encoder, mlp_mixer, vit_encoder
from repro.frontend.partition import (
    MBCISubgraph,
    Partition,
    legacy_partition_graph,
    partition_graph,
)

__all__ = [
    "bert_encoder",
    "vit_encoder",
    "mlp_mixer",
    "BertConfig",
    "BERT_CONFIGS",
    "partition_graph",
    "legacy_partition_graph",
    "Partition",
    "Rejection",
    "NodeClass",
    "classify_node",
    "MBCISubgraph",
    "compile_model",
    "E2EResult",
    "STRATEGIES",
]
