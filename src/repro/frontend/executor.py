"""End-to-end compilation and execution of whole models (§V-B, Fig. 9).

``compile_model`` lowers a :class:`Graph` to a
:class:`GraphExecutorFactoryModule` under one of the paper's strategies:

* ``pytorch``       — eager per-op library kernels (+ dispatch overhead);
* ``relay``         — template kernels with epilogue fusion;
* ``ansor``         — per-op auto-tuned kernels (hours of tuning);
* ``bolt``          — Relay + CUTLASS epilogue-fused GEMMs;
* ``mcfuser+relay`` — MBCI sub-graphs fused by MCFuser, rest on Relay;
* ``mcfuser+ansor`` — MBCI sub-graphs fused by MCFuser, rest on Ansor.

Each strategy also charges a simulated tuning clock, reproducing the
Table IV end-to-end columns. Identical MBCI sub-graphs (all L attention
layers of a BERT share one shape) are tuned once and the kernel reused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.baselines.library import (
    elementwise_kernel,
    gemm_kernel,
    normalization_kernel,
    softmax_kernel,
    transpose_kernel,
)
from repro.codegen.runtime import GraphExecutorFactoryModule, OperatorModule, compile_schedule
from repro.config import SessionConfig, build_legacy_config, search_overrides
from repro.frontend.partition import Partition, partition_graph
from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import GPUSpec, by_name
from repro.ir.graph import Graph, GraphNode
from repro.ir.ops import (
    Activation,
    Add,
    BatchMatmul,
    BiasAdd,
    Dense,
    LayerNorm,
    Reshape,
    Scale,
    Softmax,
    Transpose,
)
from repro.search.tuner import MCFuserTuner
from repro.search.tuning_cost import TuningClock
from repro.utils import prod

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import ScheduleCache
    from repro.serving.service import CompileService

__all__ = ["E2EResult", "compile_model", "STRATEGIES"]

STRATEGIES = ("pytorch", "relay", "ansor", "bolt", "mcfuser+relay", "mcfuser+ansor")

#: Eager-mode dispatch overhead (matches the subgraph PyTorch baseline).
_EAGER_OVERHEAD = 7.0e-6

#: Per-operator compile charge of the Relay build (seconds).
_RELAY_PER_OP = 0.3

#: Ansor end-to-end: measurement trials per distinct tuning task.
_ANSOR_TRIALS_PER_TASK = 240


@dataclass
class E2EResult:
    """Compiled model + accounting for one strategy."""

    strategy: str
    module: GraphExecutorFactoryModule
    time: float
    tuning_seconds: float
    kernel_count: int
    mbci_subgraphs: int = 0
    detail: dict = field(default_factory=dict)


def _epilogue_groups(nodes: list[GraphNode]) -> dict[str, list[GraphNode]]:
    """Group BiasAdd/Activation/Scale nodes onto their producing GEMM
    (epilogue fusion for the compiled strategies)."""
    by_output = {n.output: n for n in nodes}
    groups: dict[str, list[GraphNode]] = {}
    absorbed: set[str] = set()
    for node in nodes:
        if not isinstance(node.op, (Dense, BatchMatmul)):
            continue
        chain: list[GraphNode] = []
        cur = node
        while True:
            consumers = [n for n in nodes if cur.output in n.inputs]
            if len(consumers) != 1:
                break
            nxt = consumers[0]
            if isinstance(nxt.op, (BiasAdd, Activation, Scale)) and nxt.inputs[0] == cur.output:
                chain.append(nxt)
                cur = nxt
            else:
                break
        groups[node.output] = chain
        absorbed.update(n.output for n in chain)
    return groups


def _op_kernel(
    graph: Graph, node: GraphNode, gpu: GPUSpec, codegen: str, seed: int
) -> KernelLaunch | None:
    """Lower one residual operator to a library-style kernel launch."""
    op = node.op
    shapes = graph.shapes
    out_shape = shapes[node.output]
    if isinstance(op, Dense):
        x, w = shapes[op.inputs[0]], shapes[op.inputs[1]]
        m = int(prod(x[:-1]))
        return gemm_kernel(node.output, 1, m, w[1], w[0], gpu, codegen, seed)
    if isinstance(op, BatchMatmul):
        b, m, n = out_shape
        a_shape = shapes[op.inputs[0]]
        k = a_shape[1] if op.transpose_a else a_shape[2]
        return gemm_kernel(node.output, b, m, n, k, gpu, codegen, seed)
    if isinstance(op, Softmax):
        lead = int(prod(out_shape[:-1]))
        return softmax_kernel(node.output, 1, lead, out_shape[-1], gpu, codegen)
    if isinstance(op, LayerNorm):
        rows = int(prod(out_shape[:-1]))
        return normalization_kernel(node.output, rows, out_shape[-1], gpu, codegen)
    if isinstance(op, (Add, BiasAdd, Scale)):
        return elementwise_kernel(
            node.output, int(prod(out_shape)), gpu, 1.0, len(op.inputs), codegen
        )
    if isinstance(op, Activation):
        cost = 8.0 if op.fn == "gelu" else 1.0
        return elementwise_kernel(node.output, int(prod(out_shape)), gpu, cost, 1, codegen)
    if isinstance(op, Transpose):
        if op.axes[-1] == len(op.axes) - 1:
            return None  # batch permute: a strided view, consumed by batched GEMM
        return transpose_kernel(node.output, int(prod(out_shape)), gpu, codegen)
    if isinstance(op, Reshape):
        producer = graph.producer(op.inputs[0])
        if (
            producer is not None
            and isinstance(producer.op, Transpose)
            and producer.op.axes != tuple(range(len(producer.op.axes)))
        ):
            # reshape of a permuted view forces a contiguous copy
            return transpose_kernel(node.output, int(prod(out_shape)), gpu, codegen)
        return None  # pure view: no kernel
    raise NotImplementedError(f"no kernel lowering for {op.kind}")


def _distinct_tuning_tasks(nodes: list[GraphNode], graph: Graph) -> int:
    """Number of distinct (op kind, shape) tuning tasks Ansor would create."""
    tasks = set()
    for node in nodes:
        if isinstance(node.op, (Reshape,)):
            continue
        sig = (node.op.kind, tuple(graph.shape(t) for t in node.inputs))
        tasks.add(sig)
    return len(tasks)


#: Sentinel distinguishing "knob not passed" from any explicit value in the
#: deprecated keyword shim.
_UNSET = object()


def compile_model(
    graph: Graph | str,
    gpu: "GPUSpec | None" = None,
    strategy: str = "mcfuser+relay",
    seed: int = _UNSET,
    tuner_kwargs: dict | None = None,
    cache: "ScheduleCache | None" = None,
    search_strategy: str = _UNSET,
    search_workers: int = _UNSET,
    service: "CompileService | None" = None,
    exec_backend: str = _UNSET,
    cost_model=None,
    measure_topk: int = _UNSET,
    dynamic: str = _UNSET,
    dynamic_loops: "tuple[str, ...] | None" = None,
    config: "SessionConfig | None" = None,
) -> E2EResult:
    """Compile (and price the tuning of) a whole model under a strategy.

    ``graph`` may be a :class:`Graph` or the name of a model-level workload
    from the registry (``"ffn-base"``, ``"gqa-32x8"``, ``"bert-small"``,
    ...; see :mod:`repro.workloads.zoo`).

    ``config`` (a validated :class:`~repro.config.SessionConfig`) is the
    canonical way to set every tuning/execution knob; the individual
    keywords below (``seed``, ``search_strategy``, ``search_workers``,
    ``exec_backend``, ``measure_topk``, ``dynamic``, ``dynamic_loops``,
    and the ``tuner_kwargs`` escape hatch) are deprecated shims that build
    a config internally — each key must name a typed config field, and an
    unknown ``tuner_kwargs`` key raises a :class:`ValueError` naming the
    replacement field. The compilation *strategy* argument is not a config
    knob: it selects which compiler stack handles which part of the graph.

    ``cache`` (a :class:`~repro.cache.cache.ScheduleCache`) makes MBCI
    sub-graph tuning persistent: a model recompiled in a later process pays
    zero tuning time for every shape the cache already holds. Within one
    call, identically shaped sub-graphs are deduplicated by workload
    signature regardless of caching. ``detail["cache_hits"]`` counts the
    distinct shapes served from the cache; for MCFuser strategies,
    ``detail["rejections"]`` histograms why unfused anchors stayed residual.

    ``config.search.strategy``/``config.search.workers`` select how each
    MBCI sub-graph is tuned (the engine's registered search strategies and
    the per-round measurement pool width).

    ``config.exec.backend`` picks the numeric execution engine compiled
    MBCI modules run under (``"auto"``/``"compiled"``/``"vectorized"``/
    ``"scalar"``; see
    :func:`repro.codegen.interpreter.execute_schedule`);
    ``detail["exec_backend"]`` histograms the backend ``auto`` resolved for
    each fused module (e.g. ``{"vectorized": 12}``).

    ``service`` (a :class:`~repro.serving.service.CompileService`) routes
    MBCI sub-graph tuning through the compile service instead of a private
    tuner: requests coalesce with other callers of the same service, hit
    its tiered cache, and show up in its telemetry. The service owns the
    cache in that mode (the ``cache`` argument is ignored) and must target
    the same ``gpu``. ``detail["served"]`` histograms the per-sub-graph
    outcome sources (``tuned``/``coalesced``/``hot``/...), and
    ``detail["cache_hits"]`` counts sub-graph *requests* served from a
    cache tier.

    ``cost_model``/``config.search.measure_topk`` enable
    learned-cost-model-guided tuning of the MBCI sub-graphs (measure only
    the model's predicted top-k per search round; see
    :class:`~repro.search.cost_model.LearnedCostModel`). One model is
    shared across all of a model's sub-graphs, so learning compounds
    shape-to-shape within the compile. Through a ``service`` the service's
    own (shared) model is used and only ``measure_topk`` is forwarded.

    ``config.exec.dynamic="buckets"`` makes MBCI sub-graph tuning
    shape-generic over power-of-two sequence-length buckets
    (``config.exec.dynamic_loops``, default ``("m", "n")``): in-bucket
    sub-graphs of *different* lengths dedupe to one ceiling tune, and each
    compiled module runs the ceiling schedule at its own shape with tail
    tiles masked. Through a ``service`` the service itself must have been
    built with the same ``dynamic`` mode (bucketing changes its cache keys
    and coalescing).
    """
    if isinstance(graph, str):
        from repro.workloads.registry import get_workload

        spec = get_workload(graph)
        if spec.level != "model":
            raise ValueError(
                f"workload {spec.name!r} is a {spec.level}-level workload; "
                "compile_model needs a model (tune chains with MCFuserTuner)"
            )
        graph = spec.build()
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; pick from {STRATEGIES}")
    legacy = {
        name: value
        for name, value in (
            ("seed", seed),
            ("strategy", search_strategy),
            ("workers", search_workers),
            ("exec_backend", exec_backend),
            ("measure_topk", measure_topk),
            ("dynamic", dynamic),
            ("dynamic_loops", dynamic_loops),
        )
        if value is not _UNSET and value is not None
    }
    if tuner_kwargs:
        legacy.update(search_overrides(tuner_kwargs))
    explicit_config = config is not None
    if explicit_config:
        if legacy:
            raise ValueError(
                "pass either config= or the deprecated keyword knobs, not "
                f"both (got {sorted(legacy)}); set the SessionConfig fields "
                "instead"
            )
    else:
        config = build_legacy_config("compile_model", legacy)
    if gpu is None:
        gpu = by_name(config.gpu)
    from repro.obs import get_tracer

    with get_tracer().span(
        "compile.model", model=graph.name, strategy=strategy
    ) as span:
        # An explicit config= is forwarded to a service wholesale;
        # deprecated kwargs forward only the caller-provided knobs, so the
        # service's own defaults keep applying to the rest — exactly what
        # the pre-config signature did.
        return _compile_model(
            graph, gpu, strategy, cache, service, cost_model, config,
            None if explicit_config else legacy, span,
        )


def _compile_model(
    graph, gpu, strategy, cache, service, cost_model, config, request_knobs,
    span,
):
    """The validated body of :func:`compile_model`, running inside its
    ``compile.model`` root span (``span`` — the no-op singleton when
    tracing is disabled). ``request_knobs`` is the caller's deprecated
    flat-kwarg dict (forwarded selectively to a service) or ``None`` when
    an explicit ``config=`` was given (forwarded wholesale)."""
    from repro.obs import get_tracer

    search = config.search
    seed = search.seed
    exec_backend = config.exec.backend
    dynamic = config.exec.dynamic
    tracer = get_tracer()
    clock = TuningClock()
    module = GraphExecutorFactoryModule(name=f"{graph.name}:{strategy}", gpu=gpu)
    sim = GPUSimulator(gpu, seed=seed)

    use_mcfuser = strategy.startswith("mcfuser")
    backend = strategy.split("+")[-1] if use_mcfuser else strategy
    codegen = {
        "pytorch": "cublas",
        "relay": "relay",
        "ansor": "ansor_op",
        "bolt": "relay",
    }[backend]
    fuse_epilogues = backend in ("relay", "ansor", "bolt")

    # 1. Partition: MBCI sub-graphs go to MCFuser (deduplicated by workload
    #    signature in-process; persistent across processes with a cache).
    mbci_nodes: set[str] = set()
    n_subgraphs = 0
    cache_hits = 0
    rejections: dict[str, int] = {}
    served: dict[str, int] = {}
    if use_mcfuser and service is not None:
        if service.gpu != gpu:
            raise ValueError(
                f"service targets {service.gpu.name}, compile_model asked for "
                f"{gpu.name}; one service serves one GPU"
            )
        if dynamic != "off" and service.dynamic != dynamic:
            raise ValueError(
                f"compile_model asked for dynamic={dynamic!r} but the service "
                f"was built with dynamic={service.dynamic!r}; bucketing changes "
                "the service's cache keys and coalescing, so configure it there"
            )
        with tracer.span("partition", clock=clock, model=graph.name) as psp:
            clock.charge("graph_partition")
            partition = partition_graph(graph, gpu)
            psp.set(subgraphs=len(partition.subgraphs))
        rejections = partition.rejection_reasons()
        # Submit every group up front (identical shapes coalesce or hit the
        # service's tiered cache), then collect in partition order.
        if request_knobs is None:
            # explicit config=: the whole per-request config is forwarded.
            tickets = [
                service.submit(sg.chain, config=config)
                for sg in partition.subgraphs
            ]
        else:
            forward = {
                name: value
                for name, value in request_knobs.items()
                if name not in (
                    "strategy", "seed", "workers", "measure_topk",
                    "exec_backend", "dynamic", "dynamic_loops",
                )
            }
            tickets = [
                service.submit(
                    sg.chain,
                    strategy=search.strategy,
                    seed=seed,
                    measure_workers=search.workers,
                    tuner_kwargs=forward or None,
                    # 0 defers to the service's own default guidance setting.
                    measure_topk=(
                        search.measure_topk if search.measure_topk > 0 else None
                    ),
                )
                for sg in partition.subgraphs
            ]
        for sg, ticket in zip(partition.subgraphs, tickets):
            result = ticket.result()
            served[result.source] = served.get(result.source, 0) + 1
            if result.source == "tuned":
                # coalesced riders share the tune; bill its cost once.
                clock.seconds += result.report.tuning_seconds
            cache_hits += result.source in ("hot", "memory", "disk", "bucket")
            module.add_module(
                compile_schedule(
                    result.report.best_schedule, gpu, exec_backend=exec_backend
                )
            )
            mbci_nodes.update(sg.nodes)
            n_subgraphs += 1
        residual_nodes = [n for n in graph.nodes if n.output not in mbci_nodes]
    elif use_mcfuser:
        with tracer.span("partition", clock=clock, model=graph.name) as psp:
            clock.charge("graph_partition")
            partition: Partition = partition_graph(graph, gpu)
            psp.set(subgraphs=len(partition.subgraphs))
        rejections = partition.rejection_reasons()
        tuned: dict[str, OperatorModule] = {}
        if cost_model is None and (search.measure_topk > 0 or search.cost_model):
            from repro.search.cost_model import LearnedCostModel

            # one shared model: sub-graph tunes feed one dataset.
            cost_model = LearnedCostModel(seed=seed)
        if dynamic == "buckets" and cache is None:
            from repro.cache.cache import ScheduleCache

            # In-process bucket store: in-bucket sub-graphs of different
            # lengths dedupe to one ceiling tune even without a user cache.
            cache = ScheduleCache(path=None)
        for sg in partition.subgraphs:
            # Compiled modules are memoized by the *exact* signature even
            # under bucketing — a module is bound to its output shapes; the
            # tuner's bucketed cache ladder dedupes the tuning instead.
            key = sg.signature(gpu, config.variant_key)
            if key not in tuned:
                tuner = MCFuserTuner(
                    gpu, cache=cache, cost_model=cost_model, config=config
                )
                report = tuner.tune(sg.chain)
                clock.seconds += report.tuning_seconds
                cache_hits += int(report.cache_hit)
                if getattr(report, "bucket_hit", False):
                    served["bucket"] = served.get("bucket", 0) + 1
                # compile through the kernel memo: a model recompiled (or a
                # second model sharing this shape) reuses the same module.
                tuned[key] = compile_schedule(
                    report.best_schedule, gpu, exec_backend=exec_backend
                )
            module.add_module(tuned[key])
            mbci_nodes.update(sg.nodes)
            n_subgraphs += 1
        residual_nodes = [n for n in graph.nodes if n.output not in mbci_nodes]
    else:
        residual_nodes = list(graph.nodes)

    # 2. Residual operators on the backend compiler/library.
    eager_ops = 0
    groups = _epilogue_groups(residual_nodes) if fuse_epilogues else {}
    absorbed: set[str] = set()
    for anchor, eps in groups.items():
        absorbed.update(n.output for n in eps)
    for node in residual_nodes:
        if node.output in absorbed:
            continue
        node_codegen = codegen
        if backend == "bolt" and isinstance(node.op, (Dense, BatchMatmul)) and groups.get(node.output):
            node_codegen = "cutlass"  # BOLT's epilogue-fused CUTLASS GEMMs
        kernel = _op_kernel(graph, node, gpu, node_codegen, seed)
        if kernel is None:
            continue
        module.add(f"{backend}:{node.output}", kernel)
        eager_ops += 1

    # 3. Timing.
    with tracer.span("execute.model", kernels=module.kernel_count()) as esp:
        time = module.time(sim)
        if backend == "pytorch":
            time += _EAGER_OVERHEAD * eager_ops
        esp.set(model_time=time)

    # 4. Tuning-cost accounting for the backend.
    n_ops = len([n for n in residual_nodes if not isinstance(n.op, Reshape)])
    if backend in ("relay", "bolt"):
        clock.charge("relay_compile")
        clock.seconds += _RELAY_PER_OP * n_ops
        if backend == "bolt":
            fusable = sum(1 for eps in groups.values() if eps)
            clock.charge("bolt_template", count=12 * max(1, fusable // 4))
    elif backend == "ansor":
        tasks = _distinct_tuning_tasks(residual_nodes, graph)
        clock.charge("ansor_trial", count=tasks * _ANSOR_TRIALS_PER_TASK)
        clock.charge("ansor_train_round", count=tasks * _ANSOR_TRIALS_PER_TASK / 64)

    # Per-module exec-backend breadcrumb: which engine `auto` resolved to
    # for each fused kernel (resolution is memoized on the module), plus
    # why any module fell back down the compiled → vectorized → scalar
    # chain (reason histogram, e.g. {"no-compiler": 12}).
    from repro.codegen.interpreter import explain_exec_backend

    exec_backends: dict[str, int] = {}
    fallbacks: dict[str, int] = {}
    for op_module in module.operator_modules:
        resolved = op_module.resolved_exec_backend
        exec_backends[resolved] = exec_backends.get(resolved, 0) + 1
        for fb in explain_exec_backend(
            op_module.schedule, op_module.exec_backend
        )["fallbacks"]:
            fallbacks[fb["reason"]] = fallbacks.get(fb["reason"], 0) + 1

    span.set(
        subgraphs=n_subgraphs,
        kernels=module.kernel_count(),
        model_time=time,
        sim_tuning_seconds=clock.seconds,
    )
    return E2EResult(
        strategy=strategy,
        module=module,
        time=time,
        tuning_seconds=clock.seconds,
        kernel_count=module.kernel_count(),
        mbci_subgraphs=n_subgraphs,
        detail={
            "residual_ops": n_ops,
            "eager_ops": eager_ops,
            "cache_hits": cache_hits,
            "rejections": rejections,
            "served": served,
            "exec_backend": exec_backends,
            "fallbacks": fallbacks,
        },
    )
