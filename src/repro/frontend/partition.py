"""Graph partitioner: lift MBCI sub-graphs out of an operator graph (§V-B).

The partitioner is a general-DAG fusion-group builder, replacing the two
hard-coded patterns the paper evaluated with a four-stage pipeline:

1. **classify** (:mod:`repro.frontend.grouping`) — every node is an anchor
   (tensor contraction), fusable elementwise, or opaque, and gets a
   per-op roofline intensity against the target GPU;
2. **grow** — from each unclaimed anchor, in topological order, extend
   along single-consumer dataflow, folding ``Scale``/``Softmax``/
   ``relu``/``gelu`` into contraction blocks and absorbing further
   contractions;
3. **legalize** — each extension must linearize to chain IR (rank/batch/
   layout compatibility), stay within the loop budget, keep a minimal
   tile footprint inside the shared-memory bound
   (:mod:`repro.gpu.memory`, the same eq. (1) estimate search Rule 4
   prunes with), and the contracted graph must remain acyclic;
4. **linearize** (:mod:`repro.frontend.linearize`) — the group lowers to a
   :class:`ComputeChain` via topological linearization, so the existing
   tiling/search/codegen stack consumes it unchanged.

Sub-graphs that pass the chain-level MBCI test (``phi < P/W``) go to
MCFuser; everything else stays with the Relay/Ansor-style library path.
Anchors that fail to fuse are *diagnosed*, not dropped: ``Partition.
rejected`` carries a structured :class:`Rejection` per failed anchor.

The legacy pattern matchers (attention, GEMM chain) are retained as
:func:`legacy_partition_graph` — a differential-testing oracle: on graphs
made of the paper's two patterns, the general partitioner must produce
exactly the same fusion groups.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cache.signature import workload_signature
from repro.frontend.grouping import Rejection, Segment, grow_group, is_contraction
from repro.frontend.linearize import LinearizeError, LinearizedGroup, linearize_group
from repro.gpu.memory import TileBuffer, estimate_shared_memory
from repro.gpu.specs import GPUSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import ScheduleCache
from repro.ir.chain import ComputeChain, attention_chain, gemm_chain
from repro.ir.graph import Graph, GraphNode
from repro.ir.ops import BatchMatmul, Scale, Softmax

__all__ = [
    "MBCISubgraph",
    "Partition",
    "Rejection",
    "partition_graph",
    "legacy_partition_graph",
    "MAX_GROUP_BLOCKS",
    "MAX_GROUP_LOOPS",
]

#: Default cap on contractions per fusion group: 3 keeps the enumeration
#: space (loops! tiling expressions) tractable for the streaming pipeline.
MAX_GROUP_BLOCKS = 3

#: Default cap on distinct cross-tile loops per group, for the same reason.
MAX_GROUP_LOOPS = 5

#: Rule 4's empirical slack over the hardware shared-memory bound (the
#: search prunes candidates whose eq. (1) estimate exceeds this multiple;
#: a group whose *minimal* tiles already exceed it has no legal schedule).
FOOTPRINT_SLACK = 1.2

#: Minimal tile extent used by the footprint lower bound (the tensor-core
#: multiple search Rule 3 enforces as the smallest tile size).
MIN_TILE = 16


@dataclass(frozen=True)
class MBCISubgraph:
    """One fusable sub-graph: the nodes it absorbs and its chain IR.

    ``inputs`` are graph tensor names positionally aligned with
    ``chain.input_names()``; ``batched`` records whether graph tensors
    already carry the chain's batch axis (rank-3 groups) or need a leading
    length-1 axis when binding (rank-2 Dense groups).
    """

    kind: str  # "attention" | "gemm_chain" | "chain<N>"
    nodes: tuple[str, ...]  # outputs of the absorbed graph nodes
    chain: ComputeChain
    inputs: tuple[str, ...]
    output: str
    batched: bool = True

    def signature(self, gpu: GPUSpec, variant: str = "mcfuser") -> str:
        """Cache key of this sub-graph's chain on ``gpu``.

        All identically shaped sub-graphs of a model (every attention layer
        of a BERT) share one signature, so the executor tunes each shape
        once and the schedule cache carries it across models and processes.
        """
        return workload_signature(self.chain, gpu, variant)

    def bind_inputs(self, env: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Map a graph tensor environment to this chain's input arrays."""
        return {
            cname: np.asarray(env[gname]).reshape(self.chain.tensor_shape(cname))
            for cname, gname in zip(self.chain.input_names(), self.inputs)
        }

    def extract_output(self, result: np.ndarray, graph: Graph) -> np.ndarray:
        """Reshape the chain's output array to the graph tensor's shape."""
        return np.asarray(result).reshape(graph.shape(self.output))


@dataclass
class Partition:
    """Result of partitioning: MBCI sub-graphs, residual operators, and a
    structured diagnostic per anchor that failed to fuse."""

    graph: Graph
    subgraphs: list[MBCISubgraph]
    rest: list[GraphNode]
    rejected: list[Rejection] = field(default_factory=list)

    @property
    def absorbed(self) -> set[str]:
        out: set[str] = set()
        for sg in self.subgraphs:
            out.update(sg.nodes)
        return out

    def rejection_reasons(self) -> dict[str, int]:
        """Histogram of rejection reasons (diagnostic reporting)."""
        return dict(Counter(r.reason for r in self.rejected))

    def cache_split(
        self, cache: "ScheduleCache", gpu: GPUSpec, variant: str = "mcfuser"
    ) -> tuple[list[MBCISubgraph], list[MBCISubgraph]]:
        """Split sub-graphs into (already cached, needs tuning).

        Consults ``cache`` without recording hits or misses — a planning
        query for callers that want to report or schedule remaining tuning
        work before compiling, not a lookup on the tuning path.
        """
        cached: list[MBCISubgraph] = []
        uncached: list[MBCISubgraph] = []
        for sg in self.subgraphs:
            known = cache.peek(sg.signature(gpu, variant)) is not None
            (cached if known else uncached).append(sg)
        return cached, uncached


def min_footprint_fits(chain: ComputeChain, gpu: GPUSpec) -> bool:
    """Lower-bound legality: do *minimal* tiles of every chain tensor fit?

    Uses the paper's eq. (1) analytic estimate with the smallest tile the
    search would ever pick (the Rule 3 tensor-core multiple) per loop.
    If even this floor exceeds Rule 4's ``1.2 x Shm_max`` slack, no
    schedule of the group can survive pruning — the group is illegal.
    """
    buffers = []
    role_map = {"input": "operand", "intermediate": "stage", "output": "accumulator"}
    for name, ref in chain.tensors.items():
        rows, cols = (min(chain.loops[d], MIN_TILE) for d in ref.dims)
        buffers.append(
            TileBuffer(
                tensor=name,
                rows=rows,
                cols=cols,
                dtype_bytes=chain.dtype_bytes,
                role=role_map[ref.role],
            )
        )
    return estimate_shared_memory(buffers) <= FOOTPRINT_SLACK * gpu.shared_mem_per_block


def _contraction_acyclic(
    graph: Graph,
    nodes: list[GraphNode],
    consumers: dict[str, list[GraphNode]],
) -> bool:
    """Whether contracting ``nodes`` into one super-node keeps the DAG acyclic.

    A cycle appears iff some external input of the group transitively
    depends on a tensor the group produces. Linear single-consumer growth
    cannot create one, but the check is cheap and keeps the invariant
    explicit (the property-based harness exercises it directly).
    """
    produced = {n.output for n in nodes}
    externals = {t for n in nodes for t in n.inputs if t not in produced}
    return not any(graph.reaches(out, externals, consumers) for out in produced)


def _subgraph_kind(chain: ComputeChain) -> str:
    if any(b.softmax_over is not None for b in chain.blocks):
        return "attention"
    if len(chain.blocks) == 2:
        return "gemm_chain"
    return f"chain{len(chain.blocks)}"


def partition_graph(
    graph: Graph,
    gpu: GPUSpec,
    mbci_only: bool = True,
    *,
    max_blocks: int = MAX_GROUP_BLOCKS,
    max_loops: int = MAX_GROUP_LOOPS,
) -> Partition:
    """Split a graph into MBCI fusion groups and residual operators.

    ``mbci_only=True`` (default) keeps only sub-graphs that are actually
    memory-bound on ``gpu`` — compute-bound chains stay with the library,
    mirroring the paper's partitioner. Groups are grown greedily from every
    contraction anchor (see the module docstring for the pipeline); each
    anchor that fails to form a group contributes a :class:`Rejection` to
    ``Partition.rejected``.
    """
    consumers = graph.consumer_map()
    claimed: set[str] = set()
    diagnosed: set[str] = set()  # members of group-level rejections
    subgraphs: list[MBCISubgraph] = []
    rejected: list[Rejection] = []
    lin_memo: dict[tuple, LinearizedGroup] = {}

    def _segment_key(segments: list[Segment]) -> tuple:
        return tuple(
            (
                seg.node.output,
                seg.scale,
                seg.epilogue,
                seg.softmax_node.output if seg.softmax_node is not None else None,
                tuple(n.output for n in seg.absorbed),
            )
            for seg in segments
        )

    def feasible(segments: list[Segment]) -> str | None:
        if len(segments) > max_blocks:
            return "block-budget"
        try:
            lin = linearize_group(graph, segments, name=f"mbci@{segments[0].node.output}")
        except LinearizeError as err:
            return err.reason
        if len(lin.chain.loops) > max_loops:
            return "loop-budget"
        if not min_footprint_fits(lin.chain, gpu):
            return "footprint"
        lin_memo[_segment_key(segments)] = lin
        return None

    def _linearized(segments: list[Segment], anchor: GraphNode) -> LinearizedGroup:
        # Usually served by the last successful probe; elementwise ops
        # folded after that probe (a trailing Scale/Activation) miss.
        key = _segment_key(segments)
        if key not in lin_memo:
            lin_memo[key] = linearize_group(graph, segments, name=f"mbci@{anchor.output}")
        return lin_memo[key]

    for node in graph.nodes:
        if node.output in claimed or not is_contraction(node.op):
            continue
        growth = grow_group(
            graph, node, feasible=feasible, claimed=claimed, consumers=consumers
        )
        if growth.segments is None:
            assert growth.rejection is not None
            # Anchors inside an already-rejected group retry their own
            # growth (a legal suffix group may exist); if they fail too,
            # the group-level diagnostic already covers them — don't
            # duplicate it.
            if node.output not in diagnosed:
                rejected.append(growth.rejection)
            continue
        group_nodes = [n for seg in growth.segments for n in seg.nodes()]
        lin = _linearized(growth.segments, node)
        if not _contraction_acyclic(graph, group_nodes, consumers):
            rejected.append(
                Rejection(
                    node.output,
                    "cycle",
                    "contracting the group would create a dataflow cycle",
                    nodes=tuple(n.output for n in group_nodes),
                )
            )
            diagnosed.update(n.output for n in group_nodes)
            continue
        if mbci_only and not lin.chain.is_mbci(gpu):
            rejected.append(
                Rejection(
                    node.output,
                    "compute-bound",
                    "the fused chain is compute-bound on "
                    f"{gpu.name} (phi above the P/W ridge); fusion has no headroom",
                    nodes=tuple(n.output for n in group_nodes),
                )
            )
            diagnosed.update(n.output for n in group_nodes)
            continue
        subgraphs.append(
            MBCISubgraph(
                kind=_subgraph_kind(lin.chain),
                nodes=tuple(n.output for n in group_nodes),
                chain=lin.chain,
                inputs=lin.inputs,
                output=lin.output,
                batched=lin.batched,
            )
        )
        claimed.update(n.output for n in group_nodes)

    rest = [n for n in graph.nodes if n.output not in claimed]
    return Partition(graph=graph, subgraphs=subgraphs, rest=rest, rejected=rejected)


# -- legacy pattern-matching oracle ------------------------------------------
#
# The original partitioner recognized exactly the paper's two fusable
# shapes. It is kept as a differential-testing oracle: on graphs composed
# of these patterns the general partitioner must produce identical groups
# (tests/test_partition_parity.py).


def _single_consumer(graph: Graph, tensor: str) -> GraphNode | None:
    consumers = graph.consumers(tensor)
    return consumers[0] if len(consumers) == 1 else None


def _match_attention(graph: Graph, node: GraphNode) -> MBCISubgraph | None:
    """Match BatchMatmul -> [Scale] -> Softmax -> BatchMatmul at ``node``."""
    if not isinstance(node.op, BatchMatmul):
        return None
    nxt = _single_consumer(graph, node.output)
    absorbed = [node.output]
    if nxt is not None and isinstance(nxt.op, Scale):
        absorbed.append(nxt.output)
        nxt = _single_consumer(graph, nxt.output)
    if nxt is None or not isinstance(nxt.op, Softmax):
        return None
    absorbed.append(nxt.output)
    last = _single_consumer(graph, nxt.output)
    if last is None or not isinstance(last.op, BatchMatmul):
        return None
    if last.inputs[0] != nxt.output or last.op.transpose_a:
        return None
    absorbed.append(last.output)

    q, k = node.inputs
    v = last.inputs[1]
    s_shape = graph.shape(node.output)
    o_shape = graph.shape(last.output)
    heads, m, n = s_shape
    kk = graph.shape(q)[1 if node.op.transpose_a else 2]
    h = o_shape[2]
    chain = attention_chain(heads, m, n, kk, h, name=f"attn@{node.output}")
    return MBCISubgraph(
        kind="attention",
        nodes=tuple(absorbed),
        chain=chain,
        inputs=(q, k, v),
        output=last.output,
    )


def _match_gemm_chain(graph: Graph, node: GraphNode) -> MBCISubgraph | None:
    """Match BatchMatmul -> BatchMatmul at ``node``."""
    if not isinstance(node.op, BatchMatmul):
        return None
    nxt = _single_consumer(graph, node.output)
    if nxt is None or not isinstance(nxt.op, BatchMatmul):
        return None
    if nxt.inputs[0] != node.output or nxt.op.transpose_a:
        return None
    batch, m, n = graph.shape(node.output)
    k = graph.shape(node.inputs[0])[1 if node.op.transpose_a else 2]
    h = graph.shape(nxt.output)[2]
    chain = gemm_chain(batch, m, n, k, h, name=f"gemm2@{node.output}")
    return MBCISubgraph(
        kind="gemm_chain",
        nodes=(node.output, nxt.output),
        chain=chain,
        inputs=(node.inputs[0], node.inputs[1], nxt.inputs[1]),
        output=nxt.output,
    )


def legacy_partition_graph(graph: Graph, gpu: GPUSpec, mbci_only: bool = True) -> Partition:
    """The original two-pattern partitioner (differential-testing oracle)."""
    subgraphs: list[MBCISubgraph] = []
    claimed: set[str] = set()
    for node in graph.nodes:
        if node.output in claimed:
            continue
        match = _match_attention(graph, node) or _match_gemm_chain(graph, node)
        if match is None:
            continue
        if any(t in claimed for t in match.nodes):
            continue
        if mbci_only and not match.chain.is_mbci(gpu):
            continue
        subgraphs.append(match)
        claimed.update(match.nodes)
    rest = [n for n in graph.nodes if n.output not in claimed]
    return Partition(graph=graph, subgraphs=subgraphs, rest=rest)
