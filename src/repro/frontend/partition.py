"""Graph partitioner: lift MBCI sub-graphs out of an operator graph (§V-B).

The partitioner pattern-matches the two fusable shapes the paper targets —

* **attention**: ``BatchMatmul -> [Scale] -> Softmax -> BatchMatmul``
* **GEMM chain**: ``BatchMatmul -> BatchMatmul``

— checks single-consumer dataflow between the matched nodes, classifies
the resulting chain as MBCI on the target GPU (the ``phi < P/W`` test),
and returns the partition: MBCI sub-graphs plus the remaining operator
list. The executor compiles the former with MCFuser and the latter with
Relay/Ansor, exactly the paper's MCFuser+Relay / MCFuser+Ansor setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cache.signature import workload_signature
from repro.gpu.specs import GPUSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import ScheduleCache
from repro.ir.chain import ComputeChain, attention_chain, gemm_chain
from repro.ir.graph import Graph, GraphNode
from repro.ir.ops import BatchMatmul, Scale, Softmax

__all__ = ["MBCISubgraph", "Partition", "partition_graph"]


@dataclass(frozen=True)
class MBCISubgraph:
    """One fusable sub-graph: the nodes it absorbs and its chain IR."""

    kind: str  # "attention" | "gemm_chain"
    nodes: tuple[str, ...]  # outputs of the absorbed graph nodes
    chain: ComputeChain
    inputs: tuple[str, ...]
    output: str

    def signature(self, gpu: GPUSpec, variant: str = "mcfuser") -> str:
        """Cache key of this sub-graph's chain on ``gpu``.

        All identically shaped sub-graphs of a model (every attention layer
        of a BERT) share one signature, so the executor tunes each shape
        once and the schedule cache carries it across models and processes.
        """
        return workload_signature(self.chain, gpu, variant)


@dataclass
class Partition:
    """Result of partitioning: MBCI sub-graphs + everything else."""

    graph: Graph
    subgraphs: list[MBCISubgraph]
    rest: list[GraphNode]

    @property
    def absorbed(self) -> set[str]:
        out: set[str] = set()
        for sg in self.subgraphs:
            out.update(sg.nodes)
        return out

    def cache_split(
        self, cache: "ScheduleCache", gpu: GPUSpec, variant: str = "mcfuser"
    ) -> tuple[list[MBCISubgraph], list[MBCISubgraph]]:
        """Split sub-graphs into (already cached, needs tuning).

        Consults ``cache`` without recording hits or misses — a planning
        query for callers that want to report or schedule remaining tuning
        work before compiling, not a lookup on the tuning path.
        """
        cached: list[MBCISubgraph] = []
        uncached: list[MBCISubgraph] = []
        for sg in self.subgraphs:
            known = cache.peek(sg.signature(gpu, variant)) is not None
            (cached if known else uncached).append(sg)
        return cached, uncached


def _single_consumer(graph: Graph, tensor: str) -> GraphNode | None:
    consumers = graph.consumers(tensor)
    return consumers[0] if len(consumers) == 1 else None


def _match_attention(graph: Graph, node: GraphNode) -> MBCISubgraph | None:
    """Match BatchMatmul -> [Scale] -> Softmax -> BatchMatmul at ``node``."""
    if not isinstance(node.op, BatchMatmul):
        return None
    nxt = _single_consumer(graph, node.output)
    absorbed = [node.output]
    if nxt is not None and isinstance(nxt.op, Scale):
        absorbed.append(nxt.output)
        nxt = _single_consumer(graph, nxt.output)
    if nxt is None or not isinstance(nxt.op, Softmax):
        return None
    absorbed.append(nxt.output)
    last = _single_consumer(graph, nxt.output)
    if last is None or not isinstance(last.op, BatchMatmul):
        return None
    if last.inputs[0] != nxt.output or last.op.transpose_a:
        return None
    absorbed.append(last.output)

    q, k = node.inputs
    v = last.inputs[1]
    bq, m, kk = graph.shape(q) if not node.op.transpose_a else _t(graph.shape(q))
    s_shape = graph.shape(node.output)
    o_shape = graph.shape(last.output)
    heads, m, n = s_shape
    h = o_shape[2]
    chain = attention_chain(heads, m, n, kk, h, name=f"attn@{node.output}")
    return MBCISubgraph(
        kind="attention",
        nodes=tuple(absorbed),
        chain=chain,
        inputs=(q, k, v),
        output=last.output,
    )


def _t(shape: tuple[int, ...]) -> tuple[int, ...]:
    return (shape[0], shape[2], shape[1])


def _match_gemm_chain(graph: Graph, node: GraphNode) -> MBCISubgraph | None:
    """Match BatchMatmul -> BatchMatmul at ``node``."""
    if not isinstance(node.op, BatchMatmul):
        return None
    nxt = _single_consumer(graph, node.output)
    if nxt is None or not isinstance(nxt.op, BatchMatmul):
        return None
    if nxt.inputs[0] != node.output or nxt.op.transpose_a:
        return None
    batch, m, n = graph.shape(node.output)
    k = graph.shape(node.inputs[0])[1 if node.op.transpose_a else 2]
    h = graph.shape(nxt.output)[2]
    chain = gemm_chain(batch, m, n, k, h, name=f"gemm2@{node.output}")
    return MBCISubgraph(
        kind="gemm_chain",
        nodes=(node.output, nxt.output),
        chain=chain,
        inputs=(node.inputs[0], node.inputs[1], nxt.inputs[1]),
        output=nxt.output,
    )


def partition_graph(graph: Graph, gpu: GPUSpec, mbci_only: bool = True) -> Partition:
    """Split a graph into MBCI sub-graphs and residual operators.

    ``mbci_only=True`` (default) keeps only sub-graphs that are actually
    memory-bound on ``gpu`` — compute-bound chains stay with the library,
    mirroring the paper's partitioner.
    """
    subgraphs: list[MBCISubgraph] = []
    claimed: set[str] = set()
    for node in graph.nodes:
        if node.output in claimed:
            continue
        match = _match_attention(graph, node) or _match_gemm_chain(graph, node)
        if match is None:
            continue
        if any(t in claimed for t in match.nodes):
            continue
        if mbci_only and not match.chain.is_mbci(gpu):
            continue
        subgraphs.append(match)
        claimed.update(match.nodes)
    rest = [n for n in graph.nodes if n.output not in claimed]
    return Partition(graph=graph, subgraphs=subgraphs, rest=rest)
