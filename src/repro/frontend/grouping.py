"""MBCI fusion-group construction: classify operators, grow groups greedily.

This is the first half of the general-DAG partitioner (the second half,
lowering a grown group to a :class:`~repro.ir.chain.ComputeChain`, lives in
:mod:`repro.frontend.linearize`). The paper's §V-B partitioner recognized
two hard-coded patterns; this module generalizes it in the FusionStitching
style:

* **classify** — every node is an *anchor* (a tensor contraction that can
  seed a group), *fusable* (an elementwise/normalization op a chain can
  absorb in a specific role: ``Scale`` folds into a block's scale factor,
  ``Softmax`` becomes the consuming contraction's online softmax,
  ``relu``/``gelu`` become a block epilogue), or *opaque* (everything else
  — a fusion barrier);
* **grow** — starting from each unclaimed anchor in topological order,
  follow single-consumer dataflow downstream, absorbing fusable ops and
  further contractions while a caller-supplied legality probe (rank/batch
  compatibility, loop budget, shared-memory footprint — see
  ``partition.py``) keeps succeeding;
* every anchor that fails to form a multi-block group produces a
  structured :class:`Rejection` carrying the reason growth stopped, so
  unfused operators are diagnosed instead of silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.gpu.specs import GPUSpec
from repro.ir.graph import Graph, GraphNode
from repro.ir.ops import Activation, BatchMatmul, Dense, Op, Scale, Softmax

__all__ = [
    "NodeClass",
    "classify_node",
    "fusion_role",
    "Segment",
    "Rejection",
    "GrowthResult",
    "grow_group",
    "is_contraction",
]


def is_contraction(op: Op) -> bool:
    """Whether ``op`` is a tensor contraction that can anchor a fusion group."""
    return isinstance(op, (Dense, BatchMatmul))


def fusion_role(op: Op) -> str:
    """The single source of the fusion vocabulary: ``"anchor"`` (tensor
    contraction), ``"fusable"`` (elementwise op a chain block can absorb in
    some position), or ``"opaque"`` (fusion barrier).

    Both :func:`classify_node` and :func:`grow_group` consult this, so the
    classify stage and the grower can never disagree about what is
    absorbable — the grower only additionally decides whether the
    *position* allows the absorption.
    """
    if is_contraction(op):
        return "anchor"
    if isinstance(op, (Scale, Softmax)) or (
        isinstance(op, Activation) and op.fn in ("relu", "gelu")
    ):
        return "fusable"
    return "opaque"


@dataclass(frozen=True)
class NodeClass:
    """Roofline classification of one graph node on a target GPU.

    ``kind`` is the fusion role: ``"anchor"`` (contraction), ``"fusable"``
    (absorbable elementwise), or ``"opaque"`` (fusion barrier).
    ``memory_bound`` is the per-op roofline test: arithmetic intensity
    below the GPU ridge point ``P/W``.
    """

    kind: str
    intensity: float
    memory_bound: bool


def classify_node(graph: Graph, node: GraphNode, gpu: GPUSpec) -> NodeClass:
    """Classify one node by fusion role and per-op arithmetic intensity."""
    op = node.op
    kind = fusion_role(op)
    shapes = graph.shapes
    io = op.io_bytes(shapes)
    intensity = op.flops(shapes) / io if io else 0.0
    return NodeClass(kind=kind, intensity=intensity, memory_bound=intensity < gpu.flops_per_byte)


@dataclass
class Segment:
    """One contraction of a growing group plus the elementwise ops folded
    into its chain block.

    ``scale`` multiplies the contraction result (absorbed ``Scale`` nodes),
    ``epilogue`` is an absorbed ``relu``/``gelu``, and ``softmax_node`` is
    the ``Softmax`` this contraction consumes through (becoming the block's
    ``softmax_over``). ``absorbed`` lists the elementwise nodes folded in,
    in dataflow order, so the group's node set is exact.
    """

    node: GraphNode
    scale: float = 1.0
    epilogue: str | None = None
    softmax_node: GraphNode | None = None
    absorbed: list[GraphNode] = field(default_factory=list)

    @property
    def output(self) -> str:
        """The last materialized tensor of this segment."""
        return self.absorbed[-1].output if self.absorbed else self.node.output

    def nodes(self) -> list[GraphNode]:
        """All graph nodes this segment absorbs, in dataflow order."""
        out: list[GraphNode] = []
        if self.softmax_node is not None:
            out.append(self.softmax_node)
        out.append(self.node)
        out.extend(self.absorbed)
        return out


@dataclass(frozen=True)
class Rejection:
    """Why an anchor (or a formed group) was not fused.

    Attributes:
        anchor: Output tensor of the contraction that seeded growth.
        reason: Machine-readable cause (``"multi-consumer"``,
            ``"unsupported-op"``, ``"rank-mismatch"``, ``"batch-mismatch"``,
            ``"loop-budget"``, ``"block-budget"``, ``"footprint"``,
            ``"compute-bound"``, ``"single-block"``, ...).
        detail: Human-readable explanation.
        nodes: The node outputs that would have participated.
    """

    anchor: str
    reason: str
    detail: str
    nodes: tuple[str, ...] = ()


@dataclass
class GrowthResult:
    """Outcome of growing from one anchor: a multi-block segment list, or a
    rejection explaining why no group formed."""

    segments: list[Segment] | None
    rejection: Rejection | None


def _segment_nodes(segments: list[Segment]) -> list[GraphNode]:
    out: list[GraphNode] = []
    for seg in segments:
        out.extend(seg.nodes())
    return out


def _softmax_on_last_axis(graph: Graph, node: GraphNode) -> bool:
    rank = len(graph.shape(node.output))
    axis = node.op.axis  # type: ignore[attr-defined]
    return axis == -1 or axis == rank - 1


def grow_group(
    graph: Graph,
    anchor: GraphNode,
    *,
    feasible: Callable[[list[Segment]], str | None],
    claimed: set[str],
    consumers: dict[str, list[GraphNode]],
) -> GrowthResult:
    """Grow a fusion group downstream from ``anchor`` along single-consumer
    dataflow.

    ``feasible`` is the legality probe: given a tentative segment list it
    returns ``None`` (legal) or a rejection reason string — the partitioner
    supplies rank/batch compatibility, the loop budget, and the
    shared-memory footprint bound through it. Growth is greedy: each
    extension is committed as soon as it is legal, and stops at the first
    multi-consumer edge, opaque operator, claimed node, or failed probe.

    Returns segments (``>= 2`` contractions) or a :class:`Rejection`; a
    lone contraction never fuses (the library's epilogue fusion already
    covers single GEMMs), so it is reported as ``"single-block"`` with the
    stopping cause in the detail.
    """
    base = feasible([Segment(node=anchor)])
    if base is not None:
        return GrowthResult(None, Rejection(anchor.output, base, f"anchor {anchor.output!r}: {base}"))
    segments = [Segment(node=anchor)]
    pending_softmax: GraphNode | None = None
    cur = anchor.output
    stop_reason = "dataflow-end"
    stop_detail = f"{cur!r} has no consumers"
    while True:
        if cur in graph.outputs:
            stop_reason = "graph-output"
            stop_detail = f"{cur!r} is a graph output and must stay materialized"
            break
        nexts = consumers.get(cur, [])
        if len(nexts) != 1:
            if len(nexts) > 1:
                stop_reason = "multi-consumer"
                stop_detail = (
                    f"{cur!r} feeds {len(nexts)} consumers "
                    f"({', '.join(n.output for n in nexts)}); absorbing it would "
                    "force a recompute or a DRAM round-trip"
                )
            else:
                stop_reason = "dataflow-end"
                stop_detail = f"{cur!r} has no consumers"
            break
        nxt = nexts[0]
        if nxt.output in claimed:
            stop_reason = "claimed"
            stop_detail = f"{nxt.output!r} already belongs to another fusion group"
            break
        op = nxt.op
        last = segments[-1]
        if isinstance(op, Scale) and pending_softmax is None and last.epilogue is None:
            last.scale *= op.factor
            last.absorbed.append(nxt)
            cur = nxt.output
            continue
        if (
            isinstance(op, Activation)
            and op.fn in ("relu", "gelu")
            and pending_softmax is None
            and last.epilogue is None
        ):
            last.epilogue = op.fn
            last.absorbed.append(nxt)
            cur = nxt.output
            continue
        if isinstance(op, Softmax) and pending_softmax is None:
            if not _softmax_on_last_axis(graph, nxt):
                stop_reason = "softmax-axis"
                stop_detail = f"{nxt.output!r} normalizes a non-innermost axis"
                break
            pending_softmax = nxt
            cur = nxt.output
            continue
        if is_contraction(op):
            if pending_softmax is not None and op.inputs[0] != cur:
                stop_reason = "softmax-position"
                stop_detail = (
                    f"{nxt.output!r} consumes the softmax tensor as a non-first "
                    "operand; online softmax requires it first"
                )
                break
            candidate = Segment(node=nxt, softmax_node=pending_softmax)
            reason = feasible(segments + [candidate])
            if reason is not None:
                stop_reason = reason
                stop_detail = f"absorbing {nxt.output!r} fails the {reason} check"
                break
            segments.append(candidate)
            pending_softmax = None
            cur = nxt.output
            continue
        if fusion_role(op) == "fusable":
            # Absorbable op, wrong position: a second epilogue, a Scale
            # after an epilogue/softmax, a softmax on a softmax, ...
            stop_reason = "fusable-context"
            stop_detail = (
                f"{op.kind} {nxt.output!r} is absorbable but not in this "
                "position (epilogue/softmax state already set)"
            )
        else:
            stop_reason = "unsupported-op"
            stop_detail = f"{op.kind} {nxt.output!r} has no chain-IR representation"
        break
    # A softmax with no consuming contraction cannot be expressed by the
    # chain IR; it stays residual (growth backtracks it implicitly because
    # it was never committed to a segment).
    if pending_softmax is not None and stop_reason == "dataflow-end":
        stop_reason = "dangling-softmax"
        stop_detail = f"softmax {pending_softmax.output!r} has no consuming contraction"
    if len(segments) < 2:
        return GrowthResult(
            None,
            Rejection(
                anchor.output,
                "single-block" if stop_reason in ("dataflow-end", "graph-output") else stop_reason,
                stop_detail,
                nodes=tuple(n.output for n in _segment_nodes(segments)),
            ),
        )
    return GrowthResult(segments, None)
