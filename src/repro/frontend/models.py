"""End-to-end model builders: BERT, ViT and MLP-Mixer encoders.

These produce :class:`~repro.ir.graph.Graph` objects made of the paper's
operator vocabulary (Dense/BatchMatmul/Softmax/LayerNorm/...), with the
self-attention modules expressed exactly as the Table III shapes so the
partitioner can lift them into MBCI chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import Graph
from repro.ir.ops import (
    Activation,
    Add,
    BatchMatmul,
    BiasAdd,
    Dense,
    LayerNorm,
    Reshape,
    Scale,
    Softmax,
    Transpose,
)

__all__ = ["BertConfig", "BERT_CONFIGS", "bert_encoder", "vit_encoder", "mlp_mixer"]


@dataclass(frozen=True)
class BertConfig:
    name: str
    layers: int
    hidden: int
    heads: int
    intermediate: int

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads


#: Standard HuggingFace configurations (head dim 64 throughout — the
#: Table III S1/S2/S3 shapes).
BERT_CONFIGS: dict[str, BertConfig] = {
    "Bert-Small": BertConfig("Bert-Small", layers=4, hidden=512, heads=8, intermediate=2048),
    "Bert-Base": BertConfig("Bert-Base", layers=12, hidden=768, heads=12, intermediate=3072),
    "Bert-Large": BertConfig("Bert-Large", layers=24, hidden=1024, heads=16, intermediate=4096),
}


def _attention_block(g: Graph, x: str, prefix: str, seq: int, cfg: BertConfig) -> str:
    """One multi-head self-attention block; returns the output tensor name."""
    hd, heads, hidden = cfg.head_dim, cfg.heads, cfg.hidden
    parts = {}
    for role in ("q", "k", "v"):
        w = g.add_param(f"{prefix}.{role}.weight", (hidden, hidden))
        b = g.add_param(f"{prefix}.{role}.bias", (hidden,))
        d = g.add(Dense((x, w), f"{prefix}.{role}.proj"))
        d = g.add(BiasAdd((d, b), f"{prefix}.{role}.biased"))
        r = g.add(Reshape((d,), f"{prefix}.{role}.split", shape=(seq, heads, hd)))
        parts[role] = g.add(Transpose((r,), f"{prefix}.{role}.heads", axes=(1, 0, 2)))
    scores = g.add(
        BatchMatmul((parts["q"], parts["k"]), f"{prefix}.scores", transpose_b=True)
    )
    scaled = g.add(Scale((scores,), f"{prefix}.scaled", factor=hd**-0.5))
    probs = g.add(Softmax((scaled,), f"{prefix}.probs", axis=-1))
    ctx = g.add(BatchMatmul((probs, parts["v"]), f"{prefix}.context"))
    merged = g.add(Transpose((ctx,), f"{prefix}.merge", axes=(1, 0, 2)))
    flat = g.add(Reshape((merged,), f"{prefix}.flat", shape=(seq, hidden)))
    wo = g.add_param(f"{prefix}.out.weight", (hidden, hidden))
    bo = g.add_param(f"{prefix}.out.bias", (hidden,))
    out = g.add(Dense((flat, wo), f"{prefix}.out.proj"))
    return g.add(BiasAdd((out, bo), f"{prefix}.out"))


def _layer_norm(g: Graph, x: str, prefix: str, width: int) -> str:
    gamma = g.add_param(f"{prefix}.gamma", (width,))
    beta = g.add_param(f"{prefix}.beta", (width,))
    return g.add(LayerNorm((x, gamma, beta), f"{prefix}.ln"))


def _ffn(g: Graph, x: str, prefix: str, width: int, inner: int, act: str = "gelu") -> str:
    w1 = g.add_param(f"{prefix}.fc1.weight", (width, inner))
    b1 = g.add_param(f"{prefix}.fc1.bias", (inner,))
    w2 = g.add_param(f"{prefix}.fc2.weight", (inner, width))
    b2 = g.add_param(f"{prefix}.fc2.bias", (width,))
    h = g.add(Dense((x, w1), f"{prefix}.fc1"))
    h = g.add(BiasAdd((h, b1), f"{prefix}.fc1.biased"))
    h = g.add(Activation((h,), f"{prefix}.act", fn=act))
    h = g.add(Dense((h, w2), f"{prefix}.fc2"))
    return g.add(BiasAdd((h, b2), f"{prefix}.fc2.biased"))


def bert_encoder(config: str | BertConfig, seq_len: int = 512) -> Graph:
    """The BERT encoder stack (the paper's Fig. 9 workload, seq 512)."""
    cfg = BERT_CONFIGS[config] if isinstance(config, str) else config
    g = Graph(f"{cfg.name}-seq{seq_len}")
    x = g.add_input("input", (seq_len, cfg.hidden))
    for layer in range(cfg.layers):
        p = f"layer{layer}"
        attn = _attention_block(g, x, f"{p}.attn", seq_len, cfg)
        x = g.add(Add((x, attn), f"{p}.attn.residual"))
        x = _layer_norm(g, x, f"{p}.attn", cfg.hidden)
        ffn = _ffn(g, x, f"{p}.ffn", cfg.hidden, cfg.intermediate)
        x = g.add(Add((x, ffn), f"{p}.ffn.residual"))
        x = _layer_norm(g, x, f"{p}.ffn", cfg.hidden)
    g.mark_output(x)
    return g


def vit_encoder(variant: str = "ViT-Base", tokens: int = 256) -> Graph:
    """Vision Transformer encoder (source of the S4-S6 attention shapes).

    Structurally a BERT encoder over patch tokens; ViT-Huge uses head dim
    80, which is what makes S6 the K=H=80 case.
    """
    table = {
        "ViT-Base": BertConfig("ViT-Base", layers=12, hidden=768, heads=12, intermediate=3072),
        "ViT-Large": BertConfig("ViT-Large", layers=24, hidden=1024, heads=16, intermediate=4096),
        "ViT-Huge": BertConfig("ViT-Huge", layers=32, hidden=1280, heads=16, intermediate=5120),
    }
    cfg = table[variant]
    return bert_encoder(cfg, seq_len=tokens)


def mlp_mixer(tokens: int = 512, channels: int = 256, layers: int = 8, token_inner: int = 64) -> Graph:
    """MLP-Mixer: token-mixing and channel-mixing MLP blocks.

    The token-mixing MLP is a chained pair of GEMMs over the transposed
    token axis — the S7-S9 shapes in Table III (heads = 1, M != N).
    """
    g = Graph(f"MLP-Mixer-t{tokens}c{channels}")
    x = g.add_input("input", (tokens, channels))
    for layer in range(layers):
        p = f"mixer{layer}"
        xt = g.add(Transpose((x,), f"{p}.tok.T", axes=(1, 0)))
        w1 = g.add_param(f"{p}.tok.w1", (tokens, token_inner))
        w2 = g.add_param(f"{p}.tok.w2", (token_inner, tokens))
        h = g.add(Dense((xt, w1), f"{p}.tok.fc1"))
        h = g.add(Activation((h,), f"{p}.tok.act", fn="gelu"))
        h = g.add(Dense((h, w2), f"{p}.tok.fc2"))
        ht = g.add(Transpose((h,), f"{p}.tok.back", axes=(1, 0)))
        x = g.add(Add((x, ht), f"{p}.tok.residual"))
        x = _layer_norm(g, x, f"{p}.tok", channels)
        ffn = _ffn(g, x, f"{p}.chan", channels, channels * 4)
        x = g.add(Add((x, ffn), f"{p}.chan.residual"))
        x = _layer_norm(g, x, f"{p}.chan", channels)
    g.mark_output(x)
    return g
