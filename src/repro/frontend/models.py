"""End-to-end model builders: BERT, ViT and MLP-Mixer encoders.

These produce :class:`~repro.ir.graph.Graph` objects made of the paper's
operator vocabulary (Dense/BatchMatmul/Softmax/LayerNorm/...), with the
self-attention modules expressed exactly as the Table III shapes so the
partitioner can lift them into MBCI chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import Graph
from repro.ir.ops import (
    Activation,
    Add,
    BatchMatmul,
    BiasAdd,
    Dense,
    LayerNorm,
    Reshape,
    Scale,
    Softmax,
    Transpose,
)

__all__ = [
    "BertConfig",
    "BERT_CONFIGS",
    "bert_encoder",
    "vit_encoder",
    "mlp_mixer",
    "ffn_block",
    "lora_linear",
    "gqa_attention",
    "cross_attention",
    "residual_branch_block",
]


@dataclass(frozen=True)
class BertConfig:
    name: str
    layers: int
    hidden: int
    heads: int
    intermediate: int

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads


#: Standard HuggingFace configurations (head dim 64 throughout — the
#: Table III S1/S2/S3 shapes).
BERT_CONFIGS: dict[str, BertConfig] = {
    "Bert-Small": BertConfig("Bert-Small", layers=4, hidden=512, heads=8, intermediate=2048),
    "Bert-Base": BertConfig("Bert-Base", layers=12, hidden=768, heads=12, intermediate=3072),
    "Bert-Large": BertConfig("Bert-Large", layers=24, hidden=1024, heads=16, intermediate=4096),
}


def _attention_block(g: Graph, x: str, prefix: str, seq: int, cfg: BertConfig) -> str:
    """One multi-head self-attention block; returns the output tensor name."""
    hd, heads, hidden = cfg.head_dim, cfg.heads, cfg.hidden
    parts = {}
    for role in ("q", "k", "v"):
        w = g.add_param(f"{prefix}.{role}.weight", (hidden, hidden))
        b = g.add_param(f"{prefix}.{role}.bias", (hidden,))
        d = g.add(Dense((x, w), f"{prefix}.{role}.proj"))
        d = g.add(BiasAdd((d, b), f"{prefix}.{role}.biased"))
        r = g.add(Reshape((d,), f"{prefix}.{role}.split", shape=(seq, heads, hd)))
        parts[role] = g.add(Transpose((r,), f"{prefix}.{role}.heads", axes=(1, 0, 2)))
    scores = g.add(
        BatchMatmul((parts["q"], parts["k"]), f"{prefix}.scores", transpose_b=True)
    )
    scaled = g.add(Scale((scores,), f"{prefix}.scaled", factor=hd**-0.5))
    probs = g.add(Softmax((scaled,), f"{prefix}.probs", axis=-1))
    ctx = g.add(BatchMatmul((probs, parts["v"]), f"{prefix}.context"))
    merged = g.add(Transpose((ctx,), f"{prefix}.merge", axes=(1, 0, 2)))
    flat = g.add(Reshape((merged,), f"{prefix}.flat", shape=(seq, hidden)))
    wo = g.add_param(f"{prefix}.out.weight", (hidden, hidden))
    bo = g.add_param(f"{prefix}.out.bias", (hidden,))
    out = g.add(Dense((flat, wo), f"{prefix}.out.proj"))
    return g.add(BiasAdd((out, bo), f"{prefix}.out"))


def _layer_norm(g: Graph, x: str, prefix: str, width: int) -> str:
    gamma = g.add_param(f"{prefix}.gamma", (width,))
    beta = g.add_param(f"{prefix}.beta", (width,))
    return g.add(LayerNorm((x, gamma, beta), f"{prefix}.ln"))


def _ffn(g: Graph, x: str, prefix: str, width: int, inner: int, act: str = "gelu") -> str:
    w1 = g.add_param(f"{prefix}.fc1.weight", (width, inner))
    b1 = g.add_param(f"{prefix}.fc1.bias", (inner,))
    w2 = g.add_param(f"{prefix}.fc2.weight", (inner, width))
    b2 = g.add_param(f"{prefix}.fc2.bias", (width,))
    h = g.add(Dense((x, w1), f"{prefix}.fc1"))
    h = g.add(BiasAdd((h, b1), f"{prefix}.fc1.biased"))
    h = g.add(Activation((h,), f"{prefix}.act", fn=act))
    h = g.add(Dense((h, w2), f"{prefix}.fc2"))
    return g.add(BiasAdd((h, b2), f"{prefix}.fc2.biased"))


def bert_encoder(config: str | BertConfig, seq_len: int = 512) -> Graph:
    """The BERT encoder stack (the paper's Fig. 9 workload, seq 512)."""
    cfg = BERT_CONFIGS[config] if isinstance(config, str) else config
    g = Graph(f"{cfg.name}-seq{seq_len}")
    x = g.add_input("input", (seq_len, cfg.hidden))
    for layer in range(cfg.layers):
        p = f"layer{layer}"
        attn = _attention_block(g, x, f"{p}.attn", seq_len, cfg)
        x = g.add(Add((x, attn), f"{p}.attn.residual"))
        x = _layer_norm(g, x, f"{p}.attn", cfg.hidden)
        ffn = _ffn(g, x, f"{p}.ffn", cfg.hidden, cfg.intermediate)
        x = g.add(Add((x, ffn), f"{p}.ffn.residual"))
        x = _layer_norm(g, x, f"{p}.ffn", cfg.hidden)
    g.mark_output(x)
    return g


def vit_encoder(variant: str = "ViT-Base", tokens: int = 256) -> Graph:
    """Vision Transformer encoder (source of the S4-S6 attention shapes).

    Structurally a BERT encoder over patch tokens; ViT-Huge uses head dim
    80, which is what makes S6 the K=H=80 case.
    """
    table = {
        "ViT-Base": BertConfig("ViT-Base", layers=12, hidden=768, heads=12, intermediate=3072),
        "ViT-Large": BertConfig("ViT-Large", layers=24, hidden=1024, heads=16, intermediate=4096),
        "ViT-Huge": BertConfig("ViT-Huge", layers=32, hidden=1280, heads=16, intermediate=5120),
    }
    cfg = table[variant]
    return bert_encoder(cfg, seq_len=tokens)


# -- workload-zoo building blocks ---------------------------------------------
#
# The graphs below exercise the general-DAG partitioner beyond the paper's
# two patterns: each contains at least one fusable MBCI group the legacy
# matchers could not see. They deliberately use the *fusable* operator
# vocabulary on the hot path (bias-free projections, chain-absorbable
# activations) — the residual ops around them stay on the library path.


def ffn_block(seq: int = 2048, hidden: int = 256, inner: int = 1024, act: str = "gelu") -> Graph:
    """A transformer FFN/MLP block with a residual connection.

    The ``Dense -> activation -> Dense`` core is a fusable GEMM chain with
    an epilogue on the intermediate; the residual ``Add`` and the layer
    norm stay residual (the input feeds both the FFN and the add — a
    multi-consumer *group input*, which fusion permits).

    Defaults are a long-sequence, modest-width block — the regime where
    the fused kernel beats two library GEMMs (the activation-row traffic
    dominates the weight traffic). Wide short-sequence FFNs still fuse but
    re-read their weights per tile and favor the library path.
    """
    g = Graph(f"ffn-s{seq}h{hidden}i{inner}")
    x = g.add_input("input", (seq, hidden))
    w1 = g.add_param("fc1.weight", (hidden, inner))
    w2 = g.add_param("fc2.weight", (inner, hidden))
    h = g.add(Dense((x, w1), "fc1"))
    h = g.add(Activation((h,), "act", fn=act))
    h = g.add(Dense((h, w2), "fc2"))
    r = g.add(Add((x, h), "residual"))
    gamma = g.add_param("ln.gamma", (hidden,))
    beta = g.add_param("ln.beta", (hidden,))
    out = g.add(LayerNorm((r, gamma, beta), "ln"))
    g.mark_output(out)
    return g


def lora_linear(seq: int = 512, hidden: int = 1024, rank: int = 16, alpha: float = 32.0) -> Graph:
    """A LoRA-augmented projection: ``y = x W0 + (alpha/r) * (x A) B``.

    The frozen base projection is a single (library) GEMM; the low-rank
    update ``(x A) B`` is a skinny GEMM chain with a folded scale — exactly
    the memory-bound shape fusion wins on (the rank-``r`` intermediate
    round-trips through DRAM unfused).
    """
    g = Graph(f"lora-s{seq}h{hidden}r{rank}")
    x = g.add_input("input", (seq, hidden))
    w0 = g.add_param("base.weight", (hidden, hidden))
    a = g.add_param("lora.A", (hidden, rank))
    b = g.add_param("lora.B", (rank, hidden))
    base = g.add(Dense((x, w0), "base"))
    down = g.add(Dense((x, a), "lora.down"))
    up = g.add(Dense((down, b), "lora.up"))
    scaled = g.add(Scale((up,), "lora.scaled", factor=alpha / rank))
    out = g.add(Add((base, scaled), "merged"))
    g.mark_output(out)
    return g


def gqa_attention(
    q_heads: int = 32,
    kv_heads: int = 8,
    seq: int = 256,
    head_dim: int = 64,
) -> Graph:
    """Grouped-query attention: ``q_heads`` query heads share ``kv_heads``
    K/V heads.

    Query heads of one group are folded into the sequence axis (the
    standard GQA kernel batching), so the fusable core is one attention
    chain with batch ``kv_heads`` and ``M = group_size * seq`` — a Table
    III shape the legacy matcher never saw.
    """
    if q_heads % kv_heads:
        raise ValueError(f"q_heads {q_heads} not divisible by kv_heads {kv_heads}")
    group = q_heads // kv_heads
    g = Graph(f"gqa-q{q_heads}kv{kv_heads}s{seq}d{head_dim}")
    q = g.add_input("q", (q_heads, seq, head_dim))
    k = g.add_input("k", (kv_heads, seq, head_dim))
    v = g.add_input("v", (kv_heads, seq, head_dim))
    qg = g.add(Reshape((q,), "q.grouped", shape=(kv_heads, group * seq, head_dim)))
    s = g.add(BatchMatmul((qg, k), "scores", transpose_b=True))
    sc = g.add(Scale((s,), "scaled", factor=head_dim**-0.5))
    p = g.add(Softmax((sc,), "probs", axis=-1))
    o = g.add(BatchMatmul((p, v), "context"))
    out = g.add(Reshape((o,), "context.split", shape=(q_heads, seq, head_dim)))
    g.mark_output(out)
    return g


def cross_attention(
    heads: int = 12,
    q_seq: int = 256,
    kv_seq: int = 1024,
    head_dim: int = 64,
) -> Graph:
    """Encoder-decoder cross-attention: queries attend over a *different*
    (typically longer) encoder sequence, so ``M != N``."""
    g = Graph(f"xattn-h{heads}q{q_seq}kv{kv_seq}d{head_dim}")
    q = g.add_input("q", (heads, q_seq, head_dim))
    k = g.add_input("k", (heads, kv_seq, head_dim))
    v = g.add_input("v", (heads, kv_seq, head_dim))
    s = g.add(BatchMatmul((q, k), "scores", transpose_b=True))
    sc = g.add(Scale((s,), "scaled", factor=head_dim**-0.5))
    p = g.add(Softmax((sc,), "probs", axis=-1))
    o = g.add(BatchMatmul((p, v), "context"))
    g.mark_output(o)
    return g


def residual_branch_block(batch: int = 4, seq: int = 512, width: int = 128) -> Graph:
    """A multi-branch residual block with one fusable and one fanned-out
    branch.

    Branch one is a clean two-GEMM chain (fuses). Branch two's first GEMM
    output feeds both its second GEMM *and* a probe head — a
    multi-consumer intermediate, so the branch must stay unfused and the
    partitioner must say why (``Partition.rejected``).
    """
    g = Graph(f"resbranch-b{batch}s{seq}w{width}")
    x = g.add_input("input", (batch, seq, width))
    w1 = g.add_param("br1.w1", (batch, width, width))
    w2 = g.add_param("br1.w2", (batch, width, width))
    u1 = g.add_param("br2.w1", (batch, width, width))
    u2 = g.add_param("br2.w2", (batch, width, width))
    c1 = g.add(BatchMatmul((x, w1), "br1.c"))
    e1 = g.add(BatchMatmul((c1, w2), "br1.e"))
    c2 = g.add(BatchMatmul((x, u1), "br2.c"))
    e2 = g.add(BatchMatmul((c2, u2), "br2.e"))
    probe = g.add(Softmax((c2,), "br2.probe", axis=-1))  # second consumer of br2.c
    merged = g.add(Add((e1, e2), "branches"))
    out = g.add(Add((merged, x), "residual"))
    g.mark_output(out)
    g.mark_output(probe)
    return g


def mlp_mixer(tokens: int = 512, channels: int = 256, layers: int = 8, token_inner: int = 64) -> Graph:
    """MLP-Mixer: token-mixing and channel-mixing MLP blocks.

    The token-mixing MLP is a chained pair of GEMMs over the transposed
    token axis — the S7-S9 shapes in Table III (heads = 1, M != N).
    """
    g = Graph(f"MLP-Mixer-t{tokens}c{channels}")
    x = g.add_input("input", (tokens, channels))
    for layer in range(layers):
        p = f"mixer{layer}"
        xt = g.add(Transpose((x,), f"{p}.tok.T", axes=(1, 0)))
        w1 = g.add_param(f"{p}.tok.w1", (tokens, token_inner))
        w2 = g.add_param(f"{p}.tok.w2", (token_inner, tokens))
        h = g.add(Dense((xt, w1), f"{p}.tok.fc1"))
        h = g.add(Activation((h,), f"{p}.tok.act", fn="gelu"))
        h = g.add(Dense((h, w2), f"{p}.tok.fc2"))
        ht = g.add(Transpose((h,), f"{p}.tok.back", axes=(1, 0)))
        x = g.add(Add((x, ht), f"{p}.tok.residual"))
        x = _layer_norm(g, x, f"{p}.tok", channels)
        ffn = _ffn(g, x, f"{p}.chan", channels, channels * 4)
        x = g.add(Add((x, ffn), f"{p}.chan.residual"))
        x = _layer_norm(g, x, f"{p}.chan", channels)
    g.mark_output(x)
    return g
