"""Lowering a grown fusion group to a :class:`~repro.ir.chain.ComputeChain`.

The grower (:mod:`repro.frontend.grouping`) hands over a topologically
ordered list of :class:`Segment`\\ s — contractions plus the elementwise ops
folded into them. This module assigns chain loops and tensors so the
existing tiling/search/codegen stack consumes the group unchanged:

* loops are named canonically (``m, n, k, h``, then further single
  letters), spatial-before-reduction per block, so identically shaped
  groups produce identical chains — and therefore share one workload
  signature, which is what lets the executor tune each shape once;
* tensor *storage* order is preserved: a transposed operand keeps its
  stored dims, and the chain's einsum handles the permutation, so binding
  graph tensors to chain inputs is a pure reshape;
* groups whose chain matches the paper's canonical attention shape are
  rebuilt through :func:`attention_chain` so they keep the legacy tensor
  names (``Q, K, S, V, O``) and stay signature-compatible with the Table
  III workloads.

Illegal groups raise :class:`LinearizeError` with a machine-readable
``reason`` the grower converts into a structured rejection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.frontend.grouping import Segment
from repro.ir.chain import ComputeBlock, ComputeChain, TensorRef, attention_chain
from repro.ir.graph import Graph
from repro.ir.ops import BatchMatmul, Dense

__all__ = ["LinearizeError", "LinearizedGroup", "linearize_group", "LOOP_NAMES"]

#: Canonical loop-name sequence: the paper's ``m, n, k, h`` first, then
#: unambiguous single letters (the expression syntax is one char per loop).
LOOP_NAMES = "mnkhabcdefgijlopqrstuvwxyz"

#: Chain tensor names in first-use order; ``A..E`` reproduces the canonical
#: GEMM-chain naming for two-contraction groups.
TENSOR_NAMES = "ABCDEFGHIJLMNOPQRSTUVWXYZ"


class LinearizeError(ValueError):
    """A segment list has no chain-IR lowering; ``reason`` says why."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class LinearizedGroup:
    """A fusion group lowered to chain IR, plus its graph-tensor binding.

    ``inputs`` are graph tensor names positionally aligned with
    ``chain.input_names()``; ``output`` is the graph tensor the chain's
    final block produces. ``batched`` records whether graph tensors carry
    the chain's batch axis themselves (rank-3 BatchMatmul groups) or need
    a leading length-1 axis added when binding (rank-2 Dense groups).
    Binding helpers live on :class:`~repro.frontend.partition.MBCISubgraph`,
    the public surface these fields flow into.
    """

    chain: ComputeChain
    inputs: tuple[str, ...]
    output: str
    batched: bool


def _operand_layout(op, shapes) -> tuple[int, list[tuple[str, bool]]]:
    """(batch, [(tensor, stored_transposed)]) for a contraction's operands.

    ``stored_transposed`` means the tensor's storage order is
    (reduction, spatial) for the first operand or (spatial, reduction) for
    the second — i.e. the matmul reads it transposed.
    """
    if isinstance(op, BatchMatmul):
        a, b = shapes[op.inputs[0]], shapes[op.inputs[1]]
        if len(a) != 3 or len(b) != 3:
            raise LinearizeError("rank-mismatch", f"{op.output!r}: BatchMatmul needs rank-3 operands")
        return a[0], [(op.inputs[0], op.transpose_a), (op.inputs[1], op.transpose_b)]
    if isinstance(op, Dense):
        x, w = shapes[op.inputs[0]], shapes[op.inputs[1]]
        if len(x) != 2 or len(w) != 2:
            raise LinearizeError(
                "rank-mismatch",
                f"{op.output!r}: only rank-2 Dense lowers to a batch-1 chain",
            )
        return 1, [(op.inputs[0], False), (op.inputs[1], False)]
    raise LinearizeError("unsupported-op", f"{op.kind} {op.output!r} is not a contraction")


def _semantic_dims(shape: tuple[int, ...], transposed: bool, first: bool) -> tuple[int, int]:
    """(spatial_extent, reduction_extent) of one operand."""
    d1, d2 = shape[-2], shape[-1]
    if first:  # X: (m, k) stored, (k, m) when transposed
        return (d2, d1) if transposed else (d1, d2)
    return (d1, d2) if transposed else (d2, d1)  # Z: (k, n) stored, (n, k) transposed


class _Namer:
    def __init__(self, alphabet: str) -> None:
        self._alphabet = alphabet
        self._next = 0

    def fresh(self, used: set[str]) -> str:
        while self._next < len(self._alphabet):
            name = self._alphabet[self._next]
            self._next += 1
            if name not in used:
                return name
        raise LinearizeError("loop-budget", "group exceeds the loop-name alphabet")


def linearize_group(graph: Graph, segments: list[Segment], name: str) -> LinearizedGroup:
    """Lower ``segments`` (topological contraction order) to a chain.

    Raises :class:`LinearizeError` when the group mixes ranks or batch
    sizes, reuses a tensor under incompatible layouts, or softmaxes a dim
    the consuming contraction does not reduce.
    """
    shapes = graph.shapes
    batch, _ = _operand_layout(segments[0].node.op, shapes)
    batched = isinstance(segments[0].node.op, BatchMatmul)

    loops: dict[str, int] = {}
    tensors: dict[str, TensorRef] = {}
    chain_name_of: dict[str, str] = {}  # graph tensor -> chain tensor
    origin: dict[str, str] = {}  # chain tensor -> graph tensor
    loop_namer = _Namer(LOOP_NAMES)
    tensor_names = iter(TENSOR_NAMES)
    blocks: list[ComputeBlock] = []

    def new_loop(extent: int) -> str:
        loop = loop_namer.fresh(set(loops))
        loops[loop] = extent
        return loop

    def add_tensor(graph_tensor: str, dims: tuple[str, ...], role: str) -> str:
        existing = chain_name_of.get(graph_tensor)
        if existing is not None:
            if tensors[existing].dims != dims:
                raise LinearizeError(
                    "tensor-reuse",
                    f"{graph_tensor!r} is used under two incompatible layouts",
                )
            return existing
        try:
            cname = next(tensor_names)
        except StopIteration:
            raise LinearizeError("block-budget", "group exceeds the tensor-name alphabet") from None
        chain_name_of[graph_tensor] = cname
        origin[cname] = graph_tensor
        tensors[cname] = TensorRef(cname, dims, role)
        return cname

    for i, seg in enumerate(segments):
        op = seg.node.op
        if seg.softmax_node is not None:
            # The softmax output aliases the tensor it normalizes: the chain
            # realizes it as the consuming block's online softmax.
            source = chain_name_of.get(seg.softmax_node.inputs[0])
            if source is None:
                raise LinearizeError(
                    "softmax-position", "softmax input is not a group intermediate"
                )
            chain_name_of[seg.softmax_node.output] = source
        seg_batch, operands = _operand_layout(op, shapes)
        if (isinstance(op, BatchMatmul)) != batched:
            raise LinearizeError(
                "rank-mismatch",
                f"{seg.node.output!r} mixes Dense and BatchMatmul tensor ranks",
            )
        if seg_batch != batch:
            raise LinearizeError(
                "batch-mismatch",
                f"{seg.node.output!r}: batch {seg_batch} != group batch {batch}",
            )
        (a_name, a_t), (b_name, b_t) = operands
        m_ext, k_ext_a = _semantic_dims(shapes[a_name], a_t, first=True)
        n_ext, k_ext_b = _semantic_dims(shapes[b_name], b_t, first=False)
        if k_ext_a != k_ext_b:  # pragma: no cover - shape inference catches this
            raise LinearizeError("layout", f"{seg.node.output!r}: inner dims disagree")

        # Resolve the three semantic loops, reusing loops of operands that
        # are already chain tensors (the group's intermediates).
        def operand_loops(tensor: str, transposed: bool, first: bool) -> tuple[str, str] | None:
            cname = chain_name_of.get(tensor)
            if cname is None:
                return None
            d1, d2 = tensors[cname].dims
            if first:
                return ((d2, d1) if transposed else (d1, d2))
            return ((d1, d2) if transposed else (d2, d1))

        a_known = operand_loops(a_name, a_t, first=True)
        b_known = operand_loops(b_name, b_t, first=False)
        m_loop = a_known[0] if a_known else None
        k_loop = a_known[1] if a_known else (b_known[1] if b_known else None)
        n_loop = b_known[0] if b_known else None
        if a_known and b_known and a_known[1] != b_known[1]:
            raise LinearizeError("layout", f"{seg.node.output!r}: operands contract different loops")
        # Spatial loops first, then the reduction — the canonical order.
        if m_loop is None:
            m_loop = new_loop(m_ext)
        if n_loop is None:
            n_loop = new_loop(n_ext)
        if k_loop is None:
            k_loop = new_loop(k_ext_a)
        if len({m_loop, n_loop, k_loop}) != 3:
            raise LinearizeError("layout", f"{seg.node.output!r}: degenerate loop mapping")

        if seg.softmax_node is not None:
            # The softmaxed tensor is the first operand; its normalized axis
            # is the innermost *storage* dim, which must be the contracted
            # loop for the chain's online softmax to be equivalent.
            a_cname = chain_name_of.get(a_name)
            if a_cname is None:  # pragma: no cover - grower feeds softmax intermediates only
                raise LinearizeError("softmax-position", "softmax input is not a group intermediate")
            if tensors[a_cname].dims[-1] != k_loop:
                raise LinearizeError(
                    "softmax-axis",
                    f"{seg.node.output!r} does not reduce the softmaxed axis",
                )

        a_dims = (k_loop, m_loop) if a_t else (m_loop, k_loop)
        b_dims = (n_loop, k_loop) if b_t else (k_loop, n_loop)
        add_tensor(a_name, a_dims, "input")
        add_tensor(b_name, b_dims, "input")
        role = "output" if i == len(segments) - 1 else "intermediate"
        out_cname = add_tensor(seg.node.output, (m_loop, n_loop), role)

        blocks.append(
            ComputeBlock(
                name=out_cname,
                inputs=(chain_name_of[a_name], chain_name_of[b_name]),
                output=out_cname,
                spatial=(m_loop, n_loop),
                reduction=(k_loop,),
                softmax_over=k_loop if seg.softmax_node is not None else None,
                epilogue=seg.epilogue,
                scale=seg.scale,
            )
        )
        # Elementwise ops folded into this segment keep the same chain
        # tensor: alias their graph outputs to the block's output.
        for absorbed in seg.absorbed:
            chain_name_of[absorbed.output] = out_cname

    chain = ComputeChain(name, loops, tuple(blocks), tensors, batch=batch, dtype="float16")
    # Bind by position BEFORE canonical renaming: the rebuilt attention
    # chain keeps the same input order (Q, K, V <-> first-use A, B, D).
    input_binding = tuple(origin[cname] for cname in chain.input_names())
    return LinearizedGroup(
        chain=_canonicalize(chain),
        inputs=input_binding,
        output=segments[-1].output,
        batched=batched,
    )


def _canonicalize(chain: ComputeChain) -> ComputeChain:
    """Rebuild chains matching the paper's attention module through the
    canonical builder so they keep the legacy ``Q K S V O`` tensor names —
    and therefore the Table III workload signatures."""
    if len(chain.blocks) != 2:
        return chain
    b1, b2 = chain.blocks
    if b2.softmax_over is None or b1.softmax_over is not None:
        return chain
    if b1.epilogue is not None or b2.epilogue is not None or b2.scale != 1.0:
        return chain
    if b2.inputs[0] != b1.output:
        return chain
    m, n = chain.tensors[b1.output].dims
    k, h = b1.reduction[0], b2.spatial[1]
    q, kt = (chain.tensors[t] for t in b1.inputs)
    v, o = chain.tensors[b2.inputs[1]], chain.tensors[b2.output]
    if q.dims != (m, k) or kt.dims != (n, k) or v.dims != (n, h) or o.dims != (m, h):
        return chain
    if b2.reduction != (n,) or b2.softmax_over != n:
        return chain
    if not math.isclose(b1.scale, 1.0 / math.sqrt(chain.loops[k]), rel_tol=1e-9):
        return chain
    return attention_chain(
        chain.batch,
        chain.loops[m],
        chain.loops[n],
        chain.loops[k],
        chain.loops[h],
        name=chain.name,
        dtype=chain.dtype,
    )
