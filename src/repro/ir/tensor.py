"""Tensor value descriptions shared by the graph IR and the tiling layer."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import prod

__all__ = ["TensorSpec", "DTYPE_BYTES", "default_dtype"]

#: Element sizes for the dtypes the reproduction supports. The paper's
#: kernels are fp16 with fp32 accumulation; fp32 is used by tests.
DTYPE_BYTES: dict[str, int] = {"float16": 2, "float32": 4}


def default_dtype() -> str:
    return "float16"


@dataclass(frozen=True)
class TensorSpec:
    """Shape/dtype description of one tensor value.

    Attributes:
        name: Unique name within its graph or chain.
        shape: Dimension sizes (row-major).
        dtype: ``"float16"`` (default) or ``"float32"``.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str = "float16"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"tensor {self.name!r}: non-positive dim in {self.shape}")
        if self.dtype not in DTYPE_BYTES:
            raise ValueError(f"tensor {self.name!r}: unsupported dtype {self.dtype!r}")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        return int(prod(self.shape))

    @property
    def dtype_bytes(self) -> int:
        return DTYPE_BYTES[self.dtype]

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return self.num_elements * self.dtype_bytes

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    def zeros(self) -> np.ndarray:
        """Allocate a zero array with this spec (fp32 compute precision)."""
        return np.zeros(self.shape, dtype=np.float32)
