"""ComputeChain: the fusion-level IR for MBCI operator chains.

A chain is a short sequence of *compute blocks* (tensor contractions,
optionally with a fused softmax or an elementwise epilogue) plus the
*cross-tile loops* they share — exactly the structure of the paper's Fig. 3.
The GEMM chain ``C = A x B, E = C x D`` has loops ``m, n, k, h``; the
self-attention module has the same loop skeleton with an online softmax
between the two contractions.

Every subsystem consumes this IR: the tiling layer enumerates loop
structures over ``chain.loops``, the interpreter executes ``chain`` blocks
tile-by-tile, the performance model prices its statements, and the
baselines read the same object so all systems see identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ir.tensor import DTYPE_BYTES
from repro.utils import prod, rng_for

__all__ = [
    "TensorRef",
    "ComputeBlock",
    "ComputeChain",
    "gemm_chain",
    "gemm3_chain",
    "attention_chain",
]


@dataclass(frozen=True)
class TensorRef:
    """A tensor as seen by the chain: which loops index it, and its role.

    ``dims`` are loop names excluding the implicit batch dimension; the
    batch (if any) is the leading axis of every tensor.
    """

    name: str
    dims: tuple[str, ...]
    role: str  # "input" | "intermediate" | "output"

    def __post_init__(self) -> None:
        if self.role not in ("input", "intermediate", "output"):
            raise ValueError(f"tensor {self.name!r}: bad role {self.role!r}")
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(f"tensor {self.name!r}: repeated dims {self.dims}")


@dataclass(frozen=True)
class ComputeBlock:
    """One tensor contraction within a chain.

    Attributes:
        name: Block name; by convention equals its output tensor's name.
        inputs: Operand tensor names, in contraction order.
        output: Output tensor name.
        spatial: Loops indexing the output tile.
        reduction: Contracted loops.
        softmax_over: If set, the *first* input is normalized with a softmax
            along this loop before the contraction (self-attention's
            ``O = softmax(S) x V``). The fused kernel realizes this with an
            online softmax; the reference implementation uses the exact
            two-pass softmax. Both are numerically identical.
        epilogue: Optional elementwise epilogue on the output tile
            (``"relu"`` or ``"gelu"``) — the paper's "standard fusion
            optimizations for memory-intensive operators".
        scale: Constant multiplier applied to the contraction result
            (attention's ``1/sqrt(d_k)``).
    """

    name: str
    inputs: tuple[str, ...]
    output: str
    spatial: tuple[str, ...]
    reduction: tuple[str, ...]
    softmax_over: str | None = None
    epilogue: str | None = None
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError(f"block {self.name!r}: needs at least one input")
        overlap = set(self.spatial) & set(self.reduction)
        if overlap:
            raise ValueError(f"block {self.name!r}: loops {overlap} both spatial and reduction")
        if self.epilogue not in (None, "relu", "gelu"):
            raise ValueError(f"block {self.name!r}: unknown epilogue {self.epilogue!r}")
        if self.softmax_over is not None and self.softmax_over not in self.reduction:
            raise ValueError(
                f"block {self.name!r}: softmax_over {self.softmax_over!r} "
                "must be one of its reduction loops"
            )

    @property
    def related(self) -> tuple[str, ...]:
        """All loops this block's computation touches (spatial + reduction)."""
        return self.spatial + self.reduction


def _apply_epilogue(x: np.ndarray, epilogue: str | None) -> np.ndarray:
    if epilogue is None:
        return x
    if epilogue == "relu":
        return np.maximum(x, 0.0)
    if epilogue == "gelu":
        return 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3)))
    raise ValueError(f"unknown epilogue {epilogue!r}")


class ComputeChain:
    """A fusable chain of compute blocks over shared cross-tile loops.

    Args:
        name: Workload name (``"G4"``, ``"S2"``, ...).
        loops: Ordered mapping loop-name -> extent (problem size), excluding
            batch. Single lowercase letters by convention (``m, n, k, h``).
        blocks: Contractions in topological (producer-before-consumer) order.
        tensors: Every tensor referenced by the blocks.
        batch: Implicit leading batch dimension shared by all tensors
            (``heads x batch`` for attention); 1 means no batch axis
            materialized but a batch grid loop of extent 1.
        dtype: Storage dtype of all tensors.
    """

    def __init__(
        self,
        name: str,
        loops: dict[str, int],
        blocks: tuple[ComputeBlock, ...],
        tensors: dict[str, TensorRef],
        batch: int = 1,
        dtype: str = "float16",
    ) -> None:
        self.name = name
        self.loops = dict(loops)
        self.blocks = tuple(blocks)
        self.tensors = dict(tensors)
        self.batch = batch
        self.dtype = dtype
        self._validate()

    # -- construction-time validation ---------------------------------------

    def _validate(self) -> None:
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.dtype not in DTYPE_BYTES:
            raise ValueError(f"unsupported dtype {self.dtype!r}")
        for loop, size in self.loops.items():
            if size <= 0:
                raise ValueError(f"loop {loop!r}: non-positive extent {size}")
        produced: set[str] = set()
        for ref in self.tensors.values():
            for d in ref.dims:
                if d not in self.loops:
                    raise ValueError(f"tensor {ref.name!r} uses unknown loop {d!r}")
        for block in self.blocks:
            for t in block.inputs + (block.output,):
                if t not in self.tensors:
                    raise ValueError(f"block {block.name!r} references unknown tensor {t!r}")
            for loop in block.related:
                if loop not in self.loops:
                    raise ValueError(f"block {block.name!r} uses unknown loop {loop!r}")
            out_ref = self.tensors[block.output]
            if tuple(sorted(out_ref.dims)) != tuple(sorted(block.spatial)):
                raise ValueError(
                    f"block {block.name!r}: output dims {out_ref.dims} != spatial {block.spatial}"
                )
            for t in block.inputs:
                ref = self.tensors[t]
                if ref.role == "intermediate" and t not in produced:
                    raise ValueError(f"block {block.name!r} consumes {t!r} before it is produced")
            produced.add(block.output)
            if block.softmax_over is not None and block.softmax_over not in block.reduction:
                raise ValueError(
                    f"block {block.name!r}: softmax_over {block.softmax_over!r} "
                    "must be one of its reduction loops"
                )

    # -- basic queries -------------------------------------------------------

    @property
    def dtype_bytes(self) -> int:
        return DTYPE_BYTES[self.dtype]

    @property
    def loop_names(self) -> tuple[str, ...]:
        return tuple(self.loops)

    @property
    def output(self) -> str:
        """Name of the chain's final output tensor."""
        return self.blocks[-1].output

    @property
    def output_spatial(self) -> tuple[str, ...]:
        """Loops that index the final output — the grid-bindable spatial loops."""
        return self.tensors[self.output].dims

    def block(self, name: str) -> ComputeBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"no block named {name!r}")

    def producer_of(self, tensor: str) -> ComputeBlock | None:
        for b in self.blocks:
            if b.output == tensor:
                return b
        return None

    def consumers_of(self, tensor: str) -> tuple[ComputeBlock, ...]:
        return tuple(b for b in self.blocks if tensor in b.inputs)

    def shared_loops(self) -> tuple[str, ...]:
        """Loops related to more than one block (``m, n`` for the GEMM chain)."""
        counts = {loop: 0 for loop in self.loops}
        for b in self.blocks:
            for loop in b.related:
                counts[loop] += 1
        return tuple(loop for loop, c in counts.items() if c > 1)

    def private_loops(self, block: ComputeBlock) -> tuple[str, ...]:
        """Loops related to exactly this block (``k`` for C, ``h`` for E)."""
        shared = set(self.shared_loops())
        return tuple(loop for loop in block.related if loop not in shared)

    def tensor_shape(self, name: str) -> tuple[int, ...]:
        """Concrete shape including the leading batch axis."""
        ref = self.tensors[name]
        return (self.batch, *[self.loops[d] for d in ref.dims])

    def input_names(self) -> tuple[str, ...]:
        return tuple(t for t, ref in self.tensors.items() if ref.role == "input")

    def with_loops(self, overrides: dict[str, int], name: str | None = None) -> "ComputeChain":
        """A structurally identical chain with some loop extents replaced.

        The shape-bucketing layer uses this to build the *ceiling chain*
        (dynamic extents rounded up to their bucket ceilings) that the
        tuner searches at; schedules found there are replayed on any
        in-bucket shape. Unknown loop names raise.
        """
        unknown = set(overrides) - set(self.loops)
        if unknown:
            raise KeyError(f"unknown loop(s) {sorted(unknown)}; chain has {self.loop_names}")
        loops = {**self.loops, **overrides}
        return ComputeChain(
            name if name is not None else self.name,
            loops,
            self.blocks,
            self.tensors,
            batch=self.batch,
            dtype=self.dtype,
        )

    # -- work accounting -----------------------------------------------------

    def block_flops(self, block: ComputeBlock) -> float:
        """Total FLOPs of one block over the whole problem (incl. batch).

        Contractions count 2 FLOPs per multiply-accumulate; a fused softmax
        adds ~5 ops per normalized element (max, sub, exp, sum, div).
        """
        vol = self.batch * prod(self.loops[l] for l in block.related)
        flops = 2.0 * vol
        if block.softmax_over is not None:
            first = self.tensors[block.inputs[0]]
            flops += 5.0 * self.batch * prod(self.loops[d] for d in first.dims)
        return flops

    def total_flops(self) -> float:
        return sum(self.block_flops(b) for b in self.blocks)

    def min_dram_bytes(self) -> float:
        """DRAM traffic of a perfectly fused kernel: inputs once, output once."""
        total = 0
        for name, ref in self.tensors.items():
            if ref.role in ("input", "output"):
                total += self.batch * prod(self.loops[d] for d in ref.dims) * self.dtype_bytes
        return float(total)

    def unfused_dram_bytes(self) -> float:
        """DRAM traffic when every block round-trips through global memory."""
        total = 0.0
        for b in self.blocks:
            for t in b.inputs + (b.output,):
                ref = self.tensors[t]
                total += self.batch * prod(self.loops[d] for d in ref.dims) * self.dtype_bytes
            if b.softmax_over is not None:  # standalone softmax reads+writes S
                ref = self.tensors[b.inputs[0]]
                total += 2.0 * self.batch * prod(self.loops[d] for d in ref.dims) * self.dtype_bytes
        return total

    def arithmetic_intensity(self) -> float:
        """FLOPs per fused-kernel DRAM byte (the chain-level ``phi``)."""
        return self.total_flops() / self.min_dram_bytes()

    def is_mbci(self, gpu) -> bool:
        """The paper's MBCI test: compute-intensive ops that are memory-bound.

        True when the *unfused* execution is memory-bound (``phi`` of the
        individual blocks below the GPU ridge point), i.e. fusion has
        headroom to help.
        """
        unfused_phi = self.total_flops() / self.unfused_dram_bytes()
        return unfused_phi < gpu.flops_per_byte

    # -- reference execution ---------------------------------------------------

    def einsum_spec(self, block: ComputeBlock) -> str:
        """Einsum string for a block, with the batch axis as ``z``."""
        ins = ",".join("z" + "".join(self.tensors[t].dims) for t in block.inputs)
        out = "z" + "".join(self.tensors[block.output].dims)
        return f"{ins}->{out}"

    def reference(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Unfused fp32 reference execution of the whole chain.

        Returns every produced tensor (intermediates included) so tests can
        check fused execution block-by-block.
        """
        env = {k: np.asarray(v, dtype=np.float32) for k, v in inputs.items()}
        for name in self.input_names():
            if name not in env:
                raise KeyError(f"missing input {name!r}")
            if env[name].shape != self.tensor_shape(name):
                raise ValueError(
                    f"input {name!r}: shape {env[name].shape} != {self.tensor_shape(name)}"
                )
        for block in self.blocks:
            operands = [env[t] for t in block.inputs]
            if block.softmax_over is not None:
                first = operands[0]
                axis = self.tensors[block.inputs[0]].dims.index(block.softmax_over) + 1
                shifted = first - first.max(axis=axis, keepdims=True)
                probs = np.exp(shifted)
                probs /= probs.sum(axis=axis, keepdims=True)
                operands = [probs, *operands[1:]]
            out = np.einsum(self.einsum_spec(block), *operands)
            out = _apply_epilogue(block.scale * out if block.scale != 1.0 else out, block.epilogue)
            env[block.output] = out.astype(np.float32)
        return env

    def random_inputs(self, seed: int = 0) -> dict[str, np.ndarray]:
        """Deterministic random inputs, scaled to keep fp32 sums well-behaved."""
        out: dict[str, np.ndarray] = {}
        for name in self.input_names():
            rng = rng_for("chain-input", self.name, name, seed)
            shape = self.tensor_shape(name)
            out[name] = (rng.standard_normal(shape) * 0.5).astype(np.float32)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        loops = ",".join(f"{k}={v}" for k, v in self.loops.items())
        return f"ComputeChain({self.name}: batch={self.batch}, {loops}, blocks={[b.name for b in self.blocks]})"


# -- canonical chain builders ---------------------------------------------------


def gemm_chain(
    batch: int,
    m: int,
    n: int,
    k: int,
    h: int,
    name: str | None = None,
    dtype: str = "float16",
    epilogue: str | None = None,
) -> ComputeChain:
    """The paper's GEMM chain: ``C[m,n] = A[m,k] x B[k,n]; E[m,h] = C x D[n,h]``.

    ``epilogue`` (e.g. ``"relu"``) is applied to the intermediate ``C``,
    mirroring epilogue-fused producer ops.
    """
    loops = {"m": m, "n": n, "k": k, "h": h}
    tensors = {
        "A": TensorRef("A", ("m", "k"), "input"),
        "B": TensorRef("B", ("k", "n"), "input"),
        "C": TensorRef("C", ("m", "n"), "intermediate"),
        "D": TensorRef("D", ("n", "h"), "input"),
        "E": TensorRef("E", ("m", "h"), "output"),
    }
    blocks = (
        ComputeBlock("C", ("A", "B"), "C", ("m", "n"), ("k",), epilogue=epilogue),
        ComputeBlock("E", ("C", "D"), "E", ("m", "h"), ("n",)),
    )
    return ComputeChain(
        name or f"gemm_chain_b{batch}_m{m}n{n}k{k}h{h}",
        loops,
        blocks,
        tensors,
        batch=batch,
        dtype=dtype,
    )


def gemm3_chain(
    batch: int,
    m: int,
    n: int,
    k: int,
    h: int,
    p: int,
    name: str | None = None,
    dtype: str = "float16",
    epilogue: str | None = None,
) -> ComputeChain:
    """A three-GEMM chain: ``C = A x B; E = C x D; F = E x G``.

    Extends the paper's two-GEMM chain with a third contraction over a new
    loop ``p`` (an MLP-style GEMM stack); the maximum depth the
    partitioner's legality probes admit (<= 3 blocks). ``epilogue`` is
    applied to both intermediates.
    """
    loops = {"m": m, "n": n, "k": k, "h": h, "p": p}
    tensors = {
        "A": TensorRef("A", ("m", "k"), "input"),
        "B": TensorRef("B", ("k", "n"), "input"),
        "C": TensorRef("C", ("m", "n"), "intermediate"),
        "D": TensorRef("D", ("n", "h"), "input"),
        "E": TensorRef("E", ("m", "h"), "intermediate"),
        "G": TensorRef("G", ("h", "p"), "input"),
        "F": TensorRef("F", ("m", "p"), "output"),
    }
    blocks = (
        ComputeBlock("C", ("A", "B"), "C", ("m", "n"), ("k",), epilogue=epilogue),
        ComputeBlock("E", ("C", "D"), "E", ("m", "h"), ("n",), epilogue=epilogue),
        ComputeBlock("F", ("E", "G"), "F", ("m", "p"), ("h",)),
    )
    return ComputeChain(
        name or f"gemm3_chain_b{batch}_m{m}n{n}k{k}h{h}p{p}",
        loops,
        blocks,
        tensors,
        batch=batch,
        dtype=dtype,
    )


def attention_chain(
    heads: int,
    m: int,
    n: int,
    k: int,
    h: int,
    name: str | None = None,
    dtype: str = "float16",
    batch: int = 1,
) -> ComputeChain:
    """Self-attention module: ``S = Q K^T / sqrt(k); O = softmax(S) V``.

    Heads (and any outer batch) fold into the chain's batch axis — each
    head's attention is independent, exactly how fused attention kernels
    parallelize. ``m``/``n`` are query/key sequence lengths, ``k`` the QK
    head dim, ``h`` the V head dim (paper's Table III columns).
    """
    loops = {"m": m, "n": n, "k": k, "h": h}
    tensors = {
        "Q": TensorRef("Q", ("m", "k"), "input"),
        "K": TensorRef("K", ("n", "k"), "input"),
        "S": TensorRef("S", ("m", "n"), "intermediate"),
        "V": TensorRef("V", ("n", "h"), "input"),
        "O": TensorRef("O", ("m", "h"), "output"),
    }
    blocks = (
        ComputeBlock("S", ("Q", "K"), "S", ("m", "n"), ("k",), scale=1.0 / float(k) ** 0.5),
        ComputeBlock("O", ("S", "V"), "O", ("m", "h"), ("n",), softmax_over="n"),
    )
    return ComputeChain(
        name or f"attention_h{heads}_m{m}n{n}k{k}h{h}",
        loops,
        blocks,
        tensors,
        batch=heads * batch,
        dtype=dtype,
    )
