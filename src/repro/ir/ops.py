"""Graph-level operators (the Relay-IR substitute).

End-to-end models (BERT et al.) are expressed as graphs of these operators.
Each operator knows its output shape, FLOP count, minimal DRAM traffic, and
how to execute itself on numpy arrays — enough for the partitioner to
classify it, for the baselines to price it, and for correctness tests to
run whole models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ir.tensor import TensorSpec
from repro.utils import prod

__all__ = [
    "Op",
    "Dense",
    "BatchMatmul",
    "Softmax",
    "Add",
    "BiasAdd",
    "Activation",
    "LayerNorm",
    "Scale",
    "Reshape",
    "Transpose",
]


@dataclass(frozen=True)
class Op:
    """Base class: an operator instance bound to concrete input shapes."""

    inputs: tuple[str, ...]
    output: str

    # -- interface -----------------------------------------------------------

    def infer_shape(self, shapes: dict[str, tuple[int, ...]]) -> tuple[int, ...]:
        raise NotImplementedError

    def flops(self, shapes: dict[str, tuple[int, ...]]) -> float:
        """Floating-point operations for one execution."""
        raise NotImplementedError

    def execute(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    @property
    def compute_intensive(self) -> bool:
        """Whether this is a contraction-style op (GEMM family)."""
        return False

    def io_bytes(self, shapes: dict[str, tuple[int, ...]], dtype_bytes: int = 2) -> float:
        """Minimal DRAM traffic: all inputs read once, output written once."""
        total = sum(prod(shapes[t]) for t in self.inputs)
        total += prod(self.infer_shape(shapes))
        return float(total) * dtype_bytes

    @property
    def kind(self) -> str:
        return type(self).__name__


def _check(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(msg)


@dataclass(frozen=True)
class Dense(Op):
    """``Y[..., n] = X[..., k] @ W[k, n]`` with optional bias/activation fused
    at the graph level (epilogue fusion is a baseline capability, so the
    graph keeps bias/activation as separate ops by default)."""

    units: int = 0

    def infer_shape(self, shapes):
        x, w = shapes[self.inputs[0]], shapes[self.inputs[1]]
        _check(x[-1] == w[0], f"Dense {self.output}: inner dims {x[-1]} != {w[0]}")
        return (*x[:-1], w[1])

    def flops(self, shapes):
        x, w = shapes[self.inputs[0]], shapes[self.inputs[1]]
        return 2.0 * prod(x) * w[1]

    def execute(self, arrays):
        x, w = arrays[self.inputs[0]], arrays[self.inputs[1]]
        return x @ w

    @property
    def compute_intensive(self) -> bool:
        return True


@dataclass(frozen=True)
class BatchMatmul(Op):
    """``Y[b, m, n] = X[b, m, k] @ Z[b, k, n]``, with optional transposes."""

    transpose_a: bool = False
    transpose_b: bool = False

    def _dims(self, shapes):
        a, b = shapes[self.inputs[0]], shapes[self.inputs[1]]
        _check(len(a) == 3 and len(b) == 3, f"BatchMatmul {self.output}: need rank-3 inputs")
        m, ka = (a[2], a[1]) if self.transpose_a else (a[1], a[2])
        kb, n = (b[2], b[1]) if self.transpose_b else (b[1], b[2])
        _check(a[0] == b[0], f"BatchMatmul {self.output}: batch mismatch {a[0]} != {b[0]}")
        _check(ka == kb, f"BatchMatmul {self.output}: inner dims {ka} != {kb}")
        return a[0], m, n, ka

    def infer_shape(self, shapes):
        b, m, n, _ = self._dims(shapes)
        return (b, m, n)

    def flops(self, shapes):
        b, m, n, k = self._dims(shapes)
        return 2.0 * b * m * n * k

    def execute(self, arrays):
        a, b = arrays[self.inputs[0]], arrays[self.inputs[1]]
        if self.transpose_a:
            a = np.swapaxes(a, 1, 2)
        if self.transpose_b:
            b = np.swapaxes(b, 1, 2)
        return a @ b

    @property
    def compute_intensive(self) -> bool:
        return True


@dataclass(frozen=True)
class Softmax(Op):
    axis: int = -1

    def infer_shape(self, shapes):
        return shapes[self.inputs[0]]

    def flops(self, shapes):
        return 5.0 * prod(shapes[self.inputs[0]])

    def execute(self, arrays):
        x = arrays[self.inputs[0]]
        shifted = x - x.max(axis=self.axis, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=self.axis, keepdims=True)


@dataclass(frozen=True)
class Add(Op):
    def infer_shape(self, shapes):
        a, b = shapes[self.inputs[0]], shapes[self.inputs[1]]
        _check(a == b, f"Add {self.output}: shape mismatch {a} != {b}")
        return a

    def flops(self, shapes):
        return float(prod(shapes[self.inputs[0]]))

    def execute(self, arrays):
        return arrays[self.inputs[0]] + arrays[self.inputs[1]]


@dataclass(frozen=True)
class BiasAdd(Op):
    """Adds a 1-D bias along the last axis."""

    def infer_shape(self, shapes):
        x, b = shapes[self.inputs[0]], shapes[self.inputs[1]]
        _check(len(b) == 1 and b[0] == x[-1], f"BiasAdd {self.output}: bad bias shape {b}")
        return x

    def flops(self, shapes):
        return float(prod(shapes[self.inputs[0]]))

    def execute(self, arrays):
        return arrays[self.inputs[0]] + arrays[self.inputs[1]]


@dataclass(frozen=True)
class Activation(Op):
    fn: str = "relu"

    def __post_init__(self):
        _check(self.fn in ("relu", "gelu", "tanh"), f"unknown activation {self.fn!r}")

    def infer_shape(self, shapes):
        return shapes[self.inputs[0]]

    def flops(self, shapes):
        cost = {"relu": 1.0, "gelu": 8.0, "tanh": 4.0}[self.fn]
        return cost * prod(shapes[self.inputs[0]])

    def execute(self, arrays):
        x = arrays[self.inputs[0]]
        if self.fn == "relu":
            return np.maximum(x, 0.0)
        if self.fn == "gelu":
            return 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3)))
        return np.tanh(x)


@dataclass(frozen=True)
class LayerNorm(Op):
    """Normalizes the last axis; gamma/beta are the 2nd/3rd inputs."""

    eps: float = 1e-5

    def infer_shape(self, shapes):
        return shapes[self.inputs[0]]

    def flops(self, shapes):
        return 8.0 * prod(shapes[self.inputs[0]])

    def execute(self, arrays):
        x = arrays[self.inputs[0]]
        gamma, beta = arrays[self.inputs[1]], arrays[self.inputs[2]]
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mu) / np.sqrt(var + self.eps) * gamma + beta


@dataclass(frozen=True)
class Scale(Op):
    factor: float = 1.0

    def infer_shape(self, shapes):
        return shapes[self.inputs[0]]

    def flops(self, shapes):
        return float(prod(shapes[self.inputs[0]]))

    def execute(self, arrays):
        return arrays[self.inputs[0]] * self.factor


@dataclass(frozen=True)
class Reshape(Op):
    """Pure layout op: zero FLOPs, traffic only if materialized."""

    shape: tuple[int, ...] = ()

    def infer_shape(self, shapes):
        _check(
            prod(shapes[self.inputs[0]]) == prod(self.shape),
            f"Reshape {self.output}: element count mismatch",
        )
        return self.shape

    def flops(self, shapes):
        return 0.0

    def execute(self, arrays):
        return arrays[self.inputs[0]].reshape(self.shape)


@dataclass(frozen=True)
class Transpose(Op):
    axes: tuple[int, ...] = ()

    def infer_shape(self, shapes):
        x = shapes[self.inputs[0]]
        _check(sorted(self.axes) == list(range(len(x))), f"Transpose {self.output}: bad axes")
        return tuple(x[a] for a in self.axes)

    def flops(self, shapes):
        return 0.0

    def execute(self, arrays):
        return np.transpose(arrays[self.inputs[0]], self.axes)
