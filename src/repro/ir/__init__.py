"""Tensor IR: tensor specs, graph-level operators, and the ComputeChain
fusion IR that the tiling/search layers consume."""

from repro.ir.chain import (
    ComputeBlock,
    ComputeChain,
    TensorRef,
    attention_chain,
    gemm3_chain,
    gemm_chain,
)
from repro.ir.graph import Graph, GraphNode
from repro.ir.ops import (
    Activation,
    Add,
    BatchMatmul,
    BiasAdd,
    Dense,
    LayerNorm,
    Op,
    Reshape,
    Scale,
    Softmax,
    Transpose,
)
from repro.ir.tensor import DTYPE_BYTES, TensorSpec

__all__ = [
    "TensorSpec",
    "DTYPE_BYTES",
    "ComputeChain",
    "ComputeBlock",
    "TensorRef",
    "gemm_chain",
    "gemm3_chain",
    "attention_chain",
    "Graph",
    "GraphNode",
    "Op",
    "Dense",
    "BatchMatmul",
    "Softmax",
    "Add",
    "BiasAdd",
    "Activation",
    "LayerNorm",
    "Scale",
    "Reshape",
    "Transpose",
]
