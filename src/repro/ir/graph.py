"""Operator graph (the Relay-module substitute) with shape inference,
execution, and the pattern queries the MBCI partitioner needs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.ops import Op
from repro.ir.tensor import TensorSpec
from repro.utils import prod, rng_for

__all__ = ["Graph", "GraphNode"]


@dataclass(frozen=True)
class GraphNode:
    """One operator application; ``op.output`` names the produced tensor."""

    op: Op

    @property
    def output(self) -> str:
        return self.op.output

    @property
    def inputs(self) -> tuple[str, ...]:
        return self.op.inputs


class Graph:
    """A topologically-ordered operator graph.

    Nodes must be appended producer-before-consumer (builders do this
    naturally); shapes are inferred incrementally so errors surface at the
    offending ``add``.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: list[GraphNode] = []
        self.params: dict[str, TensorSpec] = {}
        self.inputs: dict[str, TensorSpec] = {}
        self._shapes: dict[str, tuple[int, ...]] = {}
        self.outputs: list[str] = []

    # -- construction --------------------------------------------------------

    def add_input(self, name: str, shape: tuple[int, ...], dtype: str = "float16") -> str:
        spec = TensorSpec(name, shape, dtype)
        if name in self._shapes:
            raise ValueError(f"duplicate tensor {name!r}")
        self.inputs[name] = spec
        self._shapes[name] = shape
        return name

    def add_param(self, name: str, shape: tuple[int, ...], dtype: str = "float16") -> str:
        spec = TensorSpec(name, shape, dtype)
        if name in self._shapes:
            raise ValueError(f"duplicate tensor {name!r}")
        self.params[name] = spec
        self._shapes[name] = shape
        return name

    def add(self, op: Op) -> str:
        for t in op.inputs:
            if t not in self._shapes:
                raise ValueError(f"op {op.output!r} consumes undefined tensor {t!r}")
        if op.output in self._shapes:
            raise ValueError(f"duplicate tensor {op.output!r}")
        self._shapes[op.output] = tuple(op.infer_shape(self._shapes))
        self.nodes.append(GraphNode(op))
        return op.output

    def mark_output(self, name: str) -> None:
        if name not in self._shapes:
            raise ValueError(f"unknown tensor {name!r}")
        self.outputs.append(name)

    # -- queries ---------------------------------------------------------------

    def shape(self, name: str) -> tuple[int, ...]:
        return self._shapes[name]

    @property
    def shapes(self) -> dict[str, tuple[int, ...]]:
        return dict(self._shapes)

    def producer(self, tensor: str) -> GraphNode | None:
        for node in self.nodes:
            if node.output == tensor:
                return node
        return None

    def consumers(self, tensor: str) -> list[GraphNode]:
        return [n for n in self.nodes if tensor in n.inputs]

    def consumer_map(self) -> dict[str, list[GraphNode]]:
        """Tensor -> consuming nodes, one pass over the graph.

        The partitioner queries consumers for every node; building the index
        once keeps partitioning linear in graph size. The mapping is a
        snapshot — rebuild after ``add``.
        """
        out: dict[str, list[GraphNode]] = {}
        for node in self.nodes:
            for t in dict.fromkeys(node.inputs):  # dedupe: x+x is one consumer
                out.setdefault(t, []).append(node)
        return out

    def reaches(
        self,
        source: str,
        targets: set[str],
        consumers: dict[str, list[GraphNode]] | None = None,
    ) -> bool:
        """Whether ``source``'s value flows (transitively) into any target.

        Used by the partitioner's contraction-acyclicity check: an external
        input of a fusion group must not depend on a tensor the group
        produces. Pass a prebuilt ``consumer_map()`` to avoid re-indexing
        the graph on every query.
        """
        if not targets:
            return False
        if consumers is None:
            consumers = self.consumer_map()
        seen: set[str] = set()
        frontier = [source]
        while frontier:
            tensor = frontier.pop()
            if tensor in targets:
                return True
            if tensor in seen:
                continue
            seen.add(tensor)
            frontier.extend(n.output for n in consumers.get(tensor, []))
        return False

    def total_flops(self) -> float:
        return sum(n.op.flops(self._shapes) for n in self.nodes)

    def flops_by_kind(self) -> dict[str, float]:
        """FLOPs aggregated per operator kind (the paper's BERT accounting)."""
        out: dict[str, float] = {}
        for node in self.nodes:
            out[node.op.kind] = out.get(node.op.kind, 0.0) + node.op.flops(self._shapes)
        return out

    # -- execution --------------------------------------------------------------

    def random_feed(self, seed: int = 0, scale: float = 0.1) -> dict[str, np.ndarray]:
        """Random fp32 values for every graph input and parameter."""
        feed: dict[str, np.ndarray] = {}
        for name, spec in {**self.inputs, **self.params}.items():
            rng = rng_for("graph-feed", self.name, name, seed)
            feed[name] = (rng.standard_normal(spec.shape) * scale).astype(np.float32)
        return feed

    def execute(self, feed: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Run all nodes in order; returns the full tensor environment."""
        env = dict(feed)
        for name in (*self.inputs, *self.params):
            if name not in env:
                raise KeyError(f"missing feed for {name!r}")
        for node in self.nodes:
            env[node.output] = node.op.execute(env)
        return env

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph({self.name}: {len(self.nodes)} ops, outputs={self.outputs})"
