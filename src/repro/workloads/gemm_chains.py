"""Table II: the batch GEMM chain configurations G1-G12.

``(batch, M, K) x (batch, K, N)`` is the first GEMM, ``(batch, M, N) x
(batch, N, H)`` the second — i.e. our canonical
``C[m,n] = A[m,k] B[k,n]; E[m,h] = C[m,n] D[n,h]`` chain.
"""

from __future__ import annotations

from repro.ir.chain import ComputeChain, gemm_chain

__all__ = ["GEMM_CHAIN_CONFIGS", "gemm_workload", "gemm_workloads"]

#: name -> (batch, M, N, K, H), transcribed from Table II.
GEMM_CHAIN_CONFIGS: dict[str, tuple[int, int, int, int, int]] = {
    "G1": (1, 512, 256, 64, 64),
    "G2": (1, 512, 256, 64, 128),
    "G3": (1, 512, 256, 64, 256),
    "G4": (1, 512, 512, 256, 256),
    "G5": (1, 512, 512, 512, 256),
    "G6": (1, 512, 512, 1024, 256),
    "G7": (1, 512, 512, 128, 128),
    "G8": (1, 1024, 512, 128, 128),
    "G9": (1, 2048, 512, 128, 128),
    "G10": (1, 1024, 1024, 128, 128),
    "G11": (4, 1024, 1024, 128, 128),
    "G12": (8, 1024, 1024, 128, 128),
}


def gemm_workload(name: str) -> ComputeChain:
    """Build one Table II chain by name (``"G1"`` ... ``"G12"``)."""
    try:
        batch, m, n, k, h = GEMM_CHAIN_CONFIGS[name]
    except KeyError:
        raise KeyError(f"unknown GEMM chain {name!r}; known: {sorted(GEMM_CHAIN_CONFIGS)}") from None
    return gemm_chain(batch, m, n, k, h, name=name)


def gemm_workloads(names: list[str] | None = None) -> list[ComputeChain]:
    """All (or the named subset of) Table II chains, in order."""
    keys = names or list(GEMM_CHAIN_CONFIGS)
    return [gemm_workload(k) for k in keys]
