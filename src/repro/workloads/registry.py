"""Workload registry: one namespace for every benchmarkable workload.

Two levels of workload exist:

* **chain** — a single :class:`~repro.ir.chain.ComputeChain` (the paper's
  Table II GEMM chains and Table III attention modules): tuned directly.
* **model** — a whole operator :class:`~repro.ir.graph.Graph` (encoders
  and the workload zoo's FFN/LoRA/GQA/cross-attention/residual-branch
  blocks): partitioned first, then each fusion group is tuned.

The registry is what ``compile_model`` (by-name compilation), the CLI
(``tune``/``partition``/``list``), the ``zoo`` experiment driver, and the
benchmark smoke job share, so a workload registered once is reachable
everywhere — including user-registered ones via :func:`register_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from repro.ir.chain import ComputeChain
from repro.ir.graph import Graph

__all__ = [
    "WorkloadSpec",
    "register_workload",
    "get_workload",
    "build_workload",
    "workload_names",
    "iter_workloads",
    "workload_families",
]

Builder = Callable[[], Union[ComputeChain, Graph]]


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload.

    Attributes:
        name: Registry key (case-insensitive lookup, stored as given).
        level: ``"chain"`` or ``"model"``.
        family: Workload family (``"gemm_chain"``, ``"attention"``,
            ``"ffn"``, ``"lora"``, ``"gqa"``, ``"cross_attention"``,
            ``"residual_branch"``, ``"encoder"``, ...).
        description: One line for ``repro list`` and the README table.
        source: Where the shape comes from (paper table, model family).
        builder: Zero-argument callable producing the chain or graph.
    """

    name: str
    level: str
    family: str
    description: str
    source: str
    builder: Builder = field(repr=False)

    def __post_init__(self) -> None:
        if self.level not in ("chain", "model"):
            raise ValueError(f"workload {self.name!r}: bad level {self.level!r}")

    def build(self) -> ComputeChain | Graph:
        return self.builder()


_REGISTRY: dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Register a workload; the name must be new (case-insensitively)."""
    key = spec.name.lower()
    if key in _REGISTRY:
        raise ValueError(f"workload {spec.name!r} already registered")
    _REGISTRY[key] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def build_workload(name: str) -> ComputeChain | Graph:
    """Build the chain or graph a workload names."""
    return get_workload(name).build()


def workload_names(level: str | None = None, family: str | None = None) -> list[str]:
    """Registered names, optionally filtered by level and/or family."""
    return [spec.name for spec in iter_workloads(level=level, family=family)]


def iter_workloads(level: str | None = None, family: str | None = None) -> list[WorkloadSpec]:
    """Registered specs in registration order, optionally filtered."""
    return [
        spec
        for spec in _REGISTRY.values()
        if (level is None or spec.level == level)
        and (family is None or spec.family == family)
    ]


def workload_families(level: str | None = None) -> list[str]:
    """Distinct families in registration order."""
    seen: list[str] = []
    for spec in iter_workloads(level=level):
        if spec.family not in seen:
            seen.append(spec.family)
    return seen
