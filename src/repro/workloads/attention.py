"""Table III: the self-attention module configurations S1-S9.

``#heads`` folds into the chain batch; ``M``/``N`` are query/key sequence
lengths, ``K``/``H`` the QK and V head dims. The source networks (BERT,
ViT, MLP-Mixer) are recorded so the end-to-end experiment can reuse the
same shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.chain import ComputeChain, attention_chain

__all__ = ["AttentionConfig", "ATTENTION_CONFIGS", "attention_workload", "attention_workloads"]


@dataclass(frozen=True)
class AttentionConfig:
    heads: int
    m: int
    n: int
    k: int
    h: int
    network: str


#: Transcribed from Table III.
ATTENTION_CONFIGS: dict[str, AttentionConfig] = {
    "S1": AttentionConfig(8, 512, 512, 64, 64, "Bert-Small"),
    "S2": AttentionConfig(12, 512, 512, 64, 64, "Bert-Base"),
    "S3": AttentionConfig(16, 512, 512, 64, 64, "Bert-Large"),
    "S4": AttentionConfig(12, 256, 256, 64, 64, "ViT-Base"),
    "S5": AttentionConfig(16, 256, 256, 64, 64, "ViT-Large"),
    "S6": AttentionConfig(16, 256, 256, 80, 80, "ViT-Huge"),
    "S7": AttentionConfig(1, 512, 256, 64, 64, "MLP-Mixer"),
    "S8": AttentionConfig(1, 768, 384, 64, 64, "MLP-Mixer"),
    "S9": AttentionConfig(1, 1024, 512, 64, 64, "MLP-Mixer"),
}


def attention_workload(name: str) -> ComputeChain:
    """Build one Table III module by name (``"S1"`` ... ``"S9"``)."""
    try:
        cfg = ATTENTION_CONFIGS[name]
    except KeyError:
        raise KeyError(f"unknown attention module {name!r}; known: {sorted(ATTENTION_CONFIGS)}") from None
    return attention_chain(cfg.heads, cfg.m, cfg.n, cfg.k, cfg.h, name=name)


def attention_workloads(names: list[str] | None = None) -> list[ComputeChain]:
    """All (or the named subset of) Table III modules, in order."""
    keys = names or list(ATTENTION_CONFIGS)
    return [attention_workload(k) for k in keys]
