"""The workload zoo: every registered chain and model workload.

Chain-level entries are the paper's Table II / Table III configurations;
model-level entries are whole graphs for the general-DAG partitioner —
the four new families the legacy pattern matchers could not fuse
(transformer FFN/MLP blocks, LoRA-augmented GEMMs, grouped-query and
cross-attention, residual multi-branch blocks) plus the end-to-end
encoders. Model builders import lazily so the zoo can be imported from
anywhere in the package without cycles.
"""

from __future__ import annotations

from repro.workloads.attention import ATTENTION_CONFIGS, attention_workload
from repro.workloads.gemm_chains import GEMM_CHAIN_CONFIGS, gemm_workload
from repro.workloads.registry import WorkloadSpec, register_workload

__all__ = ["MODEL_ZOO_FAMILIES", "serve_mix"]

#: The model-level families the general partitioner is expected to fuse.
MODEL_ZOO_FAMILIES = ("ffn", "lora", "gqa", "cross_attention", "residual_branch")

#: Chain-level serving mix, interleaving GEMM chains and attention modules
#: across small/large shapes — the default request population of the serve
#: load generator and the ``repro serve`` demo.
_SERVE_MIX = ("G1", "S1", "G4", "S2", "G7", "S3", "G2", "S5", "G10", "S7", "G12", "S9")


def serve_mix(count: int = 8) -> list[str]:
    """The first ``count`` workloads of the serving mix (distinct signatures).

    Every name is a chain-level registry entry with a distinct workload
    signature, so a load generator replaying this mix exercises ``count``
    distinct cache keys. Counts beyond the curated list extend with the
    remaining chain-level registry entries.
    """
    if count < 1:
        raise ValueError(f"serve mix needs >= 1 workload, got {count}")
    mix = list(_SERVE_MIX)
    if count > len(mix):
        from repro.workloads.registry import workload_names

        mix.extend(n for n in workload_names(level="chain") if n not in _SERVE_MIX)
    if count > len(mix):
        raise ValueError(f"only {len(mix)} chain-level workloads exist, asked {count}")
    return mix[:count]


def _chain(name: str, family: str, description: str, source: str, build) -> None:
    register_workload(
        WorkloadSpec(
            name=name,
            level="chain",
            family=family,
            description=description,
            source=source,
            builder=build,
        )
    )


def _model(name: str, family: str, description: str, source: str, build) -> None:
    register_workload(
        WorkloadSpec(
            name=name,
            level="model",
            family=family,
            description=description,
            source=source,
            builder=build,
        )
    )


for _name, _cfg in GEMM_CHAIN_CONFIGS.items():
    _chain(
        _name,
        "gemm_chain",
        f"batch GEMM chain b={_cfg[0]} M={_cfg[1]} N={_cfg[2]} K={_cfg[3]} H={_cfg[4]}",
        "Table II",
        lambda n=_name: gemm_workload(n),
    )

for _name, _acfg in ATTENTION_CONFIGS.items():
    _chain(
        _name,
        "attention",
        f"self-attention heads={_acfg.heads} M={_acfg.m} N={_acfg.n} "
        f"K={_acfg.k} H={_acfg.h}",
        f"Table III ({_acfg.network})",
        lambda n=_name: attention_workload(n),
    )


def _build_ffn_base():
    from repro.frontend.models import ffn_block

    return ffn_block(seq=2048, hidden=256, inner=1024)


def _build_ffn_narrow():
    from repro.frontend.models import ffn_block

    return ffn_block(seq=2048, hidden=128, inner=512)


def _build_lora_base():
    from repro.frontend.models import lora_linear

    return lora_linear(seq=512, hidden=1024, rank=16)


def _build_lora_rank64():
    from repro.frontend.models import lora_linear

    return lora_linear(seq=256, hidden=2048, rank=64)


def _build_gqa():
    from repro.frontend.models import gqa_attention

    return gqa_attention(q_heads=32, kv_heads=8, seq=256, head_dim=64)


def _build_xattn():
    from repro.frontend.models import cross_attention

    return cross_attention(heads=12, q_seq=256, kv_seq=1024, head_dim=64)


def _build_resbranch():
    from repro.frontend.models import residual_branch_block

    return residual_branch_block(batch=4, seq=512, width=128)


def _build_bert_small():
    from repro.frontend.models import bert_encoder

    return bert_encoder("Bert-Small", 512)


def _build_vit_base():
    from repro.frontend.models import vit_encoder

    return vit_encoder("ViT-Base", tokens=256)


def _build_mixer():
    from repro.frontend.models import mlp_mixer

    return mlp_mixer(tokens=256, channels=128, layers=4, token_inner=64)


_model(
    "ffn-base",
    "ffn",
    "long-sequence FFN: seq 2048, Dense 256->1024 -> gelu -> Dense 1024->256",
    "transformer MLP",
    _build_ffn_base,
)
_model(
    "ffn-narrow",
    "ffn",
    "long-sequence FFN: seq 2048, Dense 128->512 -> gelu -> Dense 512->128",
    "transformer MLP",
    _build_ffn_narrow,
)
_model(
    "lora-base",
    "lora",
    "LoRA update (x A) B with rank 16 beside a frozen 1024x1024 base GEMM",
    "LoRA fine-tuning",
    _build_lora_base,
)
_model(
    "lora-rank64",
    "lora",
    "LoRA update (x A) B with rank 64 beside a frozen 2048x2048 base GEMM",
    "LoRA fine-tuning",
    _build_lora_rank64,
)
_model(
    "gqa-32x8",
    "gqa",
    "grouped-query attention: 32 query heads sharing 8 KV heads, seq 256",
    "Llama-style GQA",
    _build_gqa,
)
_model(
    "xattn-enc-dec",
    "cross_attention",
    "cross-attention: 256 decoder queries over a 1024-token encoder",
    "encoder-decoder",
    _build_xattn,
)
_model(
    "resbranch",
    "residual_branch",
    "two-branch residual block; one branch fuses, one is fanout-blocked",
    "multi-branch nets",
    _build_resbranch,
)
_model(
    "bert-small",
    "encoder",
    "4-layer BERT encoder, seq 512 (attention cores fuse)",
    "Fig. 9",
    _build_bert_small,
)
_model(
    "vit-base",
    "encoder",
    "12-layer ViT encoder, 256 tokens",
    "Table III S4",
    _build_vit_base,
)
_model(
    "mlp-mixer",
    "encoder",
    "4-layer MLP-Mixer; token-mixing Dense pairs fuse as GEMM chains",
    "Table III S7-S9",
    _build_mixer,
)
