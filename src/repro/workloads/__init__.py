"""Benchmark workloads: Table II/III chains plus the model-level zoo.

Importing this package populates the registry (see ``registry.py``): the
paper's G1-G12 GEMM chains and S1-S9 attention modules at chain level, and
the workload zoo's FFN, LoRA, GQA, cross-attention, residual-branch, and
encoder graphs at model level.
"""

from repro.workloads.attention import ATTENTION_CONFIGS, attention_workload, attention_workloads
from repro.workloads.gemm_chains import GEMM_CHAIN_CONFIGS, gemm_workload, gemm_workloads
from repro.workloads.registry import (
    WorkloadSpec,
    build_workload,
    get_workload,
    iter_workloads,
    register_workload,
    workload_families,
    workload_names,
)
from repro.workloads.zoo import MODEL_ZOO_FAMILIES, serve_mix

__all__ = [
    "GEMM_CHAIN_CONFIGS",
    "gemm_workload",
    "gemm_workloads",
    "ATTENTION_CONFIGS",
    "attention_workload",
    "attention_workloads",
    "WorkloadSpec",
    "register_workload",
    "get_workload",
    "build_workload",
    "workload_names",
    "iter_workloads",
    "workload_families",
    "MODEL_ZOO_FAMILIES",
    "serve_mix",
]
