"""Benchmark workloads: the paper's Table II and Table III configurations."""

from repro.workloads.attention import ATTENTION_CONFIGS, attention_workload, attention_workloads
from repro.workloads.gemm_chains import GEMM_CHAIN_CONFIGS, gemm_workload, gemm_workloads

__all__ = [
    "GEMM_CHAIN_CONFIGS",
    "gemm_workload",
    "gemm_workloads",
    "ATTENTION_CONFIGS",
    "attention_workload",
    "attention_workloads",
]
