"""Compilation cache: persistent schedule reuse and batch tuning.

MCFuser's headline is *rapid* tuning; this package makes repeated tuning
free. The pieces:

* :mod:`repro.cache.signature` — content hashes over (op chain, shapes,
  dtype, GPU spec, variant); the cache key everything below shares.
* :mod:`repro.cache.store`     — entry format, in-memory LRU, and the
  versioned JSON-on-disk store with eviction and corruption recovery.
* :mod:`repro.cache.cache`     — :class:`ScheduleCache`, the two-level
  front door the tuner consults before any enumeration.
* :mod:`repro.cache.batch`     — :class:`BatchTuner`, signature-dedup +
  ``concurrent.futures`` tuning of workload lists (``repro cache warmup``).

See ``docs/architecture.md`` for where the cache sits in the pipeline.
"""

from repro.cache.batch import BatchResult, BatchTuner
from repro.cache.cache import CacheStats, ScheduleCache, default_cache, default_cache_dir
from repro.cache.signature import (
    SIGNATURE_VERSION,
    chain_fingerprint,
    gpu_fingerprint,
    schedule_signature,
    workload_signature,
)
from repro.cache.store import SCHEMA_VERSION, CacheDecodeError, CacheEntry, LRUCache, PersistentStore

__all__ = [
    "SIGNATURE_VERSION",
    "SCHEMA_VERSION",
    "chain_fingerprint",
    "gpu_fingerprint",
    "workload_signature",
    "schedule_signature",
    "CacheDecodeError",
    "CacheEntry",
    "LRUCache",
    "PersistentStore",
    "CacheStats",
    "ScheduleCache",
    "default_cache",
    "default_cache_dir",
    "BatchResult",
    "BatchTuner",
]
