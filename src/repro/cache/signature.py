"""Workload signatures: stable content hashes for the compilation cache.

A *workload signature* identifies everything that determines the outcome of
tuning: the operator chain's structure (blocks, tensors, loop extents,
dtype, batch), the target GPU's hardware description, and the tuner variant.
Two :class:`~repro.ir.chain.ComputeChain` objects with the same structure
hash identically even if they were built independently or carry different
display names — a BERT model's twelve identical attention layers share one
signature, which is what lets the cache (and :class:`~repro.cache.batch.
BatchTuner`) tune the shape once and reuse the schedule everywhere.

Signatures are hex digests of a canonical JSON rendering, hashed with
BLAKE2b. ``repr``-based hashing is deliberately avoided: dict ordering,
float formatting, and dataclass field additions must not silently change
signatures between releases — any such change must go through
:data:`SIGNATURE_VERSION`.

This module is dependency-free within the package (chains, schedules, and
GPU specs are consumed duck-typed) so that any layer — frontend partitioner,
codegen runtime, search tuner — can import it without cycles.
"""

from __future__ import annotations

import hashlib
import json

__all__ = [
    "SIGNATURE_VERSION",
    "DEFAULT_STRATEGY",
    "DEFAULT_DYNAMIC_LOOPS",
    "BUCKET_MIN",
    "variant_key",
    "bucket_of",
    "bucket_dims",
    "chain_fingerprint",
    "gpu_fingerprint",
    "workload_signature",
    "bucketed_signature",
    "schedule_signature",
]

#: The search strategy whose results the bare variant key refers to.
DEFAULT_STRATEGY = "evolutionary"


def variant_key(
    variant: str, strategy: str = DEFAULT_STRATEGY, measure_topk: int = 0
) -> str:
    """Compose the cache variant key from tuner variant, search strategy,
    and cost-model guidance.

    The default (evolutionary) strategy keeps the bare variant string, so
    caches written before pluggable strategies existed keep hitting; any
    other strategy is suffixed (``"mcfuser+random"``) — entries found by
    one strategy are never served to a tuner running another. Cost-model-
    guided tunes (``measure_topk > 0``) carry an additional ``+topk{k}``
    suffix: a schedule chosen from k measurements per round is weaker
    evidence than an exhaustively measured one and must never be silently
    served as such (nor vice versa).
    """
    key = variant if strategy == DEFAULT_STRATEGY else f"{variant}+{strategy}"
    if measure_topk > 0:
        key = f"{key}+topk{measure_topk}"
    return key

#: Bump whenever the fingerprint layout changes; old cache entries keyed by
#: a previous version can then never alias new ones.
SIGNATURE_VERSION = 1

#: Loops treated as dynamic by default under shape bucketing: the sequence-
#: length dims of the Table II/III convention (``m`` = query/token length,
#: ``n`` = key/value length). Head dims (``k``, ``h``) and hidden dims stay
#: static — production ragged traffic varies sequence length, not model
#: architecture.
DEFAULT_DYNAMIC_LOOPS = ("m", "n")

#: Smallest bucket ceiling. Matches the tensor-core minimum tile: every
#: bucket ceiling is a multiple of 16, so ceiling-tuned tiles stay
#: hardware-aligned for every length in the bucket.
BUCKET_MIN = 16


def bucket_of(size: int) -> int:
    """Power-of-two bucket ceiling of one dynamic extent.

    Lengths in ``(ceiling/2, ceiling]`` share a bucket; the floor is
    :data:`BUCKET_MIN` so tiny extents land in an aligned bucket instead of
    a degenerate one. A production mix spanning lengths ``[lo, hi]``
    therefore tunes at most ``ceil(log2(hi/lo)) + 1`` times per workload
    shape family.
    """
    if size < 1:
        raise ValueError(f"dynamic extent must be >= 1, got {size}")
    ceiling = BUCKET_MIN
    while ceiling < size:
        ceiling *= 2
    return ceiling


def bucket_dims(chain, dynamic_loops=DEFAULT_DYNAMIC_LOOPS) -> dict:
    """``loop -> bucket ceiling`` for the chain's dynamic loops.

    Loops named in ``dynamic_loops`` but absent from the chain are ignored,
    so the default ``("m", "n")`` applies uniformly to GEMM chains and
    attention modules alike.
    """
    return {
        loop: bucket_of(chain.loops[loop])
        for loop in dynamic_loops
        if loop in chain.loops
    }


def _digest(payload: dict) -> str:
    """Hash a canonical JSON rendering of ``payload`` to a 32-char hex id."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


def chain_fingerprint(chain) -> dict:
    """Canonical structural description of a :class:`ComputeChain`.

    Covers everything tuning depends on — loop extents, batch, dtype, the
    block DAG (inputs/output/spatial/reduction/softmax/epilogue/scale), and
    tensor roles. Deliberately excludes ``chain.name``, which is a display
    label: identically shaped workloads must share cache entries.

    Loop and tensor *names* do participate (they define the block DAG's
    wiring), which is why the partitioner's linearizer names both
    canonically — first-use order, attention rebuilt through the Table III
    builder. Every identically shaped fusion group of a model (or of two
    different models) therefore fingerprints identically and tunes once,
    and groups matching the paper's patterns keep hitting cache entries
    written by the chain-level G*/S* workloads.
    """
    return {
        "loops": sorted(chain.loops.items()),
        "batch": chain.batch,
        "dtype": chain.dtype,
        "blocks": [
            {
                "name": b.name,
                "inputs": list(b.inputs),
                "output": b.output,
                "spatial": list(b.spatial),
                "reduction": list(b.reduction),
                "softmax_over": b.softmax_over,
                "epilogue": b.epilogue,
                "scale": float(f"{b.scale:.12g}"),
            }
            for b in chain.blocks
        ],
        "tensors": sorted(
            (ref.name, list(ref.dims), ref.role) for ref in chain.tensors.values()
        ),
    }


def gpu_fingerprint(gpu) -> dict:
    """Canonical description of a :class:`GPUSpec`.

    Every numeric field participates: a schedule tuned for 163 KiB of shared
    memory per block is not valid evidence for a GPU with 99 KiB.
    """
    return {
        "name": gpu.name,
        "arch": gpu.arch,
        "num_sms": gpu.num_sms,
        "peak_flops": gpu.peak_flops,
        "mem_bandwidth": gpu.mem_bandwidth,
        "shared_mem_per_block": gpu.shared_mem_per_block,
        "shared_mem_per_sm": gpu.shared_mem_per_sm,
        "register_file_per_sm": gpu.register_file_per_sm,
        "max_blocks_per_sm": gpu.max_blocks_per_sm,
        "l2_bytes": gpu.l2_bytes,
        "kernel_launch_overhead": gpu.kernel_launch_overhead,
        "dram_latency": gpu.dram_latency,
    }


def workload_signature(chain, gpu, variant: str = "mcfuser") -> str:
    """Stable cache key for tuning ``chain`` on ``gpu`` under ``variant``.

    Args:
        chain: The :class:`ComputeChain` workload.
        gpu: Target :class:`GPUSpec`.
        variant: Tuner variant (``"mcfuser"`` or ``"chimera"``) — the two
            variants search different spaces, so their results must not
            alias.

    Returns:
        A 32-character hex digest, stable across processes and sessions.
    """
    return _digest(
        {
            "version": SIGNATURE_VERSION,
            "chain": chain_fingerprint(chain),
            "gpu": gpu_fingerprint(gpu),
            "variant": variant,
        }
    )


def bucketed_signature(
    chain,
    gpu,
    variant: str = "mcfuser",
    dynamic_loops=DEFAULT_DYNAMIC_LOOPS,
) -> str:
    """Bucket-generic cache key: exact dynamic extents replaced by ceilings.

    Two chains that differ only in the extents of their ``dynamic_loops``
    hash identically as long as each dynamic extent falls in the same
    power-of-two bucket — a schedule tuned at the bucket ceiling serves
    every length in the bucket (tail tiles are masked at execution time).
    The payload carries an explicit ``dynamic_dims`` marker, so a bucketed
    key can never alias an exact :func:`workload_signature` (not even for a
    chain whose dynamic extents already sit at the ceiling).
    """
    dyn = bucket_dims(chain, dynamic_loops)
    fingerprint = chain_fingerprint(chain)
    loops = dict(fingerprint["loops"])
    loops.update(dyn)
    fingerprint["loops"] = sorted(loops.items())
    return _digest(
        {
            "version": SIGNATURE_VERSION,
            "chain": fingerprint,
            "gpu": gpu_fingerprint(gpu),
            "variant": variant,
            "dynamic_dims": sorted(dyn.items()),
        }
    )


def schedule_signature(schedule, gpu) -> str:
    """Cache key for one *compiled* schedule (kernel memoization).

    Extends the workload signature with the concrete tiling decision —
    expression, tile sizes, and whether the DAG optimization ran — so the
    codegen runtime can reuse a compiled module exactly when the fused
    kernel would be byte-identical.
    """
    return _digest(
        {
            "version": SIGNATURE_VERSION,
            "chain": chain_fingerprint(schedule.chain),
            "gpu": gpu_fingerprint(gpu),
            "expr": schedule.expr.render(),
            "tiles": sorted(schedule.tiles.items()),
            "optimized": schedule.optimized,
        }
    )
