"""BatchTuner: deduplicated, concurrent tuning of many workloads.

Real model graphs repeat shapes heavily — every attention layer of a BERT
is the same MBCI sub-graph. ``BatchTuner`` takes an arbitrary list of
chains, groups them by :func:`~repro.cache.signature.workload_signature`,
tunes one representative per group concurrently on a thread pool, and hands
every input chain the report of its group — so a 12-layer encoder pays for
one tuning run, not twelve. With a :class:`~repro.cache.cache.ScheduleCache`
attached, representatives that were tuned in *any* earlier process are pure
cache hits, which is how ``repro cache warmup`` pre-populates a deployment.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.cache.signature import variant_key, workload_signature
from repro.gpu.specs import GPUSpec
from repro.search.tuner import MCFuserTuner, TuneReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import ScheduleCache
    from repro.ir.chain import ComputeChain

__all__ = ["BatchResult", "BatchTuner"]


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchTuner.tune_all` call.

    Attributes:
        reports: One :class:`TuneReport` per *input* chain, aligned with the
            input order; duplicated shapes share the same report object.
        signatures: The workload signature of each input chain.
        unique: Number of distinct signatures actually scheduled.
        duplicates: Input chains that rode along on another chain's tuning.
        cache_hits: Unique signatures served from the cache (zero search).
        tuning_seconds: Total simulated tuning cost across unique tunes
            (cache hits contribute zero).
    """

    reports: list[TuneReport]
    signatures: list[str]
    unique: int
    duplicates: int
    cache_hits: int
    tuning_seconds: float


class BatchTuner:
    """Tunes a batch of chains with signature dedup and a worker pool.

    Args:
        gpu: Target hardware description, shared by the whole batch.
        variant: Tuner variant applied to every chain.
        cache: Optional schedule cache consulted (and filled) per unique
            signature. The cache is thread-safe; one instance may be shared
            with other tuners.
        max_workers: Thread-pool width for concurrent tuning.
        seed: Base search seed (each tuner instance gets the same seed, so
            batch output equals sequential output).
        strategy: Search-strategy name every tuner in the batch runs
            (cache keys include it, so warmups stay strategy-faithful).
        measure_workers: Per-tuner measurement-pool width (the inner
            parallelism of each tuning run, orthogonal to ``max_workers``).
        **tuner_kwargs: Forwarded to every :class:`MCFuserTuner`
            (``population_size``, ``max_rounds``, ...).
    """

    def __init__(
        self,
        gpu: GPUSpec,
        variant: str = "mcfuser",
        cache: "ScheduleCache | None" = None,
        max_workers: int = 4,
        seed: int = 0,
        strategy: str = "evolutionary",
        measure_workers: int = 1,
        **tuner_kwargs: object,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.gpu = gpu
        self.variant = variant
        self.cache = cache
        self.max_workers = max_workers
        self.seed = seed
        self.strategy = strategy
        self.measure_workers = measure_workers
        self.tuner_kwargs = dict(tuner_kwargs)

    def _tune_one(self, chain: "ComputeChain") -> TuneReport:
        tuner = MCFuserTuner(
            self.gpu,
            variant=self.variant,
            seed=self.seed,
            cache=self.cache,
            strategy=self.strategy,
            workers=self.measure_workers,
            **self.tuner_kwargs,  # type: ignore[arg-type]
        )
        return tuner.tune(chain)

    def tune_all(self, chains: Sequence["ComputeChain"]) -> BatchResult:
        """Tune every chain, once per distinct workload signature.

        Returns a :class:`BatchResult` whose ``reports`` align with
        ``chains``. Deterministic: worker scheduling never affects which
        schedule a signature gets (each unique chain is tuned independently
        with the same seed).
        """
        sig_variant = variant_key(self.variant, self.strategy)
        signatures = [
            workload_signature(chain, self.gpu, sig_variant) for chain in chains
        ]
        representatives: dict[str, "ComputeChain"] = {}
        for sig, chain in zip(signatures, chains):
            representatives.setdefault(sig, chain)

        unique_sigs = list(representatives)
        if unique_sigs:
            workers = min(self.max_workers, len(unique_sigs))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                tuned = list(pool.map(self._tune_one, representatives.values()))
        else:
            tuned = []
        by_sig = dict(zip(unique_sigs, tuned))

        return BatchResult(
            reports=[by_sig[sig] for sig in signatures],
            signatures=signatures,
            unique=len(unique_sigs),
            duplicates=len(chains) - len(unique_sigs),
            cache_hits=sum(1 for r in tuned if r.cache_hit),
            tuning_seconds=sum(r.tuning_seconds for r in tuned),
        )
