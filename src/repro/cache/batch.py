"""BatchTuner: deduplicated, concurrent tuning of many workloads.

Real model graphs repeat shapes heavily — every attention layer of a BERT
is the same MBCI sub-graph. ``BatchTuner`` takes an arbitrary list of
chains, groups them by :func:`~repro.cache.signature.workload_signature`,
tunes one representative per group concurrently on a thread pool, and hands
every input chain the report of its group — so a 12-layer encoder pays for
one tuning run, not twelve. With a :class:`~repro.cache.cache.ScheduleCache`
attached, representatives that were tuned in *any* earlier process are pure
cache hits, which is how ``repro cache warmup`` pre-populates a deployment.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.cache.signature import workload_signature
from repro.config import SessionConfig, build_legacy_config, search_overrides
from repro.gpu.specs import GPUSpec, by_name
from repro.search.tuner import MCFuserTuner, TuneReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import ScheduleCache
    from repro.ir.chain import ComputeChain

__all__ = ["BatchResult", "BatchTuner"]

#: Sentinel distinguishing "knob not passed" from any explicit value in the
#: deprecated keyword shim.
_UNSET: Any = object()


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchTuner.tune_all` call.

    Attributes:
        reports: One :class:`TuneReport` per *input* chain, aligned with the
            input order; duplicated shapes share the same report object.
        signatures: The workload signature of each input chain.
        unique: Number of distinct signatures actually scheduled.
        duplicates: Input chains that rode along on another chain's tuning.
        cache_hits: Unique signatures served from the cache (zero search).
        tuning_seconds: Total simulated tuning cost across unique tunes
            (cache hits contribute zero).
    """

    reports: list[TuneReport]
    signatures: list[str]
    unique: int
    duplicates: int
    cache_hits: int
    tuning_seconds: float


class BatchTuner:
    """Tunes a batch of chains with signature dedup and a worker pool.

    Args:
        gpu: Target hardware description, shared by the whole batch
            (``None`` resolves the spec named by ``config.gpu``).
        variant: Deprecated — set ``config.search.variant``.
        cache: Optional schedule cache consulted (and filled) per unique
            signature. The cache is thread-safe; one instance may be shared
            with other tuners.
        max_workers: Thread-pool width for concurrent tuning. A batch-local
            resource knob, not a tuning knob: it never affects which
            schedule a signature gets, so it lives outside the config.
        seed: Deprecated — set ``config.search.seed``.
        strategy: Deprecated — set ``config.search.strategy``
            (cache keys include it, so warmups stay strategy-faithful).
        measure_workers: Deprecated — set ``config.search.workers`` (the
            inner parallelism of each tuning run, orthogonal to
            ``max_workers``).
        config: A validated :class:`~repro.config.SessionConfig` — the
            canonical way to configure the batch. Mutually exclusive with
            the deprecated keywords.
        **tuner_kwargs: Deprecated escape hatch; every key must name a
            typed tuner knob (``population_size``, ``max_rounds``, ...) and
            is routed into the config.
    """

    def __init__(
        self,
        gpu: "GPUSpec | None" = None,
        variant: str = _UNSET,
        cache: "ScheduleCache | None" = None,
        max_workers: int = 4,
        seed: int = _UNSET,
        strategy: str = _UNSET,
        measure_workers: int = _UNSET,
        config: "SessionConfig | None" = None,
        **tuner_kwargs: object,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        legacy: dict[str, Any] = {
            name: value
            for name, value in (
                ("variant", variant),
                ("seed", seed),
                ("strategy", strategy),
                ("workers", measure_workers),
            )
            if value is not _UNSET
        }
        legacy.update(search_overrides(tuner_kwargs))
        if config is not None:
            if legacy:
                raise ValueError(
                    "pass either config= or the deprecated keyword knobs, not "
                    f"both (got {sorted(legacy)}); set the SessionConfig "
                    "fields instead"
                )
        else:
            config = build_legacy_config("BatchTuner", legacy)
        self.config = config
        self.gpu = gpu if gpu is not None else by_name(config.gpu)
        self.variant = config.search.variant
        self.cache = cache
        self.max_workers = max_workers
        self.seed = config.search.seed
        self.strategy = config.search.strategy
        self.measure_workers = config.search.workers

    def _tune_one(self, chain: "ComputeChain") -> TuneReport:
        tuner = MCFuserTuner(self.gpu, cache=self.cache, config=self.config)
        return tuner.tune(chain)

    def tune_all(self, chains: Sequence["ComputeChain"]) -> BatchResult:
        """Tune every chain, once per distinct workload signature.

        Returns a :class:`BatchResult` whose ``reports`` align with
        ``chains``. Deterministic: worker scheduling never affects which
        schedule a signature gets (each unique chain is tuned independently
        with the same seed).
        """
        sig_variant = self.config.variant_key
        signatures = [
            workload_signature(chain, self.gpu, sig_variant) for chain in chains
        ]
        representatives: dict[str, "ComputeChain"] = {}
        for sig, chain in zip(signatures, chains):
            representatives.setdefault(sig, chain)

        unique_sigs = list(representatives)
        if unique_sigs:
            workers = min(self.max_workers, len(unique_sigs))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                tuned = list(pool.map(self._tune_one, representatives.values()))
        else:
            tuned = []
        by_sig = dict(zip(unique_sigs, tuned))

        return BatchResult(
            reports=[by_sig[sig] for sig in signatures],
            signatures=signatures,
            unique=len(unique_sigs),
            duplicates=len(chains) - len(unique_sigs),
            cache_hits=sum(1 for r in tuned if r.cache_hit),
            tuning_seconds=sum(r.tuning_seconds for r in tuned),
        )
