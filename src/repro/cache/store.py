"""Storage layers of the schedule cache: entries, in-memory LRU, JSON disk.

Three pieces, composed by :class:`~repro.cache.cache.ScheduleCache`:

* :class:`CacheEntry` — one tuned result, reduced to what is needed to
  rebuild the schedule without re-running search: the tiling expression
  text, the tile sizes, the DAG-optimization flag, and accounting numbers.
* :class:`LRUCache` — a bounded in-memory layer so hot workloads never
  touch the filesystem.
* :class:`PersistentStore` — a versioned JSON file with atomic writes,
  least-recently-used eviction, and corrupted-file recovery (a damaged
  store is moved aside to ``<path>.corrupt`` and an empty store started,
  never an exception into the tuning path).

The persistent store also keeps *cumulative* hit/miss counters in the file
itself, so ``repro cache stats`` reports activity across processes, not
just the current session.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["SCHEMA_VERSION", "CacheDecodeError", "CacheEntry", "LRUCache", "PersistentStore"]

#: On-disk schema version. A store written by a different version is
#: discarded (moved aside), never partially interpreted.
SCHEMA_VERSION = 1


class CacheDecodeError(ValueError):
    """A cache file or entry could not be interpreted."""


@dataclass
class CacheEntry:
    """One cached tuning result, keyed by its workload signature.

    Attributes:
        signature: :func:`~repro.cache.signature.workload_signature` key.
        workload: Human-readable chain name at store time (diagnostic only —
            never part of the key).
        gpu: GPU name at store time (diagnostic only).
        variant: Tuner variant that produced the schedule.
        expr: Tiling expression in the paper's textual syntax (``"mn(k,h)"``).
        tiles: Loop name -> tile size of the winning candidate.
        optimized: Whether the extent-1 DAG optimization was applied.
        best_time: Simulated kernel time of the winning schedule (seconds).
        tuning_seconds: Simulated tuning cost originally paid for this entry.
        created_at: Unix timestamp of the original tuning run.
        last_used: Unix timestamp of the most recent lookup (drives LRU
            eviction on disk).
        hits: Number of cache lookups served by this entry.
    """

    signature: str
    workload: str
    gpu: str
    variant: str
    expr: str
    tiles: dict[str, int]
    optimized: bool
    best_time: float
    tuning_seconds: float
    created_at: float = field(default_factory=time.time)
    last_used: float = field(default_factory=time.time)
    hits: int = 0

    def to_json(self) -> dict:
        """Plain-JSON form (inverse of :meth:`from_json`)."""
        return {
            "signature": self.signature,
            "workload": self.workload,
            "gpu": self.gpu,
            "variant": self.variant,
            "expr": self.expr,
            "tiles": dict(self.tiles),
            "optimized": self.optimized,
            "best_time": self.best_time,
            "tuning_seconds": self.tuning_seconds,
            "created_at": self.created_at,
            "last_used": self.last_used,
            "hits": self.hits,
        }

    @classmethod
    def from_json(cls, data: object) -> "CacheEntry":
        """Rebuild an entry from its JSON form; malformed data raises
        :class:`CacheDecodeError` (the store treats that as corruption)."""
        if not isinstance(data, dict):
            raise CacheDecodeError(f"cache entry must be an object, got {type(data).__name__}")
        try:
            entry = cls(
                signature=str(data["signature"]),
                workload=str(data["workload"]),
                gpu=str(data["gpu"]),
                variant=str(data["variant"]),
                expr=str(data["expr"]),
                tiles={str(k): int(v) for k, v in data["tiles"].items()},
                optimized=bool(data["optimized"]),
                best_time=float(data["best_time"]),
                tuning_seconds=float(data["tuning_seconds"]),
                created_at=float(data["created_at"]),
                last_used=float(data["last_used"]),
                hits=int(data["hits"]),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CacheDecodeError(f"malformed cache entry: {exc}") from exc
        if not entry.signature or entry.best_time <= 0 or not entry.tiles:
            raise CacheDecodeError(f"implausible cache entry for {entry.workload!r}")
        return entry


class LRUCache:
    """Bounded in-memory key -> value map with least-recently-used eviction.

    ``get`` refreshes recency; inserting beyond ``capacity`` evicts the
    least recently used entry. Capacity 0 disables the layer entirely.
    Used for both the schedule cache's memory layer (signature ->
    :class:`CacheEntry`) and codegen's compiled-kernel memo.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"LRU capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, object] = OrderedDict()

    def get(self, key: str):
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def peek(self, key: str):
        """Lookup without refreshing recency."""
        return self._entries.get(key)

    def put(self, key: str, value) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class PersistentStore:
    """JSON-on-disk schedule store with versioning, eviction, and recovery.

    The whole store is one JSON document::

        {"schema": 1, "hits": 12, "misses": 3, "entries": {sig: {...}, ...}}

    Writes are atomic (temp file + ``os.replace``) so a crash mid-write
    leaves the previous store intact, and every flush first re-reads the
    file and merges — entries written by *other* processes since our load
    are kept (ours win per signature), and counters accumulate as deltas —
    so concurrent warmup processes sharing one store do not overwrite each
    other. An unreadable, unparsable, or wrong-schema file is renamed to
    ``<path>.corrupt`` and replaced by an empty store — the cache must
    degrade, never break tuning. If the directory is unwritable, the store
    silently runs memory-only.

    The store is also safe under concurrent *threads*: a re-entrant lock
    serializes get/put/flush, and each flush writes through a per-call
    temp file (pid + thread id + sequence number), so two threads sharing
    one instance — or two instances sharing one path — can never interleave
    a partially written document into the visible file and trip the
    corruption-recovery path.
    """

    #: Distinguishes concurrent temp files within one process (two threads
    #: flushing "simultaneously" must never share a temp path).
    _flush_seq = itertools.count()

    def __init__(self, path: str | os.PathLike, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.path = os.fspath(path)
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        # counters already reflected on disk; (self.hits - _flushed_hits) is
        # the delta this process still owes the file.
        self._flushed_hits = 0
        self._flushed_misses = 0
        self._entries: dict[str, CacheEntry] = {}
        self._load()

    # -- loading / saving ----------------------------------------------------

    def _read_disk(self) -> tuple[dict[str, CacheEntry], int, int]:
        """Parse the store file; corruption quarantines it and reads empty."""
        if not os.path.exists(self.path):
            return {}, 0, 0
        try:
            with open(self.path, encoding="utf-8") as fh:
                doc = json.load(fh)
            if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
                raise CacheDecodeError(
                    f"schema {doc.get('schema') if isinstance(doc, dict) else doc!r} "
                    f"!= {SCHEMA_VERSION}"
                )
            entries = doc.get("entries")
            if not isinstance(entries, dict):
                raise CacheDecodeError("missing entries table")
            parsed = {sig: CacheEntry.from_json(raw) for sig, raw in entries.items()}
            return parsed, int(doc.get("hits", 0)), int(doc.get("misses", 0))
        except (OSError, json.JSONDecodeError, CacheDecodeError, ValueError, TypeError):
            self._quarantine()
            return {}, 0, 0

    def _load(self) -> None:
        self._entries, self.hits, self.misses = self._read_disk()
        self._flushed_hits = self.hits
        self._flushed_misses = self.misses

    def _quarantine(self) -> None:
        """Move a corrupted store aside so the evidence survives."""
        try:
            os.replace(self.path, self.path + ".corrupt")
        except OSError:
            pass

    def flush(self) -> None:
        """Merge with the on-disk state and write atomically.

        Unwritable targets degrade silently (the store keeps working in
        memory; counters stay pending for a later successful flush).
        """
        with self._lock:
            disk_entries, disk_hits, disk_misses = self._read_disk()
            # Keep entries another process added since we loaded; ours win
            # when both processes tuned the same signature.
            merged = {**disk_entries, **self._entries}
            self._entries = merged
            self._evict()
            hits = disk_hits + (self.hits - self._flushed_hits)
            misses = disk_misses + (self.misses - self._flushed_misses)
            doc = {
                "schema": SCHEMA_VERSION,
                "hits": hits,
                "misses": misses,
                "entries": {sig: e.to_json() for sig, e in self._entries.items()},
            }
            tmp = (
                f"{self.path}.tmp.{os.getpid()}"
                f".{threading.get_ident()}.{next(self._flush_seq)}"
            )
            try:
                os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh, indent=1, sort_keys=True)
                os.replace(tmp, self.path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return
            self.hits = self._flushed_hits = hits
            self.misses = self._flushed_misses = misses

    # -- access --------------------------------------------------------------

    def get(self, signature: str) -> CacheEntry | None:
        with self._lock:
            return self._entries.get(signature)

    def put(self, entry: CacheEntry) -> None:
        with self._lock:
            self._entries[entry.signature] = entry
            self._evict()
            self.flush()

    def record_hit(self, entry: CacheEntry) -> None:
        """Persist one lookup served by ``entry`` (refreshes its LRU stamp).

        Deliberately flushes per hit: a warm lookup is usually the last
        cache interaction of its process (the CLI exits right after), and
        cross-process ``cache stats`` must see the hit. The rewrite is
        bounded by ``max_entries``; a process that finds per-hit writes too
        hot should shrink the store, not batch the counters.
        """
        with self._lock:
            entry.hits += 1
            entry.last_used = time.time()
            self.hits += 1
            self.flush()

    def record_miss(self) -> None:
        """Count a miss without touching the disk.

        On the cold path a miss is almost always followed by a ``put`` of
        the freshly tuned schedule, whose flush persists the counter too —
        no point paying a full-file rewrite twice per cold tune. A miss
        with no subsequent store (e.g. an untunable chain) stays pending
        until any later flush.
        """
        with self._lock:
            self.misses += 1

    def _evict(self) -> None:
        while len(self._entries) > self.max_entries:
            oldest = min(self._entries.values(), key=lambda e: e.last_used)
            del self._entries[oldest.signature]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self._flushed_hits = 0
            self._flushed_misses = 0
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def entries(self) -> list[CacheEntry]:
        """All entries, most recently used first (for ``cache stats``)."""
        with self._lock:
            return sorted(
                self._entries.values(), key=lambda e: e.last_used, reverse=True
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, signature: str) -> bool:
        with self._lock:
            return signature in self._entries
