"""ScheduleCache: the two-level (memory LRU + JSON disk) compilation cache.

This is the front door of the caching subsystem. The tuner asks the cache
*before* generating a search space; on a hit the stored tiling decision is
re-expanded into a full :class:`~repro.tiling.schedule.Schedule` with
:func:`~repro.tiling.schedule.build_schedule` — a cheap, deterministic
rebuild that performs **zero** enumeration, pruning, or measurement. On a
miss the tuner runs the normal enumerate → prune → search pipeline and
stores the winner.

Layering::

    lookup(chain)  ->  LRU (in-process)  ->  JSON store (cross-process)  ->  miss

Hits found only on disk are promoted into the LRU. All operations are
thread-safe (``BatchTuner`` tunes concurrently against one cache).

The default persistent location is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/mcfuser-repro``; pass ``path=None`` for a memory-only cache.

Keys cover the *workload* — chain structure, shapes, dtype, GPU spec,
tuner variant, and search strategy (non-default strategies get a
``variant+strategy`` key, see :func:`~repro.cache.signature.variant_key`)
— but not the search seed or Algorithm-1 budget: the cache
stores one best-known schedule per workload and serves it regardless of
how a later caller would have searched. Callers that need a fresh search
(seed-sensitivity studies, bigger budgets) must bypass the cache.
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import dataclass

from repro.cache.signature import DEFAULT_STRATEGY, variant_key, workload_signature
from repro.cache.store import CacheEntry, LRUCache, PersistentStore
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import Schedule, build_schedule

__all__ = ["CacheStats", "ScheduleCache", "default_cache_dir", "default_cache"]

#: File name of the persistent store inside the cache directory.
STORE_FILENAME = "schedule_cache.json"


def default_cache_dir() -> str:
    """Resolve the persistent cache directory.

    ``$REPRO_CACHE_DIR`` wins when set (tests and CI point it at temporary
    directories); otherwise ``~/.cache/mcfuser-repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "mcfuser-repro")


@dataclass(frozen=True)
class CacheStats:
    """Cache counters: this session plus cumulative on-disk totals.

    ``hits``/``misses``/``stores`` count operations performed through this
    :class:`ScheduleCache` instance; ``total_hits``/``total_misses`` include
    activity persisted by earlier processes sharing the same store.
    """

    hits: int
    misses: int
    stores: int
    memory_entries: int
    disk_entries: int
    total_hits: int
    total_misses: int
    path: str | None

    @property
    def hit_rate(self) -> float:
        """Session hit rate in [0, 1] (nan before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")


class ScheduleCache:
    """Persistent, signature-keyed cache of tuned schedules.

    Args:
        path: Directory for the JSON store, or ``None`` for memory-only.
        memory_capacity: In-process LRU size (0 disables the layer).
        max_entries: Disk-store eviction threshold (least recently used
            entries are dropped first).

    Typical use::

        cache = ScheduleCache("~/.cache/mcfuser-repro")
        tuner = MCFuserTuner(A100, cache=cache)
        tuner.tune(chain)   # cold: full search, result stored
        tuner.tune(chain)   # warm: pure lookup, zero enumeration
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        memory_capacity: int = 128,
        max_entries: int = 512,
    ) -> None:
        self._lock = threading.RLock()
        self._memory = LRUCache(memory_capacity)
        self._store: PersistentStore | None = None
        self.path: str | None = None
        if path is not None:
            directory = os.path.expanduser(os.fspath(path))
            self.path = os.path.join(directory, STORE_FILENAME)
            self._store = PersistentStore(self.path, max_entries=max_entries)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ----------------------------------------------------------------

    def signature_for(self, chain, gpu, variant: str = "mcfuser") -> str:
        """The cache key this cache would use for ``(chain, gpu, variant)``."""
        return workload_signature(chain, gpu, variant)

    # -- lookup / store ------------------------------------------------------

    def get(self, chain, gpu, variant: str = "mcfuser") -> CacheEntry | None:
        """Look up a tuned schedule; records the hit/miss persistently.

        Returns the :class:`CacheEntry` on a hit (memory first, then disk,
        with disk hits promoted into the LRU), else ``None``.
        """
        return self.lookup(self.signature_for(chain, gpu, variant))[0]

    def lookup(self, signature: str) -> tuple[CacheEntry | None, str | None]:
        """Recording lookup by precomputed signature: ``(entry, layer)``.

        ``layer`` names where the hit was found (``"memory"`` or
        ``"disk"``; ``None`` on a miss) — the serving layer's tiered cache
        computes signatures once up front and needs the layer label for its
        per-tier hit counters. Accounting is identical to :meth:`get`.
        """
        with self._lock:
            entry = self._memory.get(signature)
            layer = "memory" if entry is not None else None
            if entry is None and self._store is not None:
                entry = self._store.get(signature)
                if entry is not None:
                    layer = "disk"
                    self._memory.put(signature, entry)
            if entry is None:
                self.misses += 1
                if self._store is not None:
                    self._store.record_miss()
                return None, None
            self.hits += 1
            if self._store is not None:
                self._store.record_hit(entry)
            else:
                entry.hits += 1
            return entry, layer

    def peek(self, signature: str) -> CacheEntry | None:
        """Non-recording lookup by raw signature.

        Unlike :meth:`get` this neither counts a hit/miss nor refreshes LRU
        recency — it is a planning query (used by the partitioner and the
        warmup command to see what work remains), not a tuning-path lookup.
        """
        return self.peek_tiered(signature)[0]

    def peek_tiered(self, signature: str) -> tuple[CacheEntry | None, str | None]:
        """:meth:`peek`, plus which layer held the entry (``"memory"``/
        ``"disk"``; ``None`` on a miss) — the serving layer's locked
        re-check needs the label for its per-tier hit counters."""
        with self._lock:
            entry = self._memory.peek(signature)
            if entry is not None:
                return entry, "memory"
            if self._store is not None:
                entry = self._store.get(signature)
                if entry is not None:
                    return entry, "disk"
            return None, None

    def put(self, chain, gpu, report, signature: str | None = None) -> CacheEntry | None:
        """Store the result of one tuning run (a ``TuneReport``).

        Non-finite best times (a chain with no valid schedule measurement)
        are not cached. Returns the stored entry, or ``None`` if skipped.
        ``signature`` overrides the exact workload key — the dynamic-shape
        layer stores ceiling-tuned schedules under their *bucketed*
        signature so every in-bucket length finds them.
        """
        if not math.isfinite(report.best_time) or report.best_time <= 0:
            return None
        schedule = report.best_schedule
        # Key by variant + strategy + top-k so entries stay faithful to how
        # they were found; the default strategy keeps the bare variant for
        # backward compatibility, and cost-model-guided (top-k) tunes never
        # alias exhaustively measured ones.
        variant = variant_key(
            report.variant,
            getattr(report, "strategy", DEFAULT_STRATEGY),
            getattr(report, "measure_topk", 0),
        )
        entry = CacheEntry(
            signature=signature or self.signature_for(chain, gpu, variant),
            workload=chain.name,
            gpu=gpu.name,
            variant=variant,
            expr=schedule.expr.render(),
            tiles=dict(schedule.tiles),
            optimized=schedule.optimized,
            best_time=report.best_time,
            tuning_seconds=report.tuning_seconds,
        )
        with self._lock:
            self._memory.put(entry.signature, entry)
            if self._store is not None:
                self._store.put(entry)
            self.stores += 1
        return entry

    # -- materialization -----------------------------------------------------

    def schedule_for(self, entry: CacheEntry, chain) -> Schedule:
        """Re-expand a cached tiling decision into a full schedule.

        This is a deterministic rebuild (parse the expression, re-place the
        statements) — no enumeration and no search. ``chain`` must have the
        structure the entry was created from; the caller guarantees that by
        having matched the signature.
        """
        expr = TilingExpr.parse(entry.expr)
        return build_schedule(chain, expr, dict(entry.tiles), optimize=entry.optimized)

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> CacheStats:
        """Current counters (see :class:`CacheStats`)."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                stores=self.stores,
                memory_entries=len(self._memory),
                disk_entries=len(self._store) if self._store is not None else 0,
                total_hits=self._store.hits if self._store is not None else self.hits,
                total_misses=self._store.misses if self._store is not None else self.misses,
                path=self.path,
            )

    def entries(self) -> list[CacheEntry]:
        """Persisted entries, most recently used first (empty if memory-only)."""
        with self._lock:
            return self._store.entries() if self._store is not None else []

    def clear(self) -> None:
        """Drop both layers and the on-disk file; counters reset to zero."""
        with self._lock:
            self._memory.clear()
            if self._store is not None:
                self._store.clear()
            self.hits = 0
            self.misses = 0
            self.stores = 0


def default_cache() -> ScheduleCache:
    """A persistent cache at :func:`default_cache_dir` (the CLI default)."""
    return ScheduleCache(default_cache_dir())
