"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tune <workload>``      — tune one Table II/III workload and print the
                             chosen schedule (``G1``..``G12``, ``S1``..``S9``).
* ``compare <workload>``   — run every baseline on a workload (one Fig. 8 row).
* ``experiments [name]``   — run one or all experiment drivers.
* ``list``                 — list workloads, GPUs and experiments.

Examples::

    python -m repro tune S2 --gpu a100
    python -m repro compare G4 --gpu rtx3080 --ansor-trials 256
    python -m repro experiments fig7
"""

from __future__ import annotations

import argparse

from repro.baselines import default_baselines
from repro.codegen import compile_schedule
from repro.gpu.specs import by_name
from repro.ir.chain import ComputeChain
from repro.search.tuner import MCFuserTuner
from repro.utils import fmt_time, format_table
from repro.workloads import ATTENTION_CONFIGS, GEMM_CHAIN_CONFIGS, attention_workload, gemm_workload

__all__ = ["main", "build_parser", "workload_by_name"]


def workload_by_name(name: str) -> ComputeChain:
    """Resolve ``G*``/``S*`` names to chains."""
    if name.upper().startswith("G"):
        return gemm_workload(name.upper())
    if name.upper().startswith("S"):
        return attention_workload(name.upper())
    raise KeyError(f"unknown workload {name!r} (expected G1..G12 or S1..S9)")


def cmd_tune(args: argparse.Namespace) -> int:
    gpu = by_name(args.gpu)
    chain = workload_by_name(args.workload)
    report = MCFuserTuner(gpu, seed=args.seed).tune(chain)
    print(f"workload: {chain}")
    print(f"space: {report.pruning.after_rule4} candidates "
          f"(from {report.pruning.original:,})")
    print(f"best:  {report.best_candidate.describe()}")
    print(f"time:  {fmt_time(report.best_time)}  ({report.tflops:.1f} TFLOP/s)")
    print(f"tuned in {fmt_time(report.tuning_seconds)} "
          f"({report.search.num_measurements} measurements, "
          f"{report.search.rounds} rounds)")
    print()
    print(report.best_schedule.pretty())
    if args.show_ptx:
        print()
        print(compile_schedule(report.best_schedule, gpu).ptx)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    gpu = by_name(args.gpu)
    chain = workload_by_name(args.workload)
    rows = []
    pytorch_time = None
    for baseline in default_baselines(ansor_trials=args.ansor_trials):
        result = baseline.run_chain(chain, gpu, seed=args.seed)
        if result is None:
            rows.append([baseline.name, "-", "-", "-"])
            continue
        if baseline.name == "PyTorch":
            pytorch_time = result.time
        speedup = f"{pytorch_time / result.time:.2f}x" if pytorch_time else "-"
        rows.append(
            [baseline.name, fmt_time(result.time), speedup, fmt_time(result.tuning_seconds)]
        )
    print(f"{chain} on {gpu.name}")
    print(format_table(["system", "time", "vs PyTorch", "tuning"], rows))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    if args.name:
        ALL_EXPERIMENTS[args.name].main()
    else:
        for module in ALL_EXPERIMENTS.values():
            module.main()
    return 0


def cmd_list(_: argparse.Namespace) -> int:
    print("GEMM chains (Table II):")
    for name, cfg in GEMM_CHAIN_CONFIGS.items():
        print(f"  {name:4s} batch={cfg[0]} M={cfg[1]} N={cfg[2]} K={cfg[3]} H={cfg[4]}")
    print("attention modules (Table III):")
    for name, cfg in ATTENTION_CONFIGS.items():
        print(f"  {name:4s} heads={cfg.heads} M={cfg.m} N={cfg.n} K={cfg.k} H={cfg.h}"
              f"  ({cfg.network})")
    print("GPUs: a100, rtx3080")
    from repro.experiments import ALL_EXPERIMENTS

    print(f"experiments: {', '.join(ALL_EXPERIMENTS)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_tune = sub.add_parser("tune", help="tune one workload with MCFuser")
    p_tune.add_argument("workload")
    p_tune.add_argument("--gpu", default="a100")
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--show-ptx", action="store_true")
    p_tune.set_defaults(fn=cmd_tune)

    p_cmp = sub.add_parser("compare", help="run all baselines on one workload")
    p_cmp.add_argument("workload")
    p_cmp.add_argument("--gpu", default="a100")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--ansor-trials", type=int, default=1000)
    p_cmp.set_defaults(fn=cmd_compare)

    p_exp = sub.add_parser("experiments", help="run experiment drivers")
    p_exp.add_argument("name", nargs="?", default=None)
    p_exp.set_defaults(fn=cmd_experiments)

    p_list = sub.add_parser("list", help="list workloads, GPUs and experiments")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
