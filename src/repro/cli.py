"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tune <workload>``      — tune one registered workload. Chain workloads
                             (``G1``..``G12``, ``S1``..``S9``) print the
                             chosen schedule; model workloads (``ffn-base``,
                             ``gqa-32x8``, ...) are partitioned and every
                             fusion group is tuned.
* ``partition <model>``    — partition a model workload and print its fusion
                             groups and the per-anchor rejection diagnostics.
* ``compare <workload>``   — run every baseline on a workload (one Fig. 8 row).
* ``experiments [name]``   — run one or all experiment drivers.
* ``list``                 — list workloads (chains + model zoo), GPUs and
                             experiments.
* ``config show``          — print the effective session config as a schema
                             table (field, value, default, flag, env var).
* ``config dump``          — serialize the effective config to JSON (stdout
                             or ``--out file.json``) for ``--config`` reuse.
* ``cache stats``          — show the persistent schedule cache (entries, hits,
                             per-variant and per-tier breakdowns).
* ``cache clear``          — wipe the persistent schedule cache.
* ``cache warmup``         — batch-tune workloads into the cache up front.
* ``serve``                — run the compile service under a Zipf replay load
                             (N client threads over the zoo serving mix) and
                             persist a telemetry snapshot.
* ``metrics``              — print the last serving session's telemetry
                             snapshot as JSON (includes the tuning-efficiency
                             histograms ``serve.tune.measurements`` and
                             ``serve.model.ranking_accuracy``); ``--prom``
                             renders Prometheus text exposition instead.
* ``trace <workload>``     — run one tune (chain) or whole-model compile
                             (model) with the span tracer on and write a
                             Perfetto-loadable Chrome trace (``--out``) plus
                             raw ``traces.jsonl`` in the cache dir.
                             ``serve --trace`` does the same for a whole
                             serving session.
* ``model train``          — fit the learned cost model from the measurement
                             dataset (optionally measuring workloads first to
                             grow it) and persist the snapshot.
* ``model stats``          — show the measurement dataset and cost-model
                             snapshot (samples, ranking accuracy, features).

Every tuning flag is one :class:`~repro.config.SessionConfig` field: the
flag↔field mapping lives in one declarative table (:data:`FLAG_TABLE`), and
each verb attaches the subset it supports. Verbs that tune accept
``--config file.json`` (a ``config dump`` artifact); the precedence is
defaults < ``--config`` file < ``REPRO_*`` environment < explicit flags.

``tune`` consults the persistent schedule cache by default: the second run
for the same workload/GPU is a pure lookup. Disable with ``--no-cache``;
point at a non-default store with ``--cache-dir`` (or ``$REPRO_CACHE_DIR``).

``tune`` and ``cache warmup`` accept ``--strategy`` (``evolutionary``,
``random``, ``exhaustive``, ``annealing``) to pick the search strategy over
the pruned space, and ``tune`` accepts ``--workers`` to parallelize the
per-round top-n measurements; cached schedules are keyed per strategy.
``tune --exec-backend`` picks the numeric execution engine
(``compiled``/``vectorized``/``scalar``/``auto``) and ``tune --verify best|all``
executes tuned schedules against the unfused reference.

``tune --cost-model`` turns on learned-cost-model guidance: candidates are
re-ranked by the model and only the predicted top ``--topk`` are hardware-
measured each round (falling back to measure-everything while the model is
sample-starved). The model and its measurement dataset live next to the
schedule cache and improve across runs; guided schedules are cached under a
distinct ``+topk{k}`` variant key.

Examples::

    python -m repro tune S2 --gpu a100
    python -m repro tune G4 --strategy annealing --workers 4
    python -m repro tune G4 --cost-model --topk 2
    python -m repro config dump --seed 3 --out run.json
    python -m repro tune G4 --config run.json
    python -m repro model train G1 G2 S1
    python -m repro model stats
    python -m repro compare G4 --gpu rtx3080 --ansor-trials 256
    python -m repro experiments fig7
    python -m repro cache warmup G1 G2 S1 --jobs 4 --strategy exhaustive
    python -m repro cache stats
    python -m repro serve --clients 32 --requests 8
    python -m repro metrics
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os

from repro.baselines import default_baselines
from repro.cache import ScheduleCache
from repro.codegen import EXEC_BACKENDS, compile_schedule
from repro.config import (
    DYNAMIC_MODES,
    FLAT_FIELDS,
    VARIANTS,
    VERIFY_MODES,
    SessionConfig,
    apply_env,
    env_var_for,
    field_paths,
)
from repro.gpu.specs import by_name
from repro.ir.chain import ComputeChain
from repro.search.engine.strategy import strategy_names
from repro.search.tuner import MCFuserTuner
from repro.session import Session
from repro.utils import fmt_time, format_table
from repro.workloads import (
    ATTENTION_CONFIGS,
    GEMM_CHAIN_CONFIGS,
    get_workload,
    iter_workloads,
)

__all__ = [
    "main",
    "build_parser",
    "workload_by_name",
    "FLAG_TABLE",
    "FLAGS_BY_PATH",
    "add_config_flags",
    "config_from_args",
]


# -- the declarative flag <-> config-field table -------------------------------


def _csv(text: str) -> tuple[str, ...]:
    """``"m,n"`` → ``("m", "n")`` for tuple-valued flags."""
    return tuple(part.strip() for part in text.split(",") if part.strip())


@dataclasses.dataclass(frozen=True)
class FlagSpec:
    """One row of :data:`FLAG_TABLE`: a CLI flag bound to a config field.

    Attributes:
        path: The dotted :class:`~repro.config.SessionConfig` path the flag
            sets (``"search.seed"``).
        flag: The canonical long option (verbs may attach it under an alias,
            e.g. ``serve`` exposes ``serve.workers`` as plain ``--workers``).
        help: The option help text.
        kind: ``"value"`` for normal options, ``"true"``/``"false"`` for
            presence flags (``--cost-model`` sets True, ``--no-cache`` sets
            False). Presence flags default to ``None`` = "not passed", never
            to a real value, so precedence stays defaults < file < env < flag.
        type: Optional ``argparse`` type callable for value flags.
        choices: Optional choices tuple, or a zero-arg callable resolved at
            parser-build time (strategies can be registered at runtime).
    """

    path: str
    flag: str
    help: str
    kind: str = "value"
    type: object = None
    choices: object = None


#: One row per ``SessionConfig`` leaf field. The parity test asserts this
#: table and :func:`repro.config.field_paths` cover each other exactly, so a
#: new config field without a flag (or a flag bound to a dead field) fails CI.
FLAG_TABLE: tuple[FlagSpec, ...] = (
    FlagSpec("gpu", "--gpu", "target GPU (a100, rtx3080)"),
    FlagSpec("search.variant", "--variant", choices=VARIANTS,
             help="tuner variant (cache keys include it)"),
    FlagSpec("search.strategy", "--strategy", choices=strategy_names,
             help="search strategy over the pruned space "
                  "(cached schedules are keyed per strategy)"),
    FlagSpec("search.population_size", "--population", type=int,
             help="Algorithm-1 population size per round. Caution under "
                  "warmup: cached entries are keyed by workload, so later "
                  "`tune` runs reuse whatever quality this budget found"),
    FlagSpec("search.top_n", "--top-n", type=int,
             help="candidates measured per search round"),
    FlagSpec("search.epsilon", "--epsilon", type=float,
             help="relative-improvement convergence threshold"),
    FlagSpec("search.max_rounds", "--max-rounds", type=int,
             help="Algorithm-1 round limit (when set below the min-rounds "
                  "floor, the floor is lowered to match)"),
    FlagSpec("search.min_rounds", "--min-rounds", type=int,
             help="rounds to run before convergence may stop the search"),
    FlagSpec("search.seed", "--seed", type=int,
             help="search seed. Cached schedules are keyed by workload, "
                  "not seed — pass --no-cache to force a fresh search"),
    FlagSpec("search.workers", "--workers", type=int,
             help="measurement thread-pool width per search round "
                  "(results are deterministic for any width)"),
    FlagSpec("search.cost_model", "--cost-model", kind="true",
             help="learned-cost-model guidance: re-rank candidates with the "
                  "persistent model (trained on past measurements) and "
                  "hardware-measure only the predicted top --topk per round"),
    FlagSpec("search.measure_topk", "--topk", type=int,
             help="measurements per round under --cost-model, default 2 "
                  "(guided schedules cache under a +topk{k} key)"),
    FlagSpec("exec.backend", "--exec-backend", choices=EXEC_BACKENDS,
             help="numeric execution engine for tuned schedules: compiled "
                  "(native C kernel), vectorized (batched tile program), "
                  "scalar (per-cell interpreter), or auto (compiled when "
                  "available and worthwhile, then vectorized, then scalar)"),
    FlagSpec("exec.verify", "--verify", choices=VERIFY_MODES,
             help="numeric verification: best = execute the winning schedule "
                  "against the unfused reference; all = execute every "
                  "measured candidate (wrong ones count as launch failures)"),
    FlagSpec("exec.dynamic", "--dynamic", choices=DYNAMIC_MODES,
             help="dynamic-shape handling: buckets = tune once per "
                  "power-of-two sequence-length bucket (at the bucket "
                  "ceiling) and serve every in-bucket length from that "
                  "schedule, tail tiles masked"),
    FlagSpec("exec.dynamic_loops", "--dynamic-loops", type=_csv,
             help="comma-separated loop names treated as dynamic under "
                  "--dynamic buckets (default: m)"),
    FlagSpec("cache.enabled", "--no-cache", kind="false",
             help="skip the persistent schedule cache"),
    FlagSpec("cache.dir", "--cache-dir",
             help="cache directory (default: $REPRO_CACHE_DIR or "
                  "~/.cache/mcfuser-repro)"),
    FlagSpec("serve.workers", "--serve-workers", type=int,
             help="service tune worker-pool width"),
    FlagSpec("serve.queue_limit", "--queue-limit", type=int,
             help="service admission queue depth before load shedding"),
    FlagSpec("obs.trace", "--trace", kind="true",
             help="trace the whole session (admission through kernel "
                  "execution) and write serve_trace.json + traces.jsonl "
                  "to the cache dir"),
)

FLAGS_BY_PATH: dict[str, FlagSpec] = {spec.path: spec for spec in FLAG_TABLE}

#: dotted path -> flat name (``FLAT_FIELDS`` reversed; both are bijections).
_PATH_TO_FLAT: dict[str, str] = {path: name for name, path in FLAT_FIELDS.items()}


def _dest_of(flag: str) -> str:
    return flag.lstrip("-").replace("-", "_")


def add_config_flags(
    parser: argparse.ArgumentParser,
    paths: tuple[str, ...],
    aliases: dict[str, str] | None = None,
) -> None:
    """Attach the table rows for ``paths`` to ``parser``, plus ``--config``.

    Every flag defaults to ``None`` ("not passed"), so
    :func:`config_from_args` can layer explicit flags over the config file
    and environment. ``aliases`` renames a flag for one verb (``serve``
    exposes ``serve.workers`` as its historical ``--workers``).
    """
    aliases = aliases or {}
    dests: list[tuple[str, str]] = []
    for path in paths:
        spec = FLAGS_BY_PATH[path]
        flag = aliases.get(path, spec.flag)
        dest = _dest_of(flag)
        if spec.kind == "value":
            choices = spec.choices() if callable(spec.choices) else spec.choices
            parser.add_argument(flag, dest=dest, default=None, type=spec.type,
                                choices=choices, help=spec.help)
        else:
            parser.add_argument(flag, dest=dest, default=None,
                                action="store_const",
                                const=spec.kind == "true", help=spec.help)
        dests.append((path, dest))
    parser.add_argument("--config", default=None, metavar="FILE",
                        help="load a SessionConfig JSON file (see `repro "
                             "config dump`); explicit flags override it")
    parser.set_defaults(_config_dests=dests)


def config_from_args(
    args: argparse.Namespace, skip: tuple[str, ...] = ()
) -> SessionConfig:
    """The effective :class:`SessionConfig` for one parsed invocation.

    Precedence: defaults < ``--config`` file < ``REPRO_*`` environment <
    explicit flags. ``skip`` excludes paths a verb resolves itself (``tune``
    owns the ``--cost-model``/``--topk`` coupling).

    One historical quirk is preserved: ``--max-rounds`` below the
    ``min_rounds`` floor lowers the floor to match (a cap of 2 means "run 2
    rounds", not a validation error), unless ``--min-rounds`` is explicit.
    """
    if getattr(args, "config", None):
        base = SessionConfig.load(args.config)
    else:
        base = SessionConfig()
    cfg = apply_env(base)
    explicit: dict[str, object] = {}
    for path, dest in getattr(args, "_config_dests", []):
        if path in skip:
            continue
        value = getattr(args, dest, None)
        if value is not None:
            explicit[path] = value
    cap = explicit.get("search.max_rounds")
    if (cap is not None and "search.min_rounds" not in explicit
            and cap < cfg.search.min_rounds):
        explicit["search.min_rounds"] = cap
    if not explicit:
        return cfg
    return cfg.evolve(**{_PATH_TO_FLAT[p]: v for p, v in explicit.items()})


#: The flag subset each tuning verb attaches (paths into FLAG_TABLE).
_TUNE_PATHS = (
    "gpu", "search.variant", "search.strategy", "search.population_size",
    "search.top_n", "search.epsilon", "search.max_rounds",
    "search.min_rounds", "search.seed", "search.workers",
    "search.cost_model", "search.measure_topk", "exec.backend",
    "exec.verify", "exec.dynamic", "exec.dynamic_loops", "cache.enabled",
    "cache.dir",
)
_WARMUP_PATHS = (
    "gpu", "search.variant", "search.strategy", "search.population_size",
    "search.top_n", "search.epsilon", "search.max_rounds",
    "search.min_rounds", "search.seed", "search.workers", "cache.dir",
)
_SERVE_PATHS = (
    "gpu", "search.seed", "search.population_size", "search.max_rounds",
    "search.min_rounds", "exec.dynamic", "cache.enabled", "cache.dir",
    "serve.workers", "serve.queue_limit", "obs.trace",
)
_MODEL_TRAIN_PATHS = (
    "gpu", "search.seed", "search.strategy", "search.workers", "cache.dir",
)
_TRACE_PATHS = (
    "gpu", "search.seed", "search.strategy", "search.workers",
    "exec.backend", "cache.enabled", "cache.dir",
)


# -- shared helpers ------------------------------------------------------------


def _open_cache(cfg: SessionConfig) -> ScheduleCache:
    """The persistent cache selected by the config (flag/env/default dir)."""
    return ScheduleCache(cfg.cache.resolved_dir())


def _metrics_path(cfg: SessionConfig) -> str:
    """Where ``serve`` persists (and ``metrics`` reads) the telemetry snapshot."""
    from repro.serving.telemetry import SNAPSHOT_FILENAME

    return os.path.join(cfg.cache.resolved_dir(), SNAPSHOT_FILENAME)


def _open_cost_model(cfg: SessionConfig):
    """Load (or initialize) the persistent cost model + dataset pair.

    Lives in the cache dir even under ``--no-cache``, which disables only
    the *schedule* cache.
    """
    from repro.search.cost_model import (
        LearnedCostModel,
        MeasurementDataset,
        default_dataset_path,
        default_model_path,
    )

    directory = cfg.cache.resolved_dir()
    dataset = MeasurementDataset(default_dataset_path(directory))
    model = LearnedCostModel.load(default_model_path(directory), dataset=dataset)
    if model is None:
        model = LearnedCostModel(dataset, seed=cfg.search.seed)
    return model


def workload_by_name(name: str) -> ComputeChain:
    """Resolve a chain-level workload name (``G*``, ``S*``) to its chain."""
    spec = get_workload(name)
    if spec.level != "chain":
        raise KeyError(
            f"workload {spec.name!r} is a model; use `repro tune {spec.name}` "
            "or `repro partition` instead"
        )
    return spec.build()


# -- tune ----------------------------------------------------------------------


def _tune_config(args: argparse.Namespace) -> SessionConfig:
    """The tune verb's config, resolving the --cost-model/--topk coupling.

    Historically ``--topk`` only counts under cost-model guidance: plain
    ``tune --topk 3`` stays a full-measurement run. Guidance turns on via
    ``--cost-model``, or a config file/env that set ``search.cost_model``
    or a positive ``search.measure_topk``.
    """
    cfg = config_from_args(
        args, skip=("search.cost_model", "search.measure_topk")
    )
    guided = bool(args.cost_model) or cfg.search.cost_model \
        or cfg.search.measure_topk > 0
    if guided:
        topk = args.topk if args.topk is not None \
            else (cfg.search.measure_topk or 2)
        return cfg.evolve(cost_model=True, measure_topk=topk)
    return cfg


def _tune_model(args: argparse.Namespace, session: Session) -> int:
    """Partition a model workload and tune every distinct fusion group."""
    from repro.frontend.partition import partition_graph

    graph = get_workload(args.workload).build()
    partition = partition_graph(graph, session.gpu)
    print(f"model: {graph}")
    print(f"fusion groups: {len(partition.subgraphs)}  "
          f"residual ops: {len(partition.rest)}  "
          f"rejections: {partition.rejection_reasons() or 'none'}")
    seen: dict[str, str] = {}
    rows = []
    for sg in partition.subgraphs:
        key = sg.signature(session.gpu, "mcfuser")
        if key in seen:
            rows.append([sg.output, sg.kind, "=", seen[key], "(shape dedup)"])
            continue
        report = session.tune(sg.chain)
        seen[key] = report.best_candidate.describe()
        rows.append([
            sg.output,
            sg.kind,
            "hit" if report.cache_hit else f"{report.search.num_measurements} meas",
            report.best_candidate.describe(),
            fmt_time(report.best_time),
        ])
    print(format_table(["group", "kind", "tuning", "best schedule", "kernel"], rows))
    session.close()
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    cfg = _tune_config(args)
    session = Session(cfg)
    if get_workload(args.workload).level == "model":
        return _tune_model(args, session)
    chain = workload_by_name(args.workload)
    report = session.tune(chain)
    print(f"workload: {chain}")
    if report.bucket:
        ceilings = ", ".join(f"{l}<={c}" for l, c in sorted(report.bucket.items()))
        kind = "bucket hit — ceiling schedule rebuilt at this shape" if (
            report.bucket_hit
        ) else ("exact hit" if report.cache_hit else "tuned at the bucket ceiling")
        print(f"bucket: {ceilings} ({kind})")
    if report.cache_hit:
        print("cache: hit — schedule restored, no search performed")
    else:
        print(f"space: {report.pruning.after_rule4} candidates "
              f"(from {report.pruning.original:,})")
    print(f"best:  {report.best_candidate.describe()}")
    print(f"time:  {fmt_time(report.best_time)}  ({report.tflops:.1f} TFLOP/s)")
    print(f"tuned in {fmt_time(report.tuning_seconds)} "
          f"({report.search.num_measurements} measurements, "
          f"{report.search.rounds} rounds, {report.strategy} strategy, "
          f"{report.workers} worker(s))")
    verified = "verified against reference" if report.verified else "unverified"
    print(f"exec:  {report.exec_backend} backend ({verified})")
    cost_model = session.cost_model
    if cost_model is not None:
        session.close()  # refit + persist the model snapshot
        acc = cost_model.accuracy
        acc_txt = f"{acc:.0%}" if acc is not None and acc == acc else "n/a"
        guided = report.search.model_rounds
        print(f"model: top-{cfg.search.measure_topk} guidance in "
              f"{guided}/{report.search.rounds} "
              f"round(s), {len(cost_model.dataset)} dataset sample(s), "
              f"ranking accuracy {acc_txt}")
    print()
    print(report.best_schedule.pretty())
    if args.show_ptx:
        print()
        print(compile_schedule(report.best_schedule, session.gpu).ptx)
    return 0


# -- config --------------------------------------------------------------------


def _fmt_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, tuple):
        return ",".join(str(v) for v in value)
    return str(value)


def cmd_config_show(args: argparse.Namespace) -> int:
    """Print the effective config as a schema table plus derived keys."""
    cfg = config_from_args(args)
    defaults = SessionConfig()
    rows = [
        [
            path,
            _fmt_value(cfg.get(path)),
            _fmt_value(defaults.get(path)),
            FLAGS_BY_PATH[path].flag,
            env_var_for(path),
        ]
        for path in field_paths()
    ]
    print(format_table(["field", "value", "default", "flag", "env"], rows))
    print(f"variant key:  {cfg.variant_key}")
    print(f"content hash: {cfg.content_hash()}")
    print(f"cache dir:    {cfg.cache.resolved_dir()}")
    return 0


def cmd_config_dump(args: argparse.Namespace) -> int:
    """Serialize the effective config to JSON for later ``--config`` runs."""
    cfg = config_from_args(args)
    text = cfg.to_json()
    if args.out:
        cfg.save(args.out)
        print(f"config written to {args.out}  (hash {cfg.content_hash()[:12]})")
    else:
        print(text)
    return 0


# -- compare / experiments / partition / list ----------------------------------


def cmd_compare(args: argparse.Namespace) -> int:
    gpu = by_name(args.gpu)
    chain = workload_by_name(args.workload)
    rows = []
    pytorch_time = None
    for baseline in default_baselines(ansor_trials=args.ansor_trials):
        result = baseline.run_chain(chain, gpu, seed=args.seed)
        if result is None:
            rows.append([baseline.name, "-", "-", "-"])
            continue
        if baseline.name == "PyTorch":
            pytorch_time = result.time
        speedup = f"{pytorch_time / result.time:.2f}x" if pytorch_time else "-"
        rows.append(
            [baseline.name, fmt_time(result.time), speedup, fmt_time(result.tuning_seconds)]
        )
    print(f"{chain} on {gpu.name}")
    print(format_table(["system", "time", "vs PyTorch", "tuning"], rows))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    if args.name:
        ALL_EXPERIMENTS[args.name].main()
    else:
        for module in ALL_EXPERIMENTS.values():
            module.main()
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    """Partition one model workload and print groups + rejection reasons."""
    from repro.frontend.partition import partition_graph

    gpu = by_name(args.gpu)
    spec = get_workload(args.workload)
    if spec.level != "model":
        print(f"{spec.name} is a chain-level workload; nothing to partition")
        return 1
    graph = spec.build()
    partition = partition_graph(graph, gpu, mbci_only=not args.all_chains)
    print(f"{graph} on {gpu.name}")
    if partition.subgraphs:
        rows = [
            [
                sg.output,
                sg.kind,
                f"b={sg.chain.batch} " + ",".join(f"{l}={s}" for l, s in sg.chain.loops.items()),
                len(sg.nodes),
                f"{sg.chain.arithmetic_intensity():.0f}",
            ]
            for sg in partition.subgraphs
        ]
        print(format_table(["group", "kind", "shape", "ops", "phi"], rows))
    else:
        print("no fusion groups")
    if partition.rejected:
        print()
        print("rejected anchors:")
        rows = [[r.anchor, r.reason, r.detail] for r in partition.rejected]
        print(format_table(["anchor", "reason", "detail"], rows))
    return 0


def cmd_list(_: argparse.Namespace) -> int:
    print("GEMM chains (Table II):")
    for name, cfg in GEMM_CHAIN_CONFIGS.items():
        print(f"  {name:4s} batch={cfg[0]} M={cfg[1]} N={cfg[2]} K={cfg[3]} H={cfg[4]}")
    print("attention modules (Table III):")
    for name, cfg in ATTENTION_CONFIGS.items():
        print(f"  {name:4s} heads={cfg.heads} M={cfg.m} N={cfg.n} K={cfg.k} H={cfg.h}"
              f"  ({cfg.network})")
    print("model zoo (general-DAG partitioner):")
    for spec in iter_workloads(level="model"):
        print(f"  {spec.name:14s} [{spec.family}] {spec.description}")
    print("GPUs: a100, rtx3080")
    print(f"search strategies: {', '.join(strategy_names())}")
    from repro.experiments import ALL_EXPERIMENTS

    print(f"experiments: {', '.join(ALL_EXPERIMENTS)}")
    return 0


# -- cache ---------------------------------------------------------------------


def cmd_cache_stats(args: argparse.Namespace) -> int:
    from repro.serving.telemetry import load_snapshot

    cfg = config_from_args(args)
    cache = _open_cache(cfg)
    stats = cache.stats()
    print(f"cache: {stats.path}")
    print(f"entries: {stats.disk_entries}")
    print(f"total hits: {stats.total_hits}   total misses: {stats.total_misses}")
    entries = cache.entries()
    if entries:
        rows = [
            [
                e.workload,
                e.gpu,
                e.variant,
                f"{e.expr}",
                fmt_time(e.best_time),
                fmt_time(e.tuning_seconds),
                e.hits,
            ]
            for e in entries
        ]
        print()
        print(format_table(
            ["workload", "gpu", "variant", "expr", "kernel", "tuned in", "hits"], rows
        ))
        # per-variant rollup: how each (tuner variant + strategy) key space
        # is populated and how much simulated tuning it cost to fill.
        by_variant: dict[str, list] = {}
        for e in entries:
            agg = by_variant.setdefault(e.variant, [0, 0, 0.0])
            agg[0] += 1
            agg[1] += e.hits
            agg[2] += e.tuning_seconds
        print()
        print("per-variant:")
        print(format_table(
            ["variant", "entries", "hits", "tuning cost"],
            [
                [variant, n, hits, fmt_time(cost)]
                for variant, (n, hits, cost) in sorted(by_variant.items())
            ],
        ))
    snapshot = load_snapshot(_metrics_path(cfg))
    if snapshot is not None:
        counters = snapshot.get("counters", {})
        tiers = [
            [tier, counters.get(f"serve.hits.{tier}", 0)]
            for tier in ("hot", "memory", "disk", "bucket")
        ]
        served = sum(n for _, n in tiers)
        requests = counters.get("serve.requests", 0)
        print()
        print("per-tier (last serving session):")
        print(format_table(["tier", "hits"], tiers))
        rate = f"{served / requests:.0%}" if requests else "-"
        print(f"requests: {requests}   tier hit rate: {rate}")
        print(f"coalesced: {counters.get('serve.coalesced', 0)}   "
              f"tunes: {counters.get('serve.tunes', 0)}   "
              f"shed: {counters.get('serve.shed', 0)}")
        hists = snapshot.get("histograms", {})
        meas = hists.get("serve.tune.measurements") or {}
        if meas.get("count"):
            line = (f"measurements/tune: {meas['mean']:.1f} avg "
                    f"over {meas['count']} tune(s)")
            acc = hists.get("serve.model.ranking_accuracy") or {}
            if acc.get("count"):
                line += f"   model ranking accuracy: {acc['mean']:.0%}"
            print(line)
    return 0


def cmd_cache_clear(args: argparse.Namespace) -> int:
    cfg = config_from_args(args)
    cache = _open_cache(cfg)
    n = cache.stats().disk_entries
    cache.clear()
    print(f"cleared {n} cached schedule(s) from {cache.path}")
    return 0


def cmd_cache_warmup(args: argparse.Namespace) -> int:
    names = list(args.workloads)
    if args.all or not names:
        names = [*GEMM_CHAIN_CONFIGS, *ATTENTION_CONFIGS]
    chains = [workload_by_name(name) for name in names]
    session = Session(config_from_args(args))
    result = session.tune_all(chains, max_workers=args.jobs)
    print(f"warmed {result.unique} unique workload(s) "
          f"({result.duplicates} duplicate(s), {result.cache_hits} already cached) "
          f"in {fmt_time(result.tuning_seconds)} simulated tuning time")
    cache = session.cache
    print(f"cache now holds {cache.stats().disk_entries} entries at {cache.path}")
    return 0


# -- serve / metrics -----------------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the compile service under the Zipf replay load generator."""
    from repro.experiments import serve_load
    from repro.serving.telemetry import MetricsRegistry, save_snapshot
    from repro.serving.tiers import TieredCache

    cfg = config_from_args(args)
    budget_flags = (args.population, args.max_rounds, args.min_rounds)
    if args.quick and not args.config and all(v is None for v in budget_flags):
        cfg = cfg.evolve(**serve_load.QUICK_TUNER_KWARGS)
    disk = _open_cache(cfg) if cfg.cache.enabled else None
    registry = MetricsRegistry()
    if cfg.obs.trace:
        from repro.obs import enable_tracing

        enable_tracing()
    try:
        result = serve_load.run(
            clients=args.clients,
            requests_per_client=args.requests,
            workload_names=args.workloads or None,
            signatures=args.signatures,
            zipf_s=args.zipf,
            gpu=by_name(cfg.gpu),
            cache=TieredCache(disk, telemetry=registry),
            telemetry=registry,
            quick=args.quick,
            lengths=args.lengths,
            config=cfg,
        )
    finally:
        if cfg.obs.trace:
            from repro.obs import (
                TRACE_FILENAME,
                disable_tracing,
                save_chrome_trace,
                save_trace_jsonl,
            )

            tracer = disable_tracing()
            spans = tracer.recorder.spans()
            if spans:
                directory = cfg.cache.resolved_dir()
                jsonl = save_trace_jsonl(
                    spans, os.path.join(directory, TRACE_FILENAME)
                )
                chrome = save_chrome_trace(
                    spans, os.path.join(directory, "serve_trace.json")
                )
                print(f"{len(spans)} span(s): chrome trace at {chrome}, "
                      f"raw spans at {jsonl}")
    print(result.table())
    m = result.meta
    for line in serve_load.summary_lines(m):
        print(line)
    path = save_snapshot(m["snapshot"], _metrics_path(cfg))
    print(f"metrics snapshot written to {path}  (view with `repro metrics`)")
    clean = m["reconciled"] and not m["errors"] and not m["failed_requests"]
    return 0 if clean else 1


def cmd_metrics(args: argparse.Namespace) -> int:
    """Print the persisted telemetry snapshot of the last serving session."""
    from repro.serving.telemetry import load_snapshot

    cfg = config_from_args(args)
    path = _metrics_path(cfg)
    snapshot = load_snapshot(path)
    if snapshot is None:
        print(f"no metrics snapshot at {path}; run `repro serve` first")
        return 1
    if args.prom:
        from repro.obs import prometheus_text

        print(prometheus_text(snapshot), end="")
        return 0
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


# -- model ---------------------------------------------------------------------


def cmd_model_train(args: argparse.Namespace) -> int:
    """Fit (and persist) the learned cost model from the measurement dataset.

    With workload names, each is tuned first — uncached, full measurement,
    model attached — so its (features, measured time) pairs grow the
    dataset before the fit.
    """
    from repro.search.cost_model import default_model_path

    cfg = config_from_args(args)
    gpu = by_name(cfg.gpu)
    model = _open_cost_model(cfg)
    for name in args.workloads:
        chain = workload_by_name(name)
        report = MCFuserTuner(gpu, cost_model=model, config=cfg).tune(chain)
        print(f"measured {name}: {report.search.num_measurements} samples "
              f"({fmt_time(report.tuning_seconds)} simulated tuning)")
    if not model.fit(force=True):
        print(f"dataset too small to fit: {len(model.dataset)} sample(s), "
              f"need {model.min_samples} — tune with --cost-model or pass "
              f"workloads to `model train` to grow it")
        return 1
    path = model.save(default_model_path(cfg.cache.resolved_dir()))
    acc = model.accuracy
    acc_txt = f"{acc:.0%}" if acc is not None and acc == acc else "n/a"
    print(f"fitted on {model.samples} sample(s); "
          f"holdout pairwise ranking accuracy {acc_txt}")
    print(f"model snapshot written to {path}")
    return 0


def cmd_model_stats(args: argparse.Namespace) -> int:
    """Show the measurement dataset and the persisted model snapshot."""
    from repro.search.cost_model import (
        LearnedCostModel,
        MeasurementDataset,
        default_dataset_path,
        default_model_path,
    )
    from repro.search.features import FEATURE_NAMES, FEATURE_VERSION

    cfg = config_from_args(args)
    directory = cfg.cache.resolved_dir()
    dataset = MeasurementDataset(default_dataset_path(directory))
    print(f"dataset: {default_dataset_path(directory)}")
    print(f"samples: {len(dataset)}"
          + (f"   (skipped {dataset.corrupt_lines} corrupt line(s))"
             if dataset.corrupt_lines else ""))
    per_workload: dict[str, int] = {}
    for record in dataset.records():
        name = record.get("workload") or "?"
        per_workload[name] = per_workload.get(name, 0) + 1
    if per_workload:
        print(format_table(
            ["workload", "samples"],
            [[name, n] for name, n in sorted(per_workload.items())],
        ))
    model = LearnedCostModel.load(default_model_path(directory), dataset=dataset)
    if model is None:
        print(f"model: no snapshot at {default_model_path(directory)} "
              "(run `repro model train` or `repro tune --cost-model`)")
        return 0
    acc = model.accuracy
    acc_txt = f"{acc:.0%}" if acc is not None and acc == acc else "n/a"
    print(f"model: fitted on {model.samples} sample(s), "
          f"ranking accuracy {acc_txt}, "
          f"{len(FEATURE_NAMES)} features (v{FEATURE_VERSION})")
    return 0


# -- trace ---------------------------------------------------------------------


def _trace_summary_lines(spans, coverage: float) -> list[str]:
    """Per-span-name rollup + coverage line for traced runs."""
    by_span: dict[str, list[float]] = {}
    for r in spans:
        by_span.setdefault(r.name, []).append(r.duration)
    rows = [
        [name, len(durs), fmt_time(sum(durs)), fmt_time(max(durs))]
        for name, durs in sorted(
            by_span.items(), key=lambda kv: -sum(kv[1])
        )
    ]
    lines = [format_table(["span", "count", "total", "max"], rows)]
    lines.append(f"root-span coverage by direct children: {coverage:.1%}")
    return lines


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace one workload end to end and export a Chrome-trace file.

    Chain workloads run one tune; model workloads run a full
    ``compile_model`` (partition -> per-group tunes -> residual lowering
    -> simulated execution). The raw spans are also persisted as JSONL in
    the cache dir for offline analysis.
    """
    from repro.obs import (
        TRACE_FILENAME,
        disable_tracing,
        enable_tracing,
        save_chrome_trace,
        save_trace_jsonl,
        trace_coverage,
    )

    cfg = config_from_args(args)
    gpu = by_name(cfg.gpu)
    cache = _open_cache(cfg) if cfg.cache.enabled else None
    spec = get_workload(args.workload)
    enable_tracing()
    try:
        if spec.level == "model":
            from repro.frontend.executor import compile_model

            result = compile_model(
                spec.build(),
                gpu,
                strategy="mcfuser+relay",
                cache=cache,
                config=cfg,
            )
            headline = (
                f"{args.workload}: {fmt_time(result.time)} model time, "
                f"{result.mbci_subgraphs} fused sub-graph(s), "
                f"{fmt_time(result.tuning_seconds)} simulated tuning"
            )
        else:
            report = MCFuserTuner(gpu, cache=cache, config=cfg).tune(spec.build())
            headline = (
                f"{args.workload}: best {fmt_time(report.best_time)}, "
                f"{report.search.num_measurements} measurement(s), "
                f"{fmt_time(report.tuning_seconds)} simulated tuning"
            )
    finally:
        tracer = disable_tracing()
    spans = tracer.recorder.spans()
    if not spans:
        print("no spans recorded")
        return 1
    coverage = trace_coverage(spans)
    out = save_chrome_trace(spans, args.out)
    jsonl = save_trace_jsonl(
        spans, os.path.join(cfg.cache.resolved_dir(), TRACE_FILENAME)
    )
    print(headline)
    for line in _trace_summary_lines(spans, coverage):
        print(line)
    if tracer.recorder.dropped:
        print(f"flight recorder dropped {tracer.recorder.dropped} span(s) "
              "(ring buffer full)")
    print(f"chrome trace written to {out}  "
          "(load in https://ui.perfetto.dev or chrome://tracing)")
    print(f"raw spans written to {jsonl}")
    return 0


# -- parser --------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_tune = sub.add_parser("tune", help="tune one workload with MCFuser")
    p_tune.add_argument("workload")
    add_config_flags(p_tune, _TUNE_PATHS)
    p_tune.add_argument("--show-ptx", action="store_true")
    p_tune.set_defaults(fn=cmd_tune)

    p_cfg = sub.add_parser(
        "config", help="show or dump the effective session config"
    )
    cfg_sub = p_cfg.add_subparsers(dest="config_command", required=True)

    p_show = cfg_sub.add_parser(
        "show",
        help="print the effective config (defaults < --config file < "
             "REPRO_* env < flags) as a schema table",
    )
    add_config_flags(p_show, tuple(field_paths()))
    p_show.set_defaults(fn=cmd_config_show)

    p_dump = cfg_sub.add_parser(
        "dump", help="serialize the effective config to JSON for --config"
    )
    add_config_flags(p_dump, tuple(field_paths()))
    p_dump.add_argument("--out", default=None,
                        help="write to this path instead of stdout")
    p_dump.set_defaults(fn=cmd_config_dump)

    p_part = sub.add_parser(
        "partition", help="partition a model workload and show fusion groups"
    )
    p_part.add_argument("workload")
    p_part.add_argument("--gpu", default="a100")
    p_part.add_argument("--all-chains", action="store_true",
                        help="keep compute-bound chains too (mbci_only=False)")
    p_part.set_defaults(fn=cmd_partition)

    p_cmp = sub.add_parser("compare", help="run all baselines on one workload")
    p_cmp.add_argument("workload")
    p_cmp.add_argument("--gpu", default="a100")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--ansor-trials", type=int, default=1000)
    p_cmp.set_defaults(fn=cmd_compare)

    p_exp = sub.add_parser("experiments", help="run experiment drivers")
    p_exp.add_argument("name", nargs="?", default=None)
    p_exp.set_defaults(fn=cmd_experiments)

    p_list = sub.add_parser("list", help="list workloads, GPUs and experiments")
    p_list.set_defaults(fn=cmd_list)

    p_cache = sub.add_parser("cache", help="inspect and manage the schedule cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    p_stats = cache_sub.add_parser("stats", help="show cache contents and hit counters")
    add_config_flags(p_stats, ("cache.dir",))
    p_stats.set_defaults(fn=cmd_cache_stats)

    p_clear = cache_sub.add_parser("clear", help="delete every cached schedule")
    add_config_flags(p_clear, ("cache.dir",))
    p_clear.set_defaults(fn=cmd_cache_clear)

    p_warm = cache_sub.add_parser(
        "warmup", help="batch-tune workloads into the cache (dedup + thread pool)"
    )
    p_warm.add_argument("workloads", nargs="*",
                        help="workload names (G1..G12, S1..S9); empty or --all = all")
    p_warm.add_argument("--all", action="store_true")
    add_config_flags(p_warm, _WARMUP_PATHS)
    p_warm.add_argument("--jobs", type=int, default=4,
                        help="tuning thread-pool width")
    p_warm.set_defaults(fn=cmd_cache_warmup)

    p_serve = sub.add_parser(
        "serve",
        help="run the compile service under a Zipf replay load and report "
             "throughput/latency/hit-rate",
    )
    p_serve.add_argument("--clients", type=int, default=32,
                         help="concurrent client threads")
    p_serve.add_argument("--requests", type=int, default=8,
                         help="requests each client issues")
    p_serve.add_argument("--signatures", type=int, default=8,
                         help="distinct workload signatures in the default mix")
    p_serve.add_argument("--workloads", nargs="*", default=None,
                         help="explicit chain-level workload mix "
                              "(overrides --signatures)")
    p_serve.add_argument("--zipf", type=float, default=1.1,
                         help="Zipf exponent of the request skew")
    p_serve.add_argument("--lengths", type=int, default=0,
                         help="ragged-shape mix: number of distinct sequence "
                              "lengths to sample (0 = fixed-shape mix); "
                              "pairs naturally with --dynamic buckets")
    p_serve.add_argument("--quick", action="store_true",
                         help="CI smoke mode: fewer clients/requests, reduced "
                              "tune budget")
    add_config_flags(p_serve, _SERVE_PATHS,
                     aliases={"serve.workers": "--workers"})
    p_serve.set_defaults(fn=cmd_serve)

    p_model = sub.add_parser(
        "model", help="train and inspect the learned tuning cost model"
    )
    model_sub = p_model.add_subparsers(dest="model_command", required=True)

    p_mtrain = model_sub.add_parser(
        "train",
        help="fit the cost model from the measurement dataset and persist it",
    )
    p_mtrain.add_argument("workloads", nargs="*",
                          help="chain workloads to measure into the dataset "
                               "first (uncached, full measurement)")
    add_config_flags(p_mtrain, _MODEL_TRAIN_PATHS)
    p_mtrain.set_defaults(fn=cmd_model_train)

    p_mstats = model_sub.add_parser(
        "stats", help="show the measurement dataset and model snapshot"
    )
    add_config_flags(p_mstats, ("cache.dir",))
    p_mstats.set_defaults(fn=cmd_model_stats)

    p_metrics = sub.add_parser(
        "metrics", help="print the last serving session's telemetry snapshot"
    )
    p_metrics.add_argument("--prom", action="store_true",
                           help="Prometheus text exposition format instead "
                                "of JSON")
    add_config_flags(p_metrics, ("cache.dir",))
    p_metrics.set_defaults(fn=cmd_metrics)

    p_trace = sub.add_parser(
        "trace",
        help="trace one workload end to end and export a Chrome-trace file",
    )
    p_trace.add_argument("workload",
                         help="chain workload (one tune) or model workload "
                              "(full compile_model)")
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome-trace output path (Perfetto-loadable)")
    add_config_flags(p_trace, _TRACE_PATHS)
    p_trace.set_defaults(fn=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
