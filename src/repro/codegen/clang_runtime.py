"""Compile rendered C kernels into callables, with two-tier kernel caching.

The runtime follows tinygrad's ``ops_clang`` shape: render → hash → compile
to a shared object → ``dlopen`` → call through ``ctypes``. Kernels are
content-addressed by their source hash, with

* an **in-memory** tier per :class:`ClangRuntime` — a
  ``WeakValueDictionary`` of every live :class:`CompiledKernel` plus a
  strong LRU pinning the hottest entries, so repeated executions of the
  same schedule never touch the filesystem;
* an **on-disk** tier under ``<cache dir>/kernels/<hash>.so`` (the cache
  dir honors ``$REPRO_CACHE_DIR``, like the schedule cache), published
  atomically via temp-file + ``os.replace`` so concurrent processes never
  observe a half-written artifact. A corrupted artifact (``dlopen``
  failure) is quarantined to ``<hash>.so.corrupt`` and recompiled — the
  same recovery contract as ``PersistentStore``.

Concurrent compiles of the same source within a process coalesce: the
first thread compiles, the rest wait on an in-flight event and share the
result (one compile, N waiters).

The compiler is discovered as ``$REPRO_CC`` → ``clang`` → ``cc`` →
``gcc``; a missing compiler raises :class:`CompilerNotFoundError`, which
the ``auto`` backend treats as "fall back to the vectorized executor".
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
import weakref
from dataclasses import dataclass

import numpy as np

from repro.cache.store import LRUCache
from repro.codegen.program import TileProgram
from repro.codegen.render_c import RenderedKernel, RenderError, render_program
from repro.obs.tracer import NOOP_SPAN, get_tracer

__all__ = [
    "CompileError",
    "CompilerNotFoundError",
    "CompiledKernel",
    "CompilerCacheStats",
    "ClangRuntime",
    "find_compiler",
    "compiler_available",
    "get_runtime",
    "execute_program_compiled",
]

#: Strong-reference LRU capacity of the in-memory kernel tier. Everything
#: still alive elsewhere stays reachable through the weak tier regardless.
MEMORY_CACHE_CAPACITY = 64

#: Seconds before a stuck compiler invocation is killed.
COMPILE_TIMEOUT_S = 120.0


class CompileError(RenderError):
    """Compiling rendered source failed (the C toolchain rejected it)."""


class CompilerNotFoundError(CompileError):
    """No C compiler is available on this machine."""


def find_compiler() -> str | None:
    """Path of the C compiler to use, or ``None``.

    ``$REPRO_CC`` wins when set (and must resolve — a broken override is a
    configuration error worth surfacing, not silently falling through);
    otherwise the first of ``clang``, ``cc``, ``gcc`` on ``PATH``.
    """
    override = os.environ.get("REPRO_CC")
    if override:
        return shutil.which(override)
    for name in ("clang", "cc", "gcc"):
        path = shutil.which(name)
        if path:
            return path
    return None


def compiler_available() -> bool:
    return find_compiler() is not None


def require_compiler() -> str:
    cc = find_compiler()
    if cc is None:
        raise CompilerNotFoundError(
            "no C compiler found (set $REPRO_CC or install clang/gcc); "
            "the compiled backend is unavailable"
        )
    return cc


@dataclass
class CompiledKernel:
    """A loaded kernel: the dlopen'd library plus its typed entry point."""

    meta: RenderedKernel
    lib: ctypes.CDLL
    fn: "ctypes._CFuncPtr"

    def __call__(self, arrays: list[np.ndarray]) -> int:
        ptr = ctypes.POINTER(ctypes.c_float)
        return int(self.fn(*(a.ctypes.data_as(ptr) for a in arrays)))


def _load_kernel(meta: RenderedKernel, so_path: str) -> CompiledKernel:
    lib = ctypes.CDLL(so_path)
    fn = getattr(lib, meta.entry)
    fn.restype = ctypes.c_int
    fn.argtypes = [ctypes.POINTER(ctypes.c_float)] * len(meta.arg_names)
    return CompiledKernel(meta=meta, lib=lib, fn=fn)


@dataclass
class CompilerCacheStats:
    """Counters of one runtime's kernel cache."""

    memory_hits: int = 0
    disk_hits: int = 0
    compiles: int = 0
    waits: int = 0
    entries: int = 0


class _Inflight:
    def __init__(self) -> None:
        self.event = threading.Event()
        self.kernel: CompiledKernel | None = None
        self.error: BaseException | None = None


class ClangRuntime:
    """Compiles and caches :class:`RenderedKernel` objects.

    ``cache_dir`` overrides the on-disk tier location; by default it is
    resolved *per call* from the schedule cache's ``default_cache_dir``,
    so tests repointing ``$REPRO_CACHE_DIR`` get isolated artifact dirs
    without rebuilding the runtime.
    """

    def __init__(self, cache_dir: str | None = None) -> None:
        self._cache_dir = cache_dir
        self._weak: "weakref.WeakValueDictionary[str, CompiledKernel]" = (
            weakref.WeakValueDictionary()
        )
        self._strong = LRUCache(capacity=MEMORY_CACHE_CAPACITY)
        self._lock = threading.Lock()
        self._inflight: dict[str, _Inflight] = {}
        self._stats = CompilerCacheStats()

    # -- cache plumbing --------------------------------------------------------

    def kernel_dir(self) -> str:
        if self._cache_dir is not None:
            return self._cache_dir
        from repro.cache import default_cache_dir

        return os.path.join(default_cache_dir(), "kernels")

    def stats(self) -> CompilerCacheStats:
        with self._lock:
            return CompilerCacheStats(
                memory_hits=self._stats.memory_hits,
                disk_hits=self._stats.disk_hits,
                compiles=self._stats.compiles,
                waits=self._stats.waits,
                entries=len(self._weak),
            )

    def clear_memory_cache(self) -> None:
        """Drop the in-memory tier (the disk tier is content-addressed and
        never needs invalidation)."""
        with self._lock:
            self._weak.clear()
            self._strong.clear()

    # -- compilation -----------------------------------------------------------

    def _compile_to(self, cc: str, src_path: str, out_path: str) -> None:
        """One compiler invocation, trying the fastest flag set first.

        ``-march=native`` unlocks the host's widest vectors for the
        emitted ``#pragma omp simd`` inner loops and ``-fopenmp`` both
        activates those pragmas and the grid-level ``parallel for``;
        either may be unsupported (cross-compilers, missing OpenMP
        runtime), so each attempt degrades gracefully down to plain
        ``-O3``. ``-ffast-math`` is deliberately absent — the
        online-softmax masking depends on ``-inf``/``isfinite``
        semantics it would break."""
        base = [cc, "-shared", "-fPIC", "-O3", src_path, "-o", out_path, "-lm"]
        extras = (
            ["-march=native", "-fopenmp"],
            ["-fopenmp"],
            ["-march=native", "-fopenmp-simd"],
            ["-fopenmp-simd"],
            [],
        )
        attempts = [[*base[:-1], *extra, "-lm"] for extra in extras]
        errors: list[str] = []
        for cmd in attempts:
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=COMPILE_TIMEOUT_S
                )
            except subprocess.TimeoutExpired as exc:
                raise CompileError(f"compiler timed out: {' '.join(cmd)}") from exc
            if proc.returncode == 0:
                return
            errors.append(proc.stderr.strip())
        raise CompileError(
            f"compilation failed ({' '.join(attempts[-1])}):\n{errors[-1]}"
        )

    def _build(self, meta: RenderedKernel) -> CompiledKernel:
        """Disk-tier lookup, then a real compile. Caller holds no locks.

        Subclass override point — the signature must stay ``(self, meta)``;
        trace annotations go to the ambient ``compile.kernel`` span.
        """
        span = get_tracer().current() or NOOP_SPAN
        cc = require_compiler()
        kdir = self.kernel_dir()
        so_path = os.path.join(kdir, f"{meta.source_hash}.so")
        try:
            os.makedirs(kdir, exist_ok=True)
            have_dir = True
        except OSError:
            have_dir = False
        if have_dir and os.path.exists(so_path):
            try:
                kernel = _load_kernel(meta, so_path)
                with self._lock:
                    self._stats.disk_hits += 1
                span.set(tier="disk")
                return kernel
            except OSError:
                # Corrupted artifact: quarantine and fall through to a
                # fresh compile (PersistentStore's recovery contract).
                try:
                    os.replace(so_path, so_path + ".corrupt")
                except OSError:
                    pass
        with self._lock:
            self._stats.compiles += 1
        span.set(tier="compile", cc=cc)
        if have_dir:
            src_path = os.path.join(kdir, f"{meta.source_hash}.c")
            tmp_so = os.path.join(kdir, f".{meta.source_hash}.{os.getpid()}.tmp.so")
            with open(src_path, "w") as fh:
                fh.write(meta.source)
            try:
                self._compile_to(cc, src_path, tmp_so)
                os.replace(tmp_so, so_path)
            finally:
                if os.path.exists(tmp_so):
                    os.unlink(tmp_so)
            return _load_kernel(meta, so_path)
        # No writable cache dir: compile into a scratch dir. The loaded
        # library stays mapped after the directory is gone.
        with tempfile.TemporaryDirectory(prefix="mcfuser-cc-") as scratch:
            src_path = os.path.join(scratch, "kernel.c")
            so_scratch = os.path.join(scratch, "kernel.so")
            with open(src_path, "w") as fh:
                fh.write(meta.source)
            self._compile_to(cc, src_path, so_scratch)
            return _load_kernel(meta, so_scratch)

    def compile(self, meta: RenderedKernel) -> CompiledKernel:
        """Return a callable kernel for ``meta``, from the fastest tier
        available. Concurrent calls for the same hash coalesce into one
        compile. The traced span's ``tier`` attribute records which tier
        served it: ``memory`` / ``disk`` / ``compile`` / ``coalesced``."""
        tracer = get_tracer()
        if not tracer.enabled:
            return self._compile_cached(meta, NOOP_SPAN)
        with tracer.span(
            "compile.kernel", source_hash=meta.source_hash, entry=meta.entry
        ) as span:
            return self._compile_cached(meta, span)

    def _compile_cached(self, meta: RenderedKernel, span) -> CompiledKernel:
        key = meta.source_hash
        while True:
            with self._lock:
                kernel = self._weak.get(key)
                if kernel is not None:
                    self._stats.memory_hits += 1
                    self._strong.put(key, kernel)  # refresh recency
                    span.set(tier="memory")
                    return kernel
                pending = self._inflight.get(key)
                if pending is None:
                    pending = _Inflight()
                    self._inflight[key] = pending
                    owner = True
                else:
                    self._stats.waits += 1
                    owner = False
            if not owner:
                span.set(tier="coalesced")
                pending.event.wait()
                if pending.error is not None:
                    raise pending.error
                assert pending.kernel is not None
                return pending.kernel
            try:
                kernel = self._build(meta)
            except BaseException as exc:
                with self._lock:
                    pending.error = exc
                    del self._inflight[key]
                pending.event.set()
                raise
            with self._lock:
                self._weak[key] = kernel
                self._strong.put(key, kernel)
                pending.kernel = kernel
                del self._inflight[key]
            pending.event.set()
            return kernel


_RUNTIME: ClangRuntime | None = None
_RUNTIME_LOCK = threading.Lock()


def get_runtime() -> ClangRuntime:
    """The process-wide default runtime (lazily constructed)."""
    global _RUNTIME
    with _RUNTIME_LOCK:
        if _RUNTIME is None:
            _RUNTIME = ClangRuntime()
        return _RUNTIME


def execute_program_compiled(
    program: TileProgram,
    inputs: dict[str, np.ndarray],
    runtime: ClangRuntime | None = None,
) -> dict[str, np.ndarray]:
    """Render, compile (cached) and run a lowered program natively.

    Input validation mirrors the scalar interpreter exactly (``KeyError``
    for a missing tensor, ``ValueError`` for a shape mismatch) so the
    differential harness sees identical error behavior. Raises
    :class:`RenderError`/:class:`CompileError`/:class:`CompilerNotFoundError`
    — all one typed family — when no native kernel can be produced.
    """
    chain = program.schedule.chain
    meta = render_program(program)
    arrays: list[np.ndarray] = []
    cast = {k: np.asarray(v, dtype=np.float32) for k, v in inputs.items()}
    for name in meta.input_names:
        if name not in cast:
            raise KeyError(f"missing input {name!r}")
        expect = chain.tensor_shape(name)
        if cast[name].shape != expect:
            raise ValueError(f"input {name!r}: shape {cast[name].shape} != {expect}")
        arrays.append(np.ascontiguousarray(cast[name]))
    outputs = {
        name: np.zeros(chain.tensor_shape(name), dtype=np.float32)
        for name in meta.output_names
    }
    arrays.extend(outputs[name] for name in meta.output_names)
    kernel = (runtime or get_runtime()).compile(meta)
    rc = kernel(arrays)
    if rc != 0:
        raise MemoryError(
            f"compiled kernel for {program.schedule.describe()} failed to "
            "allocate its per-cell arena"
        )
    return outputs
