"""Vectorized batched tile executor: all grid cells at once.

Executes a :class:`~repro.codegen.program.TileProgram` (the flat lowering
of a :class:`~repro.tiling.schedule.Schedule`) with every per-cell tile
operation batched over the grid. The grid is kept *factored*: instead of
one flat ``(n_cells,)`` axis, every array carries one leading axis per
grid loop (batch first), sized to the loop's extent when the tensor is
indexed by it and ``1`` otherwise. NumPy broadcasting then does the cell
fan-out for free:

* **Load** — inputs are zero-padded to tile multiples once and reshaped
  into ``(batch, n_1, .., n_r, T_1, .., T_r)`` tiled views; a load op is a
  basic-indexing *view* (grid-bound dims keep their full tile axis,
  residual dims are fixed to the op's static index) — no copy, and a tile
  shared by many cells (e.g. the K/V tiles of every query block) is never
  duplicated;
* **Compute** — one ``np.einsum('...mk,...kn->...mn', ...)`` per op with
  broadcast leading axes (contraction paths are memoized, so the batched
  contractions dispatch to BLAS), including a fully batched online-softmax
  update whose running (max, denominator) row state also carries the
  factored grid axes;
* **Store** — one sliced assignment into a padded tiled output buffer,
  un-tiled and trimmed back to the true shape at the end.

The semantics mirror :mod:`repro.codegen.interpreter` statement for
statement — accumulator init-on-spatial-key-change, producer epilogues at
consumption time, padding masks for non-divisible sizes — so the two
backends agree within fp32 tolerance on every schedule both can run
(``tests/test_vectorized_parity.py`` enforces this differentially). The
speedup comes from replacing ``n_cells`` Python tree walks with
``len(program.ops)`` NumPy calls; ``benchmarks/test_exec_backend.py``
records it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codegen.interpreter import (
    InterpreterError,
    _apply_epilogue,
    rows_to_tile,
    softmax_row_dims,
)
from repro.codegen.program import TileOp, TileProgram
from repro.ir.chain import ComputeBlock
from repro.utils import ceil_div

__all__ = ["execute_program", "VectorizedExecutor"]

_NEG_INF = np.float32(-np.inf)


@dataclass
class _BatchedAcc:
    """Running accumulator for one block, batched over all grid cells.

    ``tile`` has shape ``(*lead, *out_tile)`` where ``lead`` holds one axis
    per grid loop — full extent when the block's output is indexed by the
    loop, 1 otherwise (an intermediate shared by every cell of an unused
    grid loop is computed once, not per cell).
    """

    key: tuple
    tile: np.ndarray
    row_max: np.ndarray | None = None  # (*lead', *row_tile)
    denom: np.ndarray | None = None


class VectorizedExecutor:
    """Runs one lowered :class:`TileProgram` on concrete inputs."""

    def __init__(self, program: TileProgram, inputs: dict[str, np.ndarray]) -> None:
        self.program = program
        self.s = program.schedule
        self.chain = self.s.chain
        self.tiles = self.s.tiles
        self.inputs = {
            k: np.asarray(v, dtype=np.float32) for k, v in inputs.items()
        }
        for name in self.chain.input_names():
            if name not in self.inputs:
                raise KeyError(f"missing input {name!r}")
            expect = self.chain.tensor_shape(name)
            if self.inputs[name].shape != expect:
                raise ValueError(
                    f"input {name!r}: shape {self.inputs[name].shape} != {expect}"
                )

        #: Grid loops in nesting order (batch outermost); position in this
        #: tuple is the leading axis every batched array carries for it.
        self.grid_order = tuple(loop for loop, _ in program.grid_loops)
        self.grid_extent = dict(program.grid_loops)

        # Padded, tiled views of the global tensors.
        self._tiled_inputs = {
            name: self._tiled_view(self.inputs[name], self.chain.tensors[name].dims)
            for name in self.chain.input_names()
        }
        self._out_buffers: dict[str, np.ndarray] = {}
        for name, ref in self.chain.tensors.items():
            if ref.role != "output":
                continue
            counts = tuple(
                ceil_div(self.chain.loops[d], self.tiles[d]) for d in ref.dims
            )
            sizes = tuple(self.tiles[d] for d in ref.dims)
            self._out_buffers[name] = np.zeros(
                (self.chain.batch, *counts, *sizes), dtype=np.float32
            )

        self.smem: dict[str, np.ndarray] = {}
        self.acc: dict[str, _BatchedAcc] = {}
        # Per-block contraction plans: a matmul mapping when the block is a
        # plain two-operand contraction (every GEMM/attention block is),
        # einsum paths otherwise. Both are memoized — plan/path search
        # costs more than the contraction itself on small tiles, and every
        # unrolled op repeats the same shapes.
        self._mm_plans: dict[str, tuple | None] = {}
        self._einsum_paths: dict[tuple, list] = {}

    # -- tiled addressing ------------------------------------------------------

    def _tiled_view(self, arr: np.ndarray, dims: tuple[str, ...]) -> np.ndarray:
        """Zero-pad to tile multiples and expose ``(B, n1..nr, T1..Tr)``."""
        pads = [(0, 0)]
        shape: list[int] = [arr.shape[0]]
        for d in dims:
            size, tile = self.chain.loops[d], self.tiles[d]
            count = ceil_div(size, tile)
            pads.append((0, count * tile - size))
            shape.extend((count, tile))
        padded = np.pad(arr, pads).reshape(shape)
        r = len(dims)
        perm = (0, *(1 + 2 * i for i in range(r)), *(2 + 2 * i for i in range(r)))
        return padded.transpose(perm)

    def _lead_shape(self, dims: tuple[str, ...]) -> tuple[int, ...]:
        """Leading grid-axis extents for an array indexed by ``dims``."""
        return tuple(
            self.grid_extent[g] if g == "b" or g in dims else 1
            for g in self.grid_order
        )

    def _tile_slice(self, tensor: str, idx: dict[str, int]) -> np.ndarray:
        """View of one residual tile, batched over the grid-bound dims.

        Grid-bound dims keep their full tile axis; residual dims are fixed
        at the op's static index (absent loops address tile 0 — their tile
        covers the full extent). The result is reordered/expanded so its
        leading axes follow :attr:`grid_order` with extent-1 axes for grid
        loops the tensor is not indexed by — broadcasting then aligns
        every operand without materializing a cell axis.
        """
        dims = self.chain.tensors[tensor].dims
        view = self._tiled_inputs[tensor]
        sel: list = [slice(None)]  # batch tile axis
        kept: list[str] = ["b"]
        for d in dims:
            if d in self.grid_extent:
                sel.append(slice(None))
                kept.append(d)
            else:
                sel.append(idx.get(d, 0))
        tile = view[tuple(sel)]  # (B, *(n_d for kept grid dims), *T)
        # reorder kept grid axes into grid_order and insert 1-axes.
        order = sorted(range(len(kept)), key=lambda i: self.grid_order.index(kept[i]))
        tile = np.transpose(
            tile, (*order, *range(len(kept), tile.ndim))
        )
        shape: list[int] = []
        pos = 0
        for g in self.grid_order:
            if g in kept:
                shape.append(tile.shape[pos])
                pos += 1
            else:
                shape.append(1)
        return tile.reshape((*shape, *tile.shape[len(kept):]))

    def _valid_extent(self, dim: str, idx: dict[str, int]) -> int:
        """Valid (unpadded) elements of a residual dim's current tile."""
        tile = self.tiles[dim]
        start = idx.get(dim, 0) * tile
        return max(min(start + tile, self.chain.loops[dim]) - start, 0)

    # -- statement semantics ---------------------------------------------------

    def _spatial_key(self, block: ComputeBlock, idx: dict[str, int]) -> tuple:
        # Grid-bound spatial dims are constant per cell for the whole
        # program, so the residual indices capture every key change — the
        # batched analogue of the interpreter's (b, *spatial) key.
        return tuple(idx.get(d, 0) for d in block.spatial)

    def _operand_value(self, tensor: str, idx: dict[str, int]) -> np.ndarray:
        ref = self.chain.tensors[tensor]
        if ref.role == "input":
            if tensor not in self.smem:
                raise InterpreterError(f"tensor {tensor!r} consumed before Load")
            return self.smem[tensor]
        producer = self.chain.producer_of(tensor)
        assert producer is not None
        state = self.acc.get(producer.name)
        if state is None or state.key != self._spatial_key(producer, idx):
            raise InterpreterError(
                f"intermediate {tensor!r} consumed before it was produced "
                f"(schedule {self.s.describe()})"
            )
        return _apply_epilogue(state.tile, producer.epilogue)

    def _ensure_acc(self, block: ComputeBlock, idx: dict[str, int]) -> _BatchedAcc:
        key = self._spatial_key(block, idx)
        state = self.acc.get(block.name)
        # Init-on-first-reduction-iteration, mirroring the scalar
        # interpreter: a fresh reduction sweep re-zeroes the accumulator
        # even when the spatial key is unchanged.
        fresh_sweep = all(idx.get(r, 0) == 0 for r in block.reduction)
        if state is None or state.key != key or fresh_sweep:
            out_dims = self.chain.tensors[block.output].dims
            lead = self._lead_shape(out_dims)
            shape = tuple(self.tiles[d] for d in out_dims)
            state = _BatchedAcc(
                key=key, tile=np.zeros((*lead, *shape), dtype=np.float32)
            )
            if block.softmax_over is not None:
                row_dims = softmax_row_dims(self.chain, block)
                first_dims = self.chain.tensors[block.inputs[0]].dims
                row_lead = self._lead_shape(first_dims)
                row_shape = tuple(self.tiles[d] for d in row_dims)
                state.row_max = np.full(
                    (*row_lead, *row_shape), _NEG_INF, dtype=np.float32
                )
                state.denom = np.zeros((*row_lead, *row_shape), dtype=np.float32)
            self.acc[block.name] = state
        return state

    def _matmul_plan(self, block: ComputeBlock) -> tuple | None:
        """Derive a batched-matmul mapping for a two-operand contraction.

        Returns ``(a_perm, b_perm, n_m, n_k, n_n, out_perm)`` — trailing-axis
        permutations mapping operand A to ``(.., M.., K..)``, operand B to
        ``(.., K.., N..)`` and the ``(.., M.., N..)`` product back to the
        output dim order — or ``None`` when the block is not expressible as
        one matmul (3+ operands, elementwise-shared dims).
        """
        if len(block.inputs) != 2:
            return None
        a_dims = self.chain.tensors[block.inputs[0]].dims
        b_dims = self.chain.tensors[block.inputs[1]].dims
        out_dims = self.chain.tensors[block.output].dims
        k_dims = [d for d in a_dims if d in b_dims and d not in out_dims]
        m_dims = [d for d in a_dims if d not in k_dims]
        n_dims = [d for d in b_dims if d not in k_dims]
        if any(d in b_dims for d in m_dims) or set(out_dims) != set(m_dims + n_dims):
            return None  # shared non-contracted dims: not a plain matmul
        a_perm = tuple(a_dims.index(d) for d in (*m_dims, *k_dims))
        b_perm = tuple(b_dims.index(d) for d in (*k_dims, *n_dims))
        out_perm = tuple((*m_dims, *n_dims).index(d) for d in out_dims)
        return a_perm, b_perm, len(m_dims), len(k_dims), len(n_dims), out_perm

    @staticmethod
    def _group(arr: np.ndarray, perm: tuple[int, ...], split: int) -> np.ndarray:
        """Permute ``arr``'s trailing axes by ``perm`` and merge them into
        two matmul axes (the first ``split`` permuted axes, then the rest)."""
        lead = arr.ndim - len(perm)
        arr = np.transpose(arr, (*range(lead), *(lead + p for p in perm)))
        left = int(np.prod(arr.shape[lead:lead + split], dtype=np.int64))
        right = int(np.prod(arr.shape[lead + split:], dtype=np.int64))
        return arr.reshape((*arr.shape[:lead], left, right))

    def _einsum_tiles(self, block: ComputeBlock, operands: list[np.ndarray]) -> np.ndarray:
        if block.name not in self._mm_plans:
            self._mm_plans[block.name] = self._matmul_plan(block)
        plan = self._mm_plans[block.name]
        if plan is not None:
            a_perm, b_perm, n_m, n_k, n_n, out_perm = plan
            a, b = operands
            lead_a, lead_b = a.ndim - len(a_perm), b.ndim - len(b_perm)
            m_shape = tuple(a.shape[lead_a + p] for p in a_perm[:n_m])
            n_shape = tuple(b.shape[lead_b + p] for p in b_perm[n_k:])
            prod_mn = np.matmul(
                self._group(a, a_perm, n_m), self._group(b, b_perm, n_k)
            )
            lead = prod_mn.shape[:-2]
            prod_mn = prod_mn.reshape((*lead, *m_shape, *n_shape))
            return np.transpose(
                prod_mn, (*range(len(lead)), *(len(lead) + p for p in out_perm))
            )
        ins = ",".join(
            "..." + "".join(self.chain.tensors[t].dims) for t in block.inputs
        )
        out = "..." + "".join(self.chain.tensors[block.output].dims)
        spec = f"{ins}->{out}"
        key = (spec, tuple(o.shape for o in operands))
        path = self._einsum_paths.get(key)
        if path is None:
            path = np.einsum_path(spec, *operands, optimize="optimal")[0]
            self._einsum_paths[key] = path
        return np.einsum(spec, *operands, optimize=path)

    def _load(self, op: TileOp, idx: dict[str, int]) -> None:
        self.smem[op.tensor] = self._tile_slice(op.tensor, idx)

    def _compute(self, op: TileOp, idx: dict[str, int]) -> None:
        block = self.chain.block(op.block)
        state = self._ensure_acc(block, idx)
        operands = [self._operand_value(t, idx) for t in block.inputs]
        if block.softmax_over is None:
            contrib = self._einsum_tiles(block, operands)
            if block.scale != 1.0:
                contrib = contrib * np.float32(block.scale)
            state.tile += contrib.astype(np.float32, copy=False)
            return
        self._compute_online_softmax(block, state, operands, idx)

    def _compute_online_softmax(
        self,
        block: ComputeBlock,
        state: _BatchedAcc,
        operands: list[np.ndarray],
        idx: dict[str, int],
    ) -> None:
        """The interpreter's online-softmax recurrence with grid axes."""
        assert state.row_max is not None and state.denom is not None
        n = block.softmax_over
        assert n is not None
        lead = len(self.grid_order)
        scores = operands[0]  # (*lead, *first_dims tiles)
        first_dims = self.chain.tensors[block.inputs[0]].dims
        n_axis = lead + first_dims.index(n)
        moved = n_axis != scores.ndim - 1
        if moved:
            scores = np.moveaxis(scores, n_axis, -1)
        valid_n = self._valid_extent(n, idx)  # uniform: n is never grid-bound
        if valid_n == 0:
            return
        if valid_n < scores.shape[-1]:
            scores = np.array(scores, dtype=np.float32)  # private copy to mask
            scores[..., valid_n:] = _NEG_INF
        tile_max = scores.max(axis=-1)
        new_max = np.maximum(state.row_max, tile_max)
        correction = np.exp(state.row_max - new_max)
        correction = np.where(
            np.isfinite(correction), correction, np.float32(0.0)
        ).astype(np.float32, copy=False)
        probs = np.subtract(scores, new_max[..., None], dtype=np.float32)
        np.exp(probs, out=probs)
        state.denom *= correction
        state.denom += probs.sum(axis=-1)
        if moved:
            probs = np.moveaxis(probs, -1, n_axis)
        contrib = self._einsum_tiles(block, [probs, *operands[1:]])
        out_dims = self.chain.tensors[block.output].dims
        row_dims = softmax_row_dims(self.chain, block)
        state.tile *= rows_to_tile(correction, row_dims, out_dims, lead=lead)
        state.tile += contrib.astype(np.float32, copy=False)
        state.row_max = new_max

    def _store(self, op: TileOp, idx: dict[str, int]) -> None:
        block = self.chain.block(op.block)
        state = self.acc.get(block.name)
        if state is None:
            raise InterpreterError(f"Store of {op.tensor!r} before any Compute")
        value = state.tile
        if block.softmax_over is not None:
            assert state.denom is not None
            denom = np.where(state.denom > 0.0, state.denom, np.float32(1.0))
            value = value / rows_to_tile(
                denom,
                softmax_row_dims(self.chain, block),
                self.chain.tensors[op.tensor].dims,
                lead=len(self.grid_order),
            )
        value = _apply_epilogue(value, block.epilogue)
        dims = self.chain.tensors[op.tensor].dims
        buf = self._out_buffers[op.tensor]  # (B, n1..nr, T1..Tr)
        sel: list = [slice(None)]
        kept: list[str] = ["b"]
        for d in dims:
            if d in self.grid_extent:
                sel.append(slice(None))
                kept.append(d)
            else:
                sel.append(idx.get(d, 0))
        # value leading axes follow grid_order (outputs carry every grid
        # loop, per the lowering guard); permute them into tensor-dim
        # order and broadcast over any extent-1 axes (e.g. an accumulator
        # whose inputs never saw a grid loop of extent 1).
        order = [self.grid_order.index(g) for g in kept]
        value = np.transpose(
            value, (*order, *range(len(self.grid_order), value.ndim))
        )
        buf[tuple(sel)] = value

    # -- driver ----------------------------------------------------------------

    def run(self) -> dict[str, np.ndarray]:
        for op in self.program.ops:
            idx = dict(op.idx)
            if op.kind == "load":
                self._load(op, idx)
            elif op.kind == "compute":
                self._compute(op, idx)
            else:
                self._store(op, idx)
        outputs: dict[str, np.ndarray] = {}
        for name, buf in self._out_buffers.items():
            dims = self.chain.tensors[name].dims
            r = len(dims)
            # (B, n1..nr, T1..Tr) -> (B, n1,T1, ..., nr,Tr) -> merge -> trim
            perm = [0]
            for i in range(r):
                perm.extend((1 + i, 1 + r + i))
            interleaved = buf.transpose(perm)
            full = interleaved.reshape(
                self.chain.batch,
                *(buf.shape[1 + i] * buf.shape[1 + r + i] for i in range(r)),
            )
            trim = (slice(None), *(slice(0, self.chain.loops[d]) for d in dims))
            outputs[name] = full[trim]
        return outputs


def execute_program(
    program: TileProgram, inputs: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Execute a lowered tile program on concrete inputs (all cells batched)."""
    return VectorizedExecutor(program, inputs).run()
