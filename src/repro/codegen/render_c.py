"""Render a lowered :class:`TileProgram` to a self-contained C kernel.

The compiled backend is the reproduction's answer to "emit a real fused
kernel and run it": the same flat program the vectorized executor batches
over grid cells is rendered, cell-structure intact, as plain C — grid
loops outermost (OpenMP-parallel when the compiler supports it), the
residual loop tree inside, per-cell shared-memory tiles and accumulators
in a malloc'd arena. The emission replicates the scalar interpreter's
semantics statement for statement:

* ``load``    — zero the tile buffer, copy the valid (clamped) region of
  the global tensor row by row;
* ``compute`` — accumulator init-on-first-reduction-iteration (the
  ``fresh_sweep``/spatial-key logic of ``_ensure_acc``), producer
  epilogues applied at consumption, and the online-softmax recurrence
  (running row max / denominator / rescaled accumulator, padded columns
  masked, ``exp(-inf - -inf)`` corrections clamped to zero);
* ``store``   — divide by the softmax denominator where present, apply
  the block epilogue, write the valid region only.

Rendering is *total* over verified programs: :func:`render_program` first
re-runs the interpreter's state-machine checks statically over the flat
ops (every residual index is a compile-time constant, so "consumed before
Load" and "consumed before produced" are decidable at render time) and
raises :class:`RenderError` — a subclass of :class:`InterpreterError`, so
error parity with the scalar backend holds — instead of ever emitting
code with different semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.interpreter import InterpreterError, softmax_row_dims
from repro.codegen.program import TileProgram
from repro.tiling.schedule import LoopScope, Statement
from repro.utils import prod, stable_hash

__all__ = [
    "RenderError",
    "RenderedKernel",
    "render_program",
    "program_renderable",
    "schedule_renderable",
    "MAX_ARENA_BYTES",
]

#: Per-cell working-set cap (bytes). The arena holds every tile buffer of
#: one grid cell; schedules past this would thrash any real shared memory
#: by orders of magnitude anyway, and the cap keeps a pathological tiling
#: from turning into a multi-GiB malloc per OpenMP thread.
MAX_ARENA_BYTES = 1 << 28


class RenderError(InterpreterError):
    """The program cannot be rendered to C with faithful semantics."""


@dataclass(frozen=True)
class RenderedKernel:
    """A rendered C kernel plus the call-signature metadata.

    ``arg_names`` lists the pointer parameters in order: every chain input
    (in :meth:`ComputeChain.input_names` order) followed by every output
    tensor (in chain tensor-dict order). ``source_hash`` is the content
    address the kernel cache keys on.
    """

    source: str
    entry: str
    input_names: tuple[str, ...]
    output_names: tuple[str, ...]
    source_hash: str

    @property
    def arg_names(self) -> tuple[str, ...]:
        return self.input_names + self.output_names


# -- static verification -------------------------------------------------------


def _verify_program(program: TileProgram) -> None:
    """Re-run the scalar interpreter's per-cell state checks over the flat
    ops. Residual indices are static in the flat form, so every dynamic
    ``InterpreterError`` the scalar walker could raise mid-execution is
    decidable here; emitting C only for verified programs means the
    compiled kernel never needs runtime state checks."""
    chain = program.schedule.chain
    smem: set[str] = set()
    acc: dict[str, tuple] = {}  # block name -> spatial key

    def spatial_key(block, idx: dict[str, int]) -> tuple:
        # Grid-bound dims are absent from the flat idx and constant within
        # a cell; `idx.get(d, 0)` matches the scalar interpreter for every
        # residual dim and is harmlessly 0 for grid-bound ones.
        return tuple(idx.get(d, 0) for d in block.spatial)

    for op in program.ops:
        idx = dict(op.idx)
        if op.kind == "load":
            smem.add(op.tensor)
            continue
        block = chain.block(op.block)
        if op.kind == "compute":
            for tensor in block.inputs:
                ref = chain.tensors[tensor]
                if ref.role == "input":
                    if tensor not in smem:
                        raise RenderError(
                            f"tensor {tensor!r} consumed before Load "
                            f"(schedule {program.schedule.describe()})"
                        )
                    continue
                producer = chain.producer_of(tensor)
                assert producer is not None
                key = acc.get(producer.name)
                if key is None or key != spatial_key(producer, idx):
                    raise RenderError(
                        f"intermediate {tensor!r} consumed before it was produced "
                        f"(schedule {program.schedule.describe()})"
                    )
            if block.softmax_over is not None:
                softmax_row_dims(chain, block)  # raises for inexpressible rows
            acc[block.name] = spatial_key(block, idx)
        else:  # store
            if block.name not in acc:
                raise RenderError(
                    f"Store of {op.tensor!r} before any Compute "
                    f"(schedule {program.schedule.describe()})"
                )


# -- emission ------------------------------------------------------------------


class _Emitter:
    """Walks the schedule's residual loop tree and emits the kernel body.

    All naming is index-based (``sm0``, ``acc1``...) so arbitrary tensor
    and block names from the partitioner (dots, unicode) never reach the C
    identifier space.
    """

    def __init__(self, program: TileProgram) -> None:
        self.program = program
        self.schedule = program.schedule
        self.chain = program.schedule.chain
        self.tiles = program.schedule.tiles
        self.lines: list[str] = []
        self.depth = 0
        # Stable integer ids for tensors and blocks.
        self.tensor_id = {name: i for i, name in enumerate(self.chain.tensors)}
        self.block_id = {b.name: i for i, b in enumerate(self.chain.blocks)}
        # Loop variables: grid loops first, then residual loops get vars as
        # the tree walk encounters them. Values: C variable name or None
        # (meaning a constant 0 in index expressions).
        self.grid_vars: dict[str, str] = {}
        self.loop_vars: dict[str, str] = {}
        self.in_scope: list[str] = []
        self.arena: list[tuple[str, int]] = []  # (buffer c-name, elements)
        self.arena_off: dict[str, int] = {}
        self._next_off = 0

    # -- small helpers ---------------------------------------------------------

    def emit(self, line: str = "") -> None:
        self.lines.append(("    " * self.depth + line) if line else "")

    def tile_shape(self, dims: tuple[str, ...]) -> tuple[int, ...]:
        return tuple(self.tiles[d] for d in dims)

    def alloc(self, name: str, elements: int) -> None:
        self.arena_off[name] = self._next_off
        self.arena.append((name, elements))
        self._next_off += elements

    def idx_val(self, dim: str) -> str:
        """C expression for the scalar interpreter's ``idx.get(dim, 0)`` at
        the current program point."""
        if dim in self.grid_vars:
            return self.grid_vars[dim]
        if dim in self.in_scope:
            return self.loop_vars[dim]
        return "0"

    def tile_index(self, dims: tuple[str, ...], ivars: dict[str, str]) -> str:
        """Row-major flat index into a tile buffer shaped by ``dims``."""
        if not dims:
            return "0"
        terms = []
        stride = 1
        for d in reversed(dims):
            v = ivars[d]
            terms.append(v if stride == 1 else f"{v} * {stride}")
            stride *= self.tiles[d]
        return " + ".join(reversed(terms))

    def global_index(self, tensor: str, offsets: dict[str, str], ivars: dict[str, str]) -> str:
        """Row-major flat index into a global tensor (batch axis included)."""
        dims = self.chain.tensors[tensor].dims
        sizes = [self.chain.loops[d] for d in dims]
        terms = []
        stride = 1
        for d, size in zip(reversed(dims), reversed(sizes)):
            expr = f"({offsets[d]} + {ivars[d]})" if d in ivars else offsets[d]
            terms.append(expr if stride == 1 else f"{expr} * {stride}")
            stride *= size
        terms.append(f"b * {stride}")
        return " + ".join(reversed(terms))

    def epilogue_expr(self, expr: str, epilogue: str | None) -> str:
        if epilogue is None:
            return expr
        if epilogue == "relu":
            return f"mcf_relu({expr})"
        if epilogue == "gelu":
            return f"mcf_gelu({expr})"
        raise RenderError(f"unknown epilogue {epilogue!r}")

    # -- buffer planning -------------------------------------------------------

    def plan_arena(self) -> None:
        loaded = {s.tensor for s in self.schedule.statements() if s.kind == "load"}
        for name in self.chain.tensors:
            if name in loaded:
                self.alloc(
                    f"sm{self.tensor_id[name]}",
                    int(prod(self.tile_shape(self.chain.tensors[name].dims))),
                )
        for block in self.chain.blocks:
            bid = self.block_id[block.name]
            out_elems = int(prod(self.tile_shape(self.chain.tensors[block.output].dims)))
            self.alloc(f"acc{bid}", out_elems)
            consumed_with_epilogue = block.epilogue is not None and any(
                block.output in b.inputs for b in self.chain.blocks
            )
            if consumed_with_epilogue:
                self.alloc(f"epi{bid}", out_elems)
            if block.softmax_over is not None:
                rows = int(prod(self.tile_shape(softmax_row_dims(self.chain, block))))
                first = int(prod(self.tile_shape(self.chain.tensors[block.inputs[0]].dims)))
                self.alloc(f"rmax{bid}", rows)
                self.alloc(f"rden{bid}", rows)
                self.alloc(f"rcor{bid}", rows)
                self.alloc(f"prob{bid}", first)
            _, _, transposed = self.contraction_form(block)
            planned: set[str] = set()
            for base, dims in self.contraction_reads(block):
                if base in transposed and base not in planned:
                    planned.add(base)
                    self.alloc(f"tr{bid}_{base}", int(prod(self.tile_shape(dims))))
        if self._next_off * 4 > MAX_ARENA_BYTES:
            raise RenderError(
                f"per-cell working set of {self._next_off * 4} bytes exceeds the "
                f"{MAX_ARENA_BYTES}-byte arena cap for {self.schedule.describe()}"
            )

    # -- statement emission ----------------------------------------------------

    def emit_load(self, stmt: Statement) -> None:
        tensor = stmt.tensor
        dims = self.chain.tensors[tensor].dims
        buf = f"sm{self.tensor_id[tensor]}"
        elems = int(prod(self.tile_shape(dims)))
        self.emit(f"{{ /* Load tile {tensor} */")
        self.depth += 1
        self.emit(f"memset({buf}, 0, {elems} * sizeof(float));")
        for j, d in enumerate(dims):
            size = self.chain.loops[d]
            tile = self.tiles[d]
            self.emit(f"long s{j} = (long)({self.idx_val(d)}) * {tile};")
            self.emit(f"long v{j} = {size} - s{j} < {tile} ? {size} - s{j} : {tile};")
        guard = " && ".join(f"v{j} > 0" for j in range(len(dims))) or "1"
        self.emit(f"if ({guard}) {{")
        self.depth += 1
        ivars = {d: f"i{j}" for j, d in enumerate(dims[:-1])}
        for j, d in enumerate(dims[:-1]):
            self.emit(f"for (long i{j} = 0; i{j} < v{j}; i{j}++)")
            self.depth += 1
        last = dims[-1]
        offsets = {d: f"s{j}" for j, d in enumerate(dims)}
        src = self.global_index(tensor, offsets, ivars)
        dst = self.tile_index(dims, {**ivars, last: "0"})
        self.emit(
            f"memcpy({buf} + ({dst}), {self.c_arg(tensor)} + ({src}), "
            f"v{len(dims) - 1} * sizeof(float));"
        )
        self.depth -= len(dims) - 1
        self.depth -= 1
        self.emit("}")
        self.depth -= 1
        self.emit("}")

    def c_arg(self, tensor: str) -> str:
        ref = self.chain.tensors[tensor]
        assert ref.role in ("input", "output")
        return f"g{self.tensor_id[tensor]}"

    def emit_acc_reset(self, block) -> None:
        """The interpreter's ``_ensure_acc``: re-zero on first touch, on a
        spatial-key change, or on a fresh reduction sweep."""
        bid = self.block_id[block.name]
        out_dims = self.chain.tensors[block.output].dims
        elems = int(prod(self.tile_shape(out_dims)))
        fresh_terms = [
            f"{self.loop_vars[r]} == 0"
            for r in block.reduction
            if r in self.in_scope
        ]
        fresh = " && ".join(fresh_terms) if fresh_terms else "1"
        key_dims = [d for d in block.spatial if d in self.in_scope]
        key_terms = [f"key{bid}_{i} != {self.loop_vars[d]}" for i, d in enumerate(key_dims)]
        cond = " || ".join([f"!alive{bid}", *key_terms, f"({fresh})"])
        self.emit(f"if ({cond}) {{")
        self.depth += 1
        self.emit(f"memset(acc{bid}, 0, {elems} * sizeof(float));")
        if block.softmax_over is not None:
            rows = int(prod(self.tile_shape(softmax_row_dims(self.chain, block))))
            self.emit(f"for (long r = 0; r < {rows}; r++) {{ rmax{bid}[r] = -INFINITY; rden{bid}[r] = 0.0f; }}")
        self.emit(f"alive{bid} = 1;")
        for i, d in enumerate(key_dims):
            self.emit(f"key{bid}_{i} = {self.loop_vars[d]};")
        self.depth -= 1
        self.emit("}")

    def operand_base(self, tensor: str) -> str:
        """The tile buffer a compute operand is read from (producer
        epilogues applied at consumption, per the interpreter)."""
        ref = self.chain.tensors[tensor]
        if ref.role == "input":
            return f"sm{self.tensor_id[tensor]}"
        producer = self.chain.producer_of(tensor)
        assert producer is not None
        bid = self.block_id[producer.name]
        if producer.epilogue is not None:
            return f"epi{bid}"
        return f"acc{bid}"

    def operand_read(self, tensor: str, ivars: dict[str, str]) -> str:
        """C expression reading one element of a compute operand."""
        index = self.tile_index(self.chain.tensors[tensor].dims, ivars)
        return f"{self.operand_base(tensor)}[{index}]"

    def contraction_reads(self, block) -> list[tuple[str, tuple[str, ...]]]:
        """(tile buffer, tile dims) for each contraction operand; a softmax
        block contracts its probability tile in place of the first
        operand (the scores were consumed by the softmax stages)."""
        reads: list[tuple[str, tuple[str, ...]]] = []
        inputs = block.inputs
        if block.softmax_over is not None:
            bid = self.block_id[block.name]
            reads.append((f"prob{bid}", self.chain.tensors[inputs[0]].dims))
            inputs = inputs[1:]
        for t in inputs:
            reads.append((self.operand_base(t), self.chain.tensors[t].dims))
        return reads

    def contraction_form(self, block) -> tuple[str, str | None, tuple[str, ...]]:
        """How the block's einsum loop nest iterates, chosen by access
        pattern — shared between arena planning and emission.

        Returns ``(form, inner dim, buffers to transpose)``:

        - ``axpy``: the output's last dim is innermost and every operand
          reads it unit-stride — vector FMAs into the accumulator row.
          Operands that carry the inner dim strided get a transposed
          tile copy (worth it: the copy is one pass over the operand,
          while the dot form pays a horizontal reduction per output
          element — the Q·K^T case).
        - ``dot``: scalar-output blocks reduce a contracted dim that is
          unit-stride in every operand via a SIMD ``+`` reduction.
        - ``naive``: no candidate; the plain nest, compiler's choice.
        """
        out_dims = self.chain.tensors[block.output].dims
        reads = self.contraction_reads(block)
        order, _ = self.contraction_order(block)
        if not order:
            return ("naive", None, ())
        if out_dims:
            inner = out_dims[-1]
            offenders = [b for b, dims in reads if inner in dims and dims[-1] != inner]
            return ("axpy", inner, tuple(dict.fromkeys(offenders)))
        for c in order:
            if not any(c in dims for _, dims in reads):
                continue
            if all(c not in dims or dims[-1] == c for _, dims in reads):
                return ("dot", c, ())
        return ("naive", None, ())

    def materialize_epilogues(self, block) -> None:
        """Producer tiles consumed through an epilogue are materialized once
        per compute execution instead of re-applying gelu per inner-loop
        read."""
        for tensor in block.inputs:
            producer = self.chain.producer_of(tensor)
            if producer is None or producer.epilogue is None:
                continue
            bid = self.block_id[producer.name]
            elems = int(prod(self.tile_shape(self.chain.tensors[tensor].dims)))
            body = self.epilogue_expr(f"acc{bid}[e]", producer.epilogue)
            self.emit(
                f"for (long e = 0; e < {elems}; e++) epi{bid}[e] = {body}; "
                f"/* epilogue({producer.epilogue}) of {tensor} */"
            )

    def contraction_order(self, block) -> tuple[list[str], dict[str, str]]:
        """The einsum loop order and its index vars (no emission).

        Order: output dims except the last, then contracted dims, then the
        output's last dim innermost — unit-stride stores/loads on the
        accumulator for the compiler to vectorize.
        """
        out_dims = self.chain.tensors[block.output].dims
        seen = set(out_dims)
        contracted = []
        for tensor in block.inputs:
            for d in self.chain.tensors[tensor].dims:
                if d not in seen:
                    contracted.append(d)
                    seen.add(d)
        if out_dims:
            order = [*out_dims[:-1], *contracted, out_dims[-1]]
        else:
            order = list(contracted)
        return order, {d: f"t{i}" for i, d in enumerate(order)}

    def emit_contraction(
        self,
        block,
        reads: list[tuple[str, tuple[str, ...]]],
        order: list[str],
        ivars: dict[str, str],
        scale_expr: str | None = None,
    ) -> None:
        """Emit the loop nest around ``acc += product`` in the form chosen
        by :meth:`contraction_form` (``reads`` is ``(buffer, dims)``
        pairs). Factors invariant to the innermost dim are hoisted
        between the loops, and the innermost loop carries ``#pragma omp
        simd`` — without it the compiler's cost model refuses these
        small tile loops as a "complicated access pattern"."""
        bid = self.block_id[block.name]
        out_dims = self.chain.tensors[block.output].dims
        target = f"acc{bid}[{self.tile_index(out_dims, ivars)}]"
        form, inner, transposed = self.contraction_form(block)
        resolved: list[tuple[str, tuple[str, ...]]] = []
        copied: set[str] = set()
        for base, dims in reads:
            if base not in transposed:
                resolved.append((base, dims))
                continue
            tdims = (*[d for d in dims if d != inner], inner)
            tr = f"tr{bid}_{base}"
            if base not in copied:
                copied.add(base)
                cvars = {d: f"c{j}" for j, d in enumerate(dims)}
                self.emit(f"/* unit-stride copy of {base} for the {inner} loop */")
                for j, d in enumerate(dims):
                    self.emit(f"for (long c{j} = 0; c{j} < {self.tiles[d]}; c{j}++)")
                    self.depth += 1
                self.emit(
                    f"{tr}[{self.tile_index(tdims, cvars)}] = "
                    f"{base}[{self.tile_index(dims, cvars)}];"
                )
                self.depth -= len(dims)
            resolved.append((tr, tdims))

        def rd(base: str, dims: tuple[str, ...], iv: dict[str, str]) -> str:
            return f"{base}[{self.tile_index(dims, iv)}]"

        factors = ([scale_expr] if scale_expr else []) + [
            rd(b, d, ivars) for b, d in resolved
        ]
        if not order:
            self.emit(f"{target} += {' * '.join(factors)};")
            return
        if form == "naive":  # strided every way: leave it to the compiler
            for d in order:
                v = ivars[d]
                self.emit(f"for (long {v} = 0; {v} < {self.tiles[d]}; {v}++)")
                self.depth += 1
            self.emit(f"{target} += {' * '.join(factors)};")
            self.depth -= len(order)
            return
        outer = [d for d in order if d != inner]
        invariant = [(b, d) for b, d in resolved if inner not in d]
        variant = [(b, d) for b, d in resolved if inner in d]
        # Register-block the innermost contracted loop: the accumulator
        # row is re-loaded and re-stored on every sweep of that loop, so
        # jamming JAM sweeps into one statement divides that traffic by
        # JAM. (The per-statement regrouping of the sum is fp
        # reassociation of the same order the backends already tolerate.)
        jam_dim = outer[-1] if outer and outer[-1] not in out_dims else None
        jam = 1
        if form == "axpy" and variant and jam_dim is not None:
            for cand in (4, 2):
                if self.tiles[jam_dim] % cand == 0:
                    jam = cand
                    break
        iv = ivars[inner]

        def lane(j: int) -> dict[str, str]:
            if jam == 1 or j == 0:
                return ivars
            return {**ivars, jam_dim: f"({ivars[jam_dim]} + {j})"}

        for d in outer[:-1] if jam > 1 else outer:
            v = ivars[d]
            self.emit(f"for (long {v} = 0; {v} < {self.tiles[d]}; {v}++) {{")
            self.depth += 1
        if jam > 1:
            jv = ivars[jam_dim]
            self.emit(
                f"for (long {jv} = 0; {jv} < {self.tiles[jam_dim]}; {jv} += {jam}) {{"
            )
            self.depth += 1
        if form == "axpy":
            scale = [scale_expr] if scale_expr else []
            terms = []
            for j in range(jam):
                hoist = scale + [rd(b, d, lane(j)) for b, d in invariant]
                var_j = [rd(b, d, lane(j)) for b, d in variant]
                if hoist:
                    self.emit(f"float h{j}_ = {' * '.join(hoist)};")
                    terms.append(" * ".join([f"h{j}_", *var_j]) if var_j else f"h{j}_")
                else:
                    terms.append(" * ".join(var_j))
            self.emit("#pragma omp simd")
            self.emit(f"for (long {iv} = 0; {iv} < {self.tiles[inner]}; {iv}++)")
            self.depth += 1
            self.emit(f"{target} += {' + '.join(terms)};")
            self.depth -= 1
        else:  # dot
            hoist = ([scale_expr] if scale_expr else []) + [
                rd(b, d, ivars) for b, d in invariant
            ]
            var_exprs = [rd(b, d, ivars) for b, d in variant]
            self.emit("float s_ = 0.0f;")
            self.emit("#pragma omp simd reduction(+:s_)")
            self.emit(f"for (long {iv} = 0; {iv} < {self.tiles[inner]}; {iv}++)")
            self.depth += 1
            self.emit(f"s_ += {' * '.join(var_exprs)};")
            self.depth -= 1
            update = " * ".join([*hoist, "s_"]) if hoist else "s_"
            self.emit(f"{target} += {update};")
        for _ in outer:  # jam_dim's brace counts as its outer slot
            self.depth -= 1
            self.emit("}")

    def emit_compute(self, stmt: Statement) -> None:
        block = self.chain.block(stmt.block)
        self.emit(f"{{ /* Compute {block.name} */")
        self.depth += 1
        self.emit_acc_reset(block)
        self.materialize_epilogues(block)
        if block.softmax_over is None:
            order, ivars = self.contraction_order(block)
            scale_expr = f"{block.scale!r}f" if block.scale != 1.0 else None
            self.emit_contraction(
                block, self.contraction_reads(block), order, ivars, scale_expr
            )
        else:
            self.emit_online_softmax(block)
        self.depth -= 1
        self.emit("}")

    def emit_online_softmax(self, block) -> None:
        """The FlashAttention recurrence, staged exactly as the scalar
        interpreter: (1) per-row max/probs/denominator update, (2) rescale
        the accumulator by the correction, (3) add the probs contraction."""
        bid = self.block_id[block.name]
        chain = self.chain
        n = block.softmax_over
        assert n is not None
        first = block.inputs[0]
        first_dims = chain.tensors[first].dims
        row_dims = softmax_row_dims(chain, block)
        out_dims = chain.tensors[block.output].dims
        tile_n = self.tiles[n]
        size_n = chain.loops[n]
        self.emit(f"long sn = (long)({self.idx_val(n)}) * {tile_n};")
        self.emit(f"long vn = {size_n} - sn < {tile_n} ? {size_n} - sn : {tile_n};")
        self.emit("if (vn > 0) {")
        self.depth += 1
        # Stage 1: per-row stats + probs (probs laid out as the first
        # operand's tile so the contraction reads it like any operand).
        rvars = {d: f"r{i}" for i, d in enumerate(row_dims)}
        for i, d in enumerate(row_dims):
            self.emit(f"for (long r{i} = 0; r{i} < {self.tiles[d]}; r{i}++) {{")
            self.depth += 1
        row_index = self.tile_index(row_dims, rvars)
        score = self.operand_read(first, {**rvars, n: "jn"})
        self.emit("float tmax = -INFINITY;")
        self.emit("#pragma omp simd reduction(max:tmax)")
        self.emit(f"for (long jn = 0; jn < vn; jn++) {{ float s = {score}; if (s > tmax) tmax = s; }}")
        self.emit(f"float oldmax = rmax{bid}[{row_index}];")
        self.emit("float newmax = oldmax > tmax ? oldmax : tmax;")
        self.emit("float corr = expf(oldmax - newmax);")
        self.emit("if (!isfinite(corr)) corr = 0.0f;")
        self.emit("float psum = 0.0f;")
        # Three passes: masked arguments, then a bare expf call, then the
        # denominator reduction. The middle pass is the only shape gcc
        # will lower to the simd-declared expf — any ternary around the
        # call (even a pure argument blend) falls back to scalar libm.
        # Masked lanes get -inf, which the vector expf maps to exactly 0.
        prob_at = f"prob{bid}[{self.tile_index(first_dims, {**rvars, n: 'jn'})}]"
        self.emit("#pragma omp simd")
        self.emit(f"for (long jn = 0; jn < {tile_n}; jn++)")
        self.depth += 1
        self.emit(f"{prob_at} = jn < vn ? {score} - newmax : -INFINITY;")
        self.depth -= 1
        self.emit("#pragma omp simd")
        self.emit(f"for (long jn = 0; jn < {tile_n}; jn++)")
        self.depth += 1
        self.emit(f"{prob_at} = expf({prob_at});")
        self.depth -= 1
        self.emit("#pragma omp simd reduction(+:psum)")
        self.emit(f"for (long jn = 0; jn < {tile_n}; jn++)")
        self.depth += 1
        self.emit(f"psum += {prob_at};")
        self.depth -= 1
        self.emit(f"rden{bid}[{row_index}] = rden{bid}[{row_index}] * corr + psum;")
        self.emit(f"rmax{bid}[{row_index}] = newmax;")
        self.emit(f"rcor{bid}[{row_index}] = corr;")
        for _ in row_dims:
            self.depth -= 1
            self.emit("}")
        # Stage 2: rescale the running accumulator by the row correction.
        ovars = {d: f"o{i}" for i, d in enumerate(out_dims)}
        for i, d in enumerate(out_dims):
            if i + 1 == len(out_dims):
                self.emit("#pragma omp simd")
            self.emit(f"for (long o{i} = 0; o{i} < {self.tiles[d]}; o{i}++) {{")
            self.depth += 1
        row_of_out = self.tile_index(row_dims, ovars)
        self.emit(f"acc{bid}[{self.tile_index(out_dims, ovars)}] *= rcor{bid}[{row_of_out}];")
        for _ in out_dims:
            self.depth -= 1
            self.emit("}")
        # Stage 3: contraction with probs as the first operand (no scale —
        # a softmax block's scale belongs to its producer contraction).
        order, ivars = self.contraction_order(block)
        self.emit_contraction(block, self.contraction_reads(block), order, ivars)
        self.depth -= 1
        self.emit("}")

    def emit_store(self, stmt: Statement) -> None:
        block = self.chain.block(stmt.block)
        bid = self.block_id[block.name]
        tensor = stmt.tensor
        dims = self.chain.tensors[tensor].dims
        self.emit(f"{{ /* Store tile {tensor} */")
        self.depth += 1
        for j, d in enumerate(dims):
            size = self.chain.loops[d]
            tile = self.tiles[d]
            self.emit(f"long s{j} = (long)({self.idx_val(d)}) * {tile};")
            self.emit(f"long v{j} = {size} - s{j} < {tile} ? {size} - s{j} : {tile};")
        ivars = {d: f"i{j}" for j, d in enumerate(dims)}
        for j, d in enumerate(dims):
            self.emit(f"for (long i{j} = 0; i{j} < v{j}; i{j}++) {{")
            self.depth += 1
        value = f"acc{bid}[{self.tile_index(dims, ivars)}]"
        if block.softmax_over is not None:
            row_dims = softmax_row_dims(self.chain, block)
            row = self.tile_index(row_dims, ivars)
            self.emit(f"float d_ = rden{bid}[{row}];")
            value = f"{value} / (d_ > 0.0f ? d_ : 1.0f)"
        value = self.epilogue_expr(value, block.epilogue)
        offsets = {d: f"s{j}" for j, d in enumerate(dims)}
        dst = self.global_index(tensor, offsets, ivars)
        self.emit(f"{self.c_arg(tensor)}[{dst}] = {value};")
        for _ in dims:
            self.depth -= 1
            self.emit("}")
        self.depth -= 1
        self.emit("}")

    # -- tree walk -------------------------------------------------------------

    def emit_scope(self, scope: LoopScope) -> None:
        for item in scope.body:
            if isinstance(item, Statement):
                if item.kind == "load":
                    self.emit_load(item)
                elif item.kind == "compute":
                    self.emit_compute(item)
                else:
                    self.emit_store(item)
            else:
                assert item.loop is not None
                var = f"L{len(self.loop_vars)}"
                self.loop_vars[item.loop] = var
                self.in_scope.append(item.loop)
                self.emit(f"for (long {var} = 0; {var} < {item.extent}; {var}++) {{ /* {item.loop} */")
                self.depth += 1
                self.emit_scope(item)
                self.depth -= 1
                self.emit("}")
                self.in_scope.pop()

    # -- whole kernel ----------------------------------------------------------

    def render(self) -> RenderedKernel:
        chain = self.chain
        schedule = self.schedule
        self.plan_arena()
        input_names = chain.input_names()
        output_names = tuple(
            name for name, ref in chain.tensors.items() if ref.role == "output"
        )
        params = [f"const float* restrict g{self.tensor_id[t]}" for t in input_names]
        params += [f"float* restrict g{self.tensor_id[t]}" for t in output_names]
        entry = "mcfuser_kernel"
        head = [
            "/* Generated by the MCFuser reproduction compiled backend.",
            f" * chain: {chain.name}",
            f" * schedule: {schedule.describe()}",
            " */",
            "#include <math.h>",
            "#include <stdlib.h>",
            "#include <string.h>",
            "",
            "static inline float mcf_relu(float x) { return x > 0.0f ? x : 0.0f; }",
            "static inline float mcf_gelu(float x) {",
            "    return 0.5f * x * (1.0f + tanhf(0.7978845608f * (x + 0.044715f * x * x * x)));",
            "}",
            "/* glibc ships vectorized expf in libmvec but only declares it simd",
            " * under fast-math, which would break the online-softmax -inf/isfinite",
            " * masking. Declaring it ourselves lets the probability loop call",
            " * _ZGV*_expf without fast-math; elsewhere expf stays scalar libm. */",
            "#if defined(__x86_64__) && defined(__GLIBC__) && defined(_OPENMP)",
            "#pragma omp declare simd notinbranch",
            "extern float expf(float);",
            "#endif",
            "",
            f"int {entry}({', '.join(params)}) {{",
            "    int fail = 0;",
        ]
        self.lines = []
        self.depth = 1
        grid = list(self.program.grid_loops)  # ("b", batch) first
        collapse = len(grid)
        self.emit("#pragma omp parallel for "
                  f"collapse({collapse}) schedule(static) reduction(|:fail)")
        for i, (loop, extent) in enumerate(grid):
            var = "b" if loop == "b" else f"g_{i}"
            if loop != "b":
                self.grid_vars[loop] = var
            self.emit(f"for (long {var} = 0; {var} < {extent}; {var}++)")
        self.emit("{")
        self.depth += 1
        arena_elems = self._next_off
        self.emit(f"float* arena = (float*)malloc({max(arena_elems, 1)} * sizeof(float));")
        self.emit("if (!arena) { fail = 1; continue; }")
        for name, _ in self.arena:
            self.emit(f"float* restrict {name} = arena + {self.arena_off[name]};")
        # Per-cell accumulator liveness + spatial keys.
        for block in chain.blocks:
            bid = self.block_id[block.name]
            self.emit(f"int alive{bid} = 0;")
            key_dims = [d for d in block.spatial]
            for i, d in enumerate(key_dims):
                self.emit(f"long key{bid}_{i} = -1; (void)key{bid}_{i};")
        self.emit_scope(schedule.root)
        self.emit("free(arena);")
        self.depth -= 1
        self.emit("}")
        self.emit("return fail;")
        body = head + self.lines + ["}"]
        source = "\n".join(body) + "\n"
        return RenderedKernel(
            source=source,
            entry=entry,
            input_names=input_names,
            output_names=output_names,
            source_hash=f"{stable_hash(source):016x}",
        )


#: (schedule content key, ops, grid_loops) -> rendered kernel. Rendering
#: is pure in the program content, so repeat executions of the same
#: schedule skip the ~1ms emit pass; a tampered program differs in its
#: ops tuple, misses the memo, and still reaches ``_verify_program``.
_RENDER_MEMO: dict[tuple, "RenderedKernel"] = {}
_RENDER_MEMO_CAP = 256


def render_program(program: TileProgram) -> RenderedKernel:
    """Render a lowered program to a compilable C kernel.

    Raises :class:`RenderError` — never emits semantically divergent code —
    for programs whose per-cell state machine the static verifier rejects
    or whose working set exceeds :data:`MAX_ARENA_BYTES`. Any
    ``InterpreterError`` escaping the verifier (e.g. an inexpressible
    softmax row shape) is re-raised as a :class:`RenderError` so callers
    can catch one typed error.
    """
    from repro.codegen.program import _content_key

    key = (_content_key(program.schedule), program.ops, program.grid_loops)
    hit = _RENDER_MEMO.get(key)
    if hit is not None:
        return hit
    try:
        _verify_program(program)
        rendered = _Emitter(program).render()
    except RenderError:
        raise
    except InterpreterError as exc:
        raise RenderError(str(exc)) from exc
    if len(_RENDER_MEMO) >= _RENDER_MEMO_CAP:
        _RENDER_MEMO.clear()
    _RENDER_MEMO[key] = rendered
    return rendered


#: program content key -> renderability verdict, mirroring
#: ``program._LOWERABLE_MEMO`` so `resolve_exec_backend` stays off the
#: render path for rebuilt-but-identical schedules.
_RENDERABLE_MEMO: dict[int, bool] = {}
_RENDERABLE_MEMO_CAP = 4096


def program_renderable(program: TileProgram) -> bool:
    """Whether ``program`` renders to C (memoized by schedule content)."""
    from repro.codegen.program import _content_key

    key = _content_key(program.schedule)
    verdict = _RENDERABLE_MEMO.get(key)
    if verdict is None:
        try:
            render_program(program)
            verdict = True
        except RenderError:
            verdict = False
        if len(_RENDERABLE_MEMO) >= _RENDERABLE_MEMO_CAP:
            _RENDERABLE_MEMO.clear()
        _RENDERABLE_MEMO[key] = verdict
    return verdict


def schedule_renderable(schedule) -> bool:
    """Whether ``schedule`` lowers *and* renders to C (memoized)."""
    from repro.codegen.program import _content_key, try_lower

    key = _content_key(schedule)
    verdict = _RENDERABLE_MEMO.get(key)
    if verdict is not None:
        return verdict
    program = try_lower(schedule, "auto")
    if program is None:
        if len(_RENDERABLE_MEMO) >= _RENDERABLE_MEMO_CAP:
            _RENDERABLE_MEMO.clear()
        _RENDERABLE_MEMO[key] = False
        return False
    return program_renderable(program)
