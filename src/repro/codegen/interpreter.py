"""NumPy tile interpreter: executes a scheduled fused kernel exactly.

This is the reproduction's stand-in for running generated Triton/PTX code
on a GPU and checking its output. The interpreter walks a
:class:`~repro.tiling.schedule.Schedule` grid cell by grid cell, keeping
"shared memory" tiles in a dictionary, accumulating partial results with
init-on-first-reduction-iteration semantics, applying producer epilogues at
consumption time, realizing ``softmax_over`` blocks with the *online
softmax* recurrence (numerically exact, like FlashAttention), and masking
padded tile regions so non-divisible problem sizes stay correct.

Every schedule that survives the pruning rules must produce bit-for-bit
(up to fp32 associativity) the same result as
:meth:`ComputeChain.reference` — the property-based tests in
``tests/test_interpreter*.py`` enforce this across random chains,
expressions and tile sizes.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.ir.chain import ComputeBlock, ComputeChain
from repro.tiling.schedule import LoopScope, Schedule, Statement
from repro.utils import prod

__all__ = [
    "execute_schedule",
    "resolve_exec_backend",
    "explain_exec_backend",
    "validate_exec_backend",
    "InterpreterError",
    "EXEC_BACKENDS",
    "COMPILED_MIN_FLOPS",
]

#: Valid values for the ``backend`` argument of :func:`execute_schedule`.
#: ``auto`` prefers the native compiled backend (when a C compiler is
#: available, the schedule renders, and the workload is big enough to
#: amortize a compile — see :data:`COMPILED_MIN_FLOPS`), then the
#: vectorized executor when the schedule lowers to a flat batched program,
#: then this scalar interpreter.
EXEC_BACKENDS = ("auto", "compiled", "vectorized", "scalar")

#: ``auto`` only routes to the compiled backend for schedules at or above
#: this many total FLOPs: a gcc/clang invocation costs ~100ms, so tiny
#: (test-sized) problems would pay more compiling than executing. Pinning
#: ``backend="compiled"`` ignores the threshold; override it with
#: ``$REPRO_COMPILED_MIN_FLOPS`` (0 makes ``auto`` always prefer compiled).
COMPILED_MIN_FLOPS = 3.2e7


def _compiled_min_flops() -> float:
    env = os.environ.get("REPRO_COMPILED_MIN_FLOPS")
    if env is None:
        return COMPILED_MIN_FLOPS
    try:
        return float(env)
    except ValueError:
        return COMPILED_MIN_FLOPS

_NEG_INF = np.float32(-np.inf)


def validate_exec_backend(backend: str) -> str:
    """Return ``backend`` if it is a known execution backend, else raise."""
    if backend not in EXEC_BACKENDS:
        raise ValueError(
            f"unknown exec backend {backend!r}; pick from {EXEC_BACKENDS}"
        )
    return backend


class InterpreterError(RuntimeError):
    """The schedule cannot be executed faithfully (invalid or unsupported)."""


def _apply_epilogue(x: np.ndarray, epilogue: str | None) -> np.ndarray:
    if epilogue is None:
        return x
    if epilogue == "relu":
        return np.maximum(x, 0.0)
    if epilogue == "gelu":
        return 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3)))
    raise InterpreterError(f"unknown epilogue {epilogue!r}")


def softmax_row_dims(chain: ComputeChain, block: ComputeBlock) -> tuple[str, ...]:
    """Dims of a softmax block's per-row state (max, denominator).

    The online-softmax recurrence keeps one running (max, denom) pair per
    *row* — every element of the first operand that shares a softmax-axis
    slice. Those are the first operand's dims minus the softmax axis, in
    operand order. The row correction rescales the output accumulator, so
    every row dim must also index the output tile; a block violating that
    has no per-row rescaling that is expressible on the accumulator.
    """
    assert block.softmax_over is not None
    first = chain.tensors[block.inputs[0]].dims
    row_dims = tuple(d for d in first if d != block.softmax_over)
    out_dims = chain.tensors[block.output].dims
    missing = [d for d in row_dims if d not in out_dims]
    if missing:
        raise InterpreterError(
            f"block {block.name!r}: softmax row dim(s) {missing} do not index "
            f"the output tile {out_dims}; the online-softmax accumulator "
            "cannot express this block"
        )
    return row_dims


def rows_to_tile(
    arr: np.ndarray,
    row_dims: tuple[str, ...],
    out_dims: tuple[str, ...],
    lead: int = 0,
) -> np.ndarray:
    """Reshape a row-state array so it broadcasts against an output tile.

    ``arr``'s trailing axes are ordered as ``row_dims`` (the natural order
    of the softmax operand); the output tile's trailing axes are ordered as
    ``out_dims``. ``lead`` leading axes (e.g. the vectorized executor's
    cell axis) are preserved as-is. The historical code hardcoded
    ``arr[..., None]``, which silently mis-broadcasts for anything but
    2-D ``(rows, cols)`` output tiles.
    """
    order = sorted(range(len(row_dims)), key=lambda i: out_dims.index(row_dims[i]))
    arr = np.transpose(arr, (*range(lead), *(lead + i for i in order)))
    shape = list(arr.shape[:lead])
    pos = lead
    for d in out_dims:
        if d in row_dims:
            shape.append(arr.shape[pos])
            pos += 1
        else:
            shape.append(1)
    return arr.reshape(shape)


@dataclass
class _AccState:
    """Running accumulator for one output tile of one block."""

    key: tuple
    tile: np.ndarray
    row_max: np.ndarray | None = None  # online-softmax state (per row)
    denom: np.ndarray | None = None


@dataclass
class _Cell:
    """Per-thread-block execution state."""

    smem: dict[str, np.ndarray] = field(default_factory=dict)
    acc: dict[str, _AccState] = field(default_factory=dict)


class _Executor:
    def __init__(self, schedule: Schedule, inputs: dict[str, np.ndarray]) -> None:
        self.s = schedule
        self.chain: ComputeChain = schedule.chain
        schedule.check_valid()
        for name, ref in self.chain.tensors.items():
            if ref.role != "input" and schedule.live_copies(name) > 1:
                raise InterpreterError(
                    f"schedule {schedule.describe()} needs {schedule.live_copies(name)} "
                    f"live tiles of {name!r}; the interpreter models single-copy buffers"
                )
        self.inputs = {
            k: np.asarray(v, dtype=np.float32) for k, v in inputs.items()
        }
        for name in self.chain.input_names():
            if name not in self.inputs:
                raise KeyError(f"missing input {name!r}")
            expect = self.chain.tensor_shape(name)
            if self.inputs[name].shape != expect:
                raise ValueError(f"input {name!r}: shape {self.inputs[name].shape} != {expect}")
        self.outputs = {
            name: np.zeros(self.chain.tensor_shape(name), dtype=np.float32)
            for name, ref in self.chain.tensors.items()
            if ref.role == "output"
        }
        self.tiles = schedule.tiles

    # -- tile addressing -----------------------------------------------------

    def _tile_bounds(self, dim: str, idx: dict[str, int]) -> tuple[int, int, int]:
        """(start, stop, tile) source bounds of dim ``dim`` at loop state idx."""
        tile = self.tiles[dim]
        start = idx.get(dim, 0) * tile
        stop = min(start + tile, self.chain.loops[dim])
        return start, stop, tile

    def _read_tile(self, tensor: str, b: int, idx: dict[str, int]) -> np.ndarray:
        """Zero-padded tile of a global input tensor."""
        dims = self.chain.tensors[tensor].dims
        src = self.inputs[tensor][b]
        shape = tuple(self.tiles[d] for d in dims)
        out = np.zeros(shape, dtype=np.float32)
        src_slices = []
        dst_slices = []
        for d in dims:
            start, stop, tile = self._tile_bounds(d, idx)
            if start >= self.chain.loops[d]:
                return out  # fully out-of-range padded tile
            src_slices.append(slice(start, stop))
            dst_slices.append(slice(0, stop - start))
        out[tuple(dst_slices)] = src[tuple(src_slices)]
        return out

    def _valid_extent(self, dim: str, idx: dict[str, int]) -> int:
        start, stop, _ = self._tile_bounds(dim, idx)
        return max(stop - start, 0)

    # -- statement semantics --------------------------------------------------

    def _spatial_key(self, block: ComputeBlock, b: int, idx: dict[str, int]) -> tuple:
        return (b, *[idx.get(d, 0) for d in block.spatial])

    def _operand_value(self, tensor: str, cell: _Cell, b: int, idx: dict[str, int]) -> np.ndarray:
        ref = self.chain.tensors[tensor]
        if ref.role == "input":
            if tensor not in cell.smem:
                raise InterpreterError(f"tensor {tensor!r} consumed before Load")
            return cell.smem[tensor]
        producer = self.chain.producer_of(tensor)
        assert producer is not None
        state = cell.acc.get(producer.name)
        if state is None or state.key != self._spatial_key(producer, b, idx):
            raise InterpreterError(
                f"intermediate {tensor!r} consumed before it was produced "
                f"(schedule {self.s.describe()})"
            )
        return _apply_epilogue(state.tile, producer.epilogue)

    def _ensure_acc(self, block: ComputeBlock, cell: _Cell, b: int, idx: dict[str, int]) -> _AccState:
        key = self._spatial_key(block, b, idx)
        state = cell.acc.get(block.name)
        # Init-on-first-reduction-iteration: a fresh sweep (every reduction
        # loop of the block back at 0) re-zeroes the accumulator even when
        # the spatial key is unchanged — e.g. a producer recomputed under an
        # unrelated loop of a deep tiling would otherwise accumulate its
        # reduction twice.
        fresh_sweep = all(idx.get(r, 0) == 0 for r in block.reduction)
        if state is None or state.key != key or fresh_sweep:
            shape = tuple(self.tiles[d] for d in self.chain.tensors[block.output].dims)
            state = _AccState(key=key, tile=np.zeros(shape, dtype=np.float32))
            if block.softmax_over is not None:
                row_shape = tuple(
                    self.tiles[d] for d in softmax_row_dims(self.chain, block)
                )
                state.row_max = np.full(row_shape, _NEG_INF, dtype=np.float32)
                state.denom = np.zeros(row_shape, dtype=np.float32)
            cell.acc[block.name] = state
        return state

    def _einsum_tiles(self, block: ComputeBlock, operands: list[np.ndarray]) -> np.ndarray:
        ins = ",".join("".join(self.chain.tensors[t].dims) for t in block.inputs)
        out = "".join(self.chain.tensors[block.output].dims)
        return np.einsum(f"{ins}->{out}", *operands)

    def _compute(self, stmt: Statement, cell: _Cell, b: int, idx: dict[str, int]) -> None:
        block = self.chain.block(stmt.block)
        state = self._ensure_acc(block, cell, b, idx)
        operands = [self._operand_value(t, cell, b, idx) for t in block.inputs]
        if block.softmax_over is None:
            contrib = self._einsum_tiles(block, operands)
            if block.scale != 1.0:
                contrib = contrib * block.scale
            state.tile += contrib.astype(np.float32)
            return
        self._compute_online_softmax(block, state, operands, idx)

    def _compute_online_softmax(
        self,
        block: ComputeBlock,
        state: _AccState,
        operands: list[np.ndarray],
        idx: dict[str, int],
    ) -> None:
        """FlashAttention-style update: incorporate one tile of the softmax
        axis into the running (max, denominator, accumulator) triple."""
        assert state.row_max is not None and state.denom is not None
        n = block.softmax_over
        assert n is not None
        scores = operands[0]
        first_dims = self.chain.tensors[block.inputs[0]].dims
        n_axis = first_dims.index(n)
        if n_axis != len(first_dims) - 1:
            scores = np.moveaxis(scores, n_axis, -1)
        scores = np.array(scores, dtype=np.float32)
        valid_n = self._valid_extent(n, idx)
        if valid_n < scores.shape[-1]:
            scores[..., valid_n:] = _NEG_INF
        if valid_n == 0:
            return
        tile_max = scores.max(axis=-1)
        new_max = np.maximum(state.row_max, tile_max)
        correction = np.exp(state.row_max - new_max)
        correction = np.where(np.isfinite(correction), correction, 0.0).astype(np.float32)
        probs = np.exp(scores - new_max[..., None]).astype(np.float32)
        state.denom = state.denom * correction + probs.sum(axis=-1)
        if n_axis != len(first_dims) - 1:
            probs = np.moveaxis(probs, -1, n_axis)
        contrib = self._einsum_tiles(block, [probs, *operands[1:]])
        out_dims = self.chain.tensors[block.output].dims
        row_dims = softmax_row_dims(self.chain, block)
        state.tile = (
            state.tile * rows_to_tile(correction, row_dims, out_dims)
            + contrib.astype(np.float32)
        )
        state.row_max = new_max

    def _store(self, stmt: Statement, cell: _Cell, b: int, idx: dict[str, int]) -> None:
        block = self.chain.block(stmt.block)
        state = cell.acc.get(block.name)
        if state is None:
            raise InterpreterError(f"Store of {stmt.tensor!r} before any Compute")
        value = state.tile
        if block.softmax_over is not None:
            assert state.denom is not None
            denom = np.where(state.denom > 0.0, state.denom, 1.0)
            value = value / rows_to_tile(
                denom,
                softmax_row_dims(self.chain, block),
                self.chain.tensors[block.output].dims,
            )
        value = _apply_epilogue(value, block.epilogue)
        if block.scale != 1.0 and block.softmax_over is not None:
            pass  # scale belongs to the producer contraction, already applied
        dims = self.chain.tensors[stmt.tensor].dims
        dst = self.outputs[stmt.tensor][b]
        dst_slices = []
        src_slices = []
        for d in dims:
            start, stop, _ = self._tile_bounds(d, idx)
            if stop <= start:
                return
            dst_slices.append(slice(start, stop))
            src_slices.append(slice(0, stop - start))
        dst[tuple(dst_slices)] = value[tuple(src_slices)]

    # -- tree walk --------------------------------------------------------------

    def _run_scope(self, scope: LoopScope, cell: _Cell, b: int, idx: dict[str, int]) -> None:
        for item in scope.body:
            if isinstance(item, Statement):
                if item.kind == "load":
                    cell.smem[item.tensor] = self._read_tile(item.tensor, b, idx)
                elif item.kind == "compute":
                    self._compute(item, cell, b, idx)
                else:
                    self._store(item, cell, b, idx)
            else:
                assert item.loop is not None
                for i in range(item.extent):
                    idx[item.loop] = i
                    self._run_scope(item, cell, b, idx)
                del idx[item.loop]

    def run(self) -> dict[str, np.ndarray]:
        grid_loops = [(l, e) for l, e in self.s.grid_dims if l != "b"]
        for b in range(self.chain.batch):
            self._run_grid(grid_loops, {}, b)
        return self.outputs

    def _run_grid(self, remaining: list[tuple[str, int]], idx: dict[str, int], b: int) -> None:
        if not remaining:
            cell = _Cell()
            self._run_scope(self.s.root, cell, b, dict(idx))
            return
        loop, extent = remaining[0]
        for i in range(extent):
            idx[loop] = i
            self._run_grid(remaining[1:], idx, b)
        del idx[loop]


def execute_schedule(
    schedule: Schedule,
    inputs: dict[str, np.ndarray],
    backend: str = "auto",
) -> dict[str, np.ndarray]:
    """Execute a fused schedule on concrete inputs.

    ``backend`` picks the execution engine:

    * ``"scalar"``     — this module's recursive per-cell tree walker;
    * ``"vectorized"`` — the flat batched executor
      (:mod:`repro.codegen.vectorized`): one gather/einsum/scatter per
      unrolled statement, batched over all grid cells. Raises
      :class:`~repro.codegen.program.LoweringError` for programs it cannot
      express;
    * ``"compiled"``   — the native C backend
      (:mod:`repro.codegen.render_c` / :mod:`repro.codegen.clang_runtime`):
      the lowered program is rendered to C, compiled once (cached by
      source hash) and executed in-process. Raises
      :class:`~repro.codegen.program.LoweringError` when the schedule does
      not lower and :class:`~repro.codegen.render_c.RenderError` (including
      its compile-failure subclasses) when no native kernel can be built;
    * ``"auto"``       — compiled when a C compiler is present, the
      schedule renders, and the workload clears
      :data:`COMPILED_MIN_FLOPS`; else vectorized when the schedule
      lowers; else scalar (the default; all backends are differentially
      tested to agree within fp32 tolerance).

    Returns a dict with every chain *output* tensor (normally one). Raises
    :class:`InterpreterError` for schedules the pruning rules should have
    rejected (invalid orders, multi-copy buffers).
    """
    from repro.obs import get_tracer

    tracer = get_tracer()
    if not tracer.enabled:
        return _execute(schedule, inputs, backend)
    with tracer.span("exec", backend=backend) as span:
        out = _execute(schedule, inputs, backend)
        span.set(resolved=_LAST_RESOLVED.value or backend)
        return out


class _LastResolved(threading.local):
    value: str | None = None


#: Per-thread breadcrumb so the traced `exec` span can report the backend
#: that actually ran, without re-deriving the (memoized but not free)
#: resolution a second time.
_LAST_RESOLVED = _LastResolved()


def _execute(
    schedule: Schedule, inputs: dict[str, np.ndarray], backend: str
) -> dict[str, np.ndarray]:
    validate_exec_backend(backend)
    _LAST_RESOLVED.value = None
    if backend != "scalar":
        from repro.codegen.program import try_lower
        from repro.codegen.vectorized import execute_program

        program = try_lower(schedule, backend)
        if program is not None:
            prefer_compiled = backend == "compiled"
            if backend == "auto":
                reason = _auto_compiled_reason(schedule)
                if reason is None:
                    prefer_compiled = True
                else:
                    _record_fallback("compiled", "vectorized", reason)
            if prefer_compiled:
                from repro.codegen.clang_runtime import execute_program_compiled
                from repro.codegen.render_c import RenderError

                try:
                    _LAST_RESOLVED.value = "compiled"
                    return execute_program_compiled(program, inputs)
                except RenderError as exc:
                    if backend == "compiled":
                        raise
                    # auto: graceful fallback to the vectorized executor.
                    _record_fallback(
                        "compiled", "vectorized", "render-error", detail=str(exc)
                    )
            _LAST_RESOLVED.value = "vectorized"
            return execute_program(program, inputs)
        if backend == "auto":
            _record_fallback("vectorized", "scalar", "not-lowerable")
    _LAST_RESOLVED.value = "scalar"
    return _Executor(schedule, inputs).run()


def _record_fallback(frm: str, to: str, reason: str, detail: str = "") -> None:
    """Count a backend fallback and attach it to the live span (if any).

    The counters land in the process-global obs registry:
    ``exec.fallback`` totals every fallback, and
    ``exec.fallback.<from>.<reason>`` breaks them down per skipped backend
    and reason token (``no-compiler`` / ``flops-threshold`` /
    ``not-renderable`` / ``not-lowerable`` / ``render-error``).
    """
    from repro.obs import get_metrics, get_tracer
    from repro.serving.telemetry import labeled

    registry = get_metrics()
    registry.counter(
        "exec.fallback", "executions that fell back to a slower backend"
    ).inc()
    registry.counter(labeled("exec.fallback", frm, reason)).inc()
    tracer = get_tracer()
    if tracer.enabled:
        attrs = {"from": frm, "to": to, "reason": reason}
        if detail:
            attrs["detail"] = detail
        tracer.event("exec.fallback", **attrs)


def _auto_compiled_reason(schedule: Schedule) -> str | None:
    """Why ``auto`` skips the compiled backend for a lowerable schedule —
    ``None`` when compiled is preferred, else the fallback reason token."""
    from repro.codegen.clang_runtime import compiler_available
    from repro.codegen.render_c import schedule_renderable

    if not compiler_available():
        return "no-compiler"
    if schedule.total_flops() < _compiled_min_flops():
        return "flops-threshold"
    if not schedule_renderable(schedule):
        return "not-renderable"
    return None


def _auto_prefers_compiled(schedule: Schedule) -> bool:
    """Whether ``auto`` routes a (lowerable) schedule to the compiled
    backend: compiler present, workload big enough to amortize a compile,
    and the program passes the render-time verifier."""
    return _auto_compiled_reason(schedule) is None


def resolve_exec_backend(schedule: Schedule, backend: str = "auto") -> str:
    """The concrete backend :func:`execute_schedule` would run for ``schedule``.

    ``"auto"`` resolves to ``"compiled"`` when the schedule lowers,
    renders, a C compiler is present and the workload clears
    :data:`COMPILED_MIN_FLOPS`; to ``"vectorized"`` when the schedule
    merely lowers; and to ``"scalar"`` otherwise. Explicit choices resolve
    to themselves, raising exactly what execution would
    (:class:`~repro.codegen.program.LoweringError` for an unlowerable
    schedule on ``"vectorized"``/``"compiled"``,
    :class:`~repro.codegen.render_c.RenderError` /
    :class:`~repro.codegen.clang_runtime.CompilerNotFoundError` for an
    unrenderable program or missing toolchain on ``"compiled"``).
    """
    validate_exec_backend(backend)
    if backend == "scalar":
        return "scalar"
    from repro.codegen.program import lower_schedule, schedule_lowerable

    if schedule_lowerable(schedule):
        if backend == "vectorized":
            return "vectorized"
        if backend == "compiled":
            from repro.codegen.clang_runtime import require_compiler
            from repro.codegen.render_c import render_program, schedule_renderable

            require_compiler()
            if not schedule_renderable(schedule):
                render_program(lower_schedule(schedule))  # re-raise RenderError
                raise AssertionError("renderable verdict disagreed with rendering")
            return "compiled"
        return "compiled" if _auto_prefers_compiled(schedule) else "vectorized"
    if backend in ("vectorized", "compiled"):
        lower_schedule(schedule)  # re-raise the descriptive LoweringError
        raise AssertionError("lowerable verdict disagreed with lowering")
    return "scalar"


def explain_exec_backend(schedule: Schedule, backend: str = "auto") -> dict:
    """Like :func:`resolve_exec_backend`, plus *why*: the fallback chain.

    Returns ``{"requested", "resolved", "fallbacks"}`` where ``fallbacks``
    is the ordered list of backends ``auto`` stepped past, each as
    ``{"from", "to", "reason"}`` with the same reason tokens the
    ``exec.fallback.*`` counters use (``no-compiler``,
    ``flops-threshold``, ``not-renderable``, ``not-lowerable``). Unlike
    :func:`resolve_exec_backend` this never raises for an explicitly
    pinned backend that cannot run — the failure becomes the resolution's
    ``reason`` with ``resolved`` set to ``None`` — so callers building
    diagnostics (``compile_model`` detail, span attributes) can always get
    an answer.
    """
    validate_exec_backend(backend)
    out: dict = {"requested": backend, "resolved": None, "fallbacks": []}

    def fall(frm: str, to: str, reason: str) -> None:
        out["fallbacks"].append({"from": frm, "to": to, "reason": reason})

    if backend == "scalar":
        out["resolved"] = "scalar"
        return out
    from repro.codegen.program import schedule_lowerable

    if not schedule_lowerable(schedule):
        if backend == "auto":
            fall("compiled", "vectorized", "not-lowerable")
            fall("vectorized", "scalar", "not-lowerable")
            out["resolved"] = "scalar"
        else:
            fall(backend, "none", "not-lowerable")
        return out
    if backend == "vectorized":
        out["resolved"] = "vectorized"
        return out
    reason = _auto_compiled_reason(schedule)
    if reason is None:
        out["resolved"] = "compiled"
    elif backend == "compiled":
        # Pinned compiled ignores the FLOPs amortization threshold; only a
        # missing toolchain or an unrenderable program actually stops it.
        if reason == "flops-threshold":
            out["resolved"] = "compiled"
        else:
            fall("compiled", "none", reason)
    else:
        fall("compiled", "vectorized", reason)
        out["resolved"] = "vectorized"
    return out
