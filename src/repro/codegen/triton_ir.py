"""Triton-like tile-level IR and source emission (§V-A).

MCFuser delegates intra-tile optimization to Triton: it emits a tile-level
program (block pointers, ``tl.load``/``tl.dot``/``tl.store`` and the
online-softmax primitives) and lets Triton handle coalescing, swizzling,
vectorization and tensor-core instruction selection. We reproduce the
*inter-tile* structure faithfully: :func:`triton_from_program` turns a
lowered :class:`~repro.codegen.program.TileProgram` into a
:class:`TritonProgram` whose rendering is a readable Triton-style kernel,
and whose operation counts feed the PTX emitter
(:mod:`repro.codegen.ptx`). The emission walks the same residual loop
tree as the C renderer (:mod:`repro.codegen.render_c`) and is
cross-checked against the flat op list: the loop-weighted dynamic counts
must replay to exactly the per-cell op counts of the unrolled program.
:func:`triton_from_schedule` remains for schedules that do not lower
(emission is purely structural, so no flat form is required).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.tiling.schedule import LoopScope, Schedule, Statement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.codegen.program import TileProgram

__all__ = [
    "TritonOp",
    "TritonLoop",
    "TritonProgram",
    "triton_from_schedule",
    "triton_from_program",
]


@dataclass
class TritonOp:
    """One tile-level operation (``tl.load``, ``tl.dot``, ``tl.store``...)."""

    op: str
    tensor: str
    comment: str = ""

    def render(self) -> str:
        body = {
            "make_block_ptr": f"{self.tensor}_ptr = tl.make_block_ptr({self.tensor})",
            "load": f"{self.tensor}_tile = tl.load({self.tensor}_ptr, boundary_check=(0, 1))",
            "dot": f"{self.tensor}_acc += tl.dot(*operands_of({self.tensor!r}))",
            "softmax_update": (
                f"{self.tensor}_acc, m_i, l_i = online_softmax_update({self.tensor}_acc, m_i, l_i)"
            ),
            "epilogue": f"{self.tensor}_acc = epilogue({self.tensor}_acc)",
            "store": f"tl.store({self.tensor}_ptr, {self.tensor}_acc, boundary_check=(0, 1))",
            "advance": f"{self.tensor}_ptr = tl.advance({self.tensor}_ptr)",
        }[self.op]
        return body + (f"  # {self.comment}" if self.comment else "")


@dataclass
class TritonLoop:
    var: str
    extent: int
    body: list["TritonLoop | TritonOp"] = field(default_factory=list)

    def render(self, indent: int) -> list[str]:
        pad = "    " * indent
        lines = [f"{pad}for {self.var} in range({self.extent}):"]
        for item in self.body:
            if isinstance(item, TritonOp):
                lines.append("    " * (indent + 1) + item.render())
            else:
                lines.extend(item.render(indent + 1))
        return lines


@dataclass
class TritonProgram:
    """One fused Triton kernel: grid declaration + per-block body."""

    name: str
    grid: tuple[tuple[str, int], ...]
    tile_params: dict[str, int]
    body: list[TritonLoop | TritonOp]

    def render(self) -> str:
        params = ", ".join(
            f"BLOCK_{l.upper()}: tl.constexpr = {t}" for l, t in self.tile_params.items()
        )
        grid = " * ".join(str(e) for _, e in self.grid) or "1"
        lines = [
            "@triton.jit",
            f"def {self.name}(args, {params}):",
            f"    # grid = {grid} blocks over ({', '.join(l for l, _ in self.grid)})",
            "    pid = tl.program_id(axis=0)",
        ]
        for item in self.body:
            if isinstance(item, TritonOp):
                lines.append("    " + item.render())
            else:
                lines.extend(item.render(1))
        return "\n".join(lines)

    def count_ops(self, op: str) -> int:
        """Static count of one op kind (loop bodies counted once)."""
        total = 0

        def walk(items: list[TritonLoop | TritonOp]) -> None:
            nonlocal total
            for item in items:
                if isinstance(item, TritonOp):
                    total += item.op == op
                else:
                    walk(item.body)

        walk(self.body)
        return total

    def dynamic_count(self, op: str) -> int:
        """Count of one op kind weighted by enclosing loop extents."""
        total = 0

        def walk(items: list[TritonLoop | TritonOp], mult: int) -> None:
            nonlocal total
            for item in items:
                if isinstance(item, TritonOp):
                    if item.op == op:
                        total += mult
                else:
                    walk(item.body, mult * item.extent)

        walk(self.body, 1)
        return total


def triton_from_schedule(schedule: Schedule) -> TritonProgram:
    """Emit the tile-level program for one fused schedule."""
    chain = schedule.chain

    def lower(scope: LoopScope) -> list[TritonLoop | TritonOp]:
        items: list[TritonLoop | TritonOp] = []
        for item in scope.body:
            if isinstance(item, Statement):
                items.extend(_lower_statement(item))
            else:
                loop = TritonLoop(var=item.loop or "?", extent=item.extent)
                loop.body = lower(item)
                items.append(loop)
        return items

    def _lower_statement(stmt: Statement) -> list[TritonOp]:
        if stmt.kind == "load":
            return [TritonOp("load", stmt.tensor, comment=f"-> smem, block {stmt.block}")]
        if stmt.kind == "compute":
            block = chain.block(stmt.block)
            ops = [TritonOp("dot", stmt.tensor, comment=f"tile MMA for {stmt.block}")]
            if block.softmax_over is not None:
                ops.insert(0, TritonOp("softmax_update", stmt.tensor, comment="online softmax"))
            return ops
        block = chain.block(stmt.block)
        ops = []
        if block.epilogue is not None:
            ops.append(TritonOp("epilogue", stmt.tensor, comment=block.epilogue))
        ops.append(TritonOp("store", stmt.tensor, comment="-> global"))
        return ops

    preamble: list[TritonLoop | TritonOp] = [
        TritonOp("make_block_ptr", name)
        for name in (*chain.input_names(), chain.output)
    ]
    name = f"mcfuser_{chain.name}_kernel".replace("-", "_")
    return TritonProgram(
        name=name,
        grid=schedule.grid_dims,
        tile_params={l: schedule.tiles[l] for l in chain.loop_names},
        body=preamble + lower(schedule.root),
    )


def triton_from_program(program: "TileProgram") -> TritonProgram:
    """Emit the tile-level Triton program from a lowered flat program.

    This is the primary emission entry point: the same schedule walk the C
    renderer performs, with the result *validated* against the unrolled op
    list — for every statement kind, the loop-weighted dynamic count of
    the emitted program must equal the per-cell count of flat ops. A
    mismatch means the emitted loop structure diverged from what actually
    executes and raises :class:`~repro.codegen.render_c.RenderError`.
    """
    from repro.codegen.render_c import RenderError

    emitted = triton_from_schedule(program.schedule)
    flat = {"load": 0, "dot": 0, "store": 0}
    for op in program.ops:
        flat[{"load": "load", "compute": "dot", "store": "store"}[op.kind]] += 1
    for kind, expect in flat.items():
        got = emitted.dynamic_count(kind)
        if got != expect:
            raise RenderError(
                f"triton emission of {program.schedule.describe()} disagrees "
                f"with the flat program: {got} dynamic {kind} ops vs "
                f"{expect} unrolled"
            )
    return emitted
