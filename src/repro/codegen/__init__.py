"""Code generation: TIR lowering, Triton-style tile IR, pseudo-PTX emission,
runtime modules, and the NumPy execution backends — the scalar tile
interpreter and the vectorized batched tile executor — that verify
numerical correctness of every fused schedule."""

from repro.codegen.interpreter import (
    EXEC_BACKENDS,
    InterpreterError,
    execute_schedule,
    resolve_exec_backend,
)
from repro.codegen.program import LoweringError, TileOp, TileProgram, lower_schedule
from repro.codegen.ptx import emit_ptx, mma_count_for_tile
from repro.codegen.runtime import (
    GraphExecutorFactoryModule,
    KernelCacheStats,
    OperatorModule,
    clear_kernel_cache,
    compile_schedule,
    kernel_cache_stats,
)
from repro.codegen.tir import (
    TIRLoop,
    TIRModule,
    TIRScheduleBuilder,
    TIRStmt,
    extract_tiling_expr,
    tir_from_schedule,
)
from repro.codegen.triton_ir import TritonLoop, TritonOp, TritonProgram, triton_from_schedule

__all__ = [
    "execute_schedule",
    "resolve_exec_backend",
    "EXEC_BACKENDS",
    "InterpreterError",
    "LoweringError",
    "lower_schedule",
    "TileProgram",
    "TileOp",
    "tir_from_schedule",
    "extract_tiling_expr",
    "TIRModule",
    "TIRLoop",
    "TIRStmt",
    "TIRScheduleBuilder",
    "triton_from_schedule",
    "TritonProgram",
    "TritonLoop",
    "TritonOp",
    "emit_ptx",
    "mma_count_for_tile",
    "OperatorModule",
    "GraphExecutorFactoryModule",
    "compile_schedule",
    "KernelCacheStats",
    "kernel_cache_stats",
    "clear_kernel_cache",
]
