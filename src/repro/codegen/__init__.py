"""Code generation: TIR lowering, Triton-style tile IR, pseudo-PTX emission,
runtime modules, and the NumPy tile interpreter that verifies numerical
correctness of every fused schedule."""

from repro.codegen.interpreter import InterpreterError, execute_schedule
from repro.codegen.ptx import emit_ptx, mma_count_for_tile
from repro.codegen.runtime import (
    GraphExecutorFactoryModule,
    KernelCacheStats,
    OperatorModule,
    clear_kernel_cache,
    compile_schedule,
    kernel_cache_stats,
)
from repro.codegen.tir import (
    TIRLoop,
    TIRModule,
    TIRScheduleBuilder,
    TIRStmt,
    extract_tiling_expr,
    tir_from_schedule,
)
from repro.codegen.triton_ir import TritonLoop, TritonOp, TritonProgram, triton_from_schedule

__all__ = [
    "execute_schedule",
    "InterpreterError",
    "tir_from_schedule",
    "extract_tiling_expr",
    "TIRModule",
    "TIRLoop",
    "TIRStmt",
    "TIRScheduleBuilder",
    "triton_from_schedule",
    "TritonProgram",
    "TritonLoop",
    "TritonOp",
    "emit_ptx",
    "mma_count_for_tile",
    "OperatorModule",
    "GraphExecutorFactoryModule",
    "compile_schedule",
    "KernelCacheStats",
    "kernel_cache_stats",
    "clear_kernel_cache",
]
