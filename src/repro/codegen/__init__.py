"""Code generation: TIR lowering, Triton-style tile IR, pseudo-PTX emission,
runtime modules, and the execution backends — the scalar tile interpreter,
the vectorized batched tile executor, and the native compiled C backend —
that verify numerical correctness of every fused schedule."""

from repro.codegen.clang_runtime import (
    ClangRuntime,
    CompileError,
    CompilerNotFoundError,
    compiler_available,
    execute_program_compiled,
    get_runtime,
)
from repro.codegen.interpreter import (
    COMPILED_MIN_FLOPS,
    EXEC_BACKENDS,
    InterpreterError,
    execute_schedule,
    resolve_exec_backend,
)
from repro.codegen.program import LoweringError, TileOp, TileProgram, lower_schedule
from repro.codegen.render_c import (
    RenderedKernel,
    RenderError,
    render_program,
    schedule_renderable,
)
from repro.codegen.ptx import emit_ptx, emit_ptx_from_program, mma_count_for_tile
from repro.codegen.runtime import (
    GraphExecutorFactoryModule,
    KernelCacheStats,
    OperatorModule,
    clear_kernel_cache,
    compile_schedule,
    kernel_cache_stats,
)
from repro.codegen.tir import (
    TIRLoop,
    TIRModule,
    TIRScheduleBuilder,
    TIRStmt,
    extract_tiling_expr,
    tir_from_program,
    tir_from_schedule,
)
from repro.codegen.triton_ir import (
    TritonLoop,
    TritonOp,
    TritonProgram,
    triton_from_program,
    triton_from_schedule,
)

__all__ = [
    "execute_schedule",
    "resolve_exec_backend",
    "EXEC_BACKENDS",
    "COMPILED_MIN_FLOPS",
    "InterpreterError",
    "LoweringError",
    "RenderError",
    "RenderedKernel",
    "render_program",
    "schedule_renderable",
    "CompileError",
    "CompilerNotFoundError",
    "ClangRuntime",
    "compiler_available",
    "execute_program_compiled",
    "get_runtime",
    "lower_schedule",
    "TileProgram",
    "TileOp",
    "tir_from_schedule",
    "tir_from_program",
    "extract_tiling_expr",
    "TIRModule",
    "TIRLoop",
    "TIRStmt",
    "TIRScheduleBuilder",
    "triton_from_schedule",
    "triton_from_program",
    "TritonProgram",
    "TritonLoop",
    "TritonOp",
    "emit_ptx",
    "emit_ptx_from_program",
    "mma_count_for_tile",
    "OperatorModule",
    "GraphExecutorFactoryModule",
    "compile_schedule",
    "KernelCacheStats",
    "kernel_cache_stats",
    "clear_kernel_cache",
]
