"""Runtime modules: compiled-kernel objects the front-end executes (§V-B).

``OperatorModule`` is the TVM-runtime-module equivalent: one fused MBCI
kernel, runnable on concrete tensors (via the NumPy interpreter) and
timeable on a GPU (via the simulator), with its generated Triton source
and pseudo-PTX attached. ``GraphExecutorFactoryModule`` assembles operator
modules plus library kernels into an executable whole-model artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.cache.signature import schedule_signature
from repro.cache.store import LRUCache
from repro.codegen.interpreter import execute_schedule, validate_exec_backend
from repro.codegen.program import TileProgram, try_lower
from repro.codegen.ptx import emit_ptx, emit_ptx_from_program
from repro.codegen.triton_ir import (
    TritonProgram,
    triton_from_program,
    triton_from_schedule,
)
from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import GPUSpec
from repro.tiling.schedule import Schedule

__all__ = [
    "OperatorModule",
    "GraphExecutorFactoryModule",
    "compile_schedule",
    "KernelCacheStats",
    "kernel_cache_stats",
    "clear_kernel_cache",
]


@dataclass
class OperatorModule:
    """A compiled fused MBCI kernel bound to one GPU.

    ``exec_backend`` selects how :meth:`run` executes the schedule
    numerically (``"auto"``/``"compiled"``/``"vectorized"``/``"scalar"`` —
    see :func:`~repro.codegen.interpreter.execute_schedule`);
    :attr:`resolved_exec_backend` reports the concrete engine ``auto``
    picks for this schedule.
    """

    schedule: Schedule
    gpu: GPUSpec
    codegen: str = "triton"
    exec_backend: str = "auto"

    def __post_init__(self) -> None:
        validate_exec_backend(self.exec_backend)

    @cached_property
    def kernel(self) -> KernelLaunch:
        return self.schedule.kernel_launch(self.gpu, codegen=self.codegen)

    @cached_property
    def program(self) -> "TileProgram | None":
        """The lowered batched tile program, cached for the life of the
        module (``None`` when pinned to scalar or not vectorizable —
        explicit ``"vectorized"`` raises the lowering error)."""
        return try_lower(self.schedule, self.exec_backend)

    @cached_property
    def resolved_exec_backend(self) -> str:
        """The concrete executor ``run`` uses (``auto`` resolved)."""
        if self.program is None:
            return "scalar"
        from repro.codegen.interpreter import resolve_exec_backend

        return resolve_exec_backend(self.schedule, self.exec_backend)

    @cached_property
    def triton(self) -> TritonProgram:
        """The tile-level Triton program this module was generated from
        (emitted from the lowered flat program when one exists, so the
        source is validated against what actually executes)."""
        if self.program is not None:
            return triton_from_program(self.program)
        return triton_from_schedule(self.schedule)

    @cached_property
    def ptx(self) -> str:
        """Pseudo-PTX listing (what ``loadfile_ptx`` would ingest)."""
        if self.program is not None:
            return emit_ptx_from_program(self.program, self.gpu)
        return emit_ptx(self.schedule, self.gpu)

    def run(
        self, inputs: dict[str, np.ndarray], backend: str | None = None
    ) -> dict[str, np.ndarray]:
        """Execute on concrete tensors (vectorized or scalar NumPy backend).

        Repeated runs reuse the module's cached lowered program instead of
        re-lowering the schedule every call; an explicit ``backend``
        override bypasses the cache.
        """
        if backend is not None and backend != self.exec_backend:
            return execute_schedule(self.schedule, inputs, backend=backend)
        if self.program is not None:
            from repro.codegen.vectorized import execute_program

            if self.resolved_exec_backend == "compiled":
                from repro.codegen.clang_runtime import execute_program_compiled
                from repro.codegen.render_c import RenderError

                try:
                    return execute_program_compiled(self.program, inputs)
                except RenderError as exc:
                    if self.exec_backend == "compiled":
                        raise
                    # auto: graceful fallback to the vectorized executor.
                    from repro.codegen.interpreter import _record_fallback

                    _record_fallback(
                        "compiled", "vectorized", "render-error", detail=str(exc)
                    )
            return execute_program(self.program, inputs)
        return execute_schedule(self.schedule, inputs, backend="scalar")

    def time(self, simulator: GPUSimulator | None = None) -> float:
        """Simulated execution time in seconds."""
        sim = simulator or GPUSimulator(self.gpu)
        return sim.run(self.kernel)

    @property
    def name(self) -> str:
        return self.kernel.name


@dataclass
class KernelCacheStats:
    """Counters of the in-process compiled-kernel memo."""

    hits: int = 0
    misses: int = 0
    entries: int = 0


#: Process-wide memo of compiled modules, keyed by the same content
#: signature the schedule cache uses (chain structure + GPU + tiling
#: decision). Compiling the "same" fused kernel twice — e.g. every
#: attention layer of a model, or a model recompiled from a cache-hit
#: schedule — returns one shared OperatorModule, so its lazily generated
#: Triton program and PTX are produced once. Bounded LRU: long-lived
#: processes compiling many shapes must not grow without limit.
KERNEL_MEMO_CAPACITY = 256
_KERNEL_MEMO = LRUCache(capacity=KERNEL_MEMO_CAPACITY)
_KERNEL_STATS = KernelCacheStats()


def compile_schedule(
    schedule: Schedule,
    gpu: GPUSpec,
    memoize: bool = True,
    exec_backend: str = "auto",
) -> OperatorModule:
    """Compile a tuned schedule into a runnable operator module.

    ``memoize=True`` (default) consults the process-wide kernel memo: a
    schedule whose content signature (chain + GPU + expression + tiles) was
    compiled before returns the existing module instead of a fresh one.
    Modules are immutable-by-convention, so sharing is safe; pass
    ``memoize=False`` to force a private instance. ``exec_backend``
    configures how the module executes numerically (memo entries are keyed
    per backend so a scalar-pinned module is never served to an ``auto``
    caller).
    """
    from repro.obs import get_tracer

    with get_tracer().span("compile.schedule", backend=exec_backend) as span:
        if not memoize:
            span.set(memo="bypass")
            return OperatorModule(
                schedule=schedule, gpu=gpu, exec_backend=exec_backend
            )
        key = (schedule_signature(schedule, gpu), exec_backend)
        module = _KERNEL_MEMO.get(key)
        if module is None:
            _KERNEL_STATS.misses += 1
            span.set(memo="miss")
            module = OperatorModule(
                schedule=schedule, gpu=gpu, exec_backend=exec_backend
            )
            _KERNEL_MEMO.put(key, module)
        else:
            _KERNEL_STATS.hits += 1
            span.set(memo="hit")
        return module


def kernel_cache_stats() -> KernelCacheStats:
    """Snapshot of the kernel-memo counters (entries reflects current size)."""
    return KernelCacheStats(
        hits=_KERNEL_STATS.hits,
        misses=_KERNEL_STATS.misses,
        entries=len(_KERNEL_MEMO),
    )


def clear_kernel_cache() -> None:
    """Drop all memoized modules and reset the counters."""
    _KERNEL_MEMO.clear()
    _KERNEL_STATS.hits = 0
    _KERNEL_STATS.misses = 0


@dataclass
class GraphExecutorFactoryModule:
    """Whole-model executable: an ordered plan of kernel launches.

    ``plan`` entries are (description, KernelLaunch) pairs; MBCI sub-graphs
    contribute their fused kernels, everything else contributes library or
    compiler-generated kernels. ``time`` runs the plan on a simulator.
    """

    name: str
    gpu: GPUSpec
    plan: list[tuple[str, KernelLaunch]] = field(default_factory=list)
    operator_modules: list[OperatorModule] = field(default_factory=list)

    def add(self, description: str, kernel: KernelLaunch) -> None:
        self.plan.append((description, kernel))

    def add_module(self, module: OperatorModule) -> None:
        self.operator_modules.append(module)
        self.plan.append((f"mcfuser:{module.name}", module.kernel))

    def time(self, simulator: GPUSimulator | None = None) -> float:
        sim = simulator or GPUSimulator(self.gpu)
        return sim.run_sequence(k for _, k in self.plan)

    def kernel_count(self) -> int:
        return len(self.plan)

    def breakdown(self, simulator: GPUSimulator | None = None) -> list[tuple[str, float]]:
        """Per-launch timing, for profiling-style reports."""
        sim = simulator or GPUSimulator(self.gpu)
        return [(desc, sim.run(k)) for desc, k in self.plan]
