"""Lowering a :class:`Schedule` into a flat batched tile program.

The scalar interpreter re-walks the schedule's loop tree once per grid
cell per batch element — ``grid_size x batch`` Python recursions. But the
residual (within-block) loop structure is *identical across cells*: only
the grid-bound tile indices differ. ``lower_schedule`` therefore unrolls
the residual loop tree **once** into a flat sequence of :class:`TileOp`
records, each carrying the concrete residual loop indices it executes
under. The vectorized executor (:mod:`repro.codegen.vectorized`) then runs
every op exactly once, batched over the grid with broadcastable leading
axes (one per grid loop, extent-1 where a tensor is not indexed by it):

* ``load``    — a zero-copy view of every cell's tile in a padded, tiled
  layout;
* ``compute`` — one batched ``np.matmul``/``np.einsum`` (including the
  batched online-softmax update);
* ``store``   — one sliced scatter into a padded, tiled output buffer.

Programs the flat form cannot express raise :class:`LoweringError` (a
subclass of :class:`~repro.codegen.interpreter.InterpreterError`), which
the ``auto`` backend treats as "fall back to the scalar interpreter":

* multi-copy on-chip buffers (the interpreter models single-copy tiles);
* an output tensor not indexed by every non-batch grid loop (distinct
  cells would scatter into the same tile with no deterministic
  last-writer);
* a softmax axis or a reduction loop bound to the grid (the padding mask
  / partial sums would vary per cell mid-update);
* unrolled programs or batched working sets past a safety cap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.codegen.interpreter import InterpreterError
from repro.tiling.schedule import LoopScope, Schedule, Statement
from repro.utils import prod

__all__ = ["TileOp", "TileProgram", "LoweringError", "lower_schedule",
           "try_lower", "schedule_lowerable",
           "MAX_PROGRAM_OPS", "MAX_GATHER_BYTES"]

#: Unrolled-program size cap. The flat program has one op per residual
#: statement execution; anything near this cap would be glacial to
#: interpret per-cell too, but the lowering must not eat unbounded memory.
MAX_PROGRAM_OPS = 65536

#: Cap on a single batched gather/accumulator (bytes). Past this the
#: "materialize every cell's tile at once" strategy stops being a win.
MAX_GATHER_BYTES = 1 << 30


class LoweringError(InterpreterError):
    """The schedule has no faithful flat batched form (use the scalar path)."""


@dataclass(frozen=True)
class TileOp:
    """One batched primitive of the flat program.

    ``idx`` holds the concrete residual-loop indices in scope when the op
    executes — the unrolled counterpart of the interpreter's loop-state
    dict. Grid-bound loops never appear here; they become the leading cell
    axis of every array the executor touches.
    """

    kind: str  # "load" | "compute" | "store"
    tensor: str
    block: str
    idx: tuple[tuple[str, int], ...]

    def label(self) -> str:
        prefix = {"load": "L", "compute": "C", "store": "S"}[self.kind]
        where = ",".join(f"{l}={i}" for l, i in self.idx)
        return f"{prefix}{self.tensor}[{where}]"


@dataclass(frozen=True)
class TileProgram:
    """A fully unrolled batched tile program for one schedule.

    ``grid_loops`` lists the cell axes in iteration order — the implicit
    batch loop first, then every grid-bound spatial loop — so
    ``n_cells == prod(extent)`` and cell ``i`` unravels to one index per
    grid loop, exactly matching the scalar interpreter's nesting order.
    """

    schedule: Schedule
    ops: tuple[TileOp, ...]
    grid_loops: tuple[tuple[str, int], ...]

    @property
    def n_cells(self) -> int:
        return int(prod(extent for _, extent in self.grid_loops))

    def describe(self) -> str:
        grid = "x".join(f"{l}:{e}" for l, e in self.grid_loops)
        return f"TileProgram({self.schedule.chain.name}, cells={grid}, ops={len(self.ops)})"


def _check_expressible(schedule: Schedule) -> None:
    """Raise LoweringError for schedules the batched form cannot run."""
    chain = schedule.chain
    for name, ref in chain.tensors.items():
        if ref.role != "input" and schedule.live_copies(name) > 1:
            raise LoweringError(
                f"schedule {schedule.describe()} needs {schedule.live_copies(name)} "
                f"live tiles of {name!r}; the vectorizer models single-copy buffers"
            )
    grid = [loop for loop, _ in schedule.grid_dims if loop != "b"]
    for name, ref in chain.tensors.items():
        if ref.role != "output":
            continue
        missing = sorted(set(grid) - set(ref.dims))
        if missing:
            raise LoweringError(
                f"output {name!r} is not indexed by grid loop(s) {missing}; "
                "distinct cells would scatter into the same tile"
            )
    for block in chain.blocks:
        if block.softmax_over is not None and block.softmax_over in grid:
            raise LoweringError(
                f"block {block.name!r}: softmax axis {block.softmax_over!r} is "
                "grid-bound; the batched online-softmax mask must be uniform "
                "across cells"
            )
        bound_red = sorted(set(block.reduction) & set(grid))
        if bound_red:
            raise LoweringError(
                f"block {block.name!r}: reduction loop(s) {bound_red} are "
                "grid-bound; per-cell partial reductions have no batched form"
            )


def lower_schedule(
    schedule: Schedule,
    max_ops: int = MAX_PROGRAM_OPS,
    max_gather_bytes: int = MAX_GATHER_BYTES,
) -> TileProgram:
    """Unroll ``schedule``'s residual loop tree into a :class:`TileProgram`.

    Raises :class:`LoweringError` when the flat batched form cannot
    faithfully reproduce the scalar interpreter (see module docstring) and
    :class:`~repro.tiling.schedule.InvalidScheduleError` for schedules no
    backend may run.
    """
    memo_key = None
    if max_ops == MAX_PROGRAM_OPS and max_gather_bytes == MAX_GATHER_BYTES:
        memo_key = _content_key(schedule)
        hit = _LOWER_MEMO.get(memo_key)
        if hit is not None:
            # The unrolled ops depend only on schedule content; hand back
            # the caller's own schedule object so downstream identity
            # checks and tile lookups see exactly what was passed in.
            if hit.schedule is schedule:
                return hit
            return replace(hit, schedule=schedule)
    from repro.obs import get_tracer

    tracer = get_tracer()
    attrs = (
        {"chain": schedule.chain.name, "expr": schedule.expr.render()}
        if tracer.enabled
        else {}
    )
    with tracer.span("lower", **attrs) as span:
        program = _lower_uncached(schedule, max_ops, max_gather_bytes)
        span.set(ops=len(program.ops), cells=program.n_cells)
    if memo_key is not None:
        if len(_LOWER_MEMO) >= _LOWER_MEMO_CAP:
            _LOWER_MEMO.clear()
        _LOWER_MEMO[memo_key] = program
    return program


def _lower_uncached(
    schedule: Schedule, max_ops: int, max_gather_bytes: int
) -> TileProgram:
    schedule.check_valid()
    _check_expressible(schedule)
    grid_loops = tuple(schedule.grid_dims)
    n_cells = int(prod(extent for _, extent in grid_loops))

    widest = max(
        (schedule.tile_elements(stmt.related) for stmt in schedule.statements()),
        default=1,
    )
    if n_cells * widest * 4 > max_gather_bytes:
        raise LoweringError(
            f"batched working set ~{n_cells * widest * 4} bytes exceeds the "
            f"{max_gather_bytes}-byte gather cap for {schedule.describe()}"
        )

    ops: list[TileOp] = []

    def walk(scope: LoopScope, idx: dict[str, int]) -> None:
        for item in scope.body:
            if isinstance(item, Statement):
                if len(ops) >= max_ops:
                    raise LoweringError(
                        f"unrolled program of {schedule.describe()} exceeds "
                        f"{max_ops} ops"
                    )
                ops.append(
                    TileOp(item.kind, item.tensor, item.block, tuple(idx.items()))
                )
            else:
                assert item.loop is not None
                for i in range(item.extent):
                    idx[item.loop] = i
                    walk(item, idx)
                del idx[item.loop]

    walk(schedule.root, {})
    return TileProgram(schedule=schedule, ops=tuple(ops), grid_loops=grid_loops)


def try_lower(schedule: Schedule, backend: str = "auto") -> TileProgram | None:
    """Lower ``schedule`` honoring the backend's fallback rules.

    Returns the :class:`TileProgram` when the schedule is expressible,
    ``None`` when it is not and the backend allows falling back to the
    scalar interpreter (``"auto"``) or is pinned to it (``"scalar"``);
    a pinned ``"vectorized"`` or ``"compiled"`` backend re-raises the
    :class:`LoweringError`. This is the single place the fallback policy
    lives — the dispatchers in :mod:`repro.codegen.interpreter` and
    :class:`~repro.codegen.runtime.OperatorModule` all route through it.
    """
    if backend == "scalar":
        return None
    try:
        return lower_schedule(schedule)
    except LoweringError:
        if backend in ("vectorized", "compiled"):
            raise
        return None


#: schedule content key -> lowerability verdict. Warm cache hits rebuild
#: the same schedules over and over (one per served signature); memoizing
#: the verdict keeps `resolve_exec_backend` off the unroll path there.
_LOWERABLE_MEMO: dict[int, bool] = {}
_LOWERABLE_MEMO_CAP = 4096

#: schedule content key -> unrolled program (default caps only). The op
#: list is pure in schedule content, so repeat executions of one schedule
#: skip the residual-loop walk; hits re-bind the caller's schedule object.
_LOWER_MEMO: dict[int, TileProgram] = {}
_LOWER_MEMO_CAP = 256


def _content_key(schedule: Schedule) -> int:
    from repro.cache.signature import chain_fingerprint
    from repro.utils import stable_hash

    return stable_hash(
        repr(chain_fingerprint(schedule.chain)),
        schedule.expr.render(),
        tuple(sorted(schedule.tiles.items())),
        schedule.optimized,
    )


def schedule_lowerable(schedule: Schedule) -> bool:
    """Whether ``schedule`` lowers to a flat batched program (memoized by
    schedule content, so repeated queries for rebuilt-but-identical
    schedules cost a hash instead of an unroll)."""
    key = _content_key(schedule)
    verdict = _LOWERABLE_MEMO.get(key)
    if verdict is None:
        try:
            lower_schedule(schedule)
            verdict = True
        except LoweringError:
            verdict = False
        if len(_LOWERABLE_MEMO) >= _LOWERABLE_MEMO_CAP:
            _LOWERABLE_MEMO.clear()
        _LOWERABLE_MEMO[key] = verdict
    return verdict
