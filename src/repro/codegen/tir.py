"""A miniature TIR: loop-nest AST with schedule primitives (§V-B).

The paper expresses MBCI operators in TVM TIR, transforms them with
``tvm.tir.Schedule`` primitives (*split*, *reorder*, *bind*, *tile*), and
extracts tiling expressions back out of TIR modules with an AST visitor —
the two representations are "mutually convertible". This module reproduces
that round-trip:

* :func:`tir_from_schedule` lowers a tiled :class:`Schedule` to a TIR
  module;
* :func:`extract_tiling_expr` is the AST visitor recovering the residual
  tiling expression from a TIR module;
* :class:`TIRScheduleBuilder` builds the same module from the *naive* loop
  nest via split/reorder/bind primitives, demonstrating convertibility in
  the other direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.tiling.expr import LoopNest, TilingExpr
from repro.tiling.schedule import LoopScope, Schedule, Statement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.codegen.program import TileProgram

__all__ = [
    "TIRLoop",
    "TIRStmt",
    "TIRModule",
    "tir_from_schedule",
    "tir_from_program",
    "extract_tiling_expr",
    "TIRScheduleBuilder",
]


@dataclass
class TIRStmt:
    """A primitive TIR statement (load/compute/store of one tile)."""

    kind: str
    tensor: str
    block: str

    def render(self) -> str:
        verb = {"load": "T.load_shared", "compute": "T.compute", "store": "T.store_global"}[
            self.kind
        ]
        return f"{verb}({self.tensor!r})"


@dataclass
class TIRLoop:
    """A serial or thread-bound loop."""

    var: str
    extent: int
    bind: str | None = None  # e.g. "blockIdx.x"
    body: list["TIRLoop | TIRStmt"] = field(default_factory=list)

    def render(self, indent: int = 0) -> list[str]:
        pad = "    " * indent
        head = f"{pad}for {self.var} in T.{'thread_binding' if self.bind else 'serial'}({self.extent}"
        head += f", thread={self.bind!r})" if self.bind else "):"
        if self.bind:
            head += ":"
        lines = [head]
        for item in self.body:
            if isinstance(item, TIRStmt):
                lines.append("    " * (indent + 1) + item.render())
            else:
                lines.extend(item.render(indent + 1))
        return lines


@dataclass
class TIRModule:
    """A lowered fused kernel: grid-bound loops wrapping the serial nest."""

    name: str
    body: list[TIRLoop | TIRStmt]

    def render(self) -> str:
        lines = [f"@T.prim_func", f"def {self.name}():"]
        for item in self.body:
            if isinstance(item, TIRStmt):
                lines.append("    " + item.render())
            else:
                lines.extend(item.render(1))
        return "\n".join(lines)

    def loops(self) -> list[TIRLoop]:
        out: list[TIRLoop] = []

        def walk(items: list[TIRLoop | TIRStmt]) -> None:
            for item in items:
                if isinstance(item, TIRLoop):
                    out.append(item)
                    walk(item.body)

        walk(self.body)
        return out


def tir_from_schedule(schedule: Schedule) -> TIRModule:
    """Lower a tiled schedule into a TIR module (grid loops become
    ``blockIdx`` thread bindings, residual loops stay serial)."""

    def lower(scope: LoopScope) -> list[TIRLoop | TIRStmt]:
        items: list[TIRLoop | TIRStmt] = []
        for item in scope.body:
            if isinstance(item, Statement):
                items.append(TIRStmt(item.kind, item.tensor, item.block))
            else:
                loop = TIRLoop(var=item.loop or "?", extent=item.extent)
                loop.body = lower(item)
                items.append(loop)
        return items

    body: list[TIRLoop | TIRStmt] = lower(schedule.root)
    axes = ["blockIdx.x", "blockIdx.y", "blockIdx.z"]
    for i, (loop, extent) in enumerate(reversed(schedule.grid_dims)):
        bound = TIRLoop(var=loop, extent=extent, bind=axes[min(i, 2)])
        bound.body = body
        body = [bound]
    name = f"fused_{schedule.chain.name}".replace("-", "_")
    return TIRModule(name=name, body=body)


def tir_from_program(program: "TileProgram") -> TIRModule:
    """Lower a flat :class:`TileProgram` to TIR.

    The TIR module is structural (its statements carry no residual
    indices), so this delegates to the schedule walk — but, like the other
    program-targeted emitters, it validates the loop structure against the
    unrolled op list: the serial-loop-weighted statement counts must replay
    to exactly the flat program's per-cell op counts.
    """
    from repro.codegen.render_c import RenderError

    module = tir_from_schedule(program.schedule)
    per_kind = {"load": 0, "compute": 0, "store": 0}
    for op in program.ops:
        per_kind[op.kind] += 1

    counts = {"load": 0, "compute": 0, "store": 0}

    def walk(items: list[TIRLoop | TIRStmt], mult: int) -> None:
        for item in items:
            if isinstance(item, TIRStmt):
                counts[item.kind] += mult
            else:
                walk(item.body, mult if item.bind else mult * item.extent)

    walk(module.body, 1)
    for kind, expect in per_kind.items():
        if counts[kind] != expect:
            raise RenderError(
                f"TIR emission of {program.schedule.describe()} disagrees with "
                f"the flat program: {counts[kind]} dynamic {kind} statements "
                f"vs {expect} unrolled"
            )
    return module


def extract_tiling_expr(module: TIRModule) -> TilingExpr:
    """The TIR AST visitor: recover the residual tiling expression
    (serial loops only — thread-bound loops are the grid)."""

    def visit(items: list[TIRLoop | TIRStmt]) -> tuple[LoopNest, ...]:
        roots: list[LoopNest] = []
        for item in items:
            if not isinstance(item, TIRLoop):
                continue
            if item.bind is not None:
                roots.extend(visit(item.body))
            else:
                roots.append(LoopNest(item.var, visit(item.body)))
        return tuple(roots)

    return TilingExpr(roots=visit(module.body))


class TIRScheduleBuilder:
    """Builds a tiled TIR module from the naive nest via schedule primitives.

    Mirrors ``tvm.tir.Schedule``: start from the chain's fully serial loop
    nest (one loop per cross-tile dimension at full extent), then apply
    ``split`` (loop -> outer/inner pair), ``reorder`` (permute the current
    loop order), and ``bind`` (attach a loop to a ``blockIdx`` axis).
    ``finalize`` checks every loop was consumed and emits the module.
    """

    def __init__(self, name: str, loop_extents: dict[str, int]) -> None:
        self.name = name
        self.extents = dict(loop_extents)
        self.order: list[str] = list(loop_extents)
        self.bound: dict[str, str] = {}
        self.log: list[str] = []

    def split(self, loop: str, factor: int) -> tuple[str, str]:
        """Split ``loop`` into (outer, inner) with ``inner`` extent ``factor``."""
        if loop not in self.extents:
            raise KeyError(f"unknown loop {loop!r}")
        if factor < 1:
            raise ValueError("split factor must be >= 1")
        extent = self.extents.pop(loop)
        outer, inner = f"{loop}o", f"{loop}i"
        self.extents[outer] = -(-extent // factor)
        self.extents[inner] = factor
        i = self.order.index(loop)
        self.order[i : i + 1] = [outer, inner]
        self.log.append(f"split({loop}, {factor})")
        return outer, inner

    def reorder(self, *loops: str) -> None:
        """Permute the listed loops into the given relative order."""
        missing = [l for l in loops if l not in self.order]
        if missing:
            raise KeyError(f"unknown loops {missing}")
        positions = sorted(self.order.index(l) for l in loops)
        for pos, loop in zip(positions, loops):
            self.order[pos] = loop
        self.log.append(f"reorder({', '.join(loops)})")

    def bind(self, loop: str, axis: str) -> None:
        """Bind a loop to a grid axis (must currently be outermost-unbound)."""
        unbound = [l for l in self.order if l not in self.bound]
        if not unbound or unbound[0] != loop:
            raise ValueError(f"can only bind the outermost unbound loop, not {loop!r}")
        self.bound[loop] = axis
        self.log.append(f"bind({loop}, {axis})")

    def finalize(self, statements: list[TIRStmt] | None = None) -> TIRModule:
        """Emit the module: bound loops outermost, then serial loops."""
        body: list[TIRLoop | TIRStmt] = list(statements or [])
        for loop in reversed(self.order):
            node = TIRLoop(var=loop, extent=self.extents[loop], bind=self.bound.get(loop))
            node.body = body
            body = [node]
        return TIRModule(name=self.name, body=body)
