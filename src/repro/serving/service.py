"""CompileService: the in-process fusion compile service.

Production traffic hits the same handful of workload shapes from many
callers at once, so the serving layer's job is to make sure *concurrent
identical requests share one tuning run* and everything else is a cache
hit. The service composes the pieces the earlier layers provide:

* **signature-first admission** — the workload signature is computed at
  submit time, before any queueing, so deduplication happens at the door;
* **tiered cache** (:class:`~repro.serving.tiers.TieredCache`) — hot-tier
  hits resolve inline on the caller's thread, never touching the queue;
* **request coalescing** — a submit whose signature is already being tuned
  attaches to the in-flight job and shares its result (futures fan-out);
* **worker pool with lanes** — a bounded priority queue feeds N worker
  threads; ``interactive`` requests overtake ``background`` warmup ones,
  and a full queue load-sheds (the ticket fails with :class:`QueueFull`
  instead of stalling the caller);
* **telemetry** — every outcome is counted in a
  :class:`~repro.serving.telemetry.MetricsRegistry`.

Request accounting invariant (error-free runs)::

    serve.requests == serve.hits.{hot,memory,disk,bucket} + serve.coalesced
                      + serve.tunes + serve.shed

(``serve.hits.bucket`` counts bucketed-signature hits under
``dynamic="buckets"`` — a ceiling-tuned schedule rebuilt at the request
shape.)

(a failed tune moves its *creating* request from ``tunes`` to
``errors``; coalesced riders stay counted under ``coalesced``). The load
generator (:mod:`repro.experiments.serve_load`) reconciles its own request
count against this identity.

Typical use::

    with CompileService(A100, cache=TieredCache(default_cache())) as svc:
        svc.prefetch(["G1", "S2"])                  # background warmup lane
        result = svc.compile("G4")                  # interactive
        print(result.source, result.report.best_time)
"""

from __future__ import annotations

import dataclasses
import itertools
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.cache.signature import bucket_dims, bucketed_signature
from repro.config import SessionConfig, build_legacy_config, search_overrides
from repro.gpu.specs import GPUSpec, by_name
from repro.search.tuner import (
    MCFuserTuner,
    TuneReport,
    rebind_report,
    report_from_entry,
)
from repro.serving.telemetry import MetricsRegistry
from repro.serving.tiers import TieredCache

if TYPE_CHECKING:  # pragma: no cover
    from repro.frontend.partition import Partition
    from repro.ir.chain import ComputeChain
    from repro.ir.graph import Graph
    from repro.search.cost_model import LearnedCostModel

__all__ = [
    "LANES",
    "QueueFull",
    "ServiceClosed",
    "ServeResult",
    "ServeTicket",
    "ModelTicket",
    "CompileService",
]

#: Request lanes, highest priority first.
LANES = ("interactive", "background")

_LANE_PRIORITY = {"interactive": 0, "background": 1}
_SENTINEL_PRIORITY = 9

#: Sentinel distinguishing "knob not passed" from any explicit value in the
#: deprecated keyword shim.
_UNSET = object()


class QueueFull(RuntimeError):
    """The bounded tune queue was full and the request was load-shed."""


class ServiceClosed(RuntimeError):
    """The service was closed; no new requests are admitted."""


@dataclass
class ServeResult:
    """One served compile request.

    Attributes:
        signature: Workload signature the request resolved under.
        report: The tuned (or cache-restored) :class:`TuneReport`.
        source: How the request was satisfied — ``"hot"``/``"memory"``/
            ``"disk"`` (exact cache tier), ``"bucket"`` (ceiling-tuned
            entry found under the bucketed signature, rebuilt at the
            request shape), ``"tuned"`` (this request triggered the tune),
            or ``"coalesced"`` (rode along on another request's in-flight
            tune).
        latency_seconds: Wall time from submit to resolution.
        lane: Admission lane of the request.
        workload: Chain name at submit time (diagnostic only).
    """

    signature: str
    report: TuneReport
    source: str
    latency_seconds: float
    lane: str
    workload: str


class ServeTicket:
    """Handle for one submitted request; resolves to a :class:`ServeResult`.

    ``chain`` is the *request* chain: under dynamic bucketing, coalesced
    tickets sharing one ceiling tune may each carry a different in-bucket
    shape, and the worker rebinds the tuned schedule to each ticket's
    actual chain before resolving it.
    """

    def __init__(
        self, signature: str, lane: str, workload: str, chain: "ComputeChain | None" = None
    ) -> None:
        self.signature = signature
        self.lane = lane
        self.workload = workload
        self.chain = chain
        self.submitted_at = time.perf_counter()
        self._future: "Future[ServeResult]" = Future()

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> ServeResult:
        """Block for the result; raises :class:`QueueFull` if load-shed."""
        return self._future.result(timeout)

    # -- service side --------------------------------------------------------

    def _resolve(self, report: TuneReport, source: str, histogram=None) -> ServeResult:
        """Complete the ticket; ``histogram`` (a latency histogram) is
        observed *before* the waiter is woken, so telemetry sampled at
        client-unblock time already includes this request."""
        result = ServeResult(
            signature=self.signature,
            report=report,
            source=source,
            latency_seconds=time.perf_counter() - self.submitted_at,
            lane=self.lane,
            workload=self.workload,
        )
        if histogram is not None:
            histogram.observe(result.latency_seconds)
        self._future.set_result(result)
        return result

    def _fail(self, exc: BaseException) -> None:
        self._future.set_exception(exc)


@dataclass
class ModelTicket:
    """Aggregate ticket for a model-level request (one per fusion group)."""

    partition: "Partition"
    tickets: list[ServeTicket]

    def results(self, timeout: float | None = None) -> list[ServeResult]:
        """Block for every fusion group, in partition order."""
        return [t.result(timeout) for t in self.tickets]

    def done(self) -> bool:
        return all(t.done() for t in self.tickets)


@dataclass
class _Job:
    """One in-flight tune: a signature plus every ticket waiting on it.

    ``config`` is the fully resolved, *serializable*
    :class:`~repro.config.SessionConfig` the tune runs under (service
    defaults + per-request overrides, with ``exec.dynamic`` forced to
    ``"off"`` — the service layer owns bucketing). Because the whole job
    spec is one JSON-able object, a future multi-process serving tier can
    ship jobs to worker processes wholesale.

    Under dynamic bucketing ``signature`` is the *bucketed* key, ``chain``
    is the bucket-ceiling chain the tune runs at, and ``bucket`` maps each
    dynamic loop to its ceiling (empty for exact jobs).
    """

    signature: str
    chain: "ComputeChain"
    config: SessionConfig
    bucket: dict = field(default_factory=dict)
    tickets: list[ServeTicket] = field(default_factory=list)
    #: The admitting request's tracer span: the worker's ``serve.tune``
    #: span names it as an explicit cross-thread parent, so a queued tune
    #: stays on the trace of the request that created it.
    trace_parent: object = None


class CompileService:
    """In-process fusion compile service (coalescing + tiers + lanes).

    Args:
        gpu: Target hardware description shared by every request (``None``
            resolves the spec named by ``config.gpu``).
        cache: A :class:`TieredCache`, a bare
            :class:`~repro.cache.cache.ScheduleCache` (wrapped in a tiered
            cache), or ``None`` for a fresh memory-only tiered cache.
        workers: Deprecated — set ``config.serve.workers`` (tune
            worker-thread count).
        queue_limit: Deprecated — set ``config.serve.queue_limit``
            (bounded tune-queue depth; submits beyond it load-shed, the
            ticket failing with :class:`QueueFull`).
        telemetry: Metrics registry; one is created when omitted.
        seed: Deprecated — set ``config.search.seed``.
        exec_backend: Deprecated — set ``config.exec.backend`` (the
            numeric execution backend threaded into every tuner this
            service constructs and stamped on served reports).
        tuner_kwargs: Deprecated escape hatch; every key must name a typed
            tuner knob (``population_size``, ``max_rounds``, ``verify``,
            ...) and is routed into the config.
        tune_fn: Override for the tune step itself (tests inject slow or
            instrumented tunes); receives the internal job and must return
            a :class:`TuneReport`. Defaults to a fresh ``MCFuserTuner``
            per job, *without* a cache — the service owns all cache
            interaction.
        cost_model: A :class:`~repro.search.cost_model.LearnedCostModel`
            shared by every tune this service runs (its dataset accumulates
            across jobs and workers; the model is thread-safe). Created
            automatically when the config asks for cost-model guidance and
            none is given.
        measure_topk: Deprecated — set ``config.search.measure_topk``
            (measure only the model's predicted-best ``k`` per round;
            0 = classic measure-the-top-n). Overridable per :meth:`submit`.
            Guided tunes are cached under a distinct ``+topk{k}`` variant
            key.
        dynamic: Deprecated — set ``config.exec.dynamic``. ``"buckets"``
            serves ragged sequence lengths shape-generically: the lookup
            ladder becomes exact hit → bucket hit → miss, misses tune once
            at the power-of-two bucket ceiling (concurrent in-bucket
            requests of *different* lengths coalesce onto that one tune),
            and every served report is rebuilt at the request's actual
            shape. Bucket hits surface as source ``"bucket"`` and counter
            ``serve.hits.bucket``.
        dynamic_loops: Deprecated — set ``config.exec.dynamic_loops``.
        config: A validated :class:`~repro.config.SessionConfig` — the
            canonical way to configure the service. Mutually exclusive
            with the deprecated keyword knobs (``cache``, ``telemetry``,
            ``tune_fn``, ``cost_model``, and ``gpu`` are live resources,
            not knobs, and always combine with ``config``).
    """

    def __init__(
        self,
        gpu: "GPUSpec | None" = None,
        cache=None,
        workers: int = _UNSET,
        queue_limit: int = _UNSET,
        telemetry: MetricsRegistry | None = None,
        seed: int = _UNSET,
        exec_backend: str = _UNSET,
        tuner_kwargs: dict | None = None,
        tune_fn=None,
        cost_model: "LearnedCostModel | None" = None,
        measure_topk: int = _UNSET,
        dynamic: str = _UNSET,
        dynamic_loops: tuple[str, ...] = _UNSET,
        config: "SessionConfig | None" = None,
    ) -> None:
        legacy: dict = {
            name: value
            for name, value in (
                ("serve_workers", workers),
                ("queue_limit", queue_limit),
                ("seed", seed),
                ("exec_backend", exec_backend),
                ("measure_topk", measure_topk),
                ("dynamic", dynamic),
                ("dynamic_loops", dynamic_loops),
            )
            if value is not _UNSET
        }
        if tuner_kwargs:
            legacy.update(search_overrides(tuner_kwargs))
        if config is not None:
            if legacy:
                raise ValueError(
                    "pass either config= or the deprecated keyword knobs, not "
                    f"both (got {sorted(legacy)}); set the SessionConfig "
                    "fields instead"
                )
        else:
            config = build_legacy_config("CompileService", legacy)
        self.config = config
        search = config.search
        self.dynamic = config.exec.dynamic
        self.dynamic_loops = tuple(config.exec.dynamic_loops)
        if cost_model is None and (search.measure_topk > 0 or search.cost_model):
            from repro.search.cost_model import LearnedCostModel

            cost_model = LearnedCostModel(seed=search.seed)
        self.cost_model = cost_model
        self.measure_topk = search.measure_topk
        self.gpu = gpu if gpu is not None else by_name(config.gpu)
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        if isinstance(cache, TieredCache):
            self.tiered = cache
            if self.tiered.telemetry is None:
                self.tiered.telemetry = self.telemetry
        else:  # a bare ScheduleCache or None
            self.tiered = TieredCache(cache, telemetry=self.telemetry)
        self.seed = search.seed
        self.exec_backend = config.exec.backend
        self._tune_fn = tune_fn if tune_fn is not None else self._default_tune
        self.queue_limit = config.serve.queue_limit
        # maxsize is queue_limit plus room for one shutdown sentinel per
        # worker, so close() can never be shed by a full queue.
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue(
            maxsize=self.queue_limit + config.serve.workers
        )
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._inflight: dict[str, _Job] = {}
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"compile-worker-{i}", daemon=True
            )
            for i in range(config.serve.workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- context management ---------------------------------------------------

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop admitting requests, drain the queue, join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            # sentinel priority sorts after every real job: pending work
            # drains before the workers exit.
            self._queue.put((_SENTINEL_PRIORITY, next(self._seq), None))
        for thread in self._workers:
            thread.join()

    # -- admission -------------------------------------------------------------

    def _resolve_chain(self, workload) -> "ComputeChain":
        if isinstance(workload, str):
            from repro.workloads.registry import get_workload

            spec = get_workload(workload)
            if spec.level != "chain":
                raise ValueError(
                    f"workload {spec.name!r} is model-level; use submit_model()"
                )
            return spec.build()
        return workload

    def submit(
        self,
        workload,
        lane: str = "interactive",
        variant: str | None = None,
        strategy: str | None = None,
        seed: int | None = None,
        measure_workers: int | None = None,
        tuner_kwargs: dict | None = None,
        measure_topk: int | None = None,
        config: "SessionConfig | None" = None,
    ) -> ServeTicket:
        """Admit one chain request; returns immediately with a ticket.

        ``workload`` is a :class:`ComputeChain` or a chain-level registry
        name. The signature is computed up front; a hot/warm cache hit
        resolves the ticket before this method returns, a signature already
        in flight coalesces onto the running tune, and only genuinely new
        work is queued. A full queue fails the ticket with
        :class:`QueueFull` (load shedding) rather than blocking.

        Every knob defaults to ``None`` = "inherit the service config";
        explicit per-request values override it for this request only
        (e.g. guided ``measure_topk`` requests key — and therefore hit —
        the cache separately from exhaustive ones). Alternatively
        ``config`` supplies a complete per-request
        :class:`~repro.config.SessionConfig` (mutually exclusive with the
        individual knobs) — the form a multi-process front-end forwards
        wholesale.

        With ``dynamic="buckets"`` the lookup ladders exact signature →
        bucketed signature; a bucket hit rebuilds the ceiling-tuned
        schedule at the request shape and resolves inline as source
        ``"bucket"``. Misses queue (or coalesce onto) one tune of the
        bucket-*ceiling* chain keyed by the bucketed signature, so
        concurrent requests for different in-bucket lengths share it.
        """
        if lane not in LANES:
            raise ValueError(f"unknown lane {lane!r}; pick from {LANES}")
        # The per-job config: service defaults + per-request overrides
        # (evolve skips None = inherit), or a caller-supplied complete
        # config. The tune itself always runs dynamic="off" — the
        # *service* owns bucketing (ceiling chain, bucketed signature,
        # rebinding); the tuner must not re-bucket.
        knobs = (variant, strategy, seed, measure_workers, measure_topk)
        if config is not None:
            if tuner_kwargs or any(v is not None for v in knobs):
                raise ValueError(
                    "pass either config= or the per-request knobs, not both"
                )
            job_config = config
        else:
            overrides = search_overrides(tuner_kwargs or {})
            for name, value in (
                ("variant", variant),
                ("strategy", strategy),
                ("seed", seed),
                ("workers", measure_workers),
                ("measure_topk", measure_topk),
            ):
                if value is not None:
                    overrides[name] = value
            job_config = self.config.evolve(**overrides)
        if job_config.exec.dynamic != "off":
            job_config = job_config.evolve(dynamic="off")
        variant = job_config.search.variant
        strategy = job_config.search.strategy
        measure_topk = job_config.search.measure_topk
        from repro.obs import get_tracer

        # The admission span covers the submit call itself (signature,
        # lookup ladder, queue/coalesce/shed decision); a queued tune
        # continues this trace on the worker thread via ``_Job.trace_parent``.
        with get_tracer().span("serve.request", lane=lane) as span:
            chain = self._resolve_chain(workload)
            cache_variant = job_config.variant_key
            signature = self.tiered.signature_for(chain, self.gpu, cache_variant)
            bucket = (
                bucket_dims(chain, self.dynamic_loops)
                if self.dynamic == "buckets"
                else {}
            )
            bucket_sig = (
                bucketed_signature(chain, self.gpu, cache_variant, self.dynamic_loops)
                if bucket
                else None
            )
            span.set(workload=chain.name, signature=signature, bucketed=bool(bucket))
            ticket = ServeTicket(signature, lane, chain.name, chain=chain)
            self.telemetry.counter("serve.requests").inc()
            self.telemetry.counter(f"serve.requests.{lane}").inc()

            def _serve_entry(entry, source: str, counter: str) -> ServeTicket:
                report = report_from_entry(
                    chain, self.gpu, entry, variant=variant, strategy=strategy,
                    exec_backend=self.exec_backend, measure_topk=measure_topk,
                )
                if bucket:
                    report.dynamic = "buckets"
                    report.bucket = dict(bucket)
                    report.bucket_hit = source == "bucket"
                self.telemetry.counter(counter).inc()
                span.set(outcome=source)
                ticket._resolve(report, source, self.telemetry.histogram("serve.latency.warm"))
                return ticket

            # Fast path: resolve cache hits inline, without ever queueing —
            # exact signature first, then (under bucketing) the bucketed one.
            entry, tier = self.tiered.lookup(signature)
            if entry is not None:
                return _serve_entry(entry, tier, f"serve.hits.{tier}")
            if bucket_sig is not None:
                entry, _ = self.tiered.lookup(bucket_sig)
                if entry is not None:
                    return _serve_entry(entry, "bucket", "serve.hits.bucket")

            job_sig = bucket_sig if bucket_sig is not None else signature
            with self._lock:
                if self._closed:
                    raise ServiceClosed("CompileService is closed")
                job = self._inflight.get(job_sig)
                if job is not None:
                    job.tickets.append(ticket)
                    self.telemetry.counter("serve.coalesced").inc()
                    span.set(outcome="coalesced")
                    return ticket
                # A cacheable tune may have finished between the unlocked
                # lookup and here; the cache is written before the in-flight
                # entry is removed, so a locked re-check closes the race
                # without a second recorded lookup. (Non-cacheable results —
                # chains with no finite measurement — leave nothing behind by
                # design: their waiters were all resolved by fan-out, and a
                # later request legitimately re-tunes.) Under bucketing the
                # racing tune was keyed by the bucketed signature.
                entry = self.tiered.hot.get(job_sig)
                recheck_tier = "hot"
                if entry is None:
                    entry, recheck_tier = self.tiered.cache.peek_tiered(job_sig)
                    if entry is not None:
                        self.tiered.hot.put(job_sig, entry)
                if entry is not None:
                    if bucket_sig is not None:
                        return _serve_entry(entry, "bucket", "serve.hits.bucket")
                    return _serve_entry(entry, recheck_tier, f"serve.hits.{recheck_tier}")
                job = _Job(
                    signature=job_sig,
                    chain=chain.with_loops(bucket) if bucket else chain,
                    config=job_config,
                    bucket=dict(bucket),
                    tickets=[ticket],
                    trace_parent=span,
                )
                try:
                    # Enforce the advertised bound ourselves: maxsize leaves
                    # headroom for shutdown sentinels, which must never be shed.
                    if self._queue.qsize() >= self.queue_limit:
                        raise queue.Full
                    self._queue.put_nowait((_LANE_PRIORITY[lane], next(self._seq), job))
                except queue.Full:
                    self.telemetry.counter("serve.shed").inc()
                    self.telemetry.counter(f"serve.shed.{lane}").inc()
                    span.set(outcome="shed")
                    ticket._fail(
                        QueueFull(
                            f"tune queue full ({self.queue_limit} pending); "
                            f"request for {chain.name!r} shed"
                        )
                    )
                    return ticket
                self._inflight[job_sig] = job
                self.telemetry.gauge("serve.queue.depth").inc()
                self.telemetry.gauge("serve.inflight").inc()
            span.set(outcome="queued")
        return ticket

    def compile(self, workload, timeout: float | None = None, **kwargs) -> ServeResult:
        """Blocking convenience: :meth:`submit` + ``result()``."""
        return self.submit(workload, **kwargs).result(timeout)

    def submit_model(
        self,
        model,
        lane: str = "interactive",
        strategy: str | None = None,
        tuner_kwargs: dict | None = None,
    ) -> ModelTicket:
        """Admit a whole model: partition, then submit every fusion group.

        ``model`` is a :class:`~repro.ir.graph.Graph` or a model-level
        registry name. Identically shaped groups coalesce or hit the cache
        by construction — the service sees one signature per shape.
        """
        from repro.frontend.partition import partition_graph

        if isinstance(model, str):
            from repro.workloads.registry import get_workload

            spec = get_workload(model)
            if spec.level != "model":
                raise ValueError(
                    f"workload {spec.name!r} is chain-level; use submit()"
                )
            model = spec.build()
        partition = partition_graph(model, self.gpu)
        tickets = [
            self.submit(
                sg.chain, lane=lane, strategy=strategy, tuner_kwargs=tuner_kwargs
            )
            for sg in partition.subgraphs
        ]
        return ModelTicket(partition=partition, tickets=tickets)

    def prefetch(
        self,
        workloads: "Sequence[str | ComputeChain] | None" = None,
        lane: str = "background",
        strategy: str | None = None,
        tuner_kwargs: dict | None = None,
    ) -> list[ServeTicket]:
        """Warm the cache over the workload registry on the background lane.

        ``workloads`` may mix chain names, model names (expanded into their
        fusion groups), and :class:`ComputeChain` objects; ``None`` means
        every chain-level registry entry. Returns the submitted tickets —
        callers that just want the cache warm can drop them, callers that
        need completion can wait on them.
        """
        from repro.workloads.registry import get_workload, workload_names

        names = workloads if workloads is not None else workload_names(level="chain")
        tickets: list[ServeTicket] = []
        for item in names:
            if isinstance(item, str) and get_workload(item).level == "model":
                tickets.extend(
                    self.submit_model(
                        item, lane=lane, strategy=strategy, tuner_kwargs=tuner_kwargs
                    ).tickets
                )
            else:
                tickets.append(
                    self.submit(
                        item, lane=lane, strategy=strategy, tuner_kwargs=tuner_kwargs
                    )
                )
        return tickets

    # -- the worker side -------------------------------------------------------

    def _default_tune(self, job: _Job) -> TuneReport:
        tuner = MCFuserTuner(self.gpu, cost_model=self.cost_model, config=job.config)
        return tuner.tune(job.chain)

    def _worker_loop(self) -> None:
        while True:
            _, _, job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            self.telemetry.gauge("serve.queue.depth").dec()
            try:
                self._run_job(job)
            finally:
                self.telemetry.gauge("serve.inflight").dec()
                self._queue.task_done()

    def _report_for_ticket(self, job: _Job, report: TuneReport, ticket: ServeTicket) -> TuneReport:
        """The report a ticket resolves with: rebound to its request shape.

        Exact jobs (and tickets whose shape *is* the ceiling) share the
        tuned report; under bucketing every other ticket gets a shallow
        copy whose schedule is re-expanded on its own chain — coalesced
        riders of one ceiling tune may each carry a different in-bucket
        length.
        """
        if not job.bucket:
            return report
        report = dataclasses.replace(report, dynamic="buckets", bucket=dict(job.bucket))
        if ticket.chain is not None and ticket.chain.loops != job.chain.loops:
            report = rebind_report(report, ticket.chain)
        return report

    def _run_job(self, job: _Job) -> None:
        from repro.obs import get_tracer

        # Worker threads have no ambient span stack; the explicit parent
        # keeps the queued tune on the admitting request's trace.
        with get_tracer().span(
            "serve.tune",
            parent=job.trace_parent,
            signature=job.signature,
            workload=job.chain.name,
        ) as span:
            try:
                report = self._tune_fn(job)
                self.tiered.put(job.chain, self.gpu, report, signature=job.signature)
            except Exception as exc:  # noqa: BLE001 - a tune failure must fan out
                self.telemetry.counter("serve.errors").inc()
                span.set(outcome="error", error=f"{type(exc).__name__}: {exc}")
                with self._lock:
                    self._inflight.pop(job.signature, None)
                    tickets = list(job.tickets)
                for ticket in tickets:
                    ticket._fail(exc)
                return
            # For cacheable results the hot tier holds the entry before the
            # in-flight record is removed, so post-removal submits hit the
            # cache — a signature is never tuned twice. A *non-cacheable*
            # result (no finite measurement) stores nothing: its waiters are
            # resolved below, and later requests re-tune, which is the only
            # sane behavior for a result the cache cannot represent.
            with self._lock:
                self._inflight.pop(job.signature, None)
                tickets = list(job.tickets)
            self.telemetry.counter("serve.tunes").inc()
            self.telemetry.histogram("serve.tune.simulated_seconds").observe(
                report.tuning_seconds
            )
            self.telemetry.histogram("serve.tune.measurements").observe(
                float(report.search.num_measurements)
            )
            accuracy = getattr(report.search, "ranking_accuracy", None)
            if accuracy is not None and accuracy == accuracy:  # skip None and NaN
                self.telemetry.histogram("serve.model.ranking_accuracy").observe(accuracy)
            span.set(
                outcome="tuned",
                waiters=len(tickets),
                best_time=report.best_time,
                sim_tuning_seconds=report.tuning_seconds,
            )
            cold = self.telemetry.histogram("serve.latency.cold")
            for i, ticket in enumerate(tickets):
                ticket._resolve(
                    self._report_for_ticket(job, report, ticket),
                    "tuned" if i == 0 else "coalesced",
                    cold,
                )

    # -- observability ---------------------------------------------------------

    def metrics(self) -> dict:
        """Telemetry snapshot plus cache-tier sizes (JSON-able)."""
        snapshot = self.telemetry.snapshot()
        snapshot["cache"] = self.tiered.stats()
        return snapshot
