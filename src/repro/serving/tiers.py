"""Tiered schedule cache: a TTL/LRU hot tier over the persistent cache.

The serving layer answers most requests without touching the tuner, and at
high request rates even the :class:`~repro.cache.cache.ScheduleCache` is
too slow a front line — a disk-backed hit re-reads counters and flushes
the store file. :class:`TieredCache` adds a *hot tier*: a small,
thread-safe, in-memory map with both TTL expiry (entries go stale — a
redeployed cache directory or a re-warmed store must win eventually) and
LRU size eviction. Lookups resolve::

    hot tier (TTL + LRU)  ->  ScheduleCache LRU  ->  JSON store  ->  miss

and every resolution is labelled with the tier that served it
(``"hot"`` / ``"memory"`` / ``"disk"`` / ``None``), which is what feeds
the per-tier hit counters in the telemetry registry and the
``repro cache stats`` tier breakdown.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.cache.cache import ScheduleCache

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.store import CacheEntry
    from repro.serving.telemetry import MetricsRegistry

__all__ = ["HotTier", "TieredCache", "TIERS"]

#: Tier labels, fastest first. ``None`` marks a miss.
TIERS = ("hot", "memory", "disk")


class HotTier:
    """Thread-safe in-memory map with TTL expiry and LRU size eviction.

    Args:
        capacity: Maximum live entries (0 disables the tier).
        ttl: Seconds an entry stays servable after insertion; ``None``
            disables expiry. Expired entries are treated as misses and
            dropped on contact (plus bulk-dropped by :meth:`purge`).
        clock: Monotonic time source, injectable for the TTL tests.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl: float | None = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"hot-tier capacity must be >= 0, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"hot-tier ttl must be > 0 or None, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        #: signature -> (entry, inserted_at); order = LRU recency.
        self._entries: "OrderedDict[str, tuple[CacheEntry, float]]" = OrderedDict()
        self.evictions = 0
        self.expirations = 0

    def _expired(self, inserted_at: float) -> bool:
        return self.ttl is not None and self._clock() - inserted_at > self.ttl

    def get(self, signature: str) -> "CacheEntry | None":
        with self._lock:
            item = self._entries.get(signature)
            if item is None:
                return None
            entry, inserted_at = item
            if self._expired(inserted_at):
                del self._entries[signature]
                self.expirations += 1
                return None
            self._entries.move_to_end(signature)
            return entry

    def put(self, signature: str, entry: "CacheEntry") -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[signature] = (entry, self._clock())
            self._entries.move_to_end(signature)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def purge(self) -> int:
        """Drop every expired entry; returns how many were dropped."""
        with self._lock:
            stale = [
                sig
                for sig, (_, inserted_at) in self._entries.items()
                if self._expired(inserted_at)
            ]
            for sig in stale:
                del self._entries[sig]
            self.expirations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, signature: str) -> bool:
        # contact-free check (no recency refresh, but expiry still applies)
        with self._lock:
            item = self._entries.get(signature)
            return item is not None and not self._expired(item[1])


class TieredCache:
    """Hot tier + :class:`ScheduleCache`, with per-tier telemetry.

    Args:
        cache: The persistent (or memory-only) schedule cache underneath;
            ``None`` builds a memory-only one.
        capacity/ttl/clock: Hot-tier knobs (see :class:`HotTier`).
        telemetry: Optional :class:`~repro.serving.telemetry.MetricsRegistry`;
            when present every lookup increments ``serve.cache.hits.<tier>``
            or ``serve.cache.misses``.
    """

    def __init__(
        self,
        cache: ScheduleCache | None = None,
        capacity: int = 256,
        ttl: float | None = 300.0,
        telemetry: "MetricsRegistry | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.cache = cache if cache is not None else ScheduleCache(path=None)
        self.hot = HotTier(capacity=capacity, ttl=ttl, clock=clock)
        self.telemetry = telemetry

    def _count(self, tier: str | None) -> None:
        if self.telemetry is None:
            return
        if tier is None:
            self.telemetry.counter("serve.cache.misses").inc()
        else:
            self.telemetry.counter(f"serve.cache.hits.{tier}").inc()

    # -- keys ----------------------------------------------------------------

    def signature_for(self, chain, gpu, variant: str = "mcfuser") -> str:
        return self.cache.signature_for(chain, gpu, variant)

    # -- lookup / store ------------------------------------------------------

    def lookup(self, signature: str) -> "tuple[CacheEntry | None, str | None]":
        """Resolve a precomputed signature; returns ``(entry, tier)``.

        A hot hit never touches the underlying cache (no disk flush, no
        LRU churn); hits found below are promoted into the hot tier.
        """
        entry = self.hot.get(signature)
        if entry is not None:
            self._count("hot")
            return entry, "hot"
        entry, tier = self.cache.lookup(signature)
        if entry is not None:
            self.hot.put(signature, entry)
        self._count(tier)
        return entry, tier

    def get(self, chain, gpu, variant: str = "mcfuser"):
        """Chain-level lookup (see :meth:`lookup`); returns ``(entry, tier)``."""
        return self.lookup(self.signature_for(chain, gpu, variant))

    def put(self, chain, gpu, report, signature: str | None = None) -> "CacheEntry | None":
        """Write-through store: persistent cache first, then the hot tier.

        ``signature`` overrides the exact workload key (bucketed entries
        are stored under their bucket-generic signature).
        """
        entry = self.cache.put(chain, gpu, report, signature=signature)
        if entry is not None:
            self.hot.put(entry.signature, entry)
        return entry

    def schedule_for(self, entry: "CacheEntry", chain):
        return self.cache.schedule_for(entry, chain)

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> dict:
        """Tier sizes + underlying cache counters (JSON-able)."""
        base = self.cache.stats()
        return {
            "hot_entries": len(self.hot),
            "hot_capacity": self.hot.capacity,
            "hot_ttl": self.hot.ttl,
            "hot_evictions": self.hot.evictions,
            "hot_expirations": self.hot.expirations,
            "memory_entries": base.memory_entries,
            "disk_entries": base.disk_entries,
            "hits": base.hits,
            "misses": base.misses,
            "path": base.path,
        }

    def clear(self) -> None:
        self.hot.clear()
        self.cache.clear()
