"""Serving telemetry: counters, gauges, and latency histograms.

The compile service records everything observable about itself into a
:class:`MetricsRegistry` — request counts per lane, cache hits per tier,
coalesce/shed/tune counts, queue depth, and latency distributions. The
registry is deliberately small and dependency-free (no Prometheus client):
instruments are created on first use, every update is thread-safe, and the
whole registry snapshots to a plain-JSON dict so ``repro metrics`` can
print it and the load generator can reconcile its own request count
against the service's counters.

Instrument semantics:

* :class:`Counter` — monotonically non-decreasing (``inc`` rejects negative
  deltas); the stress tests assert snapshots never go backwards.
* :class:`Gauge` — a point-in-time value (queue depth, in-flight tunes).
* :class:`Histogram` — streaming count/sum/min/max plus a bounded sample
  window for percentile estimates (p50/p90/p95/p99). Percentiles are
  computed over the most recent :data:`Histogram.WINDOW` observations
  (default 4096, per-instrument override via ``window=``) with linear
  interpolation — at serving scale the recent distribution is the one
  worth alerting on; count/sum/min/max remain lifetime-exact. Every
  percentile consumer (``snapshot()``, ``percentile()``, the Prometheus
  exporter) goes through the one :func:`percentile_summary`
  implementation, so p50/p95 cannot drift apart between views.

Concurrency: every instrument created through a registry shares that
registry's single re-entrant lock. Individual updates were always atomic;
sharing one lock additionally makes :meth:`MetricsRegistry.snapshot`
atomic *across* instruments, so accounting identities that hold in the
live registry (``serve.requests >= hits + coalesced + tunes + shed``)
also hold in every persisted snapshot. Instruments constructed standalone
(outside a registry) get a private lock and behave as before.

Tuning-efficiency instruments (learned cost model):

* ``serve.tune.measurements`` — histogram of hardware measurements per
  completed tune; the number the top-k cost model exists to shrink.
* ``serve.model.ranking_accuracy`` — histogram of the cost model's
  self-reported holdout pairwise ranking accuracy at each tune's final
  refit (only observed when a model was attached and actually fitted).

Metric naming: dotted paths, most-general first (``serve.hits.hot``).
:func:`labeled` is the label convention — a metric family plus label-like
suffix parts (``labeled("exec.fallback", "compiled", "no-compiler")`` →
``"exec.fallback.compiled.no-compiler"``), used by the per-backend and
per-tier metrics so families group together in sorted output and map
cleanly onto Prometheus names.

Snapshots persist as JSON (:func:`save_snapshot` / :func:`load_snapshot`);
``repro serve`` writes one next to the schedule cache so a later
``repro metrics`` or ``repro cache stats`` process can report the last
serving session's tier breakdown.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_FILENAME",
    "labeled",
    "percentile_summary",
    "save_snapshot",
    "load_snapshot",
]

#: File name ``repro serve`` persists its registry snapshot under (inside
#: the cache directory), read back by ``repro metrics``/``cache stats``.
SNAPSHOT_FILENAME = "serve_metrics.json"

#: Percentile points every histogram view reports, as ``(key, q)`` pairs.
PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50", 50.0),
    ("p90", 90.0),
    ("p95", 95.0),
    ("p99", 99.0),
)


def labeled(name: str, *parts: object) -> str:
    """Join a metric family name with label-like suffix parts.

    The registry has no first-class labels; the convention is dotted
    suffixes on a common family prefix. ``labeled`` normalizes the parts
    (stringified, dots collapsed to dashes so a part can't fake extra
    hierarchy levels) and skips empty ones::

        labeled("exec.fallback", "compiled", "no-compiler")
        -> "exec.fallback.compiled.no-compiler"
    """
    suffix = [str(p).replace(".", "-") for p in parts if str(p)]
    return ".".join([name, *suffix]) if suffix else name


def _interpolated_percentile(samples: list[float], q: float) -> float | None:
    """Linear-interpolated percentile of pre-sorted ``samples`` (None if empty)."""
    if not samples:
        return None
    rank = (len(samples) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return samples[lo]
    return samples[lo] + (samples[hi] - samples[lo]) * (rank - lo)


def percentile_summary(samples: list[float]) -> dict[str, float | None]:
    """The shared percentile computation: ``{"p50": ..., ..., "p99": ...}``.

    Single source of truth for every percentile a histogram reports —
    ``Histogram.percentile``, ``Histogram.snapshot``, and the Prometheus
    exporter all reduce to this one function over the same sorted window.
    """
    samples = sorted(samples)
    return {key: _interpolated_percentile(samples, q) for key, q in PERCENTILES}


class Counter:
    """Monotonically non-decreasing event count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", lock=None) -> None:
        self.name = name
        self.help = help
        self._lock = lock if lock is not None else threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value (queue depth, in-flight work)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", lock=None) -> None:
        self.name = name
        self.help = help
        self._lock = lock if lock is not None else threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Latency/size distribution: streaming stats + recent-sample window.

    ``count``/``sum``/``min``/``max`` are exact over the instrument's
    lifetime; percentiles are estimated over a bounded window of the most
    recent ``window`` observations (default :data:`WINDOW`). The bound is
    deliberate: it caps memory per instrument and biases percentiles
    toward current behaviour rather than a startup transient.
    """

    kind = "histogram"

    #: Default percentile window (most recent observations kept).
    WINDOW = 4096

    def __init__(
        self, name: str, help: str = "", lock=None, window: int | None = None
    ) -> None:
        if window is not None and window < 1:
            raise ValueError(f"histogram window must be >= 1, got {window}")
        self.name = name
        self.help = help
        self.window = window if window is not None else self.WINDOW
        self._lock = lock if lock is not None else threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._window: deque[float] = deque(maxlen=self.window)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            self._window.append(value)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the sample window (nan if empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            samples = sorted(self._window)
        value = _interpolated_percentile(samples, q)
        return float("nan") if value is None else value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict:
        """Snapshot body; caller must hold ``self._lock``."""
        out = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "window": self.window,
        }
        out.update(percentile_summary(list(self._window)))
        return out


class MetricsRegistry:
    """Named instruments, created on first use, snapshotable as JSON.

    One registry per :class:`~repro.serving.service.CompileService`; the
    load generator and the CLI read the same object. Instrument names are
    dotted paths (``"serve.hits.hot"``); re-requesting a name returns the
    same instrument, and requesting it as a different kind raises.

    All instruments share the registry's re-entrant lock, which makes
    :meth:`snapshot` a point-in-time cut across the whole registry (no
    update can land between reading one instrument and the next).
    """

    def __init__(self) -> None:
        # Re-entrant: snapshot() holds it while calling into instrument
        # snapshots that take the same lock.
        self._lock = threading.RLock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self.created_at = time.time()

    def _get(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, help, lock=self._lock, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} is a {inst.kind}, requested {cls.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", window: int | None = None
    ) -> Histogram:
        return self._get(Histogram, name, help, window=window)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def value(self, name: str) -> float:
        """Current value of a counter/gauge (KeyError if absent)."""
        with self._lock:
            inst = self._instruments[name]
        if isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use snapshot()")
        return inst.value

    def snapshot(self) -> dict:
        """JSON-able view: ``{"counters": ..., "gauges": ..., "histograms": ...}``.

        Atomic across instruments: the registry lock is held for the whole
        pass, so no concurrent update can split a multi-counter identity
        (``serve.requests`` is incremented before any outcome counter, so
        every snapshot satisfies ``sum(outcomes) <= requests``, with
        equality once the service quiesces). Counters in one snapshot are
        always >= the same counters in an earlier snapshot of the same
        registry (monotonicity is enforced at ``inc`` time), which is what
        lets the stress tests sample snapshots mid-run.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            for name, inst in sorted(self._instruments.items()):
                out[inst.kind + "s"][name] = inst.snapshot()
            out["snapshot_at"] = time.time()
        out["created_at"] = self.created_at
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def save_snapshot(snapshot: dict, path: str | os.PathLike) -> str:
    """Persist a registry snapshot atomically; returns the path written."""
    path = os.fspath(path)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)
    return path


def load_snapshot(path: str | os.PathLike) -> dict | None:
    """Read a persisted snapshot; ``None`` when absent or unreadable."""
    try:
        with open(os.fspath(path), encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None
