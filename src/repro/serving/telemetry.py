"""Serving telemetry: counters, gauges, and latency histograms.

The compile service records everything observable about itself into a
:class:`MetricsRegistry` — request counts per lane, cache hits per tier,
coalesce/shed/tune counts, queue depth, and latency distributions. The
registry is deliberately small and dependency-free (no Prometheus client):
instruments are created on first use, every update is thread-safe, and the
whole registry snapshots to a plain-JSON dict so ``repro metrics`` can
print it and the load generator can reconcile its own request count
against the service's counters.

Instrument semantics:

* :class:`Counter` — monotonically non-decreasing (``inc`` rejects negative
  deltas); the stress tests assert snapshots never go backwards.
* :class:`Gauge` — a point-in-time value (queue depth, in-flight tunes).
* :class:`Histogram` — streaming count/sum/min/max plus a bounded sample
  window for percentile estimates (p50/p90/p95/p99). The window keeps the
  most recent :data:`Histogram.WINDOW` observations — at serving scale the
  recent distribution is the one worth alerting on.

Tuning-efficiency instruments (learned cost model):

* ``serve.tune.measurements`` — histogram of hardware measurements per
  completed tune; the number the top-k cost model exists to shrink.
* ``serve.model.ranking_accuracy`` — histogram of the cost model's
  self-reported holdout pairwise ranking accuracy at each tune's final
  refit (only observed when a model was attached and actually fitted).

Snapshots persist as JSON (:func:`save_snapshot` / :func:`load_snapshot`);
``repro serve`` writes one next to the schedule cache so a later
``repro metrics`` or ``repro cache stats`` process can report the last
serving session's tier breakdown.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_FILENAME",
    "save_snapshot",
    "load_snapshot",
]

#: File name ``repro serve`` persists its registry snapshot under (inside
#: the cache directory), read back by ``repro metrics``/``cache stats``.
SNAPSHOT_FILENAME = "serve_metrics.json"


class Counter:
    """Monotonically non-decreasing event count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value (queue depth, in-flight work)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


def _interpolated_percentile(samples: list[float], q: float) -> float | None:
    """Linear-interpolated percentile of pre-sorted ``samples`` (None if empty)."""
    if not samples:
        return None
    rank = (len(samples) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return samples[lo]
    return samples[lo] + (samples[hi] - samples[lo]) * (rank - lo)


class Histogram:
    """Latency/size distribution: streaming stats + recent-sample window."""

    kind = "histogram"

    #: Bounded percentile window (most recent observations).
    WINDOW = 4096

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._window: deque[float] = deque(maxlen=self.WINDOW)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            self._window.append(value)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the sample window (nan if empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            samples = sorted(self._window)
        value = _interpolated_percentile(samples, q)
        return float("nan") if value is None else value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        with self._lock:
            samples = sorted(self._window)
            count, total = self.count, self.sum
            lo, hi = self.min, self.max

        def pct(q: float) -> float | None:
            return _interpolated_percentile(samples, q)

        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else None,
            "min": lo if count else None,
            "max": hi if count else None,
            "p50": pct(50),
            "p90": pct(90),
            "p95": pct(95),
            "p99": pct(99),
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotable as JSON.

    One registry per :class:`~repro.serving.service.CompileService`; the
    load generator and the CLI read the same object. Instrument names are
    dotted paths (``"serve.hits.hot"``); re-requesting a name returns the
    same instrument, and requesting it as a different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self.created_at = time.time()

    def _get(self, cls, name: str, help: str):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, help)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} is a {inst.kind}, requested {cls.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def value(self, name: str) -> float:
        """Current value of a counter/gauge (KeyError if absent)."""
        with self._lock:
            inst = self._instruments[name]
        if isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use snapshot()")
        return inst.value

    def snapshot(self) -> dict:
        """JSON-able view: ``{"counters": ..., "gauges": ..., "histograms": ...}``.

        Counters in one snapshot are always >= the same counters in an
        earlier snapshot of the same registry (monotonicity is enforced at
        ``inc`` time), which is what lets the stress tests sample snapshots
        mid-run.
        """
        with self._lock:
            instruments = dict(self._instruments)
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, inst in sorted(instruments.items()):
            out[inst.kind + "s"][name] = inst.snapshot()
        out["created_at"] = self.created_at
        out["snapshot_at"] = time.time()
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def save_snapshot(snapshot: dict, path: str | os.PathLike) -> str:
    """Persist a registry snapshot atomically; returns the path written."""
    path = os.fspath(path)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)
    return path


def load_snapshot(path: str | os.PathLike) -> dict | None:
    """Read a persisted snapshot; ``None`` when absent or unreadable."""
    try:
        with open(os.fspath(path), encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None
