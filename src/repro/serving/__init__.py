"""Serving layer: the in-process fusion compile service.

Composes the cache (PR 1) and the parallel search engine (PR 2) into a
concurrent serving story: signature-first admission, request coalescing,
a TTL/LRU hot cache tier, priority lanes with load shedding, and a
telemetry registry. See :mod:`repro.serving.service` for the full design
and ``docs/architecture.md`` ("Serving layer") for the diagram.
"""

from repro.serving.service import (
    LANES,
    CompileService,
    ModelTicket,
    QueueFull,
    ServeResult,
    ServeTicket,
    ServiceClosed,
)
from repro.serving.telemetry import (
    SNAPSHOT_FILENAME,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_snapshot,
    save_snapshot,
)
from repro.serving.tiers import TIERS, HotTier, TieredCache

__all__ = [
    "LANES",
    "TIERS",
    "CompileService",
    "ModelTicket",
    "QueueFull",
    "ServeResult",
    "ServeTicket",
    "ServiceClosed",
    "HotTier",
    "TieredCache",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_FILENAME",
    "save_snapshot",
    "load_snapshot",
]
