"""Tiling layer: expressions, enumeration, schedule expansion, DAG analysis."""

from repro.tiling.dag import (
    MemoryOptReport,
    dag_summary,
    dead_loops,
    memory_opt_report,
    schedule_dag,
)
from repro.tiling.enumeration import (
    all_tilings,
    bindable_spatial_loops,
    deep_tilings,
    flat_tilings,
    sub_tiling_expr,
)
from repro.tiling.expr import LoopNest, TilingExpr, parse_expr
from repro.tiling.schedule import (
    GRID,
    InvalidScheduleError,
    LoopScope,
    Schedule,
    Statement,
    build_schedule,
)

__all__ = [
    "TilingExpr",
    "LoopNest",
    "parse_expr",
    "deep_tilings",
    "flat_tilings",
    "all_tilings",
    "bindable_spatial_loops",
    "sub_tiling_expr",
    "Schedule",
    "Statement",
    "LoopScope",
    "build_schedule",
    "InvalidScheduleError",
    "GRID",
    "schedule_dag",
    "dead_loops",
    "dag_summary",
    "memory_opt_report",
    "MemoryOptReport",
]
