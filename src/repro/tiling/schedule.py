"""Expansion of a tiling expression into a scheduled tiled program (§III-B).

A :class:`Schedule` is the paper's expanded tiling expression — e.g.
``mh(n(k(LA,LB,CC),LD,CE),SE)`` — realized as a tree of loop scopes with
Load/Compute/Store statements placed at their *rightmost related loop*:

* ``Compute`` statements live at the deepest loop of their block's related
  set (spatial + reduction);
* ``Load`` statements live at the deepest tensor-indexing loop on the path
  to their consumer's compute;
* ``Store`` statements live at the deepest tensor-indexing loop that is
  *outside* the producer's unfinished reduction loops.

Loops bound to ``blockIdx`` (the grid) are modeled as a root scope; a
statement homed there runs once per thread block.

The module also derives every quantity the rest of the system needs from a
schedule: statement trip counts, DRAM traffic, FLOPs, the shared-memory
tile buffers (estimate vs measured), live-copy multiplicities (Rule 2), and
semantic validity (a consumer must never observe a partially-reduced
producer tile).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.gpu.kernel import KernelLaunch
from repro.gpu.memory import TileBuffer, estimate_shared_memory, measure_shared_memory
from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeBlock, ComputeChain
from repro.tiling.enumeration import bindable_spatial_loops
from repro.tiling.expr import LoopNest, TilingExpr
from repro.utils import ceil_div, prod

__all__ = [
    "Statement",
    "LoopScope",
    "Schedule",
    "build_schedule",
    "InvalidScheduleError",
]

GRID = None  # sentinel home for statements at per-block (grid) scope


class InvalidScheduleError(ValueError):
    """The (expression, tile sizes) pair has no valid execution order."""


@dataclass(frozen=True)
class Statement:
    """One primitive statement of the expanded tiling expression.

    ``home`` is the loop whose scope the statement executes in (``None``
    for the per-block root). ``related`` are the loops indexing the
    statement's tile.
    """

    kind: str  # "load" | "compute" | "store"
    tensor: str
    block: str
    related: tuple[str, ...]
    home: str | None

    def label(self) -> str:
        prefix = {"load": "L", "compute": "C", "store": "S"}[self.kind]
        return f"{prefix}{self.tensor}"


@dataclass
class LoopScope:
    """A loop in the scheduled program; ``body`` interleaves statements and
    nested scopes in execution order. ``loop is None`` only at the root."""

    loop: str | None
    extent: int
    body: list["LoopScope | Statement"] = field(default_factory=list)

    def contains_compute(self, block: str) -> bool:
        for item in self.body:
            if isinstance(item, Statement):
                if item.kind == "compute" and item.block == block:
                    return True
            elif item.contains_compute(block):
                return True
        return False


def _homes(
    chain: ComputeChain,
    residual: TilingExpr,
    extents: dict[str, int],
) -> dict[tuple[str, str, str], str | None]:
    """Assign every statement its home loop on the residual expression."""
    homes: dict[tuple[str, str, str], str | None] = {}
    present = set(residual.loops())
    for block in chain.blocks:
        compute_home = residual.deepest(set(block.related) & present)
        homes[("compute", block.output, block.name)] = compute_home
        path: set[str] = set()
        if compute_home is not None:
            path = set(residual.ancestors(compute_home)) | {compute_home}
        for tensor in block.inputs:
            if chain.tensors[tensor].role != "input":
                continue  # intermediates stay on-chip: no Load statement
            dims = set(chain.tensors[tensor].dims)
            homes[("load", tensor, block.name)] = residual.deepest(dims & path)
        out = block.output
        if chain.tensors[out].role == "output":
            live_red = {
                r for r in block.reduction if r in present and extents.get(r, 1) > 1
            }
            eligible = set()
            for d in chain.tensors[out].dims:
                if d not in path:
                    continue
                above = set(residual.ancestors(d)) | {d}
                if not (above & live_red):
                    eligible.add(d)
            homes[("store", out, block.name)] = residual.deepest(eligible)
    return homes


def _build_tree(
    chain: ComputeChain,
    residual: TilingExpr,
    extents: dict[str, int],
    homes: dict[tuple[str, str, str], str | None],
) -> LoopScope:
    """Build the scheduled loop tree with dependency-respecting ordering."""

    def make_scope(node: LoopNest) -> LoopScope:
        scope = LoopScope(loop=node.loop, extent=extents[node.loop])
        scope.body = [make_scope(child) for child in node.body]
        _insert_statements(scope)
        return scope

    def element_with_compute(scope: LoopScope, block: str) -> int | None:
        for i, item in enumerate(scope.body):
            if isinstance(item, Statement):
                if item.kind == "compute" and item.block == block:
                    return i
            elif item.contains_compute(block):
                return i
        return None

    def consumer_limit(scope: LoopScope, block: str) -> int:
        """First body element containing a compute that consumes ``block``'s
        output — statements of ``block`` must be inserted before it.

        Matters when the DAG optimization collapses every loop of a
        producer to extent 1: its statements re-home to a scope whose body
        already holds the (deeper-homed) consumer, and a plain append would
        run the producer after the consumer.
        """
        out = chain.block(block).output
        limit = len(scope.body)
        for consumer in chain.consumers_of(out):
            idx = element_with_compute(scope, consumer.name)
            if idx is not None:
                limit = min(limit, idx)
        return limit

    def _insert_statements(scope: LoopScope) -> None:
        here = scope.loop
        for block in chain.blocks:
            stmts: list[Statement] = []
            for tensor in block.inputs:
                key = ("load", tensor, block.name)
                if key in homes and homes[key] == here:
                    stmts.append(
                        Statement(
                            "load", tensor, block.name,
                            chain.tensors[tensor].dims, here,
                        )
                    )
            ckey = ("compute", block.output, block.name)
            if homes[ckey] == here:
                stmts.append(
                    Statement("compute", block.output, block.name, block.related, here)
                )
            skey = ("store", block.output, block.name)
            if skey in homes and homes[skey] == here:
                stmts.append(
                    Statement(
                        "store", block.output, block.name,
                        chain.tensors[block.output].dims, here,
                    )
                )
            for stmt in stmts:
                if stmt.kind == "load":
                    anchor = element_with_compute(scope, stmt.block)
                    if anchor is None:
                        scope.body.insert(consumer_limit(scope, stmt.block), stmt)
                    else:
                        scope.body.insert(anchor, stmt)
                elif stmt.kind == "compute":
                    pos = -1
                    consumer = chain.block(stmt.block)
                    for tensor in consumer.inputs:
                        producer = chain.producer_of(tensor)
                        if producer is not None:
                            idx = element_with_compute(scope, producer.name)
                            if idx is not None:
                                pos = max(pos, idx)
                    for i, item in enumerate(scope.body):
                        if isinstance(item, Statement) and item.kind == "load" and item.block == stmt.block:
                            pos = max(pos, i)
                    scope.body.insert(min(pos + 1, consumer_limit(scope, stmt.block)), stmt)
                else:  # store: after the producing compute
                    idx = element_with_compute(scope, stmt.block)
                    scope.body.insert(len(scope.body) if idx is None else idx + 1, stmt)

    root = LoopScope(loop=GRID, extent=1)
    root.body = [make_scope(node) for node in residual.roots]
    _insert_statements(root)
    return root


class Schedule:
    """A fully placed tiled program for one (chain, expression, tiles) triple.

    Do not construct directly — use :func:`build_schedule`, which performs
    grid binding and (optionally) the DAG dead-loop optimization.
    """

    def __init__(
        self,
        chain: ComputeChain,
        expr: TilingExpr,
        tiles: dict[str, int],
        residual: TilingExpr,
        grid_dims: tuple[tuple[str, int], ...],
        root: LoopScope,
        optimized: bool,
    ) -> None:
        self.chain = chain
        self.expr = expr
        self.tiles = dict(tiles)
        self.residual = residual
        self.grid_dims = grid_dims
        self.root = root
        self.optimized = optimized

    # -- structure queries ---------------------------------------------------

    @cached_property
    def extents(self) -> dict[str, int]:
        return {
            loop: ceil_div(size, self.tiles[loop]) for loop, size in self.chain.loops.items()
        }

    @property
    def grid_size(self) -> int:
        return int(prod(extent for _, extent in self.grid_dims))

    def statements(self) -> list[Statement]:
        out: list[Statement] = []

        def walk(scope: LoopScope) -> None:
            for item in scope.body:
                if isinstance(item, Statement):
                    out.append(item)
                else:
                    walk(item)

        walk(self.root)
        return out

    @cached_property
    def _scope_index(self) -> dict[str | None, LoopScope]:
        index: dict[str | None, LoopScope] = {GRID: self.root}

        def walk(scope: LoopScope) -> None:
            for item in scope.body:
                if isinstance(item, LoopScope):
                    index[item.loop] = item
                    walk(item)

        walk(self.root)
        return index

    def trip_count(self, stmt: Statement) -> int:
        """Executions of one statement across the whole kernel (grid incl.)."""
        trips = self.grid_size
        if stmt.home is not None:
            for loop in (*self.residual.ancestors(stmt.home), stmt.home):
                trips *= self.extents[loop]
        return trips

    def tile_elements(self, dims: tuple[str, ...]) -> int:
        return int(prod(self.tiles[d] for d in dims))

    # -- Rule 2 analysis: live partial-tile copies ------------------------------

    def live_copies(self, tensor: str) -> int:
        """Number of simultaneously live tiles the on-chip buffer of
        ``tensor`` needs.

        A loop that indexes the tensor and sits *inside* an unfinished
        reduction loop of the tensor's producer multiplies the live tiles
        (the paper's Fig. 6(b) situation, pruned by Rule 2).
        """
        producer = self.chain.producer_of(tensor)
        if producer is None:
            return 1
        present = set(self.residual.loops())
        live_red = {
            r for r in producer.reduction if r in present and self.extents[r] > 1
        }
        copies = 1
        for d in self.chain.tensors[tensor].dims:
            if d not in present:
                continue
            above = set(self.residual.ancestors(d))
            if above & live_red:
                copies *= self.extents[d]
        return copies

    # -- semantic validity ---------------------------------------------------------

    def check_valid(self) -> None:
        """Raise InvalidScheduleError if a consumer would read partial tiles.

        A compute statement homed inside (or at) an unfinished reduction
        loop of one of its producers would observe a partially accumulated
        intermediate; no execution order of this schedule is correct.
        """
        present = set(self.residual.loops())
        for block in self.chain.blocks:
            home = None
            for stmt in self.statements():
                if stmt.kind == "compute" and stmt.block == block.name:
                    home = stmt.home
            scope_path: set[str] = set()
            if home is not None:
                scope_path = set(self.residual.ancestors(home)) | {home}
            for tensor in block.inputs:
                producer = self.chain.producer_of(tensor)
                if producer is None:
                    continue
                for r in producer.reduction:
                    if r in present and self.extents[r] > 1 and r in scope_path:
                        raise InvalidScheduleError(
                            f"{self.describe()}: compute {block.name} inside "
                            f"unfinished reduction loop {r!r} of producer {producer.name}"
                        )
        # Producer-before-consumer in program order: a compute whose
        # producer's compute appears later in the statement walk reads a
        # tile that does not exist yet (the failure mode the DAG
        # optimization can create when a producer's loops all collapse).
        compute_pos = {
            s.block: i for i, s in enumerate(self.statements()) if s.kind == "compute"
        }
        for block in self.chain.blocks:
            for tensor in block.inputs:
                producer = self.chain.producer_of(tensor)
                if producer is None:
                    continue
                if compute_pos[producer.name] > compute_pos[block.name]:
                    raise InvalidScheduleError(
                        f"{self.describe()}: compute {block.name} precedes its "
                        f"producer {producer.name} in program order"
                    )

    @property
    def is_valid(self) -> bool:
        try:
            self.check_valid()
            return True
        except InvalidScheduleError:
            return False

    # -- work accounting -------------------------------------------------------------

    def _store_copies_below(self, stmt: Statement) -> int:
        """Tiles written per store execution (dims strictly inside its scope)."""
        present = set(self.residual.loops())
        if stmt.home is None:
            inside = present
        else:
            inside = {
                l for l in present if stmt.home in self.residual.ancestors(l)
            }
        return int(
            prod(self.extents[d] for d in stmt.related if d in inside) or 1
        )

    def statement_bytes(self, stmt: Statement) -> float:
        """Total DRAM bytes moved by one statement over the whole kernel."""
        if stmt.kind == "compute":
            return 0.0
        tile = self.tile_elements(stmt.related) * self.chain.dtype_bytes
        total = tile * self.trip_count(stmt)
        if stmt.kind == "store":
            total *= self._store_copies_below(stmt)
        return float(total)

    def statement_flops(self, stmt: Statement) -> float:
        """Total FLOPs of one compute statement over the whole kernel."""
        if stmt.kind != "compute":
            return 0.0
        block = self.chain.block(stmt.block)
        per_exec = 2.0 * self.tile_elements(block.related)
        if block.softmax_over is not None:
            first = self.chain.tensors[block.inputs[0]]
            per_exec += 7.0 * self.tile_elements(first.dims)
        return per_exec * self.trip_count(stmt)

    def dram_read_bytes(self) -> float:
        return sum(self.statement_bytes(s) for s in self.statements() if s.kind == "load")

    def dram_write_bytes(self) -> float:
        return sum(self.statement_bytes(s) for s in self.statements() if s.kind == "store")

    def total_flops(self) -> float:
        return sum(self.statement_flops(s) for s in self.statements() if s.kind == "compute")

    # -- shared memory --------------------------------------------------------------------

    def _buffer_shape(self, dims: tuple[str, ...]) -> tuple[int, int]:
        if not dims:
            return (1, 1)
        cols = self.tiles[dims[-1]]
        rows = int(prod(self.tiles[d] for d in dims[:-1])) if len(dims) > 1 else 1
        return (rows, cols)

    def tile_buffers(self) -> list[TileBuffer]:
        """On-chip buffers of this schedule, for the shared-memory backend."""
        buffers: dict[str, TileBuffer] = {}
        dtype_bytes = self.chain.dtype_bytes
        for stmt in self.statements():
            if stmt.kind != "load":
                continue
            consumer = self.chain.block(stmt.block)
            rows, cols = self._buffer_shape(stmt.related)
            path: set[str] = set()
            if stmt.home is not None:
                path = set(self.residual.ancestors(stmt.home)) | {stmt.home}
            double = any(
                r in path and self.extents[r] > 1 for r in consumer.reduction
            )
            buf = TileBuffer(
                tensor=stmt.tensor,
                rows=rows,
                cols=cols,
                dtype_bytes=dtype_bytes,
                role="operand",
                double_buffered=double,
            )
            prev = buffers.get(stmt.tensor)
            if prev is None or buf.elements * (2 if double else 1) > prev.elements:
                buffers[stmt.tensor] = buf
        for name, ref in self.chain.tensors.items():
            if ref.role == "input":
                continue
            rows, cols = self._buffer_shape(ref.dims)
            role = "accumulator" if ref.role == "output" else "stage"
            buffers[name] = TileBuffer(
                tensor=name,
                rows=rows,
                cols=cols,
                dtype_bytes=dtype_bytes,
                role=role,
                copies=self.live_copies(name),
            )
        return [buffers[k] for k in sorted(buffers)]

    def shm_estimate(self) -> int:
        """The paper's eq. (1): naive sum of single-tile footprints."""
        return estimate_shared_memory(self.tile_buffers())

    def shm_measured(self, gpu: GPUSpec) -> int:
        """What the simulated backend actually allocates (Fig. 10's y-axis)."""
        return measure_shared_memory(self.tile_buffers(), gpu).total_bytes

    # -- lowering to a kernel launch ------------------------------------------------------

    def representative_tiles(self) -> tuple[int, int, int]:
        """Flops-weighted dominant MMA tile shape (for the simulator)."""
        best = None
        best_flops = -1.0
        for block in self.chain.blocks:
            flops = self.chain.block_flops(block)
            if flops > best_flops:
                best_flops = flops
                tm = self.tiles[block.spatial[0]]
                tn = self.tiles[block.spatial[-1]]
                tk = self.tiles[block.reduction[0]]
                best = (tm, tn, tk)
        assert best is not None
        return best

    def inner_contig_bytes(self) -> int:
        """Worst-case contiguous run among loaded tiles (coalescing input)."""
        widths = []
        for stmt in self.statements():
            if stmt.kind != "load":
                continue
            widths.append(self.tiles[stmt.related[-1]] * self.chain.dtype_bytes)
        for stmt in self.statements():
            if stmt.kind == "store":
                widths.append(self.tiles[stmt.related[-1]] * self.chain.dtype_bytes)
        return min(widths) if widths else 128

    def kernel_launch(self, gpu: GPUSpec, codegen: str = "triton") -> KernelLaunch:
        """Summarize this schedule as a simulator kernel launch."""
        tm, tn, tk = self.representative_tiles()
        compulsory = sum(
            self.chain.batch
            * prod(self.chain.loops[d] for d in ref.dims)
            * self.chain.dtype_bytes
            for ref in self.chain.tensors.values()
            if ref.role == "input"
        )
        return KernelLaunch(
            name=f"{self.chain.name}:{self.describe()}",
            grid=self.grid_size,
            flops=self.total_flops(),
            dram_read_bytes=self.dram_read_bytes(),
            dram_write_bytes=self.dram_write_bytes(),
            dram_compulsory_read_bytes=float(compulsory),
            shared_mem_bytes=self.shm_measured(gpu),
            tile_m=tm,
            tile_n=tn,
            tile_k=tk,
            inner_contig_bytes=self.inner_contig_bytes(),
            codegen=codegen,
            extra={"schedule": self.describe()},
        )

    # -- reporting ------------------------------------------------------------------------

    def describe(self) -> str:
        tiles = ",".join(f"T{l}={self.tiles[l]}" for l in self.chain.loop_names)
        return f"{self.expr.render()}[{tiles}]"

    def pretty(self) -> str:
        """Fig. 4-style pseudo-code rendering of the scheduled program."""
        lines: list[str] = []
        grid = ", ".join(f"{l}:{e}" for l, e in self.grid_dims)
        lines.append(f"for {grid or 'block'} in grid():")

        def walk(scope: LoopScope, depth: int) -> None:
            pad = "    " * depth
            for item in scope.body:
                if isinstance(item, Statement):
                    verb = {"load": "Load", "compute": "Compute", "store": "Store"}[item.kind]
                    lines.append(f"{pad}{verb}(tile {item.tensor})")
                else:
                    lines.append(f"{pad}for {item.loop} in range({item.extent}):")
                    walk(item, depth + 1)

        walk(self.root, 1)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Schedule({self.chain.name}, {self.describe()}, grid={self.grid_size})"


def build_schedule(
    chain: ComputeChain,
    expr: TilingExpr,
    tiles: dict[str, int],
    optimize: bool = True,
) -> Schedule:
    """Expand ``expr`` with ``tiles`` into a :class:`Schedule`.

    ``optimize=True`` additionally runs the DAG dead-loop elimination
    (extent-1 loops are removed and memory statements re-homed upward —
    the paper's §III-B optimization that Chimera and Ansor miss). Pass
    ``False`` to get the baseline placement (rightmost related loop only).
    """
    missing = set(chain.loop_names) - set(tiles)
    if missing:
        raise ValueError(f"missing tile sizes for loops {sorted(missing)}")
    for loop, t in tiles.items():
        if t < 1:
            raise ValueError(f"tile for loop {loop!r} must be >= 1, got {t}")
    bound = bindable_spatial_loops(chain, expr)
    residual = expr.without(set(bound))
    extents = {loop: ceil_div(size, tiles[loop]) for loop, size in chain.loops.items()}
    if optimize:
        dead = {l for l in residual.loops() if extents[l] == 1}
        residual = residual.without(dead)
    homes = _homes(chain, residual, extents)
    root = _build_tree(chain, residual, extents, homes)
    grid_dims = (("b", chain.batch), *[(l, extents[l]) for l in bound])
    return Schedule(
        chain=chain,
        expr=expr,
        tiles=tiles,
        residual=residual,
        grid_dims=grid_dims,
        root=root,
        optimized=optimize,
    )
