"""High-level tiling expressions (§III-A of the paper).

A tiling expression describes the *structure* of the cross-tile loops of a
fused kernel. Loops relate in two ways:

* **Nested** — ``lj li`` means ``li`` runs inside ``lj``'s scope. A purely
  nested expression over all loops is a *deep tiling* (``mhnk``).
* **Sequential** — ``(lj, li)`` means the loops run one after another in
  the same scope. Expressions containing a sequential group are *flat
  tilings* (``mn(k,h)``), the class Chimera's search space misses.

The textual syntax matches the paper: concatenation nests, parentheses with
commas sequence. ``mn(k,h)`` parses to ``m -> n -> [k ; h]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

__all__ = ["TilingExpr", "LoopNest", "parse_expr"]


@dataclass(frozen=True)
class LoopNest:
    """One loop and the (sequentially executed) sub-structures in its body."""

    loop: str
    body: tuple["LoopNest", ...] = ()

    def render(self) -> str:
        if not self.body:
            return self.loop
        if len(self.body) == 1:
            return self.loop + self.body[0].render()
        return self.loop + "(" + ",".join(child.render() for child in self.body) + ")"


@dataclass(frozen=True)
class TilingExpr:
    """A full tiling expression: an ordered forest of :class:`LoopNest`.

    Almost always the forest has a single root; a multi-root forest arises
    only as the residual of removing bound loops.
    """

    roots: tuple[LoopNest, ...]

    # -- constructors --------------------------------------------------------

    @staticmethod
    def from_perm(loops: tuple[str, ...] | list[str]) -> "TilingExpr":
        """A deep tiling from a loop permutation (``('m','h','n','k')``)."""
        if not loops:
            return TilingExpr(roots=())
        node: LoopNest | None = None
        for loop in reversed(list(loops)):
            node = LoopNest(loop, (node,) if node is not None else ())
        assert node is not None
        return TilingExpr(roots=(node,))

    @staticmethod
    def flat(outer: tuple[str, ...], groups: list[tuple[str, ...]]) -> "TilingExpr":
        """A flat tiling: nested ``outer`` loops wrapping a sequential group.

        Each group is itself a nested chain. ``flat(('m','n'), [('k',),('h',)])``
        builds ``mn(k,h)``.
        """
        children = tuple(
            TilingExpr.from_perm(g).roots[0] for g in groups if g
        )
        if not outer:
            return TilingExpr(roots=children)
        node: tuple[LoopNest, ...] = children
        for loop in reversed(list(outer)):
            node = (LoopNest(loop, node),)
        return TilingExpr(roots=node)

    @staticmethod
    def parse(text: str) -> "TilingExpr":
        """Parse the paper's textual syntax (``"mhnk"``, ``"mn(k,h)"``)."""
        return parse_expr(text)

    # -- validation -----------------------------------------------------------

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for loop in self.loops():
            if loop in seen:
                raise ValueError(f"loop {loop!r} appears twice in {self.render()!r}")
            seen.add(loop)

    # -- queries -----------------------------------------------------------------

    def loops(self) -> tuple[str, ...]:
        """All loop names in pre-order."""
        out: list[str] = []

        def walk(node: LoopNest) -> None:
            out.append(node.loop)
            for child in node.body:
                walk(child)

        for root in self.roots:
            walk(root)
        return tuple(out)

    @cached_property
    def _parents(self) -> dict[str, str | None]:
        parents: dict[str, str | None] = {}

        def walk(node: LoopNest, parent: str | None) -> None:
            parents[node.loop] = parent
            for child in node.body:
                walk(child, node.loop)

        for root in self.roots:
            walk(root, None)
        return parents

    @cached_property
    def _nodes(self) -> dict[str, LoopNest]:
        nodes: dict[str, LoopNest] = {}

        def walk(node: LoopNest) -> None:
            nodes[node.loop] = node
            for child in node.body:
                walk(child)

        for root in self.roots:
            walk(root)
        return nodes

    def node(self, loop: str) -> LoopNest:
        return self._nodes[loop]

    def parent(self, loop: str) -> str | None:
        return self._parents[loop]

    def ancestors(self, loop: str) -> tuple[str, ...]:
        """Loops strictly enclosing ``loop``, outermost first."""
        chain: list[str] = []
        cur = self._parents[loop]
        while cur is not None:
            chain.append(cur)
            cur = self._parents[cur]
        return tuple(reversed(chain))

    def depth(self, loop: str) -> int:
        """Nesting depth (root loops have depth 0)."""
        return len(self.ancestors(loop))

    def encloses(self, outer: str, inner: str) -> bool:
        """True when ``outer`` is a strict ancestor of ``inner``."""
        return outer in self.ancestors(inner)

    def deepest(self, candidates: set[str] | tuple[str, ...]) -> str | None:
        """The most deeply nested of ``candidates`` present in the expression.

        Statements are homed at the deepest of their *related* loops
        ("rightmost related loop" in the paper). Candidates on unrelated
        branches are compared by depth; ties broken by pre-order position
        for determinism.
        """
        order = {loop: i for i, loop in enumerate(self.loops())}
        best: str | None = None
        for loop in candidates:
            if loop not in order:
                continue
            if best is None:
                best = loop
                continue
            d_new, d_best = self.depth(loop), self.depth(best)
            if (d_new, order[loop]) > (d_best, order[best]):
                best = loop
        return best

    @property
    def is_deep(self) -> bool:
        """True when every scope has at most one sub-loop (no seq groups)."""
        if len(self.roots) > 1:
            return False

        def ok(node: LoopNest) -> bool:
            return len(node.body) <= 1 and all(ok(c) for c in node.body)

        return all(ok(r) for r in self.roots)

    @property
    def max_depth(self) -> int:
        def d(node: LoopNest) -> int:
            return 1 + max((d(c) for c in node.body), default=0)

        return max((d(r) for r in self.roots), default=0)

    # -- transforms --------------------------------------------------------------

    def without(self, removed: set[str]) -> "TilingExpr":
        """Remove loops, splicing their children into the parent's position.

        Used to derive the per-thread-block *sub-tiling expression* after
        binding spatial loops to ``blockIdx`` (Rule 1), and to drop dead
        extent-1 loops in the DAG optimization.
        """

        def walk(node: LoopNest) -> tuple[LoopNest, ...]:
            new_children: list[LoopNest] = []
            for child in node.body:
                new_children.extend(walk(child))
            if node.loop in removed:
                return tuple(new_children)
            return (LoopNest(node.loop, tuple(new_children)),)

        roots: list[LoopNest] = []
        for root in self.roots:
            roots.extend(walk(root))
        return TilingExpr(roots=tuple(roots))

    def render(self) -> str:
        """Textual form; multi-root forests render as ``(a,b)``."""
        if not self.roots:
            return ""
        if len(self.roots) == 1:
            return self.roots[0].render()
        return "(" + ",".join(r.render() for r in self.roots) + ")"

    def __str__(self) -> str:
        return self.render()


def parse_expr(text: str) -> TilingExpr:
    """Recursive-descent parser for the paper's expression syntax."""
    pos = 0

    def error(msg: str) -> ValueError:
        return ValueError(f"bad tiling expression {text!r} at {pos}: {msg}")

    def parse_sequence() -> tuple[LoopNest, ...]:
        # sequence := chain (',' chain)*
        nonlocal pos
        items = [parse_chain()]
        while pos < len(text) and text[pos] == ",":
            pos += 1
            items.append(parse_chain())
        return tuple(items)

    def parse_chain() -> LoopNest:
        # chain := LETTER chain? | LETTER '(' sequence ')'
        nonlocal pos
        if pos >= len(text) or not text[pos].isalpha():
            raise error("expected loop name")
        loop = text[pos]
        pos += 1
        if pos < len(text) and text[pos] == "(":
            pos += 1
            body = parse_sequence()
            if pos >= len(text) or text[pos] != ")":
                raise error("expected ')'")
            pos += 1
            return LoopNest(loop, body)
        if pos < len(text) and text[pos].isalpha():
            return LoopNest(loop, (parse_chain(),))
        return LoopNest(loop, ())

    if not text:
        return TilingExpr(roots=())
    roots = parse_sequence()
    if pos != len(text):
        raise error("trailing characters")
    return TilingExpr(roots=roots)
