"""Enumeration of candidate tiling expressions for a chain (§III-A).

* **Deep tilings** — every permutation of the cross-tile loops (``x!`` for
  ``x`` loops; 24 for the GEMM chain).
* **Flat tilings** — permutations of the *shared* loops wrapping a
  sequential group whose members are the per-block private loop chains, in
  block (topological) order. The GEMM chain has shared loops ``m, n`` and
  private chains ``(k)`` / ``(h)``, giving ``mn(k,h)`` and ``nm(k,h)`` — the
  two flat expressions the paper counts.

Grid binding: the spatial loops of the chain's output that sit on a pure
nesting path from the root can be bound to ``blockIdx``. The expression
that remains after removing them is the *sub-tiling expression per thread
block* used by pruning Rule 1.
"""

from __future__ import annotations

from itertools import permutations, product

from repro.ir.chain import ComputeChain
from repro.tiling.expr import LoopNest, TilingExpr

__all__ = [
    "deep_tilings",
    "flat_tilings",
    "all_tilings",
    "bindable_spatial_loops",
    "sub_tiling_expr",
]


def deep_tilings(chain: ComputeChain) -> list[TilingExpr]:
    """All loop permutations as fully nested expressions."""
    return [TilingExpr.from_perm(perm) for perm in permutations(chain.loop_names)]


def flat_tilings(chain: ComputeChain) -> list[TilingExpr]:
    """All flat expressions: shared-loop perms x private-chain perms.

    Chains whose blocks have no private loops (or with fewer than two
    non-empty private groups) admit no flat tiling — a sequential group
    needs at least two members.
    """
    shared = chain.shared_loops()
    groups = [tuple(chain.private_loops(b)) for b in chain.blocks]
    groups = [g for g in groups if g]
    if len(groups) < 2:
        return []
    out: list[TilingExpr] = []
    for outer in permutations(shared):
        for group_perms in product(*[permutations(g) for g in groups]):
            out.append(TilingExpr.flat(tuple(outer), [tuple(g) for g in group_perms]))
    return out


def all_tilings(chain: ComputeChain) -> list[TilingExpr]:
    """Deep then flat — 24 + 2 = 26 expressions for the GEMM chain."""
    return deep_tilings(chain) + flat_tilings(chain)


def bindable_spatial_loops(chain: ComputeChain, expr: TilingExpr) -> tuple[str, ...]:
    """Output-spatial loops that may be bound to ``blockIdx``.

    A loop is bindable when every strict ancestor in the expression has a
    single child: hoisting it to the grid then commutes with the rest of
    the structure without changing any statement's trip count *in the
    canonical per-block form*. Loops inside a sequential group are not
    bindable — hoisting them would replicate the sibling group's work
    (e.g. ``h`` in ``mn(k,h)`` must stay inside so the ``C`` tile computed
    by the ``k`` member is reused across ``h``).
    """
    spatial = set(chain.output_spatial)
    out: list[str] = []
    for loop in expr.loops():
        if loop not in spatial:
            continue
        if all(len(expr.node(a).body) == 1 for a in expr.ancestors(loop)):
            out.append(loop)
    # Grid order: preserve the chain's canonical loop order for determinism.
    order = {name: i for i, name in enumerate(chain.loop_names)}
    return tuple(sorted(out, key=lambda l: order[l]))


def sub_tiling_expr(chain: ComputeChain, expr: TilingExpr) -> TilingExpr:
    """The per-thread-block residual expression (Rule 1's dedup key)."""
    return expr.without(set(bindable_spatial_loops(chain, expr)))
