"""DAG view of a scheduled tiling expression (§III-B, Fig. 5).

Loops and primitive statements form a directed acyclic graph with two edge
kinds:

* ``scope`` — from a loop to a statement (or inner loop) that must execute
  within its scope, because the loop variable indexes the operand;
* ``order`` — between statements that must execute in sequence (loads
  before their compute, producer computes before consumer computes,
  computes before their store) without requiring a common scope.

When a loop's extent drops to 1 its variable is the constant 0: the loop
node is *dead*, removable along with its edges, which lets memory
statements migrate to shallower scopes (Fig. 4(b) / Fig. 5(b)). The
removal itself happens in :func:`repro.tiling.schedule.build_schedule`
(``optimize=True``); this module exposes the graph for analysis,
validation and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.tiling.schedule import GRID, LoopScope, Schedule, Statement

__all__ = ["schedule_dag", "dead_loops", "dag_summary", "MemoryOptReport", "memory_opt_report"]


def _stmt_node(stmt: Statement) -> tuple:
    return ("stmt", stmt.kind, stmt.tensor, stmt.block)


def schedule_dag(schedule: Schedule) -> "nx.DiGraph":
    """Build the loop/statement DAG of a schedule.

    Node attributes: ``kind`` (``"loop"`` or ``"stmt"``), plus ``extent``
    for loops and ``label`` (``LA``, ``CC``, ``SE``, ...) for statements.
    Edge attribute ``dep`` is ``"scope"`` or ``"order"``.
    """
    g = nx.DiGraph()
    for loop, extent in schedule.grid_dims:
        g.add_node(("loop", loop), kind="loop", extent=extent, grid=True)
    for loop in schedule.residual.loops():
        g.add_node(("loop", loop), kind="loop", extent=schedule.extents[loop], grid=False)
        parent = schedule.residual.parent(loop)
        if parent is not None:
            g.add_edge(("loop", parent), ("loop", loop), dep="scope")

    for stmt in schedule.statements():
        node = _stmt_node(stmt)
        g.add_node(node, kind="stmt", label=stmt.label(), home=stmt.home)
        if stmt.home is not None:
            g.add_edge(("loop", stmt.home), node, dep="scope")
        else:
            for loop, _ in schedule.grid_dims:
                if loop in stmt.related or loop == "b":
                    g.add_edge(("loop", loop), node, dep="scope")

    # Order edges: load -> compute (same block), producer compute ->
    # consumer compute, compute -> store (same block).
    computes = {
        s.block: s for s in schedule.statements() if s.kind == "compute"
    }
    for stmt in schedule.statements():
        if stmt.kind == "load" and stmt.block in computes:
            g.add_edge(_stmt_node(stmt), _stmt_node(computes[stmt.block]), dep="order")
        if stmt.kind == "store" and stmt.block in computes:
            g.add_edge(_stmt_node(computes[stmt.block]), _stmt_node(stmt), dep="order")
    for block in schedule.chain.blocks:
        for tensor in block.inputs:
            producer = schedule.chain.producer_of(tensor)
            if producer is not None and producer.name in computes and block.name in computes:
                g.add_edge(
                    _stmt_node(computes[producer.name]),
                    _stmt_node(computes[block.name]),
                    dep="order",
                )
    if not nx.is_directed_acyclic_graph(g):  # pragma: no cover - defensive
        raise AssertionError("schedule dependence graph has a cycle")
    return g


def dead_loops(schedule: Schedule) -> tuple[str, ...]:
    """Residual loops whose extent is 1 — removable DAG nodes."""
    return tuple(l for l in schedule.residual.loops() if schedule.extents[l] == 1)


def dag_summary(schedule: Schedule) -> dict[str, int]:
    """Node/edge counts by kind (used in reports and tests)."""
    g = schedule_dag(schedule)
    loops = sum(1 for _, d in g.nodes(data=True) if d["kind"] == "loop")
    stmts = sum(1 for _, d in g.nodes(data=True) if d["kind"] == "stmt")
    scope = sum(1 for *_, d in g.edges(data=True) if d["dep"] == "scope")
    order = sum(1 for *_, d in g.edges(data=True) if d["dep"] == "order")
    return {"loops": loops, "stmts": stmts, "scope_edges": scope, "order_edges": order}


@dataclass(frozen=True)
class MemoryOptReport:
    """Before/after DRAM traffic of the DAG dead-loop optimization."""

    baseline_bytes: float
    optimized_bytes: float
    removed_loops: tuple[str, ...]

    @property
    def reduction_factor(self) -> float:
        if self.optimized_bytes == 0:
            return float("inf")
        return self.baseline_bytes / self.optimized_bytes


def memory_opt_report(chain, expr, tiles) -> MemoryOptReport:
    """Quantify what the extent-1 DAG optimization saves for one candidate."""
    from repro.tiling.schedule import build_schedule  # local: avoid cycle at import

    base = build_schedule(chain, expr, tiles, optimize=False)
    opt = build_schedule(chain, expr, tiles, optimize=True)
    return MemoryOptReport(
        baseline_bytes=base.dram_read_bytes() + base.dram_write_bytes(),
        optimized_bytes=opt.dram_read_bytes() + opt.dram_write_bytes(),
        removed_loops=dead_loops(base),
    )
