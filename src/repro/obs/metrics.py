"""Process-global metrics hook for layers below the serving tier.

The serving stack threads a :class:`~repro.serving.telemetry.MetricsRegistry`
through explicitly, but the codegen layer (``execute_schedule``,
``compile_schedule``, the clang runtime) is called from everywhere —
tests, the CLI, pool threads, the tuner — with no registry in scope.
This module gives those layers one process-global registry to count into
(``exec.fallback.*``, compile cache tiers), plus helpers to install a
different registry (e.g. the compile service's own, so ``repro serve``
exports a single unified metric set).

Imports are deliberately lazy: ``repro.obs`` must be importable from any
codegen module without dragging in the serving package (which imports the
tuner, which imports the interpreter — a cycle).
"""

from __future__ import annotations

import threading

__all__ = ["get_metrics", "set_metrics", "reset_metrics"]

_LOCK = threading.Lock()
_REGISTRY = None


def get_metrics():
    """The process-global :class:`MetricsRegistry`, created on first use."""
    global _REGISTRY
    with _LOCK:
        if _REGISTRY is None:
            from repro.serving.telemetry import MetricsRegistry

            _REGISTRY = MetricsRegistry()
        return _REGISTRY


def set_metrics(registry):
    """Install ``registry`` as the process-global one; returns the old
    registry (or ``None`` if none had been created yet)."""
    global _REGISTRY
    with _LOCK:
        old, _REGISTRY = _REGISTRY, registry
    return old


def reset_metrics():
    """Drop the process-global registry; the next ``get_metrics`` starts
    fresh. Test isolation hook."""
    return set_metrics(None)
