"""Observability: span tracing, flight recorder, and exporters.

``repro.obs`` is the cross-cutting layer every other subsystem reports
into: the compile service opens a span per request, the tuner per tune
and per search round, the evaluator per measurement batch and candidate,
and the codegen stack per lowering/compile — all through the one
process-wide tracer returned by :func:`get_tracer`, which defaults to a
disabled no-op so the instrumentation costs (almost) nothing until
``repro trace`` / ``repro serve --trace`` turns it on.

This package is import-light by design: ``tracer`` is pure stdlib, and
anything that needs the serving package (the metrics hook, the Prometheus
exporter's registry argument) imports it lazily — codegen modules may
import ``repro.obs`` freely without creating an import cycle.
"""

from .export import (
    TRACE_FILENAME,
    chrome_trace,
    load_trace_jsonl,
    prometheus_text,
    save_chrome_trace,
    save_trace_jsonl,
    trace_coverage,
    validate_chrome_trace,
)
from .metrics import get_metrics, reset_metrics, set_metrics
from .tracer import (
    DEFAULT_MAX_SPANS,
    FlightRecorder,
    Span,
    SpanRecord,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_MAX_SPANS",
    "TRACE_FILENAME",
    "FlightRecorder",
    "Span",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "get_metrics",
    "get_tracer",
    "load_trace_jsonl",
    "prometheus_text",
    "reset_metrics",
    "save_chrome_trace",
    "save_trace_jsonl",
    "set_metrics",
    "set_tracer",
    "trace_coverage",
    "tracing_enabled",
    "validate_chrome_trace",
]
