"""Trace and metrics exporters: Chrome-trace JSON, Prometheus text, JSONL.

Three consumers, three formats, one span model:

* :func:`chrome_trace` — the Chrome trace-event format (the "JSON Array
  with metadata" flavour: ``{"traceEvents": [...]}``), loadable in
  Perfetto / ``chrome://tracing``. One row per thread: ``pid`` is the
  process, ``tid`` the originating thread, with ``M``-phase metadata
  events naming each row after its thread (``worker-0``, ``measure-1``,
  ``MainThread``). Spans with children emit ``B``/``E`` duration pairs so
  the viewer nests them; childless spans emit a single ``X`` complete
  event; span events emit ``i`` instants. Timestamps are microseconds on
  the span's host-monotonic clock, rebased to the earliest span so traces
  start near zero.
* :func:`prometheus_text` — text exposition format (version 0.0.4) over a
  :class:`~repro.serving.telemetry.MetricsRegistry` *or* a persisted
  snapshot dict (duck-typed so this module never imports the serving
  package — the obs layer must stay import-light). Counters become
  ``repro_<name>_total``, gauges plain gauges, histograms Prometheus
  summaries (``quantile``-labelled samples plus ``_sum``/``_count``).
* :func:`save_trace_jsonl` / :func:`load_trace_jsonl` — structured JSONL
  persistence of raw span records in the cache dir (``traces.jsonl``),
  for offline analysis without a trace viewer.

:func:`validate_chrome_trace` is the schema check the obs-smoke CI job
runs against emitted traces: known phases only, ``B``/``E`` balance per
(pid, tid), non-negative monotonic ``ts`` within each ``B``/``E`` stack,
and required keys per phase.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable

from .tracer import FlightRecorder, SpanRecord, load_jsonl

__all__ = [
    "TRACE_FILENAME",
    "chrome_trace",
    "save_chrome_trace",
    "validate_chrome_trace",
    "prometheus_text",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "trace_coverage",
]

#: File name traced runs persist raw spans under (inside the cache dir).
TRACE_FILENAME = "traces.jsonl"


def _span_records(spans) -> list[SpanRecord]:
    if isinstance(spans, FlightRecorder):
        return spans.spans()
    return list(spans)


def _json_safe(value):
    """Coerce attr values into something json.dumps accepts."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def _args(record: SpanRecord) -> dict:
    args = {str(k): _json_safe(v) for k, v in record.attrs.items()}
    args["trace_id"] = record.trace_id
    args["span_id"] = record.span_id
    if record.parent_id:
        args["parent_id"] = record.parent_id
    if record.sim_duration is not None:
        args["sim_seconds"] = record.sim_duration
    return args


def chrome_trace(spans: Iterable[SpanRecord] | FlightRecorder) -> dict:
    """Render finished spans as a Chrome trace-event document.

    Deliberately exercises all three duration phases: parents emit
    ``B``/``E`` pairs, leaves emit ``X`` complete events, and span events
    emit ``i`` instants — plus ``M`` metadata rows naming each thread.
    """
    records = _span_records(spans)
    pid = os.getpid()
    events: list[dict] = []
    if not records:
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    base = min(r.start for r in records)
    parents = {r.parent_id for r in records if r.parent_id}

    def us(t: float) -> float:
        return round((t - base) * 1e6, 3)

    threads: dict[int, str] = {}
    for r in records:
        threads.setdefault(r.thread_id, r.thread_name)
    for tid, name in sorted(threads.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    # Chrome requires a thread's B/E events to appear in file order matching
    # their nesting, so emission walks each tid's spans in start order with
    # an explicit open-span stack: before opening the next span, every open
    # span that ended at or before its start is closed. Same-thread spans
    # are well-nested by construction (thread-local span stacks), so this
    # reproduces the nesting exactly.
    by_tid: dict[int, list[SpanRecord]] = {}
    for r in records:
        by_tid.setdefault(r.thread_id, []).append(r)

    def emit_instants(r: SpanRecord) -> None:
        for name, ts, attrs in r.events:
            events.append(
                {
                    "name": name,
                    "pid": pid,
                    "tid": r.thread_id,
                    "cat": "repro",
                    "ph": "i",
                    "ts": us(ts),
                    "s": "t",
                    "args": {str(k): _json_safe(v) for k, v in attrs.items()},
                }
            )

    def close(r: SpanRecord) -> None:
        events.append(
            {
                "name": r.name,
                "pid": pid,
                "tid": r.thread_id,
                "cat": "repro",
                "ph": "E",
                "ts": us(r.end),
            }
        )

    for tid in sorted(by_tid):
        open_stack: list[SpanRecord] = []
        for r in sorted(by_tid[tid], key=lambda r: (r.start, -r.duration)):
            while open_stack and open_stack[-1].end <= r.start:
                close(open_stack.pop())
            common = {"name": r.name, "pid": pid, "tid": tid, "cat": "repro"}
            if r.span_id in parents:
                events.append(
                    {**common, "ph": "B", "ts": us(r.start), "args": _args(r)}
                )
                open_stack.append(r)
            else:
                events.append(
                    {
                        **common,
                        "ph": "X",
                        "ts": us(r.start),
                        "dur": max(round(r.duration * 1e6, 3), 0.001),
                        "args": _args(r),
                    }
                )
            emit_instants(r)
        while open_stack:
            close(open_stack.pop())
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(
    spans: Iterable[SpanRecord] | FlightRecorder, path: str | os.PathLike
) -> str:
    """Validate and write a Chrome-trace JSON file; returns the path."""
    doc = chrome_trace(spans)
    validate_chrome_trace(doc)
    path = os.fspath(path)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    os.replace(tmp, path)
    return path


_PHASES = {"B", "E", "X", "i", "M"}


def validate_chrome_trace(doc: dict) -> None:
    """Schema-check a Chrome-trace document; raises ``ValueError`` on defects.

    Checks: top-level shape, known phases only, required keys per phase
    (``ts`` on all non-``M`` events, ``dur`` on ``X``), non-negative
    timestamps, and per-(pid, tid) ``B``/``E`` balance with properly
    nested, monotonically ordered begin/end pairs.
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    stacks: dict[tuple, list] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        if "name" not in ev or "pid" not in ev or "tid" not in ev:
            raise ValueError(f"event {i}: missing name/pid/tid")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0 or not math.isfinite(ts):
            raise ValueError(f"event {i}: bad ts {ts!r}")
        key = (ev["pid"], ev["tid"])
        if ph == "B":
            stack = stacks.setdefault(key, [])
            if stack and ts < stack[-1][1]:
                raise ValueError(f"event {i}: B ts {ts} precedes enclosing B")
            stack.append((ev["name"], ts))
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"event {i}: E without matching B on tid {key[1]}")
            name, begin_ts = stack.pop()
            if ts < begin_ts:
                raise ValueError(f"event {i}: E ts {ts} precedes its B ts {begin_ts}")
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0 or not math.isfinite(dur):
                raise ValueError(f"event {i}: X missing/bad dur {dur!r}")
    for (pid, tid), stack in stacks.items():
        if stack:
            raise ValueError(
                f"unbalanced B/E on pid {pid} tid {tid}: {len(stack)} unclosed"
            )


# -- Prometheus text exposition ------------------------------------------------


def _prom_name(name: str, suffix: str = "") -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"repro_{safe}{suffix}"


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry_or_snapshot) -> str:
    """Render a metrics registry (or persisted snapshot dict) as Prometheus
    text exposition format (0.0.4).

    Counters are exported as ``repro_<name>_total`` counters, gauges as
    gauges, histograms as summaries: ``quantile``-labelled percentile
    samples from the shared bounded-window estimator plus exact
    ``_sum``/``_count`` series. Dots in metric names become underscores.
    Accepts either a live ``MetricsRegistry`` (snapshotted atomically) or
    a dict previously produced by ``MetricsRegistry.snapshot()`` — the
    registry type is duck-typed so this module stays import-light.
    """
    snap = registry_or_snapshot
    if hasattr(snap, "snapshot"):
        snap = snap.snapshot()
    if not isinstance(snap, dict):
        raise TypeError(
            f"expected MetricsRegistry or snapshot dict, got {type(snap).__name__}"
        )
    lines: list[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        prom = _prom_name(name, "_total")
        lines.append(f"# HELP {prom} Counter {name}")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} Gauge {name}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, hist in sorted(snap.get("histograms", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} Histogram {name} (bounded-window summary)")
        lines.append(f"# TYPE {prom} summary")
        for key, q in (("p50", "0.5"), ("p90", "0.9"), ("p95", "0.95"), ("p99", "0.99")):
            lines.append(
                f'{prom}{{quantile="{q}"}} {_prom_value(hist.get(key))}'
            )
        lines.append(f"{prom}_sum {_prom_value(hist.get('sum', 0))}")
        lines.append(f"{prom}_count {_prom_value(hist.get('count', 0))}")
    return "\n".join(lines) + "\n"


# -- JSONL persistence ---------------------------------------------------------


def save_trace_jsonl(
    spans: Iterable[SpanRecord] | FlightRecorder, path: str | os.PathLike
) -> str:
    """Persist span records as JSON-lines (one span per line); returns path."""
    recorder = spans
    if not isinstance(recorder, FlightRecorder):
        recorder = FlightRecorder(max_spans=max(len(_span_records(spans)), 1))
        for record in _span_records(spans):
            recorder._add(record)
    return recorder.save_jsonl(path)


def load_trace_jsonl(path: str | os.PathLike) -> list[dict]:
    """Read persisted span dicts back (corrupt lines skipped)."""
    return load_jsonl(path)


# -- coverage ------------------------------------------------------------------


def trace_coverage(spans: Iterable[SpanRecord] | FlightRecorder, root_name: str | None = None) -> float:
    """Fraction of root-span wall-clock covered by its child spans, in [0, 1].

    The acceptance bar for a traced tune: child spans (search rounds,
    measurement batches, lowering, compiles) should account for >= 95% of
    the root's duration. Child intervals are merged per root (union, not
    sum) so overlapping concurrent measurement spans aren't double-counted.
    """
    records = _span_records(spans)
    if root_name is not None:
        roots = [r for r in records if r.name == root_name]
    else:
        roots = [r for r in records if r.parent_id is None]
    if not roots:
        return 0.0
    total = covered = 0.0
    for root in roots:
        if root.duration <= 0:
            continue
        total += root.duration
        intervals = sorted(
            (max(r.start, root.start), min(r.end, root.end))
            for r in records
            if r.parent_id == root.span_id and r.end > root.start and r.start < root.end
        )
        cursor = None
        for lo, hi in intervals:
            if cursor is None or lo > cursor:
                covered += hi - lo
                cursor = hi
            elif hi > cursor:
                covered += hi - cursor
                cursor = hi
    return covered / total if total else 0.0
