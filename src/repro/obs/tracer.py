"""Span tracer: where time goes, from request admission to kernel execution.

The stack spans admission → bucketing → search rounds → cost-model
reranking → measurement → lowering → compiled-kernel execution; the
telemetry registry counts *what* happened but cannot say *where a request's
time went* or *why a decision was made*. This module adds the missing
dimension: a thread-safe span tracer every layer reports into, plus a
bounded flight recorder of recent traces.

Design constraints, in order:

1. **Near-zero cost when disabled.** Tracing defaults to off; an
   instrumented hot path pays one attribute check and a singleton return
   per ``span()`` call (see the overhead benchmark in
   ``benchmarks/test_obs_overhead.py``, asserted < 5% of a warm tune).
2. **Thread-safe by construction.** Every service worker, measurement
   pool thread, and client thread traces concurrently into one
   :class:`Tracer`. Span nesting is tracked per-thread (``threading.local``
   stacks); finished spans land in a lock-guarded ring buffer. Cross-thread
   parentage (a queued tune continuing a request's trace) is explicit via
   ``span(..., parent=...)``.
3. **Dual timestamps.** Spans carry host-monotonic times
   (``time.perf_counter``) *and*, when a
   :class:`~repro.search.tuning_cost.TuningClock` is attached, the
   simulated tuning-clock seconds at entry/exit — so a trace can be read
   against both wall time and Table-IV-style simulated tuning time.
4. **Bounded memory.** The flight recorder keeps the most recent
   :data:`DEFAULT_MAX_SPANS` finished spans; a long-lived service never
   grows without limit, and "what just happened" is always answerable.

Identity model: every span has a ``span_id``; a root span (no live parent
on its thread and no explicit ``parent``) mints a fresh ``trace_id``,
children inherit it. Grouping the ring buffer by ``trace_id`` reconstructs
whole request traces (:meth:`FlightRecorder.traces`).

Usage::

    from repro.obs import enable_tracing, get_tracer

    tracer = enable_tracing()
    with tracer.span("serve.request", workload="S2") as sp:
        sp.event("admitted", lane="interactive")
        with tracer.span("tune"):
            ...
    spans = tracer.recorder.spans()
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Span",
    "FlightRecorder",
    "Tracer",
    "DEFAULT_MAX_SPANS",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_span",
]

#: Flight-recorder capacity (finished spans). A serve-load run of ~1k
#: requests emits a few spans per warm request and a few hundred per cold
#: tune; 64k spans comfortably hold the recent window either way.
DEFAULT_MAX_SPANS = 65536

_ids = itertools.count(1)


def _next_id() -> str:
    return f"{os.getpid():x}-{next(_ids):x}"


@dataclass
class SpanRecord:
    """One finished span, as stored in the flight recorder.

    ``start``/``end`` are host-monotonic seconds (``time.perf_counter`` —
    comparable only within a process); ``sim_start``/``sim_end`` are the
    attached :class:`~repro.search.tuning_cost.TuningClock` readings, or
    ``None`` when the span ran without a clock.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    end: float
    thread_id: int
    thread_name: str
    attrs: dict = field(default_factory=dict)
    #: ``(name, monotonic timestamp, attrs)`` triples, in emission order.
    events: list = field(default_factory=list)
    sim_start: float | None = None
    sim_end: float | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def sim_duration(self) -> float | None:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def to_dict(self) -> dict:
        """JSON-able view (the JSONL persistence format, one span per line)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attrs": self.attrs,
            "events": [
                {"name": n, "ts": ts, "attrs": attrs} for n, ts, attrs in self.events
            ],
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
        }


class Span:
    """A live span: context manager handed out by :meth:`Tracer.span`.

    Mutating methods (:meth:`set`, :meth:`event`) are safe from the owning
    thread and from pool threads that received the span as an explicit
    parent — the attrs dict is guarded by the span's own lock.
    """

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id", "start",
        "attrs", "events", "_clock", "sim_start", "_thread_id",
        "_thread_name", "_lock", "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict,
        clock=None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _next_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.events: list = []
        self._clock = clock
        self._lock = threading.Lock()
        self._finished = False
        thread = threading.current_thread()
        self._thread_id = thread.ident or 0
        self._thread_name = thread.name
        self.sim_start = getattr(clock, "seconds", None) if clock is not None else None
        self.start = time.perf_counter()

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) span attributes."""
        with self._lock:
            self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event on this span."""
        with self._lock:
            self.events.append((name, time.perf_counter(), attrs))

    # -- context management ----------------------------------------------------

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.set(error=f"{exc_type.__name__}: {exc}")
        self.finish()

    def finish(self) -> SpanRecord:
        """End the span and commit it to the flight recorder (idempotent)."""
        end = time.perf_counter()
        with self._lock:
            if self._finished:
                raise RuntimeError(f"span {self.name!r} finished twice")
            self._finished = True
            record = SpanRecord(
                name=self.name,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self.start,
                end=end,
                thread_id=self._thread_id,
                thread_name=self._thread_name,
                attrs=dict(self.attrs),
                events=list(self.events),
                sim_start=self.sim_start,
                sim_end=(
                    getattr(self._clock, "seconds", None)
                    if self._clock is not None
                    else None
                ),
            )
        self.tracer._pop(self)
        self.tracer.recorder._add(record)
        return record


class _NoopSpan:
    """The disabled-tracer span: every operation is a no-op.

    One process-wide singleton; ``span()`` on a disabled tracer returns it
    without allocating, so instrumented code pays (almost) nothing.
    """

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    attrs: dict = {}
    events: list = []

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        return None

    def finish(self) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class FlightRecorder:
    """Bounded ring buffer of recently finished spans.

    The recorder answers "what just happened" after the fact: it keeps the
    most recent ``max_spans`` :class:`SpanRecord` objects (oldest evicted
    first) and can group them back into whole traces. All methods are
    thread-safe.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: deque[SpanRecord] = deque(maxlen=max_spans)
        self._dropped = 0

    def _add(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) == self.max_spans:
                self._dropped += 1
            self._spans.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound since the last :meth:`clear`."""
        with self._lock:
            return self._dropped

    def spans(self) -> list[SpanRecord]:
        """Finished spans, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._spans)

    def traces(self) -> dict[str, list[SpanRecord]]:
        """Finished spans grouped by ``trace_id``, insertion-ordered."""
        out: dict[str, list[SpanRecord]] = {}
        for record in self.spans():
            out.setdefault(record.trace_id, []).append(record)
        return out

    def trace(self, trace_id: str) -> list[SpanRecord]:
        return [r for r in self.spans() if r.trace_id == trace_id]

    def last_trace(self) -> list[SpanRecord]:
        """Every span of the most recently *finished* trace (often the
        request that just completed — the flight-recorder question)."""
        spans = self.spans()
        if not spans:
            return []
        return [r for r in spans if r.trace_id == spans[-1].trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def save_jsonl(self, path: str | os.PathLike) -> str:
        """Persist the buffer as JSON-lines (one span per line), atomically."""
        path = os.fspath(path)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in self.spans():
                fh.write(json.dumps(record.to_dict(), sort_keys=True))
                fh.write("\n")
        os.replace(tmp, path)
        return path


def load_jsonl(path: str | os.PathLike) -> list[dict]:
    """Read persisted span dicts; corrupt lines are skipped, not fatal."""
    out: list[dict] = []
    try:
        with open(os.fspath(path), encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(doc, dict):
                    out.append(doc)
    except OSError:
        return []
    return out


class Tracer:
    """Hands out spans, tracks per-thread nesting, feeds the recorder.

    ``enabled=False`` (the default for the process-wide tracer) makes
    :meth:`span` return the no-op singleton — instrumentation stays in
    place at near-zero cost. One tracer serves any number of threads.
    """

    def __init__(
        self, enabled: bool = True, max_spans: int = DEFAULT_MAX_SPANS
    ) -> None:
        self.enabled = enabled
        self.recorder = FlightRecorder(max_spans=max_spans)
        self._stacks = threading.local()

    # -- per-thread span stack -------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._stacks, "spans", None)
        if stack is None:
            stack = self._stacks.spans = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # A span may finish on a different thread than it entered on only
        # via explicit finish(); tolerate a non-top pop rather than corrupt
        # an unrelated thread's stack.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)

    def current(self) -> Span | None:
        """This thread's innermost live span (``None`` outside any span)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span creation ---------------------------------------------------------

    def span(self, name: str, parent=None, clock=None, **attrs):
        """Open a span; use as a context manager (or call ``finish()``).

        ``parent`` overrides the thread-ambient parent — pass the enclosing
        :class:`Span` (or finished :class:`SpanRecord`) when crossing a
        thread boundary, e.g. a measurement pool or a service worker
        continuing a request's trace. ``clock`` attaches a TuningClock for
        dual (host + simulated) timestamps.
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is None:
            parent = self.current()
        if parent is None or parent is NOOP_SPAN:
            trace_id, parent_id = _next_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(self, name, trace_id, parent_id, attrs, clock=clock)

    def event(self, name: str, **attrs) -> None:
        """Record an event on the current span (dropped when none is live)."""
        if not self.enabled:
            return
        span = self.current()
        if span is not None:
            span.event(name, **attrs)


#: The process-wide tracer every instrumented layer reports to. Starts
#: disabled; `enable_tracing()` swaps in a fresh enabled tracer.
_TRACER = Tracer(enabled=False)
_TRACER_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled by default)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns the old one."""
    global _TRACER
    with _TRACER_LOCK:
        old, _TRACER = _TRACER, tracer
    return old


def enable_tracing(max_spans: int = DEFAULT_MAX_SPANS) -> Tracer:
    """Install (and return) a fresh enabled tracer with an empty recorder."""
    tracer = Tracer(enabled=True, max_spans=max_spans)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> Tracer:
    """Swap the process-wide tracer for a disabled one.

    Returns the *previous* tracer, whose flight recorder still holds
    everything captured while tracing was on — disable first, export after.
    """
    return set_tracer(Tracer(enabled=False))


def tracing_enabled() -> bool:
    return _TRACER.enabled


def current_span() -> Span | None:
    """The calling thread's innermost live span on the global tracer."""
    return _TRACER.current()
