"""Learned cost model: analytic prior + gradient-boosted residual.

MCFuser's analytical model (§IV-A) ranks candidates well enough to guide
the search, but every surviving candidate is still hardware-measured.
This module closes the loop the way Ansor does — learn from measurements —
while keeping the paper's analytic model as the *prior* (Blockbuster's
layering: an analytical block-level model refined empirically): the GBT
regresses the **log-space residual**

    r = log(t_measured) - log(t_analytic)

so an unfitted or sample-starved model degrades gracefully to the pure
analytic ranking (residual zero), and the learner only has to explain what
the prior gets wrong (tile-shape efficiency, coalescing, wave
quantization — exactly the terms eq. 2-5 ignores).

Two pieces:

* :class:`MeasurementDataset` — an append-only JSONL store of
  ``(features, analytic estimate, measured time)`` records in the cache
  directory. Every tune that runs with a cost model attached logs its
  measurements here, so the model *compounds* across runs, processes, and
  :class:`~repro.serving.service.CompileService` replicas. Corrupted lines
  are skipped on load (mirroring :mod:`repro.cache.store`'s degrade-never-
  break policy), and records written under a different
  :data:`~repro.search.features.FEATURE_VERSION` are ignored rather than
  misinterpreted.
* :class:`LearnedCostModel` — wraps the pure-numpy
  :class:`~repro.baselines.gbt.GradientBoostedTrees`. Fits are
  deterministic for a given (seed, dataset) pair; each fit self-reports a
  pairwise ranking accuracy measured on a seeded holdout split (a probe
  model is trained on the rest), because ranking — not regression — is
  what the top-k search consumes. Snapshots save/load as JSON.

The consumer is :class:`~repro.search.engine.loop.SearchLoop`: in top-k
mode it re-ranks every unmeasured proposal with
:meth:`LearnedCostModel.predict` and measures only the best ``k``,
refitting once per round from the accumulated dataset.
"""

from __future__ import annotations

import json
import math
import os
import threading

import numpy as np

from repro.baselines.gbt import GradientBoostedTrees
from repro.search.features import FEATURE_NAMES, FEATURE_VERSION
from repro.utils import rng_for

__all__ = [
    "DATASET_FILENAME",
    "MODEL_FILENAME",
    "MODEL_SCHEMA",
    "MeasurementDataset",
    "LearnedCostModel",
    "pairwise_ranking_accuracy",
    "default_dataset_path",
    "default_model_path",
]

#: File names inside the cache directory (next to ``schedule_cache.json``).
DATASET_FILENAME = "measurements.jsonl"
MODEL_FILENAME = "cost_model.json"

#: On-disk model-snapshot schema; snapshots from another schema are ignored.
MODEL_SCHEMA = 1

#: Floor for log-space targets — measured/analytic times are simulated
#: seconds and always far above this; the floor only guards degenerate
#: inputs from ever producing ``-inf``.
_TIME_FLOOR = 1e-12

#: Residual predictions are clipped to this magnitude before ``exp`` so a
#: wild extrapolation can never overflow into inf/0 and scramble a ranking.
_RESIDUAL_CLIP = 20.0


def default_dataset_path(directory: str | None = None) -> str:
    """The measurement dataset's path inside ``directory`` (default cache dir)."""
    if directory is None:
        from repro.cache.cache import default_cache_dir

        directory = default_cache_dir()
    return os.path.join(directory, DATASET_FILENAME)


def default_model_path(directory: str | None = None) -> str:
    """The model snapshot's path inside ``directory`` (default cache dir)."""
    if directory is None:
        from repro.cache.cache import default_cache_dir

        directory = default_cache_dir()
    return os.path.join(directory, MODEL_FILENAME)


def pairwise_ranking_accuracy(
    predicted: np.ndarray,
    actual: np.ndarray,
    max_pairs: int = 4096,
    rng: np.random.Generator | None = None,
) -> float:
    """Fraction of candidate pairs the prediction orders correctly.

    This is the metric the top-k search actually depends on: absolute
    regression error is irrelevant as long as better candidates score
    lower. Ties in ``actual`` are skipped; when the number of pairs exceeds
    ``max_pairs`` a seeded random sample is scored instead (deterministic
    given ``rng``). Returns ``nan`` when no comparable pair exists.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    n = len(actual)
    if n < 2:
        return float("nan")
    if n * (n - 1) // 2 <= max_pairs:
        ii, jj = np.triu_indices(n, k=1)
    else:
        rng = rng if rng is not None else np.random.default_rng(0)
        ii = rng.integers(0, n, size=max_pairs)
        jj = rng.integers(0, n, size=max_pairs)
    keep = actual[ii] != actual[jj]
    ii, jj = ii[keep], jj[keep]
    if len(ii) == 0:
        return float("nan")
    agree = np.sign(predicted[ii] - predicted[jj]) == np.sign(actual[ii] - actual[jj])
    return float(np.mean(agree))


class MeasurementDataset:
    """Append-only JSONL store of (features, analytic, measured) records.

    Args:
        path: JSONL file path, or ``None`` for a memory-only dataset.
        capacity: Maximum records kept in memory (and used for fitting);
            the oldest are dropped first. The file itself is append-only.

    Thread-safe; loading skips corrupted or version-mismatched lines and
    counts them in :attr:`corrupt_lines` (the tuning path must degrade,
    never break — same policy as :class:`repro.cache.store.PersistentStore`).
    An unreadable file reads as empty; an unwritable one degrades the
    dataset to memory-only.
    """

    def __init__(self, path: str | os.PathLike | None = None, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.path = os.fspath(path) if path is not None else None
        self.capacity = capacity
        self._lock = threading.RLock()
        self._records: list[dict] = []
        self.corrupt_lines = 0
        if self.path is not None:
            self._load()

    @staticmethod
    def _validate(record: object) -> dict | None:
        """One parsed JSONL line -> record dict, or ``None`` if malformed."""
        if not isinstance(record, dict) or record.get("v") != FEATURE_VERSION:
            return None
        features = record.get("features")
        if not isinstance(features, list) or len(features) != len(FEATURE_NAMES):
            return None
        try:
            features = [float(f) for f in features]
            analytic = float(record["analytic"])
            measured = float(record["measured"])
        except (KeyError, TypeError, ValueError):
            return None
        if not all(math.isfinite(f) for f in features):
            return None
        if not (math.isfinite(analytic) and analytic > 0):
            return None
        if not (math.isfinite(measured) and measured > 0):
            return None
        return {
            "v": FEATURE_VERSION,
            "features": features,
            "analytic": analytic,
            "measured": measured,
            "workload": str(record.get("workload", "")),
            "gpu": str(record.get("gpu", "")),
        }

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError:
                self.corrupt_lines += 1
                continue
            record = self._validate(parsed)
            if record is None:
                self.corrupt_lines += 1
                continue
            self._records.append(record)
        del self._records[: -self.capacity]

    def append(
        self,
        features,
        analytic: float,
        measured: float,
        workload: str = "",
        gpu: str = "",
    ) -> bool:
        """Record one measurement; returns whether it was accepted.

        Non-finite or non-positive times are rejected (launch failures are
        the search loop's blacklist's job, not the regressor's), as are
        feature vectors of the wrong arity.
        """
        record = self._validate(
            {
                "v": FEATURE_VERSION,
                "features": list(np.asarray(features, dtype=np.float64).tolist()),
                "analytic": analytic,
                "measured": measured,
                "workload": workload,
                "gpu": gpu,
            }
        )
        if record is None:
            return False
        with self._lock:
            self._records.append(record)
            del self._records[: -self.capacity]
            if self.path is not None:
                try:
                    os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
                    with open(self.path, "a", encoding="utf-8") as fh:
                        fh.write(json.dumps(record, sort_keys=True) + "\n")
                except OSError:
                    self.path = None  # unwritable: degrade to memory-only
        return True

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(x, analytic, measured)`` training arrays over all records."""
        with self._lock:
            records = list(self._records)
        if not records:
            f = len(FEATURE_NAMES)
            return np.empty((0, f)), np.empty(0), np.empty(0)
        x = np.array([r["features"] for r in records], dtype=np.float64)
        analytic = np.array([r["analytic"] for r in records], dtype=np.float64)
        measured = np.array([r["measured"] for r in records], dtype=np.float64)
        return x, analytic, measured

    def records(self) -> list[dict]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.corrupt_lines = 0
            if self.path is not None:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class LearnedCostModel:
    """Analytic prior blended with a learned log-space GBT residual.

    Args:
        dataset: The :class:`MeasurementDataset` backing fits (a memory-only
            one is created when omitted).
        seed: Drives the holdout split of the self-reported ranking
            accuracy. Fits are deterministic for a (seed, dataset) pair.
        min_samples: Below this many records the model refuses to fit and
            :attr:`ready` stays false — the search loop then falls back to
            measure-everything.
        n_trees/learning_rate/max_depth: GBT hyper-parameters (modest by
            default: the model refits once per search round).
        holdout: Fraction of the dataset held out for the accuracy
            self-report.

    Thread-safe: one model instance may be shared by every worker of a
    :class:`~repro.serving.service.CompileService`.
    """

    def __init__(
        self,
        dataset: MeasurementDataset | None = None,
        seed: int = 0,
        min_samples: int = 32,
        n_trees: int = 24,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        holdout: float = 0.25,
    ) -> None:
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        if not 0.0 < holdout < 1.0:
            raise ValueError(f"holdout must be in (0, 1), got {holdout}")
        self.dataset = dataset if dataset is not None else MeasurementDataset(None)
        self.seed = seed
        self.min_samples = min_samples
        self.holdout = holdout
        self._gbt_params = dict(
            n_trees=n_trees, learning_rate=learning_rate, max_depth=max_depth
        )
        self._gbt = GradientBoostedTrees(**self._gbt_params)
        self._lock = threading.RLock()
        self._fitted_on = 0
        #: Pairwise ranking accuracy self-reported by the latest fit
        #: (``None`` before any fit; may be ``nan`` on tiny datasets).
        self.accuracy: float | None = None
        #: Number of (re)fits performed by this instance.
        self.fits = 0

    # -- state ---------------------------------------------------------------

    @property
    def ready(self) -> bool:
        """Whether predictions carry learned information (fit succeeded)."""
        with self._lock:
            return self._gbt.is_fitted

    @property
    def samples(self) -> int:
        """Records the current parameters were fitted on."""
        with self._lock:
            return self._fitted_on

    # -- data ----------------------------------------------------------------

    def observe(
        self,
        features,
        analytic: float,
        measured: float,
        workload: str = "",
        gpu: str = "",
    ) -> bool:
        """Log one (features, analytic, measured) sample into the dataset."""
        return self.dataset.append(
            features, analytic, measured, workload=workload, gpu=gpu
        )

    @staticmethod
    def _residuals(analytic: np.ndarray, measured: np.ndarray) -> np.ndarray:
        return np.log(np.maximum(measured, _TIME_FLOOR)) - np.log(
            np.maximum(analytic, _TIME_FLOOR)
        )

    # -- fitting --------------------------------------------------------------

    def fit(self, force: bool = False) -> bool:
        """(Re)fit from the dataset; returns whether a fit happened.

        A no-op (returning ``False``) while the dataset holds fewer than
        ``min_samples`` records, or — unless ``force`` — when no new record
        arrived since the previous fit. Each fit first trains a probe model
        on a seeded train split to self-report pairwise ranking accuracy on
        the held-out rest, then fits the serving model on everything.
        """
        with self._lock:
            x, analytic, measured = self.dataset.arrays()
            n = len(measured)
            if n < self.min_samples:
                return False
            if not force and n == self._fitted_on:
                return False
            target = self._residuals(analytic, measured)

            # Self-report: probe fit on the train split, pairwise accuracy
            # on the holdout. Deterministic via the seeded permutation.
            rng = rng_for("cost-model", self.seed, n)
            n_hold = max(1, int(n * self.holdout))
            if n - n_hold >= max(2, self.min_samples // 2):
                perm = rng.permutation(n)
                hold, train = perm[:n_hold], perm[n_hold:]
                probe = GradientBoostedTrees(**self._gbt_params)
                probe.fit(x[train], target[train])
                resid = np.clip(probe.predict(x[hold]), -_RESIDUAL_CLIP, _RESIDUAL_CLIP)
                pred = np.log(np.maximum(analytic[hold], _TIME_FLOOR)) + resid
                self.accuracy = pairwise_ranking_accuracy(
                    pred, measured[hold], rng=rng
                )
            else:  # too small to split honestly: report training-set accuracy
                probe = GradientBoostedTrees(**self._gbt_params).fit(x, target)
                resid = np.clip(probe.predict(x), -_RESIDUAL_CLIP, _RESIDUAL_CLIP)
                pred = np.log(np.maximum(analytic, _TIME_FLOOR)) + resid
                self.accuracy = pairwise_ranking_accuracy(pred, measured, rng=rng)

            self._gbt = GradientBoostedTrees(**self._gbt_params)
            self._gbt.fit(x, target)
            self._fitted_on = n
            self.fits += 1
            return True

    # -- prediction -----------------------------------------------------------

    def predict(self, x: np.ndarray, analytic: np.ndarray) -> np.ndarray:
        """Predicted times (seconds) for feature rows ``x`` with analytic
        priors ``analytic``; the pure prior when the model is not fitted."""
        analytic = np.asarray(analytic, dtype=np.float64)
        with self._lock:
            if not self._gbt.is_fitted:
                return analytic.copy()
            resid = self._gbt.predict(np.asarray(x, dtype=np.float64))
        return analytic * np.exp(np.clip(resid, -_RESIDUAL_CLIP, _RESIDUAL_CLIP))

    def rank(self, x: np.ndarray, analytic: np.ndarray) -> np.ndarray:
        """Indices ordering the rows best (fastest predicted) first.

        The sort is stable, so equal predictions preserve the caller's
        (analytic-prior) order — determinism survives ties.
        """
        return np.argsort(self.predict(x, analytic), kind="stable")

    # -- persistence ------------------------------------------------------------

    def save(self, path: str | os.PathLike) -> str:
        """Persist a fitted model snapshot atomically; returns the path."""
        with self._lock:
            if not self._gbt.is_fitted:
                raise RuntimeError("cannot save an unfitted cost model")
            doc = {
                "schema": MODEL_SCHEMA,
                "feature_version": FEATURE_VERSION,
                "feature_names": list(FEATURE_NAMES),
                "seed": self.seed,
                "min_samples": self.min_samples,
                "holdout": self.holdout,
                "samples": self._fitted_on,
                "accuracy": self.accuracy,
                "fits": self.fits,
                "gbt": self._gbt.to_json(),
            }
        path = os.fspath(path)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(
        cls, path: str | os.PathLike, dataset: MeasurementDataset | None = None
    ) -> "LearnedCostModel | None":
        """Restore a snapshot; ``None`` when absent, corrupt, or written
        under a different schema/feature version (never misinterpreted)."""
        try:
            with open(os.fspath(path), encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != MODEL_SCHEMA:
            return None
        if doc.get("feature_version") != FEATURE_VERSION:
            return None
        try:
            gbt = GradientBoostedTrees.from_json(doc["gbt"])
            model = cls(
                dataset=dataset,
                seed=int(doc["seed"]),
                min_samples=int(doc["min_samples"]),
                n_trees=gbt.n_trees,
                learning_rate=gbt.learning_rate,
                max_depth=gbt.max_depth,
                holdout=float(doc.get("holdout", 0.25)),
            )
            model._gbt = gbt
            model._fitted_on = int(doc.get("samples", 0))
            accuracy = doc.get("accuracy")
            model.accuracy = None if accuracy is None else float(accuracy)
            model.fits = int(doc.get("fits", 0))
        except (KeyError, TypeError, ValueError):
            return None
        return model
