"""MCFuserTuner: end-to-end tuning of one MBCI chain (§III + §IV).

Pipeline: generate + prune the search space, run the heuristic search with
the analytical model, measure top candidates on the (simulated) GPU, and
return the best schedule with full accounting — simulated tuning seconds,
pruning funnel, model-vs-measured pairs.

Two restricted variants implement baselines from the paper:

* ``MCFuserTuner(variant="chimera")`` — the *MCFuser-Chimera* comparison
  point (§VI-A): Chimera's search space (deep tilings only, no extent-1
  DAG optimization) and Chimera's data-movement-only objective inside the
  same framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.occupancy import SharedMemoryExceeded
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.evolution import SearchResult, heuristic_search
from repro.search.perf_model import AnalyticalModel, ChimeraModel
from repro.search.pruning import PruningStats
from repro.search.space import Candidate, SearchSpace, generate_space
from repro.search.tuning_cost import TuningClock
from repro.tiling.schedule import Schedule

__all__ = ["TuneReport", "MCFuserTuner", "MEASURE_REPETITIONS"]

#: Kernel repetitions per hardware measurement (billed to the tuning clock).
MEASURE_REPETITIONS = 100


@dataclass
class TuneReport:
    """Everything a tuning run produced."""

    chain: ComputeChain
    gpu: GPUSpec
    variant: str
    best_candidate: Candidate
    best_schedule: Schedule
    best_time: float
    tuning_seconds: float
    pruning: PruningStats
    search: SearchResult
    clock: TuningClock = field(repr=False, default_factory=TuningClock)

    @property
    def tflops(self) -> float:
        """Achieved TFLOP/s of the chosen kernel (useful work only)."""
        return self.chain.total_flops() / self.best_time / 1e12


class MCFuserTuner:
    """Tunes :class:`ComputeChain` workloads for a simulated GPU.

    Args:
        gpu: Target hardware description.
        variant: ``"mcfuser"`` (full system) or ``"chimera"`` (restricted
            space + data-movement objective, the MCFuser-Chimera baseline).
        population_size/top_n/epsilon/max_rounds: Algorithm-1 parameters
            (paper uses ``n = 8``).
        seed: Controls search randomness and simulator jitter.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        variant: str = "mcfuser",
        population_size: int = 512,
        top_n: int = 8,
        epsilon: float = 0.01,
        max_rounds: int = 16,
        min_rounds: int = 5,
        seed: int = 0,
    ) -> None:
        if variant not in ("mcfuser", "chimera"):
            raise ValueError(f"unknown tuner variant {variant!r}")
        self.gpu = gpu
        self.variant = variant
        self.population_size = population_size
        self.top_n = top_n
        self.epsilon = epsilon
        self.max_rounds = max_rounds
        self.min_rounds = min_rounds
        self.seed = seed
        self.simulator = GPUSimulator(gpu, seed=seed)

    # -- pieces ---------------------------------------------------------------

    def build_space(self, chain: ComputeChain, clock: TuningClock | None = None) -> SearchSpace:
        deep_only = self.variant == "chimera"
        space = generate_space(
            chain,
            self.gpu,
            deep_only=deep_only,
            optimize_schedules=self.variant != "chimera",
        )
        if clock is not None:
            clock.charge("space_generation")
        return space

    def measure_schedule(self, schedule: Schedule) -> float:
        """One hardware measurement; launch failures count as +inf."""
        try:
            kernel = schedule.kernel_launch(self.gpu)
            return self.simulator.run(kernel)
        except SharedMemoryExceeded:
            return float("inf")

    # -- main entry -----------------------------------------------------------

    def tune(self, chain: ComputeChain) -> TuneReport:
        """Search for the best fused kernel of ``chain``."""
        clock = TuningClock()
        space = self.build_space(chain, clock)
        optimize = self.variant != "chimera"
        model = (
            ChimeraModel(self.gpu) if self.variant == "chimera" else AnalyticalModel(self.gpu)
        )

        schedules: dict[tuple, Schedule] = {}

        def schedule_of(cand: Candidate) -> Schedule:
            if cand.key not in schedules:
                schedules[cand.key] = space.schedule_for(cand, optimize=optimize)
            return schedules[cand.key]

        def estimate_fn(cand: Candidate) -> float:
            clock.charge("model_estimate")
            return model(schedule_of(cand))

        def measure_fn(cand: Candidate) -> float:
            t = self.measure_schedule(schedule_of(cand))
            runtime = 0.0 if t == float("inf") else MEASURE_REPETITIONS * t
            clock.charge("triton_compile_measure", runtime=runtime)
            return t

        result = heuristic_search(
            space,
            estimate_fn,
            measure_fn,
            population_size=self.population_size,
            top_n=self.top_n,
            epsilon=self.epsilon,
            max_rounds=self.max_rounds,
            min_rounds=self.min_rounds,
            seed=self.seed,
        )
        return TuneReport(
            chain=chain,
            gpu=self.gpu,
            variant=self.variant,
            best_candidate=result.best,
            best_schedule=schedule_of(result.best),
            best_time=result.best_time,
            tuning_seconds=clock.seconds,
            pruning=space.stats,
            search=result,
            clock=clock,
        )
