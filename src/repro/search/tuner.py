"""MCFuserTuner: end-to-end tuning of one MBCI chain (§III + §IV).

Pipeline: stream + prune the search space (schedules built once inside the
pipeline), run a pluggable search strategy with the analytical model,
measure the per-round top-n through the parallel evaluator, and return the
best schedule with full accounting — simulated tuning seconds, pruning
funnel, model-vs-measured pairs.

Two restricted variants implement baselines from the paper:

* ``MCFuserTuner(variant="chimera")`` — the *MCFuser-Chimera* comparison
  point (§VI-A): Chimera's search space (deep tilings only, no extent-1
  DAG optimization) and Chimera's data-movement-only objective inside the
  same framework.

Search strategies come from the engine registry
(:mod:`repro.search.engine.strategy`): ``evolutionary`` (Algorithm 1,
the default — behavior-identical to the historical tuner on seeded runs),
``random``, ``exhaustive``, and ``annealing``. Cached schedules are keyed
by (workload, GPU, variant, strategy), so an entry tuned under one
strategy is never served to another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.cache.signature import (
    bucket_dims,
    bucketed_signature,
    variant_key,
)
from repro.codegen.interpreter import InterpreterError, resolve_exec_backend
from repro.config import (
    DYNAMIC_MODES,
    VERIFY_MODES,
    SessionConfig,
    build_legacy_config,
)
from repro.gpu.occupancy import SharedMemoryExceeded
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import GPUSpec, by_name
from repro.ir.chain import ComputeChain
from repro.search.engine.evaluator import ParallelEvaluator
from repro.search.engine.loop import SearchLoop, SearchResult
from repro.search.engine.strategy import SearchStrategy, make_strategy
from repro.search.perf_model import AnalyticalModel, ChimeraModel
from repro.search.pruning import PruningStats
from repro.search.space import Candidate, SearchSpace, generate_space
from repro.search.tuning_cost import TuningClock
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import InvalidScheduleError, Schedule, build_schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache imports us)
    from repro.cache.cache import ScheduleCache
    from repro.cache.store import CacheEntry
    from repro.search.cost_model import LearnedCostModel

__all__ = [
    "TuneReport",
    "MCFuserTuner",
    "MEASURE_REPETITIONS",
    "VERIFY_MODES",
    "DYNAMIC_MODES",
    "VerificationError",
    "report_from_entry",
    "rebind_report",
]

#: Kernel repetitions per hardware measurement (billed to the tuning clock).
MEASURE_REPETITIONS = 100

# VERIFY_MODES and DYNAMIC_MODES now live in :mod:`repro.config` (the
# single home of knob validation) and are re-exported here for backward
# compatibility.

#: fp32 tolerance for measurement-time verification (looser than the unit
#: tests: long reduction chains accumulate more rounding).
_VERIFY_RTOL = 1e-3
_VERIFY_ATOL = 1e-4

#: Sentinel distinguishing "knob not passed" from any explicit value in the
#: deprecated keyword shims.
_UNSET: Any = object()


class VerificationError(RuntimeError):
    """A tuned schedule disagreed numerically with the unfused reference."""


@dataclass
class TuneReport:
    """Everything a tuning run produced."""

    chain: ComputeChain
    gpu: GPUSpec
    variant: str
    best_candidate: Candidate
    best_schedule: Schedule
    best_time: float
    tuning_seconds: float
    pruning: PruningStats
    search: SearchResult
    clock: TuningClock = field(repr=False, default_factory=TuningClock)
    #: True when this report was served from a ScheduleCache: the schedule
    #: was rebuilt from a stored tiling decision with zero enumeration,
    #: zero model estimates, and zero hardware measurements.
    cache_hit: bool = False
    #: Registered search strategy that produced (or originally produced,
    #: for cache hits) this schedule.
    strategy: str = "evolutionary"
    #: Measurement worker-pool width the tuning run used.
    workers: int = 1
    #: Concrete execution backend `best_schedule` runs under (``auto``
    #: resolved to ``"compiled"``, ``"vectorized"`` or ``"scalar"``).
    exec_backend: str = "auto"
    #: True when the best schedule was executed against the unfused
    #: reference as part of this tune (``verify="best"`` or ``"all"``).
    verified: bool = False
    #: Cost-model guidance the tune ran with: measure only the learned
    #: model's predicted-best ``k`` candidates per round (0 = classic
    #: measure-the-top-n mode). Participates in the cache variant key.
    measure_topk: int = 0
    #: Dynamic-shape mode the tune ran under (:data:`DYNAMIC_MODES`).
    dynamic: str = "off"
    #: ``loop -> bucket ceiling`` for the request's dynamic loops (empty
    #: when ``dynamic == "off"`` or the chain has no dynamic loops).
    bucket: dict[str, int] = field(default_factory=dict)
    #: True when this report was served from a *bucketed* cache entry —
    #: tuned at the bucket ceiling, rebuilt and verified at the request
    #: shape. Implies ``cache_hit``.
    bucket_hit: bool = False

    @property
    def tflops(self) -> float:
        """Achieved TFLOP/s of the chosen kernel (useful work only)."""
        return self.chain.total_flops() / self.best_time / 1e12


def report_from_entry(
    chain: ComputeChain,
    gpu: GPUSpec,
    entry: "CacheEntry",
    variant: str = "mcfuser",
    strategy: str = "evolutionary",
    workers: int = 1,
    exec_backend: str = "auto",
    measure_topk: int = 0,
) -> TuneReport:
    """Materialize a :class:`TuneReport` from a cached tiling decision.

    The schedule is re-expanded deterministically from the stored
    (expression, tiles) pair — no enumeration, no model estimates, no
    measurements; pruning and search accounting are all zeros. Shared by
    :class:`MCFuserTuner` (warm ``tune()``) and the serving layer's
    :class:`~repro.serving.service.CompileService`, which resolves cache
    hits without constructing a tuner. ``chain`` must have the structure
    the entry was created from; callers guarantee that by having matched
    the workload signature. ``exec_backend`` is resolved to the concrete
    engine the rebuilt schedule runs under (``"compiled"``/``"vectorized"``/
    ``"scalar"``),
    matching cold-path reports.
    """
    expr = TilingExpr.parse(entry.expr)
    schedule = build_schedule(chain, expr, dict(entry.tiles), optimize=entry.optimized)
    exec_backend = resolve_exec_backend(schedule, exec_backend)
    candidate = Candidate.make(expr, dict(entry.tiles))
    empty_funnel = PruningStats(
        expressions=0,
        classes_rule1=0,
        classes_rule2=0,
        original=0,
        after_rule1=0,
        after_rule2=0,
        after_rule3=0,
        after_rule4=0,
    )
    search = SearchResult(
        best=candidate,
        best_time=entry.best_time,
        rounds=0,
        num_estimates=0,
        num_measurements=0,
        converged=True,
        strategy=strategy,
        measure_topk=measure_topk,
    )
    return TuneReport(
        chain=chain,
        gpu=gpu,
        variant=variant,
        best_candidate=candidate,
        best_schedule=schedule,
        best_time=entry.best_time,
        tuning_seconds=0.0,
        pruning=empty_funnel,
        search=search,
        cache_hit=True,
        strategy=strategy,
        workers=workers,
        exec_backend=exec_backend,
        measure_topk=measure_topk,
    )


def rebind_report(report: TuneReport, chain: ComputeChain) -> TuneReport:
    """Re-expand a report's tiling decision on a different (request) chain.

    The dynamic-shape layer tunes at the bucket *ceiling*; the winning
    (expression, tiles) pair is then rebuilt here on the actual request
    chain — same tiles, shorter extents, tail tiles masked by the
    execution backends. Mutates and returns ``report`` so downstream
    verification (:meth:`MCFuserTuner.check_schedule`) runs at the shape
    the caller will actually execute.
    """
    schedule = report.best_schedule
    report.best_schedule = build_schedule(
        chain, schedule.expr, dict(schedule.tiles), optimize=schedule.optimized
    )
    report.chain = chain
    return report


class MCFuserTuner:
    """Tunes :class:`ComputeChain` workloads for a simulated GPU.

    Args:
        gpu: Target hardware description.
        variant: ``"mcfuser"`` (full system) or ``"chimera"`` (restricted
            space + data-movement objective, the MCFuser-Chimera baseline).
        population_size/top_n/epsilon/max_rounds: Algorithm-1 parameters
            (paper uses ``n = 8``).
        seed: Controls search randomness and simulator jitter.
        cache: Optional :class:`~repro.cache.cache.ScheduleCache`. When set,
            :meth:`tune` looks the workload up *before* generating a search
            space (a hit skips enumeration, pruning, and search entirely)
            and stores the winning schedule afterwards. Entries are keyed
            by (workload, GPU, variant, strategy).
        strategy: Registered search strategy name (``"evolutionary"``,
            ``"random"``, ``"exhaustive"``, ``"annealing"``) or a
            :class:`~repro.search.engine.strategy.SearchStrategy` instance.
        workers: Measurement thread-pool width for the per-round top-n
            batch. Results and accounting are deterministic for any width;
            the simulated wall clock is billed as the batch makespan.
        exec_backend: Numeric execution engine for every schedule this
            tuner runs (verification, ``report.best_schedule`` execution):
            ``"auto"`` (compiled when available and worthwhile, then
            vectorized, then scalar), ``"compiled"``, ``"vectorized"``, or
            ``"scalar"``.
        verify: :data:`VERIFY_MODES` member. ``"best"`` executes the
            winning schedule against ``chain.reference`` (raising
            :class:`VerificationError` on mismatch); ``"all"`` executes
            every hardware-measured candidate and blacklists numerically
            wrong ones as launch failures. Verification runs host-side and
            is not billed to the simulated tuning clock.
        cost_model: Optional :class:`~repro.search.cost_model.
            LearnedCostModel`. When attached, every finite measurement of
            every tune is logged into its dataset and the model refits
            per search round. Created automatically (memory-only) when
            ``measure_topk > 0`` and none is given.
        measure_topk: With a cost model, hardware-measure only the model's
            predicted-best ``k`` candidates per round instead of the
            analytic top-n (0 disables). Rounds where the model is still
            unfitted fall back to measure-everything, which bootstraps the
            model's dataset. Tuned entries are cached under a distinct
            ``+topk{k}`` variant key.
        dynamic: :data:`DYNAMIC_MODES` member. ``"buckets"`` makes
            :meth:`tune` shape-generic over power-of-two sequence-length
            buckets: lookups ladder exact signature → bucketed signature,
            misses tune at the bucket *ceiling* (where Rule 3 admits only
            divisor tiles, so every in-bucket length stays tile-legal) and
            store under the bucketed key; the returned report is always
            rebuilt — and, with verification on, numerically checked — at
            the actual request shape.
        dynamic_loops: Loop names treated as dynamic under bucketing
            (default: the sequence-length dims ``("m", "n")``).
        config: A validated :class:`~repro.config.SessionConfig` — the
            canonical way to configure a tuner. Mutually exclusive with
            the deprecated knob keywords above (``cache``, ``cost_model``,
            and ``gpu`` are live resources, not knobs, and always
            combine with ``config``). ``gpu=None`` resolves the registered
            spec named by ``config.gpu``.
    """

    #: Deprecated keyword knobs in declaration order (all now live on
    #: :class:`~repro.config.SessionConfig`).
    _LEGACY_KNOBS = (
        "variant", "population_size", "top_n", "epsilon", "max_rounds",
        "min_rounds", "seed", "strategy", "workers", "exec_backend",
        "verify", "measure_topk", "dynamic", "dynamic_loops",
    )

    def __init__(
        self,
        gpu: "GPUSpec | None" = None,
        variant: str = _UNSET,
        population_size: int = _UNSET,
        top_n: int = _UNSET,
        epsilon: float = _UNSET,
        max_rounds: int = _UNSET,
        min_rounds: int = _UNSET,
        seed: int = _UNSET,
        cache: "ScheduleCache | None" = None,
        strategy: "str | SearchStrategy" = _UNSET,
        workers: int = _UNSET,
        exec_backend: str = _UNSET,
        verify: str = _UNSET,
        cost_model: "LearnedCostModel | None" = None,
        measure_topk: int = _UNSET,
        dynamic: str = _UNSET,
        dynamic_loops: tuple[str, ...] = _UNSET,
        config: "SessionConfig | None" = None,
    ) -> None:
        scope = locals()
        legacy = {
            name: scope[name] for name in self._LEGACY_KNOBS
            if scope[name] is not _UNSET
        }
        strategy_obj: "SearchStrategy | None" = None
        if "strategy" in legacy and not isinstance(legacy["strategy"], str):
            # A live SearchStrategy instance: used directly; the config
            # records its name only when it is a registered one (an
            # unregistered ad-hoc instance cannot be validated by name).
            from repro.search.engine.strategy import strategy_names

            strategy_obj = make_strategy(legacy["strategy"])
            if strategy_obj.name in strategy_names():
                legacy["strategy"] = strategy_obj.name
            else:
                del legacy["strategy"]
        if config is not None:
            if legacy:
                raise ValueError(
                    "pass either config= or the deprecated keyword knobs, not "
                    f"both (got {sorted(legacy)}); set the SessionConfig "
                    "fields instead"
                )
        else:
            # Validation happens inside SessionConfig construction — the
            # single home of every knob check.
            config = build_legacy_config("MCFuserTuner", legacy)
        search = config.search
        if cost_model is None and (search.measure_topk > 0 or search.cost_model):
            from repro.search.cost_model import LearnedCostModel

            cost_model = LearnedCostModel(seed=search.seed)
        self.config = config
        self.gpu = gpu if gpu is not None else by_name(config.gpu)
        self.variant = search.variant
        self.population_size = search.population_size
        self.top_n = search.top_n
        self.epsilon = search.epsilon
        self.max_rounds = search.max_rounds
        self.min_rounds = search.min_rounds
        self.seed = search.seed
        self.cache = cache
        self.strategy = (
            strategy_obj if strategy_obj is not None
            else make_strategy(search.strategy)
        )
        self.workers = search.workers
        self.exec_backend = config.exec.backend
        self.verify = config.exec.verify
        self.cost_model = cost_model
        self.measure_topk = search.measure_topk
        self.dynamic = config.exec.dynamic
        self.dynamic_loops = tuple(config.exec.dynamic_loops)
        self.simulator = GPUSimulator(
            self.gpu, seed=search.seed, exec_backend=config.exec.backend
        )
        #: chain content fingerprint -> (inputs, reference output); lazily
        #: built when a verification mode is active. Keyed by content, not
        #: name — two differently shaped chains may share a name.
        self._verify_data: dict[str, tuple[dict, np.ndarray]] = {}

    @property
    def cache_variant(self) -> str:
        """The cache-key variant string: variant + strategy + top-k.

        The default strategy maps to the bare variant so caches populated
        before strategies existed keep hitting; any other strategy gets its
        own key space — cached entries stay strategy-faithful — and
        top-k-guided tunes are suffixed ``+topk{k}`` so their schedules are
        never served as exhaustively measured ones (or vice versa).
        """
        return variant_key(self.variant, self.strategy.name, self.measure_topk)

    # -- pieces ---------------------------------------------------------------

    def build_space(self, chain: ComputeChain, clock: TuningClock | None = None) -> SearchSpace:
        deep_only = self.variant == "chimera"
        space = generate_space(
            chain,
            self.gpu,
            deep_only=deep_only,
            optimize_schedules=self.variant != "chimera",
        )
        if clock is not None:
            clock.charge("space_generation")
        return space

    def measure_schedule(self, schedule: Schedule) -> float:
        """One hardware measurement; launch failures count as +inf.

        With ``verify="all"``, the measurement also executes the schedule
        numerically (on :attr:`exec_backend`) and reports a numerically
        wrong program as a launch failure, so it can never win the search.
        """
        try:
            kernel = schedule.kernel_launch(self.gpu)
            t = self.simulator.run(kernel)
        except SharedMemoryExceeded:
            return float("inf")
        if self.verify == "all" and not self.check_schedule(schedule):
            return float("inf")
        return t

    # -- numeric verification --------------------------------------------------

    def _reference_for(self, chain: ComputeChain) -> tuple[dict, np.ndarray]:
        from repro.cache.signature import chain_fingerprint

        key = repr(sorted(chain_fingerprint(chain).items()))
        data = self._verify_data.get(key)
        if data is None:
            if len(self._verify_data) >= 64:  # long-lived tuners stay bounded
                self._verify_data.clear()
            inputs = chain.random_inputs(self.seed)
            data = (inputs, chain.reference(inputs)[chain.output])
            self._verify_data[key] = data
        return data

    def check_schedule(self, schedule: Schedule) -> bool:
        """Execute ``schedule`` and compare against the unfused reference."""
        chain = schedule.chain
        inputs, ref = self._reference_for(chain)
        try:
            out = self.simulator.execute(schedule, inputs)[chain.output]
        except (InterpreterError, InvalidScheduleError):
            return False
        return bool(np.allclose(out, ref, rtol=_VERIFY_RTOL, atol=_VERIFY_ATOL))

    def _finalize_report(self, report: TuneReport) -> TuneReport:
        """Resolve the exec-backend breadcrumb and run best-verification."""
        from repro.obs import get_tracer

        with get_tracer().span("tune.finalize", verify=self.verify) as span:
            report.exec_backend = resolve_exec_backend(
                report.best_schedule, self.exec_backend
            )
            span.set(exec_backend=report.exec_backend)
            if self.verify != "off":
                if self.verify == "best" and not self.check_schedule(
                    report.best_schedule
                ):
                    raise VerificationError(
                        f"best schedule {report.best_schedule.describe()} of "
                        f"{report.chain.name!r} disagrees with the reference "
                        f"(backend {report.exec_backend})"
                    )
                report.verified = True
            return report

    # -- cache integration ------------------------------------------------------

    def _report_from_cache(self, chain: ComputeChain, entry: "CacheEntry") -> TuneReport:
        """Materialize a TuneReport from a cache entry — no search, no space.

        An active verification mode re-checks the restored schedule too:
        a corrupted or stale cache entry surfaces as a
        :class:`VerificationError` instead of silently serving wrong code.
        """
        report = report_from_entry(
            chain,
            self.gpu,
            entry,
            variant=self.variant,
            strategy=self.strategy.name,
            workers=self.workers,
            exec_backend=self.exec_backend,
            measure_topk=self.measure_topk,
        )
        if self.verify != "off" and not self.check_schedule(report.best_schedule):
            raise VerificationError(
                f"cached schedule {report.best_schedule.describe()} of "
                f"{chain.name!r} disagrees with the reference"
            )
        report.verified = self.verify != "off"
        return report

    # -- main entry -----------------------------------------------------------

    def tune(self, chain: ComputeChain) -> TuneReport:
        """Search for the best fused kernel of ``chain``.

        With a cache attached, a previously tuned workload (same structure,
        shapes, dtype, GPU, variant, and strategy — the name is irrelevant)
        returns immediately with ``report.cache_hit`` set and zero tuning
        cost. Under ``dynamic="buckets"`` the lookup ladders exact → bucket
        and a miss tunes at the bucket ceiling (see :meth:`_tune_bucketed`).
        """
        from repro.obs import get_tracer

        tracer = get_tracer()
        if not tracer.enabled:
            return self._tune(chain)
        with tracer.span(
            "tune",
            chain=chain.name,
            variant=self.variant,
            strategy=self.strategy.name,
            dynamic=self.dynamic,
            verify=self.verify,
        ) as span:
            report = self._tune(chain)
            span.set(
                outcome=(
                    "bucket-hit"
                    if report.bucket_hit
                    else "cache-hit" if report.cache_hit else "tuned"
                ),
                best_time=report.best_time,
                sim_tuning_seconds=report.tuning_seconds,
                rounds=report.search.rounds,
                measurements=report.search.num_measurements,
                exec_backend=report.exec_backend,
            )
            return report

    def _tune(self, chain: ComputeChain) -> TuneReport:
        if self.dynamic == "buckets":
            return self._tune_bucketed(chain)
        if self.cache is not None:
            entry = self._cache_lookup(chain)
            if entry is not None:
                return self._report_from_cache(chain, entry)
        report = self._finalize_report(self._tune_uncached(chain))
        if self.cache is not None:
            self._cache_put(chain, report)
        return report

    def _cache_lookup(self, chain: ComputeChain) -> "CacheEntry | None":
        from repro.obs import get_tracer

        with get_tracer().span("tune.cache_lookup") as span:
            entry = self.cache.get(chain, self.gpu, self.cache_variant)
            span.set(outcome="hit" if entry is not None else "miss")
            return entry

    def _cache_put(self, chain: ComputeChain, report: TuneReport, signature=None):
        from repro.obs import get_tracer

        with get_tracer().span("tune.cache_put"):
            if signature is None:
                self.cache.put(chain, self.gpu, report)
            else:
                self.cache.put(chain, self.gpu, report, signature=signature)

    def bucket_signature(self, chain: ComputeChain) -> str:
        """The bucketed cache key :meth:`tune` uses for ``chain``."""
        return bucketed_signature(
            chain, self.gpu, self.cache_variant, self.dynamic_loops
        )

    def _tune_bucketed(self, chain: ComputeChain) -> TuneReport:
        """Shape-generic tuning over power-of-two buckets.

        Ladder: exact-signature hit (shape previously tuned as-is) →
        bucketed-signature hit (ceiling-tuned schedule rebuilt — and with
        ``verify != "off"`` numerically re-checked — at the *request*
        shape) → miss: tune once at the bucket ceiling, store under the
        bucketed key, return the report rebound to the request shape.

        Legality for every in-bucket length comes from Rule 3 at the
        ceiling: ceilings are powers of two, so only divisor tiles survive
        (:func:`~repro.search.pruning.bucket_tile_options`), and for any
        ``l <= ceiling`` the padded extent ``ceil(l/t)*t <= ceiling`` keeps
        the ceiling-time Rule-4 shared-memory estimate conservative; the
        execution backends mask tail tiles rather than padding results.
        """
        dyn = bucket_dims(chain, self.dynamic_loops)
        if self.cache is not None:
            entry = self._cache_lookup(chain)
            if entry is not None:
                report = self._report_from_cache(chain, entry)
                report.dynamic = "buckets"
                report.bucket = dyn
                return report
            if dyn:
                entry, _ = self.cache.lookup(self.bucket_signature(chain))
                if entry is not None:
                    report = self._report_from_cache(chain, entry)
                    report.dynamic = "buckets"
                    report.bucket = dyn
                    report.bucket_hit = True
                    return report
        ceiling_chain = chain.with_loops(dyn) if dyn else chain
        report = self._tune_uncached(ceiling_chain)
        if self.cache is not None and dyn:
            # Store the *ceiling* schedule under the bucketed key before
            # rebinding, so every in-bucket length re-expands the exact
            # tiling decision the search validated at the ceiling.
            self._cache_put(
                ceiling_chain, report, signature=self.bucket_signature(chain)
            )
        report = self._finalize_report(rebind_report(report, chain))
        report.dynamic = "buckets"
        report.bucket = dyn
        if self.cache is not None and not dyn:
            # No dynamic loops: nothing to bucket, cache under the exact key.
            self._cache_put(chain, report)
        return report

    def _tune_uncached(self, chain: ComputeChain) -> TuneReport:
        """The full stream → prune → search → measure pipeline."""
        from repro.obs import get_tracer

        tracer = get_tracer()
        clock = TuningClock()
        with tracer.span("tune.space", clock=clock, chain=chain.name) as span:
            space = self.build_space(chain, clock)
            span.set(candidates=len(space.candidates))
        optimize = self.variant != "chimera"
        model = (
            ChimeraModel(self.gpu) if self.variant == "chimera" else AnalyticalModel(self.gpu)
        )

        # Schedules were built once inside the streaming pipeline;
        # space.schedule_for serves that construction for both the model
        # and the measurement path.
        def estimate_fn(cand: Candidate) -> float:
            clock.charge("model_estimate")
            return model(space.schedule_for(cand, optimize=optimize))

        def raw_measure(cand: Candidate) -> float:
            return self.measure_schedule(space.schedule_for(cand, optimize=optimize))

        feature_fn = None
        if self.cost_model is not None:
            from repro.search.features import schedule_features

            def feature_fn(cand: Candidate) -> np.ndarray:
                return schedule_features(
                    space.schedule_for(cand, optimize=optimize), self.gpu
                )

        evaluator = ParallelEvaluator(
            raw_measure,
            workers=self.workers,
            clock=clock,
            repetitions=MEASURE_REPETITIONS,
        )
        loop = SearchLoop(
            space,
            estimate_fn,
            evaluator,
            population_size=self.population_size,
            top_n=self.top_n,
            epsilon=self.epsilon,
            max_rounds=self.max_rounds,
            min_rounds=self.min_rounds,
            seed=self.seed,
            cost_model=self.cost_model,
            measure_topk=self.measure_topk,
            feature_fn=feature_fn,
        )
        with tracer.span(
            "search", clock=clock, strategy=self.strategy.name
        ) as span:
            result = loop.run(self.strategy)
            span.set(
                rounds=result.rounds,
                estimates=result.num_estimates,
                measurements=result.num_measurements,
                converged=result.converged,
                model_rounds=result.model_rounds,
                best_time=result.best_time,
            )
        return TuneReport(
            chain=chain,
            gpu=self.gpu,
            variant=self.variant,
            best_candidate=result.best,
            best_schedule=space.schedule_for(result.best, optimize=optimize),
            best_time=result.best_time,
            tuning_seconds=clock.seconds,
            pruning=space.stats,
            search=result,
            clock=clock,
            strategy=result.strategy,
            workers=self.workers,
            measure_topk=self.measure_topk,
        )
