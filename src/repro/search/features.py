"""Shared schedule-feature extraction for learned cost models.

One feature definition serves every consumer that ranks candidate
schedules from data: the Ansor baseline's online GBT
(:func:`repro.baselines.ansor.candidate_features` retargets here) and the
tuner's :class:`~repro.search.cost_model.LearnedCostModel`. The vector
extends Ansor's hand-engineered features (work quantities on a log scale,
tile shape, parallelism, shared-memory pressure, coalescing width) with
the analytical model's own decomposition (eqs. 2-5: memory time, compute
time, the wave-quantization slowdown ``alpha``) and derived intensity
ratios — the learned residual only has to explain what the analytic prior
gets *wrong*, so handing it the prior's internals is the cheapest possible
feature engineering.

Every feature is a deterministic function of ``(schedule, gpu)``; nothing
is sampled or measured. :data:`FEATURE_VERSION` stamps persisted datasets
and model snapshots — records written under a different version are
skipped on load, never misinterpreted.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.specs import GPUSpec
from repro.search.perf_model import estimate_time
from repro.tiling.schedule import Schedule

__all__ = [
    "FEATURE_VERSION",
    "FEATURE_NAMES",
    "ANSOR_FEATURE_NAMES",
    "schedule_features",
    "feature_dict",
    "is_pow2",
]

#: Bump whenever :data:`FEATURE_NAMES` or any feature's definition changes;
#: persisted measurement records and model snapshots are keyed by it.
FEATURE_VERSION = 1

#: Names of the feature vector's components, in order. The first ten are
#: Ansor's historical features (values bit-identical to the pre-refactor
#: ``candidate_features``); the rest expose the analytic prior.
FEATURE_NAMES = (
    "log_flops",            # log1p(total FLOPs of the fused kernel)
    "log_dram_read",        # log1p(DRAM bytes read)
    "log_dram_write",       # log1p(DRAM bytes written)
    "log_grid",             # log1p(thread-block count)
    "tile_m",               # dominant MMA tile shape
    "tile_n",
    "tile_k",
    "shm_ratio",            # shm estimate / per-block budget
    "inner_contig_bytes",   # worst-case contiguous run (coalescing input)
    "waves",                # grid size / SM count
    "log_t_mem_us",         # analytic memory time, log1p(microseconds)
    "log_t_comp_us",        # analytic compute time, log1p(microseconds)
    "alpha",                # wave-quantization slowdown, eq. (5)
    "log_t_est_us",         # full analytic estimate, log1p(microseconds)
    "bytes_per_flop",       # DRAM traffic / FLOP (roofline position)
    "log_tile_volume",      # log1p(tm * tn * tk)
)

#: The prefix of :data:`FEATURE_NAMES` that reproduces Ansor's historical
#: ten-dimensional vector.
ANSOR_FEATURE_NAMES = FEATURE_NAMES[:10]


def is_pow2(x: int) -> bool:
    """True when ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def schedule_features(schedule: Schedule, gpu: GPUSpec) -> np.ndarray:
    """Feature vector of one candidate schedule (aligned with
    :data:`FEATURE_NAMES`).

    Cheap relative to a hardware measurement (pure arithmetic over the
    schedule's statement list), deterministic, and finite for any valid
    schedule — launch-failing candidates still featurize.
    """
    tm, tn, tk = schedule.representative_tiles()
    flops = schedule.total_flops()
    read = schedule.dram_read_bytes()
    write = schedule.dram_write_bytes()
    est = estimate_time(schedule, gpu)
    return np.array(
        [
            np.log1p(flops),
            np.log1p(read),
            np.log1p(write),
            np.log1p(schedule.grid_size),
            float(tm),
            float(tn),
            float(tk),
            schedule.shm_estimate() / gpu.shared_mem_per_block,
            float(schedule.inner_contig_bytes()),
            schedule.grid_size / gpu.num_sms,
            np.log1p(1e6 * est.t_mem),
            np.log1p(1e6 * est.t_comp),
            est.alpha,
            np.log1p(1e6 * est.total),
            (read + write) / max(flops, 1.0),
            np.log1p(float(tm) * float(tn) * float(tk)),
        ],
        dtype=np.float64,
    )


def feature_dict(schedule: Schedule, gpu: GPUSpec) -> dict[str, float]:
    """Named view of :func:`schedule_features` (diagnostics, ``model stats``)."""
    return dict(zip(FEATURE_NAMES, schedule_features(schedule, gpu).tolist()))
