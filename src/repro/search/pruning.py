"""The four search-space pruning guidelines of §III-C.

* **Rule 1 — Deduplication.** Spatial loops of the chain output are bound to
  ``blockIdx``; candidates sharing the residual *sub-tiling expression per
  thread block* are equivalent. 24 deep + 2 flat expressions of the GEMM
  chain collapse to a handful of classes.
* **Rule 2 — No overwhelmed intermediate buffers.** A schedule that must
  keep several partial tiles of an on-chip tensor alive (a tensor-indexing
  loop nested inside an unfinished reduction of its producer, Fig. 6(b)) is
  pruned. At the expression level, classes where an *intermediate* tensor
  generically multiplies are dropped; at the candidate level any tensor
  with ``live_copies > 1`` is dropped (which is what forces flat/attention
  candidates to keep the full ``h`` extent in one tile — exactly
  FlashAttention's design point).
* **Rule 3 — Avoid extra padding.** Tensor cores need multiples-of-16
  tiles; power-of-two dimensions only admit divisor tiles, other
  dimensions admit tiles wasting at most 5% of the *padded* extent, and
  sub-16 dimensions admit their exact (waste-free) divisors.
* **Rule 4 — Shared-memory limit.** Candidates whose eq. (1) estimate
  exceeds ``1.2 x Shm_max`` are pruned; the 1.2 slack absorbs estimation
  error (validated in Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.tiling.enumeration import all_tilings, bindable_spatial_loops, sub_tiling_expr
from repro.tiling.expr import LoopNest, TilingExpr
from repro.tiling.schedule import Schedule, build_schedule
from repro.utils import ceil_div

__all__ = [
    "PruningStats",
    "RULE4_SLACK",
    "PADDING_RATIO_LIMIT",
    "MIN_TILE",
    "expression_classes",
    "rule2_class_survives",
    "padding_ratio",
    "rule3_tile_options",
    "bucket_tile_options",
    "tile_legal_for_bucket",
    "unconstrained_tile_count",
    "rule4_ok",
]

#: Rule 4's empirical slack over the hardware shared-memory limit.
RULE4_SLACK = 1.2

#: Rule 3's padding-waste tolerance for non-power-of-two dimensions.
PADDING_RATIO_LIMIT = 0.05

#: Tensor cores require 16x16x16 fragments; all tiles are multiples of 16.
MIN_TILE = 16


@dataclass(frozen=True)
class PruningStats:
    """Candidate counts along the pruning funnel (Fig. 7).

    ``original`` and ``after_rule1/2`` are analytic counts (the full space
    is never materialized — it has ~1e8 members for the paper's example);
    ``after_rule3/4`` count actually enumerated candidates.
    """

    expressions: int
    classes_rule1: int
    classes_rule2: int
    original: int
    after_rule1: int
    after_rule2: int
    after_rule3: int
    after_rule4: int

    def funnel(self) -> list[tuple[str, int]]:
        return [
            ("original", self.original),
            ("+ rule 1", self.after_rule1),
            ("+ rule 2", self.after_rule2),
            ("+ rule 3", self.after_rule3),
            ("+ rule 4", self.after_rule4),
        ]


# -- Rule 1 -------------------------------------------------------------------


def _canonical_representative(chain: ComputeChain, member: TilingExpr) -> TilingExpr:
    """Rebuild a class's canonical expression: bound spatial loops (in chain
    order) wrapping the residual sub-expression."""
    bound = bindable_spatial_loops(chain, member)
    residual = member.without(set(bound))
    roots = residual.roots
    for loop in reversed(bound):
        roots = (LoopNest(loop, roots),)
    return TilingExpr(roots=roots)


def expression_classes(chain: ComputeChain) -> dict[str, TilingExpr]:
    """Rule 1: map residual sub-expression -> canonical representative."""
    classes: dict[str, TilingExpr] = {}
    for expr in all_tilings(chain):
        key = sub_tiling_expr(chain, expr).render()
        if key not in classes:
            classes[key] = _canonical_representative(chain, expr)
    return classes


# -- Rule 2 (expression level) -----------------------------------------------


def rule2_class_survives(chain: ComputeChain, expr: TilingExpr) -> bool:
    """Whether a class survives Rule 2 for generic (>1) loop extents.

    Build a probe schedule in which every loop has extent > 1 and check
    that no *intermediate* tensor needs multiple live partial tiles. The
    final output accumulator is exempt at this level: its multiplicity can
    be collapsed by a full-extent tile of a private loop (the candidate-
    level check enforces that).
    """
    probe_tiles = {loop: MIN_TILE for loop in chain.loop_names}
    probe_chain_ok = all(size >= 2 * MIN_TILE for size in chain.loops.values())
    sched = build_schedule(chain, expr, probe_tiles, optimize=False)
    for name, ref in chain.tensors.items():
        if ref.role != "intermediate":
            continue
        if sched.live_copies(name) > 1 and probe_chain_ok:
            return False
    return True


def rule2_candidate_ok(schedule: Schedule) -> bool:
    """Candidate-level Rule 2: no tensor may need >1 live partial tile."""
    return all(
        schedule.live_copies(name) == 1
        for name, ref in schedule.chain.tensors.items()
        if ref.role != "input"
    )


# -- Rule 3 ---------------------------------------------------------------------


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def unconstrained_tile_count(size: int) -> int:
    """Number of tile options before Rule 3: all multiples of 16 up to the
    dimension size (``ceil(size/16)`` — the paper's 1e8 space accounting)."""
    return ceil_div(size, MIN_TILE)


def padding_ratio(size: int, tile: int) -> float:
    """Rule 3's padding-waste ratio: wasted cells over the *padded* extent.

    The paper measures waste against the extent actually materialized
    (``ceil(size/tile) * tile``), not the logical dimension — a dimension of
    size 100 padded to 112 wastes 12/112 of the padded tensor, which is the
    fraction of tensor-core work (and shared-memory footprint) thrown away.
    Normalizing by ``size`` instead overstates waste and, for sub-16 sizes,
    diverges as the dimension shrinks.
    """
    padded = ceil_div(size, tile) * tile
    return (padded - size) / padded


def rule3_tile_options(size: int) -> list[int]:
    """Tile sizes surviving Rule 3 for one dimension.

    Power-of-two sizes admit only divisors (zero waste, boundary-exact);
    other sizes admit multiples of 16 whose :func:`padding_ratio` does not
    exceed 5% — the boundary is inclusive, so exact multiples of 16 (ratio
    exactly 0) and tiles landing exactly on the limit both survive. Sizes
    below the 16-element hardware minimum admit their exact divisors
    (waste-free: GQA group counts and LoRA ranks tile without padding)
    rather than a single padded tile of 16.
    """
    if size < MIN_TILE:
        return [t for t in range(1, size + 1) if size % t == 0]
    options: list[int] = []
    for tile in range(MIN_TILE, size + 1, MIN_TILE):
        if _is_power_of_two(size):
            if size % tile == 0:
                options.append(tile)
        else:
            if padding_ratio(size, tile) <= PADDING_RATIO_LIMIT:
                options.append(tile)
    if not options:  # always allow the single full-dimension (padded) tile
        options.append(ceil_div(size, MIN_TILE) * MIN_TILE)
    return options


def bucket_tile_options(ceiling: int) -> list[int]:
    """Tiles legal for *every* length in a power-of-two bucket.

    The bucket ceiling is a power of two (a multiple of 16 by
    construction, since buckets floor at 16), so Rule 3 at the ceiling
    admits only exact divisors of the ceiling. Each such tile is legal for
    every in-bucket length ``l <= ceiling``: the padded extent
    ``ceil(l/tile) * tile`` never exceeds the ceiling, so the ceiling-time
    Rule-4 shared-memory estimate is conservative and execution-time
    tail-tile masking covers the remainder.
    """
    if not _is_power_of_two(ceiling) or ceiling % MIN_TILE != 0:
        raise ValueError(
            f"bucket ceiling must be a power-of-two multiple of {MIN_TILE}, got {ceiling}"
        )
    return rule3_tile_options(ceiling)


def tile_legal_for_bucket(tile: int, ceiling: int) -> bool:
    """Whether ``tile`` is valid for every length in the bucket ``(ceiling/2,
    ceiling]`` — i.e. it divides the power-of-two ceiling exactly."""
    return 1 <= tile <= ceiling and ceiling % tile == 0


# -- Rule 4 --------------------------------------------------------------------------


def rule4_ok(schedule: Schedule, gpu: GPUSpec) -> bool:
    """Rule 4: eq. (1) estimate must stay below ``1.2 x Shm_max``."""
    return schedule.shm_estimate() <= RULE4_SLACK * gpu.shared_mem_per_block
