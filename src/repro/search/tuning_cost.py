"""Simulated tuning clock: what auto-tuning *costs*, in wall-clock terms.

Table IV of the paper compares tuning times (Ansor needs hours, MCFuser
tens of seconds). Since our kernels run on a simulator, real wall-clock
time is meaningless; instead every tuner charges a :class:`TuningClock`
for the work it performs, with per-operation costs calibrated to the
magnitudes reported for the paper's testbed:

* evaluating the analytical model on one candidate: ~50 us of host time;
* compiling + measuring one candidate kernel (Triton path): ~0.85 s;
* compiling + measuring one Ansor trial (TVM build + RPC measure): ~4.1 s;
* one Ansor XGBoost retraining round: ~12 s;
* instantiating + measuring one BOLT/CUTLASS template: ~1.6 s.

Only *relative* magnitudes matter for the reproduction (MCFuser ~70-140x
faster to tune than Ansor, ~2.5x faster than BOLT); EXPERIMENTS.md records
paper-vs-measured for Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TuningClock", "COSTS"]

#: Host-side cost (seconds) of each tuning operation.
COSTS: dict[str, float] = {
    "space_generation": 1.5,
    "model_estimate": 5.0e-5,
    "triton_compile_measure": 0.85,
    "ansor_trial": 4.1,
    "ansor_train_round": 12.0,
    "ansor_sketch": 2.0,
    "bolt_template": 1.6,
    "relay_compile": 8.0,
    "graph_partition": 0.5,
    "kernel_runs": 1.0,  # multiplier bucket for accumulated kernel runtimes
}


@dataclass
class TuningClock:
    """Accumulates simulated tuning time, itemized by operation kind."""

    seconds: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)

    def charge(self, kind: str, count: float = 1.0, runtime: float = 0.0) -> None:
        """Charge ``count`` operations of ``kind`` plus ``runtime`` seconds
        of accumulated kernel execution (e.g. measurement repetitions)."""
        if kind not in COSTS:
            raise KeyError(f"unknown tuning cost kind {kind!r}")
        amount = COSTS[kind] * count + runtime
        self.seconds += amount
        self.breakdown[kind] = self.breakdown.get(kind, 0.0) + amount

    def merge(self, other: "TuningClock") -> None:
        self.seconds += other.seconds
        for k, v in other.breakdown.items():
            self.breakdown[k] = self.breakdown.get(k, 0.0) + v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TuningClock({self.seconds:.1f}s, {self.breakdown})"
