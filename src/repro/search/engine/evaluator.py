"""Parallel measurement executor: batched top-n measurements per round.

Real tuners overlap candidate compilation + measurement across worker
processes; our measurements run on the deterministic GPU simulator, so the
executor parallelizes the *host-side* work with a thread pool and models
the wall-clock cost of the batch explicitly.

Determinism is a hard requirement (the whole reproduction is seeded):

* **Results** depend only on the measurement function, which is pure per
  candidate (the simulator derives jitter from the kernel's content, not
  from call order), so any worker count returns the same times in the same
  submission order.
* **Billing** never reads the real clock. Each measurement costs
  ``COSTS[kind] + repetitions x kernel_time``; the batch's wall-clock is
  the makespan of assigning those costs greedily (submission order, each
  task to the earliest-free worker) — a deterministic function of the
  batch and the worker count. With ``workers=1`` the makespan equals the
  serial sum, so a single-worker evaluator bills exactly what the old
  serial loop billed.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence

from repro.search.tuning_cost import COSTS, TuningClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.search.space import Candidate

__all__ = ["ParallelEvaluator", "batch_makespan"]


def batch_makespan(costs: Sequence[float], workers: int) -> float:
    """Deterministic wall-clock of running ``costs`` on ``workers`` workers.

    Tasks are assigned in submission order, each to the worker that frees
    up first — the schedule a thread pool converges to when tasks are
    queued up front. Returns the finish time of the last worker.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not costs:
        return 0.0
    finish = [0.0] * min(workers, len(costs))
    for cost in costs:
        slot = min(range(len(finish)), key=lambda i: finish[i])
        finish[slot] += cost
    return max(finish)


class ParallelEvaluator:
    """Measures candidate batches on a worker pool with correct clock billing.

    Args:
        measure_fn: Measures one candidate, returning the kernel time in
            seconds (any non-finite value — ``inf`` or ``NaN`` — counts as
            a launch failure). Must be thread-safe —
            the GPU simulator is stateless, so the standard tuner path is.
        workers: Thread-pool width. ``1`` measures serially (no pool).
        clock: Optional :class:`TuningClock` billed per batch. ``None``
            skips billing entirely (library callers that account for
            measurement cost themselves).
        repetitions: Kernel repetitions per measurement, billed as
            accumulated runtime (launch failures bill zero runtime).
        cost_kind: The :data:`~repro.search.tuning_cost.COSTS` bucket for
            per-measurement host cost (compile + launch machinery).
    """

    def __init__(
        self,
        measure_fn: Callable[["Candidate"], float],
        workers: int = 1,
        clock: TuningClock | None = None,
        repetitions: int = 100,
        cost_kind: str = "triton_compile_measure",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if cost_kind not in COSTS:
            raise KeyError(f"unknown tuning cost kind {cost_kind!r}")
        self.measure_fn = measure_fn
        self.workers = workers
        self.clock = clock
        self.repetitions = repetitions
        self.cost_kind = cost_kind
        #: Measurements executed so far (across all batches).
        self.measurements = 0
        #: Batches executed so far.
        self.batches = 0

    def measure(self, candidates: Sequence["Candidate"]) -> list[float]:
        """Measure a batch; returns times aligned with ``candidates``.

        Runs the measurement function across the pool, then bills the
        deterministic makespan of the batch to the clock.
        """
        candidates = list(candidates)
        if not candidates:
            return []
        from repro.obs import get_tracer

        tracer = get_tracer()
        with tracer.span(
            "measure.batch",
            clock=self.clock,
            n=len(candidates),
            workers=self.workers,
        ) as batch:
            if tracer.enabled:
                # Pool threads don't inherit this thread's span stack, so
                # each per-candidate span names the batch span explicitly.
                def run_one(pair):
                    i, cand = pair
                    with tracer.span(
                        "measure.candidate", parent=batch, idx=i
                    ) as span:
                        t = self.measure_fn(cand)
                        span.set(time=t, failed=not math.isfinite(t))
                        return t

            else:
                def run_one(pair):
                    return self.measure_fn(pair[1])

            if self.workers == 1 or len(candidates) == 1:
                times = [run_one(p) for p in enumerate(candidates)]
            else:
                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(candidates))
                ) as pool:
                    times = list(pool.map(run_one, enumerate(candidates)))
            self.measurements += len(candidates)
            self.batches += 1
            failures = sum(1 for t in times if not math.isfinite(t))
            if self.clock is not None:
                # Any non-finite time (inf *or* NaN) is a launch failure and
                # bills zero runtime: a NaN multiplied into the makespan
                # would poison the TuningClock forever.
                costs = [
                    COSTS[self.cost_kind]
                    + (self.repetitions * t if math.isfinite(t) else 0.0)
                    for t in times
                ]
                makespan = batch_makespan(costs, self.workers)
                self.clock.charge(self.cost_kind, count=0.0, runtime=makespan)
                batch.set(sim_makespan=makespan)
            batch.set(failures=failures)
        return times
