"""The search engine: streaming space generation, pluggable strategies,
and parallel measurement.

Layout::

    pipeline.py   Rule 1-4 stages as a composable generator pipeline that
                  yields (Candidate, Schedule) pairs — schedules built once
                  and carried through to estimation/measurement — with the
                  pruning funnel accumulated incrementally.
    loop.py       SearchLoop: the shared Algorithm-1 driver (measured
                  cache, failed blacklist, convergence, measurement
                  dispatch) every strategy runs inside.
    strategy.py   SearchStrategy protocol + registry: evolutionary (the
                  paper's Algorithm 1), random, exhaustive, annealing.
    evaluator.py  ParallelEvaluator: worker-pool top-n measurement with
                  deterministic wall-clock billing to the TuningClock.
"""

from repro.search.engine.evaluator import ParallelEvaluator, batch_makespan
from repro.search.engine.loop import SearchLoop, SearchResult
from repro.search.engine.pipeline import (
    CandidatePair,
    PruningFunnel,
    candidate_pipeline,
    stream_space,
)
from repro.search.engine.strategy import (
    STRATEGY_REGISTRY,
    EvolutionarySearch,
    ExhaustiveSearch,
    RandomSearch,
    SearchStrategy,
    SimulatedAnnealingSearch,
    make_strategy,
    mutate_candidate,
    register_strategy,
    strategy_names,
)

__all__ = [
    "CandidatePair",
    "PruningFunnel",
    "candidate_pipeline",
    "stream_space",
    "SearchLoop",
    "SearchResult",
    "ParallelEvaluator",
    "batch_makespan",
    "SearchStrategy",
    "EvolutionarySearch",
    "RandomSearch",
    "ExhaustiveSearch",
    "SimulatedAnnealingSearch",
    "STRATEGY_REGISTRY",
    "register_strategy",
    "make_strategy",
    "strategy_names",
    "mutate_candidate",
]
