"""Pluggable search strategies over the pruned space.

A strategy decides *which candidates to rank* each round; the shared
:class:`~repro.search.engine.loop.SearchLoop` handles everything else
(measured cache, failed blacklist, convergence, parallel measurement).
Four strategies ship in the registry:

* ``evolutionary`` — Algorithm 1 of the paper, behavior-identical to the
  original monolithic implementation (same rng stream, same estimate and
  measurement order for a given seed);
* ``random`` — fresh random sample each round, model-ranked, no evolution
  (the "search without learning" baseline);
* ``exhaustive`` — rank the whole space with the model once, then measure
  *everything* in model order (ground truth; ignores convergence);
* ``annealing`` — simulated annealing on the model's cost surface, with
  the per-round visited set measured top-n like every other strategy.

Writing a new strategy: subclass :class:`SearchStrategy`, implement
``propose`` (and optionally ``begin``/``evolve``/``round_budget``), then
``register_strategy`` it — the tuner, the cache variant key, the CLI, and
the experiments harness all resolve strategies through
:func:`make_strategy`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.utils import ceil_div

if TYPE_CHECKING:  # pragma: no cover
    from repro.search.engine.loop import SearchLoop
    from repro.search.space import Candidate, SearchSpace

__all__ = [
    "SearchStrategy",
    "EvolutionarySearch",
    "RandomSearch",
    "ExhaustiveSearch",
    "SimulatedAnnealingSearch",
    "STRATEGY_REGISTRY",
    "register_strategy",
    "make_strategy",
    "strategy_names",
    "mutate_candidate",
    "rank_by_estimate",
]


def mutate_candidate(
    space: "SearchSpace",
    cand: "Candidate",
    rng: np.random.Generator,
    attempts: int = 8,
) -> "Candidate":
    """Mutate one loop's tile size to a neighboring Rule-3 option, keeping
    the result inside the pruned space (retry a few times, else keep)."""
    from repro.search.space import Candidate

    loops = list(space.chain.loop_names)
    for _ in range(attempts):
        loop = loops[int(rng.integers(len(loops)))]
        options = space.tile_options[loop]
        if len(options) < 2:
            continue
        tiles = cand.tile_dict
        idx = options.index(tiles[loop]) if tiles[loop] in options else 0
        step = int(rng.choice((-1, 1)))
        new_idx = min(max(idx + step, 0), len(options) - 1)
        if new_idx == idx:
            continue
        tiles[loop] = options[new_idx]
        mutated = Candidate.make(cand.expr, tiles)
        if space.contains(mutated):
            return mutated
    return cand


def rank_by_estimate(
    loop: "SearchLoop", candidates: "list[Candidate]"
) -> tuple[list[tuple["Candidate", float]], np.ndarray]:
    """Model-estimate ``candidates`` (in order) and rank them best-first.

    Returns the ranked (candidate, estimate) list plus the raw estimate
    array aligned with ``candidates`` (evolution needs it for fitness
    weights).
    """
    estimates = np.array([loop.estimate(c) for c in candidates])
    order = np.argsort(estimates)
    ranked = [(candidates[int(i)], float(estimates[int(i)])) for i in order]
    return ranked, estimates


class SearchStrategy:
    """Base class for search strategies (the pluggable protocol).

    Subclasses set ``name`` (the registry key) and implement
    :meth:`propose`; the other hooks have sensible defaults.
    """

    #: Registry key; also recorded in TuneReport and the cache variant key.
    name: str = "abstract"
    #: Whether the loop's epsilon-convergence criterion applies.
    uses_convergence: bool = True

    def rng_key(self, space: "SearchSpace", seed: int) -> tuple:
        """Parts seeding the loop's rng stream for this strategy."""
        return ("search", self.name, space.chain.name, space.gpu.name, seed)

    def round_budget(self, loop: "SearchLoop") -> int:
        """Maximum rounds this strategy may run (default: the loop's cap)."""
        return loop.max_rounds

    def begin(self, loop: "SearchLoop") -> None:
        """One-time setup before the first round."""

    def propose(self, loop: "SearchLoop") -> list[tuple["Candidate", float]]:
        """Rank candidates for this round: (candidate, estimate), best first.

        Estimates must be obtained through ``loop.estimate`` so model-call
        accounting stays correct.
        """
        raise NotImplementedError

    def evolve(self, loop: "SearchLoop") -> None:
        """React to the round's measurements (mutate population, cool, ...)."""


class EvolutionarySearch(SearchStrategy):
    """Algorithm 1: fitness-weighted resampling + tile mutation.

    Behavior-identical to the original monolithic ``heuristic_search``:
    the rng key, the order of rng draws, and the order of estimate and
    measurement calls all match, so seeded runs select the same schedule.
    """

    name = "evolutionary"

    def rng_key(self, space: "SearchSpace", seed: int) -> tuple:
        # The pre-engine implementation seeded with this exact tuple; keep
        # it so seeded runs reproduce historical results bit-for-bit.
        return ("heuristic-search", space.chain.name, space.gpu.name, seed)

    def begin(self, loop: "SearchLoop") -> None:
        space = loop.space
        idx = loop.rng.choice(
            len(space.candidates), size=loop.population_size, replace=False
        )
        self.population: list["Candidate"] = [space.candidates[int(i)] for i in idx]
        self._estimates = np.zeros(0)

    def propose(self, loop: "SearchLoop") -> list[tuple["Candidate", float]]:
        ranked, self._estimates = rank_by_estimate(loop, self.population)
        return ranked

    def evolve(self, loop: "SearchLoop") -> None:
        # Next generation: fitness-weighted resampling + tile mutation,
        # with a 10% fresh-random injection for exploration.
        space, rng = loop.space, loop.rng
        weights = 1.0 / np.maximum(self._estimates, 1e-12)
        weights /= weights.sum()
        n_fresh = max(1, loop.population_size // 10)
        chosen = rng.choice(
            len(self.population), size=loop.population_size - n_fresh, p=weights
        )
        population = [
            mutate_candidate(space, self.population[int(i)], rng) for i in chosen
        ]
        fresh_ids = rng.choice(len(space.candidates), size=n_fresh, replace=True)
        population += [space.candidates[int(i)] for i in fresh_ids]
        # Known launch failures are replaced with fresh draws.
        self.population = [
            c
            if c.key not in loop.failed
            else space.candidates[int(rng.integers(len(space.candidates)))]
            for c in population
        ]


class RandomSearch(SearchStrategy):
    """Fresh random sample each round, model-ranked, no evolution.

    Isolates what the evolutionary machinery buys: the analytical model
    still picks the top-n of every sample, but nothing learned in one
    round shapes the next.
    """

    name = "random"

    def propose(self, loop: "SearchLoop") -> list[tuple["Candidate", float]]:
        space = loop.space
        idx = loop.rng.choice(
            len(space.candidates), size=loop.population_size, replace=False
        )
        sample = [space.candidates[int(i)] for i in idx]
        ranked, _ = rank_by_estimate(loop, sample)
        return ranked


class ExhaustiveSearch(SearchStrategy):
    """Measure the entire pruned space, best-estimated first.

    The ground-truth strategy: guaranteed to find the space's true optimum
    at maximum tuning cost. Convergence is disabled — the budget is
    exactly ``ceil(|space| / top_n)`` rounds.
    """

    name = "exhaustive"
    uses_convergence = False

    def round_budget(self, loop: "SearchLoop") -> int:
        return ceil_div(len(loop.space.candidates), loop.top_n)

    def begin(self, loop: "SearchLoop") -> None:
        self._ranked: list[tuple["Candidate", float]] | None = None

    def propose(self, loop: "SearchLoop") -> list[tuple["Candidate", float]]:
        if self._ranked is None:
            self._ranked, _ = rank_by_estimate(loop, list(loop.space.candidates))
        return self._ranked


class SimulatedAnnealingSearch(SearchStrategy):
    """Simulated annealing on the analytical model's cost surface.

    Each round walks ``steps_per_round`` mutation steps from the current
    candidate, accepting uphill moves with probability
    ``exp(-relative_delta / temperature)``; the round's visited set is
    ranked by estimated cost and the loop measures its top-n. The
    temperature cools geometrically per round.
    """

    name = "annealing"

    def __init__(
        self,
        initial_temperature: float = 0.5,
        cooling: float = 0.8,
        steps_per_round: int | None = None,
    ) -> None:
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be > 0")
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.steps_per_round = steps_per_round

    def begin(self, loop: "SearchLoop") -> None:
        space = loop.space
        start = int(loop.rng.integers(len(space.candidates)))
        self.current = space.candidates[start]
        self.current_cost = loop.estimate(self.current)
        self.temperature = self.initial_temperature

    def propose(self, loop: "SearchLoop") -> list[tuple["Candidate", float]]:
        steps = self.steps_per_round or max(4 * loop.top_n, 32)
        visited: dict[tuple, tuple["Candidate", float]] = {
            self.current.key: (self.current, self.current_cost)
        }
        for _ in range(steps):
            neighbor = mutate_candidate(loop.space, self.current, loop.rng)
            if neighbor.key in visited:
                cost = visited[neighbor.key][1]
            else:
                cost = loop.estimate(neighbor)
                visited[neighbor.key] = (neighbor, cost)
            # Estimated times span orders of magnitude across the space;
            # anneal on the relative delta so temperature is scale-free.
            delta = (cost - self.current_cost) / max(self.current_cost, 1e-12)
            if delta <= 0 or loop.rng.random() < math.exp(-delta / self.temperature):
                self.current, self.current_cost = neighbor, cost
        ranked = sorted(visited.values(), key=lambda pair: pair[1])
        return ranked

    def evolve(self, loop: "SearchLoop") -> None:
        self.temperature *= self.cooling
        # Restart the walk from the best measured point so the chain
        # exploits hardware knowledge, not just the model's surface.
        if loop.best is not None and loop.best.key not in loop.failed:
            self.current = loop.best
            self.current_cost = loop.estimate(self.current)


#: Registered strategy constructors, keyed by ``SearchStrategy.name``.
STRATEGY_REGISTRY: dict[str, type[SearchStrategy]] = {}


def register_strategy(cls: type[SearchStrategy]) -> type[SearchStrategy]:
    """Add a strategy class to the registry (usable as a decorator).

    Name collisions raise: silently replacing a built-in would change what
    ``--strategy <name>`` (and the strategy-keyed cache entries) mean.
    Re-registering the same class is an idempotent no-op.
    """
    if not cls.name or cls.name == "abstract":
        raise ValueError("strategy classes must define a unique name")
    existing = STRATEGY_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"search strategy name {cls.name!r} is already registered "
            f"by {existing.__qualname__}"
        )
    STRATEGY_REGISTRY[cls.name] = cls
    return cls


for _cls in (EvolutionarySearch, RandomSearch, ExhaustiveSearch, SimulatedAnnealingSearch):
    register_strategy(_cls)


def strategy_names() -> list[str]:
    """Registered strategy names, registration order."""
    return list(STRATEGY_REGISTRY)


def make_strategy(strategy: "str | SearchStrategy") -> SearchStrategy:
    """Resolve a strategy name (or pass an instance through)."""
    if isinstance(strategy, SearchStrategy):
        return strategy
    if strategy not in STRATEGY_REGISTRY:
        raise ValueError(
            f"unknown search strategy {strategy!r}; "
            f"registered: {', '.join(STRATEGY_REGISTRY)}"
        )
    return STRATEGY_REGISTRY[strategy]()
