"""Streaming search-space generation: the Rule 1-4 stages as a generator
pipeline (§III).

The eager ``generate_space`` of early revisions enumerated every candidate,
built a throwaway :class:`~repro.tiling.schedule.Schedule` per candidate for
validation, discarded it, and let the tuner rebuild the same schedules again
during estimation and measurement. This module replaces that with a
composable generator pipeline::

    expression_stage   Rule 1 dedup + Rule 2 class filter  -> TilingExpr
    tile_stage         Rule 3 tile grid per expression     -> (expr, tiles)
    schedule_stage     build_schedule ONCE per candidate   -> CandidatePair
    validate_stage     semantics + candidate-level Rule 2  -> CandidatePair
    rule4_stage        shared-memory estimate filter       -> CandidatePair

Each stage yields :class:`CandidatePair` objects — the candidate together
with its already-built schedule — so downstream consumers (the search
strategies, the analytical model, the measurement executor) never build a
schedule twice. The Fig. 7 pruning funnel is accumulated *incrementally* in
a :class:`PruningFunnel` as pairs flow through; a fully drained pipeline
yields exactly the counts the old eager implementation produced.

:func:`stream_space` assembles the stages and wraps them in a lazy
:class:`~repro.search.space.SearchSpace` view.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.pruning import (
    PruningStats,
    expression_classes,
    rule2_candidate_ok,
    rule2_class_survives,
    rule3_tile_options,
    rule4_ok,
    unconstrained_tile_count,
)
from repro.tiling.enumeration import all_tilings
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import Schedule, build_schedule
from repro.utils import prod

__all__ = [
    "CandidatePair",
    "PruningFunnel",
    "expression_stage",
    "tile_stage",
    "schedule_stage",
    "validate_stage",
    "rule4_stage",
    "candidate_pipeline",
    "stream_space",
]


@dataclass(frozen=True)
class CandidatePair:
    """One surviving search-space point and its (single) built schedule."""

    candidate: "Candidate"
    schedule: Schedule

    def __iter__(self):  # allow ``for cand, sched in pipeline``
        return iter((self.candidate, self.schedule))


@dataclass
class PruningFunnel:
    """Incrementally accumulated Fig. 7 funnel counts.

    The expression-level counts (Rules 1-2 plus the analytic early-stage
    sizes) are filled in by :func:`expression_stage` up front; the
    enumerated counts (Rules 3-4) grow as candidates flow through the
    pipeline. ``complete`` flips when the pipeline is fully drained —
    :meth:`snapshot` before that point describes a partially generated
    space.
    """

    expressions: int = 0
    classes_rule1: int = 0
    classes_rule2: int = 0
    original: int = 0
    after_rule1: int = 0
    after_rule2: int = 0
    after_rule3: int = 0
    after_rule4: int = 0
    complete: bool = False

    def snapshot(self) -> PruningStats:
        """Freeze the current counts into an immutable :class:`PruningStats`."""
        return PruningStats(
            expressions=self.expressions,
            classes_rule1=self.classes_rule1,
            classes_rule2=self.classes_rule2,
            original=self.original,
            after_rule1=self.after_rule1,
            after_rule2=self.after_rule2,
            after_rule3=self.after_rule3,
            after_rule4=self.after_rule4,
        )


def expression_stage(
    chain: ComputeChain,
    funnel: PruningFunnel,
    deep_only: bool = False,
) -> Iterator[TilingExpr]:
    """Rules 1-2 at the expression level; fills the funnel's analytic head.

    Yields the canonical representative of every equivalence class that
    survives Rule 2 for generic loop extents, in deterministic class order.
    """
    exprs = all_tilings(chain)
    if deep_only:
        exprs = [e for e in exprs if e.is_deep]
    classes = expression_classes(chain)
    if deep_only:
        classes = {k: v for k, v in classes.items() if v.is_deep}
    survivors = {
        k: v for k, v in classes.items() if rule2_class_survives(chain, v)
    }

    raw_tiles = int(prod(unconstrained_tile_count(s) for s in chain.loops.values()))
    funnel.expressions = len(exprs)
    funnel.classes_rule1 = len(classes)
    funnel.classes_rule2 = len(survivors)
    funnel.original = len(exprs) * raw_tiles
    funnel.after_rule1 = len(classes) * raw_tiles
    funnel.after_rule2 = len(survivors) * raw_tiles

    yield from survivors.values()


def tile_stage(
    chain: ComputeChain,
    exprs: Iterator[TilingExpr],
    options: dict[str, list[int]],
) -> Iterator[tuple[TilingExpr, dict[str, int]]]:
    """Rule 3: cross each surviving expression with its pruned tile grid."""
    loops = chain.loop_names
    for expr in exprs:
        for combo in product(*[options[l] for l in loops]):
            yield expr, dict(zip(loops, combo))


def schedule_stage(
    chain: ComputeChain,
    points: Iterator[tuple[TilingExpr, dict[str, int]]],
    optimize: bool = True,
) -> Iterator[CandidatePair]:
    """Expand each (expression, tiles) point into its schedule — built once,
    carried with the candidate from here on."""
    from repro.search.space import Candidate  # deferred: space imports us

    for expr, tiles in points:
        schedule = build_schedule(chain, expr, tiles, optimize=optimize)
        yield CandidatePair(Candidate.make(expr, tiles), schedule)


def validate_stage(
    pairs: Iterator[CandidatePair],
    funnel: PruningFunnel,
) -> Iterator[CandidatePair]:
    """Drop semantically invalid schedules and candidate-level Rule 2
    violations; count survivors into ``after_rule3``."""
    for pair in pairs:
        if not pair.schedule.is_valid:
            continue
        if not rule2_candidate_ok(pair.schedule):
            continue
        funnel.after_rule3 += 1
        yield pair


def rule4_stage(
    pairs: Iterator[CandidatePair],
    gpu: GPUSpec,
    funnel: PruningFunnel,
) -> Iterator[CandidatePair]:
    """Rule 4: shared-memory estimate filter; counts into ``after_rule4``."""
    for pair in pairs:
        if not rule4_ok(pair.schedule, gpu):
            continue
        funnel.after_rule4 += 1
        yield pair


def candidate_pipeline(
    chain: ComputeChain,
    gpu: GPUSpec,
    funnel: PruningFunnel,
    tile_options: dict[str, list[int]],
    deep_only: bool = False,
    optimize_schedules: bool = True,
) -> Iterator[CandidatePair]:
    """The full composed pipeline; marks ``funnel.complete`` when drained."""
    exprs = expression_stage(chain, funnel, deep_only=deep_only)
    points = tile_stage(chain, exprs, tile_options)
    built = schedule_stage(chain, points, optimize=optimize_schedules)
    survivors = rule4_stage(validate_stage(built, funnel), gpu, funnel)
    yield from survivors
    funnel.complete = True


def stream_space(
    chain: ComputeChain,
    gpu: GPUSpec,
    deep_only: bool = False,
    optimize_schedules: bool = True,
    max_candidates: int | None = None,
) -> "SearchSpace":
    """Build a lazy :class:`~repro.search.space.SearchSpace` over the
    streaming pipeline.

    Nothing is enumerated until the space is iterated (or an accessor that
    needs the full set — ``candidates``, ``stats``, ``len`` — forces
    materialization). Schedules built during validation are retained and
    served by ``SearchSpace.schedule_for``, so estimation and measurement
    never rebuild them.
    """
    from repro.search.space import SearchSpace  # deferred: space imports us

    funnel = PruningFunnel()
    options = {loop: rule3_tile_options(size) for loop, size in chain.loops.items()}
    pairs = candidate_pipeline(
        chain,
        gpu,
        funnel,
        options,
        deep_only=deep_only,
        optimize_schedules=optimize_schedules,
    )
    return SearchSpace(
        chain=chain,
        gpu=gpu,
        source=pairs,
        funnel=funnel,
        tile_options=options,
        deep_only=deep_only,
        optimized=optimize_schedules,
        max_candidates=max_candidates,
    )
