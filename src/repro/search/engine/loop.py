"""SearchLoop: the shared driver every search strategy runs inside.

Algorithm 1's skeleton — rank candidates, hardware-measure the best
*unmeasured* top-n, track the best, stop on convergence — is strategy-
independent; what differs between evolutionary, random, exhaustive, and
annealing search is only *which* candidates get ranked each round. The
loop therefore owns all the bookkeeping the old monolithic
``heuristic_search`` kept inline:

* the **measured cache** (re-measuring a program yields no information);
* the **failed blacklist** (launch failures never re-enter the top-n);
* the **(estimate, measured) pairs** behind the Fig. 11 correlation study;
* the **convergence criterion** (relative best-time improvement below
  epsilon, armed after ``min_rounds`` rounds);
* measurement dispatch through a :class:`ParallelEvaluator`.

Strategies implement three hooks (``begin`` / ``propose`` / ``evolve``)
against this driver; see :mod:`repro.search.engine.strategy`.

**Top-k mode.** With a :class:`~repro.search.cost_model.LearnedCostModel`
attached and ``measure_topk > 0``, each round re-ranks *every* unmeasured
proposal with the learned model and hardware-measures only the predicted
best ``k`` — the measurement-count multiplier on top of the paper's
model-guided pruning. All finite measurements (top-k or not) are fed back
into the model's dataset and the model refits once per round, so guidance
sharpens within a single tune. While the model is unfitted or
sample-starved the loop transparently falls back to the classic
measure-the-top-n behavior (and those measurements bootstrap the dataset).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.search.engine.evaluator import ParallelEvaluator
from repro.utils import rng_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.search.cost_model import LearnedCostModel
    from repro.search.engine.strategy import SearchStrategy
    from repro.search.space import Candidate, SearchSpace

__all__ = ["SearchResult", "SearchLoop"]


@dataclass
class SearchResult:
    """Outcome of one search run (any strategy)."""

    best: "Candidate"
    best_time: float
    rounds: int
    num_estimates: int
    num_measurements: int
    converged: bool
    #: (estimated, measured) pairs for every measured candidate — the raw
    #: data behind the Fig. 11 correlation study.
    pairs: list[tuple[float, float]] = field(default_factory=list)
    measured: dict[tuple, float] = field(default_factory=dict)
    #: Which registered strategy produced this result.
    strategy: str = "evolutionary"
    #: The ``measure_topk`` setting the run used (0 = classic top-n mode).
    measure_topk: int = 0
    #: Rounds in which the learned model actually guided the pick (the
    #: remainder fell back to measure-the-top-n while the model warmed up).
    model_rounds: int = 0
    #: The cost model's self-reported pairwise ranking accuracy after its
    #: final refit (``None`` when no model was attached or it never fitted).
    ranking_accuracy: float | None = None


class SearchLoop:
    """Drives one strategy over a pruned space with shared bookkeeping.

    Args:
        space: The (lazy) pruned search space.
        estimate_fn: Analytical model (cheap, called on every ranked
            candidate; each call is counted into ``num_estimates``).
        evaluator: Measurement executor for the per-round top-n batch.
        population_size/top_n/epsilon/max_rounds/min_rounds: Algorithm-1
            parameters, identical semantics to the paper's pseudo-code.
        seed: Strategy randomness; the rng stream is derived from the
            (strategy, chain, gpu, seed) tuple, so runs are reproducible.
        cost_model: Optional :class:`~repro.search.cost_model.
            LearnedCostModel`. When attached, every finite measurement is
            observed into its dataset and the model refits once per round;
            with ``measure_topk > 0`` it additionally guides the pick.
        measure_topk: Measure only the model's predicted best ``k``
            unmeasured proposals per round (0 disables; requires
            ``cost_model`` and ``feature_fn``). Falls back to the classic
            top-n batch in rounds where the model is not yet fitted.
        feature_fn: ``Candidate -> feature vector`` for the cost model
            (memoized per candidate key).
    """

    def __init__(
        self,
        space: "SearchSpace",
        estimate_fn: Callable[["Candidate"], float],
        evaluator: ParallelEvaluator,
        population_size: int = 512,
        top_n: int = 8,
        epsilon: float = 0.01,
        max_rounds: int = 16,
        min_rounds: int = 5,
        seed: int = 0,
        cost_model: "LearnedCostModel | None" = None,
        measure_topk: int = 0,
        feature_fn: Callable[["Candidate"], np.ndarray] | None = None,
    ) -> None:
        if not space.candidates:
            raise ValueError(f"empty search space for chain {space.chain.name!r}")
        if measure_topk < 0:
            raise ValueError(f"measure_topk must be >= 0, got {measure_topk}")
        if measure_topk > 0 and (cost_model is None or feature_fn is None):
            raise ValueError("measure_topk > 0 requires cost_model and feature_fn")
        self.space = space
        self._estimate_fn = estimate_fn
        self.evaluator = evaluator
        self.population_size = min(population_size, len(space.candidates))
        self.top_n = min(top_n, len(space.candidates))
        self.epsilon = epsilon
        self.max_rounds = max_rounds
        self.min_rounds = min_rounds
        self.seed = seed
        self.cost_model = cost_model
        self.measure_topk = measure_topk
        self._feature_fn = feature_fn
        self._feature_cache: dict[tuple, np.ndarray] = {}
        # shared bookkeeping; rng is assigned by run() from the strategy's
        # rng_key — accessing it before run() is a bug and fails loudly.
        self.rng: np.random.Generator
        self.measured: dict[tuple, float] = {}
        self.failed: set[tuple] = set()
        self.pairs: list[tuple[float, float]] = []
        self.best: "Candidate | None" = None
        self.best_time = float("inf")
        self.num_estimates = 0
        self.num_measurements = 0
        self.rounds = 0
        self.model_rounds = 0
        self.converged = False

    # -- services strategies call back into -----------------------------------

    def estimate(self, cand: "Candidate") -> float:
        """Score one candidate with the analytical model (counted)."""
        self.num_estimates += 1
        return self._estimate_fn(cand)

    def pick_unmeasured(
        self, ranked: list[tuple["Candidate", float]]
    ) -> list[tuple["Candidate", float]]:
        """The best ``top_n`` candidates of ``ranked`` not yet measured.

        Skips everything in the measured cache (which subsumes the failed
        blacklist — failures are cached as ``inf``) and deduplicates within
        the batch, so each round extends hardware knowledge strictly deeper
        into the strategy's ranking.
        """
        picked: list[tuple["Candidate", float]] = []
        seen: set[tuple] = set()
        for cand, est in ranked:
            key = cand.key
            if key in self.measured or key in seen:
                continue
            picked.append((cand, est))
            seen.add(key)
            if len(picked) >= self.top_n:
                break
        return picked

    def features_for(self, cand: "Candidate") -> np.ndarray:
        """The candidate's cost-model feature vector (memoized by key)."""
        assert self._feature_fn is not None
        key = cand.key
        feats = self._feature_cache.get(key)
        if feats is None:
            feats = self._feature_cache[key] = self._feature_fn(cand)
        return feats

    def pick_by_model(
        self, ranked: list[tuple["Candidate", float]]
    ) -> list[tuple["Candidate", float]]:
        """The learned model's predicted-best ``measure_topk`` unmeasured
        candidates — drawn from *all* of ``ranked``, not just its analytic
        top-n, so a good model can rescue candidates the prior misranks.
        Stable-sorted, so ties fall back to the strategy's order and the
        pick stays deterministic for a fixed (seed, dataset).
        """
        assert self.cost_model is not None
        pool: list[tuple["Candidate", float]] = []
        seen: set[tuple] = set()
        for cand, est in ranked:
            key = cand.key
            if key in self.measured or key in seen:
                continue
            pool.append((cand, est))
            seen.add(key)
        if not pool:
            return []
        x = np.stack([self.features_for(cand) for cand, _ in pool])
        analytic = np.array([est for _, est in pool], dtype=np.float64)
        order = self.cost_model.rank(x, analytic)
        return [pool[i] for i in order[: self.measure_topk]]

    # -- the driver ------------------------------------------------------------

    def run(self, strategy: "SearchStrategy") -> SearchResult:
        """Run ``strategy`` to convergence (or budget exhaustion)."""
        from repro.obs import get_tracer

        tracer = get_tracer()
        self.rng = rng_for(*strategy.rng_key(self.space, self.seed))
        strategy.begin(self)
        while self.rounds < strategy.round_budget(self):
            self.rounds += 1
            with tracer.span(
                "search.round",
                clock=getattr(self.evaluator, "clock", None),
                round=self.rounds,
                strategy=strategy.name,
            ) as span:
                ranked = strategy.propose(self)
                model_guided = (
                    self.measure_topk > 0
                    and self.cost_model is not None
                    and self.cost_model.ready
                )
                if model_guided:
                    picked = self.pick_by_model(ranked)
                    self.model_rounds += 1
                else:
                    picked = self.pick_unmeasured(ranked)
                span.set(
                    proposed=len(ranked),
                    pruned=len(ranked) - len(picked),
                    measured=len(picked),
                    model_guided=model_guided,
                )
                if not picked:
                    break  # every reachable candidate measured or failed
                times = self.evaluator.measure([c for c, _ in picked])

                round_best_time = float("inf")
                round_best: "Candidate | None" = None
                for (cand, est), t in zip(picked, times):
                    # Normalize non-finite measurements (inf *and* NaN) to a
                    # plain launch failure: a NaN would compare False against
                    # everything and silently corrupt best-tracking and the
                    # convergence test.
                    if not math.isfinite(t):
                        t = float("inf")
                    self.measured[cand.key] = t
                    self.num_measurements += 1
                    self.pairs.append((est, t))
                    if t == float("inf"):
                        self.failed.add(cand.key)
                    elif self.cost_model is not None and self._feature_fn is not None:
                        self.cost_model.observe(
                            self.features_for(cand),
                            est,
                            t,
                            workload=self.space.chain.name,
                        )
                    if round_best is None or t < round_best_time:
                        round_best_time, round_best = t, cand
                assert round_best is not None
                if self.cost_model is not None and self._feature_fn is not None:
                    self.cost_model.fit()  # no-op while starved or data-unchanged
                    span.event(
                        "cost_model.fit",
                        ready=self.cost_model.ready,
                        ranking_accuracy=self.cost_model.accuracy,
                    )

                prev_best = self.best_time
                if self.best is None or round_best_time < self.best_time:
                    self.best, self.best_time = round_best, round_best_time
                span.set(round_best=round_best_time, best_time=self.best_time)
                if (
                    strategy.uses_convergence
                    and self.rounds >= self.min_rounds
                    and prev_best != float("inf")
                ):
                    rel_improvement = (prev_best - round_best_time) / prev_best
                    if rel_improvement < self.epsilon:
                        # A fresh round of measurements failed to improve the
                        # best meaningfully: the search has converged.
                        self.converged = True
                        break
                strategy.evolve(self)

        assert self.best is not None
        return SearchResult(
            best=self.best,
            best_time=self.best_time,
            rounds=self.rounds,
            num_estimates=self.num_estimates,
            num_measurements=self.num_measurements,
            converged=self.converged,
            pairs=self.pairs,
            measured=self.measured,
            strategy=strategy.name,
            measure_topk=self.measure_topk,
            model_rounds=self.model_rounds,
            ranking_accuracy=(
                self.cost_model.accuracy if self.cost_model is not None else None
            ),
        )
