"""The pruned search space: a lazy view over the streaming pipeline (§III).

``generate_space`` remains the entry point, but it no longer eagerly
enumerates anything: it wires up the Rule 1-4 generator pipeline
(:mod:`repro.search.engine.pipeline`) and returns a :class:`SearchSpace`
that materializes on demand. Consumers that stream (``iter_pairs``) touch
each candidate exactly once; consumers that need the full set (tests, the
experiment drivers, random sampling) force materialization through the
``candidates`` / ``stats`` / ``len`` accessors and get the same candidate
order and pruning funnel the old eager implementation produced.

Schedules are built **once**, inside the pipeline's validation stage, and
retained: ``schedule_for`` serves them from the space's schedule table, so
estimation and measurement never pay the old build-twice cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterator

from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.pruning import PruningStats
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import Schedule, build_schedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.search.engine.pipeline import CandidatePair, PruningFunnel

__all__ = ["Candidate", "SearchSpace", "generate_space"]


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: an expression class + tile sizes."""

    expr: TilingExpr
    tiles: tuple[tuple[str, int], ...]

    @staticmethod
    def make(expr: TilingExpr, tiles: dict[str, int]) -> "Candidate":
        return Candidate(expr=expr, tiles=tuple(sorted(tiles.items())))

    @property
    def tile_dict(self) -> dict[str, int]:
        return dict(self.tiles)

    @property
    def key(self) -> tuple:
        return (self.expr.render(), self.tiles)

    def describe(self) -> str:
        tiles = ",".join(f"T{l}={t}" for l, t in self.tiles)
        return f"{self.expr.render()}[{tiles}]"


class SearchSpace:
    """Lazy, immutable view over the pruned candidate pipeline.

    Iterating the space (or ``iter_pairs``) pulls candidates through the
    pipeline incrementally; the ``candidates`` tuple, ``stats``, ``len``
    and ``contains`` force full materialization. Once materialized the
    candidate set is frozen — there is no way to mutate it, so the key
    index (`functools.cached_property`) can never go stale.

    Construct through :func:`generate_space` (streaming) or
    :meth:`from_candidates` (eager, for tests and restricted baselines).
    """

    def __init__(
        self,
        chain: ComputeChain,
        gpu: GPUSpec,
        source: "Iterator[CandidatePair]",
        funnel: "PruningFunnel",
        tile_options: dict[str, list[int]],
        deep_only: bool = False,
        optimized: bool = True,
        max_candidates: int | None = None,
    ) -> None:
        self.chain = chain
        self.gpu = gpu
        self.tile_options = tile_options
        self.deep_only = deep_only
        #: Whether the pipeline built schedules with the extent-1 DAG
        #: optimization (``schedule_for`` serves cached schedules only for
        #: the matching ``optimize`` flag).
        self.optimized = optimized
        self._source = source
        self._funnel = funnel
        self._max_candidates = max_candidates
        self._schedules: dict[tuple, Schedule] = {}
        self._drained: list[Candidate] = []
        self._candidates: tuple[Candidate, ...] | None = None

    @classmethod
    def from_candidates(
        cls,
        chain: ComputeChain,
        gpu: GPUSpec,
        candidates: "list[Candidate] | tuple[Candidate, ...]",
        stats: PruningStats,
        tile_options: dict[str, list[int]],
        deep_only: bool = False,
        optimized: bool = True,
    ) -> "SearchSpace":
        """Eagerly frozen space over an explicit candidate list."""
        from repro.search.engine.pipeline import PruningFunnel

        funnel = PruningFunnel(
            expressions=stats.expressions,
            classes_rule1=stats.classes_rule1,
            classes_rule2=stats.classes_rule2,
            original=stats.original,
            after_rule1=stats.after_rule1,
            after_rule2=stats.after_rule2,
            after_rule3=stats.after_rule3,
            after_rule4=stats.after_rule4,
            complete=True,
        )
        space = cls(
            chain=chain,
            gpu=gpu,
            source=iter(()),
            funnel=funnel,
            tile_options=tile_options,
            deep_only=deep_only,
            optimized=optimized,
        )
        space._candidates = tuple(candidates)
        return space

    # -- streaming -------------------------------------------------------------

    def iter_pairs(self) -> "Iterator[tuple[Candidate, Schedule]]":
        """Stream ``(candidate, schedule)`` pairs through the pipeline.

        Already-materialized candidates are replayed from the schedule
        table; the remainder comes straight off the generator stages. With
        ``max_candidates`` set the deterministic stride requires the total
        count, so the space materializes first.
        """
        if self._max_candidates is not None:
            self.materialize()
        if self._candidates is not None:
            for cand in self._candidates:
                yield cand, self.schedule_for(cand)
            return
        # Replay what earlier (possibly abandoned) iterations drained, then
        # keep pulling from the shared source — interleaved iterators and a
        # mid-stream materialize() all observe one consistent sequence.
        i = 0
        while True:
            while i < len(self._drained):
                cand = self._drained[i]
                i += 1
                yield cand, self._schedules[cand.key]
            if self._candidates is not None:
                return
            try:
                pair = next(self._source)
            except StopIteration:
                self._candidates = tuple(self._drained)
                return
            self._schedules[pair.candidate.key] = pair.schedule
            self._drained.append(pair.candidate)

    def __iter__(self) -> Iterator[Candidate]:
        for cand, _ in self.iter_pairs():
            yield cand

    # -- materialization -------------------------------------------------------

    def materialize(self) -> tuple[Candidate, ...]:
        """Drain the pipeline; idempotent. Returns the frozen candidates.

        Applies the optional ``max_candidates`` cap (deterministically
        strided over the pruned set, as the eager implementation did);
        schedules of dropped candidates are released.
        """
        if self._candidates is None:
            for pair in self._source:
                self._schedules[pair.candidate.key] = pair.schedule
                self._drained.append(pair.candidate)
            self._candidates = tuple(self._drained)
        if self._max_candidates is not None:
            cap = self._max_candidates
            self._max_candidates = None
            if len(self._candidates) > cap:
                stride = len(self._candidates) / cap
                kept = tuple(self._candidates[int(i * stride)] for i in range(cap))
                keys = {c.key for c in kept}
                self._schedules = {
                    k: s for k, s in self._schedules.items() if k in keys
                }
                self._candidates = kept
        return self._candidates

    @property
    def candidates(self) -> tuple[Candidate, ...]:
        """The frozen candidate tuple (forces materialization)."""
        return self.materialize()

    @property
    def stats(self) -> PruningStats:
        """The complete Fig. 7 pruning funnel (forces materialization)."""
        self.materialize()
        return self._funnel.snapshot()

    @property
    def funnel(self) -> "PruningFunnel":
        """The live, incrementally accumulated funnel (may be partial)."""
        return self._funnel

    def __len__(self) -> int:
        return len(self.materialize())

    # -- lookups ---------------------------------------------------------------

    def schedule_for(self, cand: Candidate, optimize: bool = True) -> Schedule:
        """The schedule of ``cand`` — served from the pipeline's one-time
        construction when the ``optimize`` flag matches, rebuilt otherwise."""
        if optimize == self.optimized:
            cached = self._schedules.get(cand.key)
            if cached is not None:
                return cached
            schedule = build_schedule(
                self.chain, cand.expr, cand.tile_dict, optimize=optimize
            )
            self._schedules[cand.key] = schedule
            return schedule
        return build_schedule(self.chain, cand.expr, cand.tile_dict, optimize=optimize)

    def contains(self, cand: Candidate) -> bool:
        return cand.key in self._keys

    @cached_property
    def _keys(self) -> frozenset:
        # Safe to cache permanently: materialize() freezes the candidate
        # tuple, and there is no mutation path afterwards.
        return frozenset(c.key for c in self.materialize())


def generate_space(
    chain: ComputeChain,
    gpu: GPUSpec,
    deep_only: bool = False,
    optimize_schedules: bool = True,
    max_candidates: int | None = None,
) -> SearchSpace:
    """Build the (lazily) pruned search space for ``chain`` on ``gpu``.

    Args:
        deep_only: Restrict to deep tilings (the Chimera search space used
            by the MCFuser-Chimera baseline, §VI-A).
        optimize_schedules: Apply the extent-1 DAG optimization when
            validating candidates (``False`` for MCFuser-Chimera).
        max_candidates: Optional hard cap (applied after pruning,
            deterministically strided) to bound test runtimes.
    """
    from repro.search.engine.pipeline import stream_space

    return stream_space(
        chain,
        gpu,
        deep_only=deep_only,
        optimize_schedules=optimize_schedules,
        max_candidates=max_candidates,
    )
