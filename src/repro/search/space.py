"""Search-space generation: expressions x tile sizes, pruned (§III).

``generate_space`` is the entry point: it enumerates tiling-expression
classes (Rule 1), drops generically-overwhelming classes (Rule 2),
enumerates Rule-3 tile grids, validates each candidate's schedule
semantics and live-copy constraint, applies the Rule-4 shared-memory
filter, and returns the surviving :class:`Candidate` list together with
the full pruning funnel (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product

from repro.gpu.specs import GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.pruning import (
    PruningStats,
    expression_classes,
    rule2_candidate_ok,
    rule2_class_survives,
    rule3_tile_options,
    rule4_ok,
    unconstrained_tile_count,
)
from repro.tiling.enumeration import all_tilings
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import Schedule, build_schedule
from repro.utils import prod

__all__ = ["Candidate", "SearchSpace", "generate_space"]


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: an expression class + tile sizes."""

    expr: TilingExpr
    tiles: tuple[tuple[str, int], ...]

    @staticmethod
    def make(expr: TilingExpr, tiles: dict[str, int]) -> "Candidate":
        return Candidate(expr=expr, tiles=tuple(sorted(tiles.items())))

    @property
    def tile_dict(self) -> dict[str, int]:
        return dict(self.tiles)

    @property
    def key(self) -> tuple:
        return (self.expr.render(), self.tiles)

    def describe(self) -> str:
        tiles = ",".join(f"T{l}={t}" for l, t in self.tiles)
        return f"{self.expr.render()}[{tiles}]"


@dataclass
class SearchSpace:
    """The pruned candidate set for one (chain, GPU) pair."""

    chain: ComputeChain
    gpu: GPUSpec
    candidates: list[Candidate]
    stats: PruningStats
    tile_options: dict[str, list[int]]
    deep_only: bool = False

    def schedule_for(self, cand: Candidate, optimize: bool = True) -> Schedule:
        return build_schedule(self.chain, cand.expr, cand.tile_dict, optimize=optimize)

    def __len__(self) -> int:
        return len(self.candidates)

    def contains(self, cand: Candidate) -> bool:
        return cand.key in self._keys

    @property
    def _keys(self) -> set[tuple]:
        if not hasattr(self, "_key_cache"):
            self._key_cache = {c.key for c in self.candidates}
        return self._key_cache


def generate_space(
    chain: ComputeChain,
    gpu: GPUSpec,
    deep_only: bool = False,
    optimize_schedules: bool = True,
    max_candidates: int | None = None,
) -> SearchSpace:
    """Build the pruned search space for ``chain`` on ``gpu``.

    Args:
        deep_only: Restrict to deep tilings (the Chimera search space used
            by the MCFuser-Chimera baseline, §VI-A).
        optimize_schedules: Apply the extent-1 DAG optimization when
            validating candidates (``False`` for MCFuser-Chimera).
        max_candidates: Optional hard cap (applied after pruning,
            deterministically strided) to bound test runtimes.
    """
    exprs = all_tilings(chain)
    if deep_only:
        exprs = [e for e in exprs if e.is_deep]
    n_exprs = len(exprs)

    # Rule 1: equivalence classes by per-block sub-tiling expression.
    classes = expression_classes(chain)
    if deep_only:
        classes = {k: v for k, v in classes.items() if v.is_deep}
    n_rule1 = len(classes)

    # Rule 2 (expression level): drop generically overwhelming classes.
    classes2 = {
        k: v for k, v in classes.items() if rule2_class_survives(chain, v)
    }
    n_rule2 = len(classes2)

    # Analytic counts of the un-enumerable early stages.
    raw_tiles = int(prod(unconstrained_tile_count(s) for s in chain.loops.values()))
    original = n_exprs * raw_tiles
    after_rule1 = n_rule1 * raw_tiles
    after_rule2 = n_rule2 * raw_tiles

    # Rule 3: per-dimension tile options.
    options = {loop: rule3_tile_options(size) for loop, size in chain.loops.items()}

    # Enumerate candidates; validate semantics and candidate-level Rule 2.
    loops = chain.loop_names
    survivors3: list[tuple[Candidate, Schedule]] = []
    for expr in classes2.values():
        for combo in product(*[options[l] for l in loops]):
            tiles = dict(zip(loops, combo))
            sched = build_schedule(chain, expr, tiles, optimize=optimize_schedules)
            if not sched.is_valid:
                continue
            if not rule2_candidate_ok(sched):
                continue
            survivors3.append((Candidate.make(expr, tiles), sched))
    after_rule3 = len(survivors3)

    # Rule 4: shared-memory estimate filter.
    final = [(c, s) for c, s in survivors3 if rule4_ok(s, gpu)]
    after_rule4 = len(final)

    candidates = [c for c, _ in final]
    if max_candidates is not None and len(candidates) > max_candidates:
        stride = len(candidates) / max_candidates
        candidates = [candidates[int(i * stride)] for i in range(max_candidates)]

    stats = PruningStats(
        expressions=n_exprs,
        classes_rule1=n_rule1,
        classes_rule2=n_rule2,
        original=original,
        after_rule1=after_rule1,
        after_rule2=after_rule2,
        after_rule3=after_rule3,
        after_rule4=after_rule4,
    )
    return SearchSpace(
        chain=chain,
        gpu=gpu,
        candidates=candidates,
        stats=stats,
        tile_options=options,
        deep_only=deep_only,
    )
