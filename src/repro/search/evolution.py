"""Heuristic (evolutionary) search over the pruned space — Algorithm 1.

The implementation lives in the search engine now
(:mod:`repro.search.engine`): :class:`EvolutionarySearch` carries the
paper's population loop, :class:`~repro.search.engine.loop.SearchLoop`
the shared bookkeeping (measured cache, failed blacklist, convergence),
and :class:`~repro.search.engine.evaluator.ParallelEvaluator` the top-n
measurement dispatch. This module keeps the historical functional entry
point: ``heuristic_search`` drives the engine with a single-worker
evaluator and is bit-for-bit seeded-compatible with the pre-engine
monolithic loop (same rng stream, same estimate/measurement order).
"""

from __future__ import annotations

from typing import Callable

from repro.search.engine.evaluator import ParallelEvaluator
from repro.search.engine.loop import SearchLoop, SearchResult
from repro.search.engine.strategy import EvolutionarySearch, mutate_candidate
from repro.search.space import Candidate, SearchSpace

__all__ = ["SearchResult", "heuristic_search"]


def heuristic_search(
    space: SearchSpace,
    estimate_fn: Callable[[Candidate], float],
    measure_fn: Callable[[Candidate], float],
    population_size: int = 512,
    top_n: int = 8,
    epsilon: float = 0.01,
    max_rounds: int = 16,
    min_rounds: int = 5,
    seed: int = 0,
) -> SearchResult:
    """Run Algorithm 1 over a pruned search space.

    Args:
        estimate_fn: Analytical model (cheap, called on everything).
        measure_fn: Hardware measurement (expensive, top-n only). Results
            are cached by candidate key — re-measuring is free, as on real
            hardware with a measurement log.
        epsilon: Relative convergence threshold on the best measured time
            (only armed after ``min_rounds`` rounds).
    """
    evaluator = ParallelEvaluator(measure_fn, workers=1, clock=None)
    loop = SearchLoop(
        space,
        estimate_fn,
        evaluator,
        population_size=population_size,
        top_n=top_n,
        epsilon=epsilon,
        max_rounds=max_rounds,
        min_rounds=min_rounds,
        seed=seed,
    )
    return loop.run(EvolutionarySearch())


# Historical alias: the mutation helper moved to the engine.
_mutate = mutate_candidate
