"""Heuristic (evolutionary) search over the pruned space — Algorithm 1.

The loop mirrors the paper's pseudo-code: estimate the whole population
with the analytical model, *measure* only the top-n, stop when the best
measured time converges (relative gap below ``epsilon``), otherwise mutate
the population weighted by estimated fitness. Replacing Ansor's learned
cost model with the analytical model and replacing the fixed trial budget
with the convergence criterion are the two efficiency deltas the paper
claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.search.space import Candidate, SearchSpace
from repro.utils import rng_for

__all__ = ["SearchResult", "heuristic_search"]


@dataclass
class SearchResult:
    """Outcome of one Algorithm-1 run."""

    best: Candidate
    best_time: float
    rounds: int
    num_estimates: int
    num_measurements: int
    converged: bool
    #: (estimated, measured) pairs for every measured candidate — the raw
    #: data behind the Fig. 11 correlation study.
    pairs: list[tuple[float, float]] = field(default_factory=list)
    measured: dict[tuple, float] = field(default_factory=dict)


def _mutate(
    space: SearchSpace,
    cand: Candidate,
    rng: np.random.Generator,
    attempts: int = 8,
) -> Candidate:
    """Mutate one loop's tile size to a neighboring Rule-3 option, keeping
    the result inside the pruned space (retry a few times, else keep)."""
    loops = list(space.chain.loop_names)
    for _ in range(attempts):
        loop = loops[int(rng.integers(len(loops)))]
        options = space.tile_options[loop]
        if len(options) < 2:
            continue
        tiles = cand.tile_dict
        idx = options.index(tiles[loop]) if tiles[loop] in options else 0
        step = int(rng.choice((-1, 1)))
        new_idx = min(max(idx + step, 0), len(options) - 1)
        if new_idx == idx:
            continue
        tiles[loop] = options[new_idx]
        mutated = Candidate.make(cand.expr, tiles)
        if space.contains(mutated):
            return mutated
    return cand


def heuristic_search(
    space: SearchSpace,
    estimate_fn: Callable[[Candidate], float],
    measure_fn: Callable[[Candidate], float],
    population_size: int = 512,
    top_n: int = 8,
    epsilon: float = 0.01,
    max_rounds: int = 16,
    min_rounds: int = 5,
    seed: int = 0,
) -> SearchResult:
    """Run Algorithm 1 over a pruned search space.

    Args:
        estimate_fn: Analytical model (cheap, called on everything).
        measure_fn: Hardware measurement (expensive, top-n only). Results
            are cached by candidate key — re-measuring is free, as on real
            hardware with a measurement log.
        epsilon: Relative convergence threshold on the best measured time
            (only armed after ``min_rounds`` rounds).
    """
    if not space.candidates:
        raise ValueError(f"empty search space for chain {space.chain.name!r}")
    rng = rng_for("heuristic-search", space.chain.name, space.gpu.name, seed)
    top_n = min(top_n, len(space.candidates))
    population_size = min(population_size, len(space.candidates))

    idx = rng.choice(len(space.candidates), size=population_size, replace=False)
    population: list[Candidate] = [space.candidates[int(i)] for i in idx]

    measured_cache: dict[tuple, float] = {}
    failed: set[tuple] = set()  # launch failures — blacklisted from top-n
    pairs: list[tuple[float, float]] = []
    best: Candidate | None = None
    best_time = float("inf")
    num_estimates = 0
    num_measurements = 0
    converged = False
    rounds = 0

    while rounds < max_rounds:
        rounds += 1
        estimates = np.array([estimate_fn(c) for c in population])
        num_estimates += len(population)
        order = np.argsort(estimates)
        # Measure the best *unmeasured* candidates: re-measuring a cached
        # program yields no information, so each round extends hardware
        # knowledge deeper into the model's ranking.
        top_ids = []
        seen_this_round: set[tuple] = set()
        for i in order:
            key = population[int(i)].key
            if key in measured_cache or key in seen_this_round:
                continue
            top_ids.append(i)
            seen_this_round.add(key)
            if len(top_ids) >= top_n:
                break
        if not top_ids:
            break  # population exhausted (everything measured or failed)

        round_best_time = float("inf")
        round_best: Candidate | None = None
        for i in top_ids:
            cand = population[int(i)]
            measured_cache[cand.key] = measure_fn(cand)
            num_measurements += 1
            pairs.append((float(estimates[int(i)]), measured_cache[cand.key]))
            t = measured_cache[cand.key]
            if t == float("inf"):
                failed.add(cand.key)
            if round_best is None or t < round_best_time:
                round_best_time, round_best = t, cand
        assert round_best is not None

        prev_best = best_time
        if best is None or round_best_time < best_time:
            best, best_time = round_best, round_best_time
        if rounds >= min_rounds and prev_best != float("inf"):
            rel_improvement = (prev_best - round_best_time) / prev_best
            if rel_improvement < epsilon:
                # A fresh round of measurements failed to improve the best
                # meaningfully: the search has converged.
                converged = True
                break

        # Next generation: fitness-weighted resampling + tile mutation,
        # with a 10% fresh-random injection for exploration.
        weights = 1.0 / np.maximum(estimates, 1e-12)
        weights /= weights.sum()
        n_fresh = max(1, population_size // 10)
        chosen = rng.choice(len(population), size=population_size - n_fresh, p=weights)
        population = [_mutate(space, population[int(i)], rng) for i in chosen]
        fresh_ids = rng.choice(len(space.candidates), size=n_fresh, replace=True)
        population += [space.candidates[int(i)] for i in fresh_ids]
        # Known launch failures are replaced with fresh draws.
        population = [
            c if c.key not in failed else space.candidates[int(rng.integers(len(space.candidates)))]
            for c in population
        ]

    assert best is not None
    return SearchResult(
        best=best,
        best_time=best_time,
        rounds=rounds,
        num_estimates=num_estimates,
        num_measurements=num_measurements,
        converged=converged,
        pairs=pairs,
        measured=measured_cache,
    )
