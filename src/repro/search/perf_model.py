"""MCFuser's analytical performance model (§IV-A, eqs. 2-5).

The estimated execution time of a scheduled candidate is

    t_estm = (t_mem + t_comp) * alpha                         (2)
    t_mem  = sum_S  TS_S * prod(trip counts) / W              (3)
    t_comp = sum_C  Fp_C * prod(trip counts) / P              (4)
    alpha  = (N_block + N_SM) / N_block                       (5)

with ``W`` the DRAM bandwidth, ``P`` the peak throughput, ``N_block`` the
grid size and ``N_SM`` the SM count. The model deliberately ignores
tile-shape efficiency, coalescing, codegen quality and wave quantization —
that is what the GPU simulator adds on top — so estimated and measured
times correlate strongly but imperfectly (Fig. 11).

The Chimera variant (used by the MCFuser-Chimera baseline) minimizes data
movement only: it drops the compute term and the slowdown factor, which is
exactly the blind spot the paper calls out ("neglecting the computational
redundancy, it often arrives at sub-optimal scheduling decisions").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec
from repro.tiling.schedule import Schedule

__all__ = ["PerfEstimate", "estimate_time", "AnalyticalModel", "ChimeraModel"]


@dataclass(frozen=True)
class PerfEstimate:
    """Breakdown of one analytical estimate (seconds)."""

    t_mem: float
    t_comp: float
    alpha: float

    @property
    def total(self) -> float:
        return (self.t_mem + self.t_comp) * self.alpha


def estimate_time(schedule: Schedule, gpu: GPUSpec) -> PerfEstimate:
    """Evaluate eqs. (2)-(5) for one schedule."""
    t_mem = (schedule.dram_read_bytes() + schedule.dram_write_bytes()) / gpu.mem_bandwidth
    t_comp = schedule.total_flops() / gpu.peak_flops
    # A degenerate schedule whose grid loops all collapse can report a
    # zero-block grid; at least one thread block always launches, so clamp
    # rather than divide by zero mid-search.
    n_block = max(schedule.grid_size, 1)
    alpha = (n_block + gpu.num_sms) / n_block
    return PerfEstimate(t_mem=t_mem, t_comp=t_comp, alpha=alpha)


class AnalyticalModel:
    """Callable wrapper used by the heuristic search: schedule -> seconds."""

    name = "mcfuser"

    def __init__(self, gpu: GPUSpec) -> None:
        self.gpu = gpu

    def __call__(self, schedule: Schedule) -> float:
        return estimate_time(schedule, self.gpu).total


class ChimeraModel(AnalyticalModel):
    """Chimera's objective: minimize data movement (parallelism-aware, but
    blind to redundant computation — the paper's criticism in §VII)."""

    name = "chimera"

    def __call__(self, schedule: Schedule) -> float:
        est = estimate_time(schedule, self.gpu)
        return est.t_mem * est.alpha
