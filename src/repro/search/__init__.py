"""Search layer: the streaming engine (space pipeline, pluggable
strategies, parallel measurement), pruning rules, analytical performance
model, tuner, and the simulated tuning clock."""

from repro.search.engine import (
    STRATEGY_REGISTRY,
    EvolutionarySearch,
    ExhaustiveSearch,
    ParallelEvaluator,
    RandomSearch,
    SearchLoop,
    SearchResult,
    SearchStrategy,
    SimulatedAnnealingSearch,
    make_strategy,
    register_strategy,
    strategy_names,
)
from repro.search.cost_model import (
    LearnedCostModel,
    MeasurementDataset,
    pairwise_ranking_accuracy,
)
from repro.search.evolution import heuristic_search
from repro.search.features import (
    FEATURE_NAMES,
    FEATURE_VERSION,
    feature_dict,
    schedule_features,
)
from repro.search.perf_model import AnalyticalModel, ChimeraModel, PerfEstimate, estimate_time
from repro.search.pruning import (
    MIN_TILE,
    PADDING_RATIO_LIMIT,
    RULE4_SLACK,
    PruningStats,
    expression_classes,
    rule2_candidate_ok,
    rule2_class_survives,
    rule3_tile_options,
    rule4_ok,
    unconstrained_tile_count,
)
from repro.search.space import Candidate, SearchSpace, generate_space
from repro.search.tuner import (
    VERIFY_MODES,
    MCFuserTuner,
    TuneReport,
    VerificationError,
    report_from_entry,
)
from repro.search.tuning_cost import COSTS, TuningClock

__all__ = [
    "Candidate",
    "SearchSpace",
    "generate_space",
    "PruningStats",
    "expression_classes",
    "rule2_class_survives",
    "rule2_candidate_ok",
    "rule3_tile_options",
    "rule4_ok",
    "unconstrained_tile_count",
    "MIN_TILE",
    "RULE4_SLACK",
    "PADDING_RATIO_LIMIT",
    "PerfEstimate",
    "estimate_time",
    "AnalyticalModel",
    "ChimeraModel",
    "FEATURE_NAMES",
    "FEATURE_VERSION",
    "schedule_features",
    "feature_dict",
    "LearnedCostModel",
    "MeasurementDataset",
    "pairwise_ranking_accuracy",
    "heuristic_search",
    "SearchResult",
    "SearchLoop",
    "SearchStrategy",
    "EvolutionarySearch",
    "RandomSearch",
    "ExhaustiveSearch",
    "SimulatedAnnealingSearch",
    "STRATEGY_REGISTRY",
    "register_strategy",
    "make_strategy",
    "strategy_names",
    "ParallelEvaluator",
    "MCFuserTuner",
    "VerificationError",
    "VERIFY_MODES",
    "TuneReport",
    "report_from_entry",
    "TuningClock",
    "COSTS",
]
