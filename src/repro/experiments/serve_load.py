"""Serve-load experiment: Zipf-replay load generator for the compile service.

This is the serving layer's benchmark artifact. N client threads release
from a start barrier and replay a Zipf-distributed request mix over M
distinct zoo workload signatures against one
:class:`~repro.serving.service.CompileService`. The skew mirrors fleet
traffic — a few hot shapes dominate, a long tail trickles — which is
exactly the regime request coalescing and the hot cache tier exist for.

Each client's *first* request is assigned round-robin over the mix so
every signature is exercised and the opening burst maximally overlaps;
the remaining requests are Zipf samples. The run asserts nothing itself —
it reports, and the benchmark/CI layer asserts:

* **one tune per signature** — concurrent identical requests coalesce;
* **coalesce rate** — ``coalesced / (coalesced + tunes)`` among requests
  that found no cache entry;
* **warm-hit p50 latency** — the hot-tier fast path, in microseconds;
* **reconciliation** — the telemetry counters sum exactly to the number
  of requests the generator issued (the service lost nothing).

Run it standalone (``python -m repro.experiments.serve_load``), through
the CLI (``repro serve``), or under the benchmark suite
(``benchmarks/test_serve_load.py``).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.experiments.common import ExperimentResult, print_header
from repro.gpu.specs import A100, GPUSpec
from repro.serving.service import CompileService, ServeResult
from repro.serving.telemetry import MetricsRegistry
from repro.workloads import build_workload, serve_mix

__all__ = ["run", "main", "QUICK_TUNER_KWARGS"]

#: Reduced Algorithm-1 budget for quick mode (CI smoke) runs.
QUICK_TUNER_KWARGS = dict(population_size=64, top_n=4, max_rounds=2, min_rounds=1)

#: Request sources that mean "served from a cache tier".
_CACHE_SOURCES = ("hot", "memory", "disk")


def _zipf_pmf(n: int, s: float) -> np.ndarray:
    """Bounded Zipf probabilities over ranks ``1..n`` (exponent ``s``)."""
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** s
    return weights / weights.sum()


def run(
    clients: int = 32,
    requests_per_client: int = 8,
    workload_names: list[str] | None = None,
    signatures: int = 8,
    zipf_s: float = 1.1,
    seed: int = 0,
    service_workers: int = 4,
    gpu: GPUSpec = A100,
    cache=None,
    tuner_kwargs: dict | None = None,
    telemetry: MetricsRegistry | None = None,
    quick: bool = False,
) -> ExperimentResult:
    """Replay a Zipf workload mix from concurrent clients; report the service.

    Args:
        clients: Concurrent client threads (all released from one barrier).
        requests_per_client: Requests each client issues back-to-back.
        workload_names: Chain-level registry names to mix; defaults to
            ``serve_mix(signatures)``.
        signatures: Size of the default mix (distinct workload signatures).
        zipf_s: Zipf exponent of the request skew (larger = hotter head).
        seed: Base RNG seed (client ``i`` derives its own stream).
        service_workers: Tune worker-pool width of the service.
        gpu: Target GPU spec.
        cache: Optional :class:`~repro.serving.tiers.TieredCache` or
            :class:`~repro.cache.cache.ScheduleCache`; default memory-only.
        tuner_kwargs: Tuner budget for cold tunes (quick mode defaults to
            :data:`QUICK_TUNER_KWARGS`).
        telemetry: Registry to record into (created if omitted).
        quick: CI smoke mode — fewer clients/requests, reduced tune budget.

    Returns:
        An :class:`ExperimentResult` with one row per workload and a
        ``meta`` dict carrying the aggregate numbers plus the full
        telemetry ``snapshot`` (what ``repro serve`` persists for
        ``repro metrics``).
    """
    if quick:
        clients = min(clients, 8)
        requests_per_client = min(requests_per_client, 4)
        if tuner_kwargs is None:
            tuner_kwargs = QUICK_TUNER_KWARGS
    names = list(workload_names) if workload_names else serve_mix(signatures)
    chains = {name: build_workload(name) for name in names}
    registry = telemetry if telemetry is not None else MetricsRegistry()
    service = CompileService(
        gpu,
        cache=cache,
        workers=service_workers,
        telemetry=registry,
        seed=seed,
        tuner_kwargs=tuner_kwargs or {},
    )

    pmf = _zipf_pmf(len(names), zipf_s)
    barrier = threading.Barrier(clients)
    records: list[list[ServeResult]] = [[] for _ in range(clients)]
    failures: list[BaseException] = []

    def client(i: int) -> None:
        rng = np.random.default_rng(seed * 7919 + i)
        # round-robin first request: every signature sees the cold burst
        plan = [names[i % len(names)]] + [
            names[j]
            for j in rng.choice(len(names), size=requests_per_client - 1, p=pmf)
        ]
        barrier.wait()
        for name in plan:
            try:
                records[i].append(service.submit(chains[name]).result())
            except BaseException as exc:  # noqa: BLE001 - reported, not raised
                failures.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    # close first: it drains the queue and joins the workers, so the
    # snapshot below is final (no in-flight observation can race it)
    service.close()
    snapshot = service.metrics()

    results = [r for batch in records for r in batch]
    issued = clients * requests_per_client
    counters = snapshot["counters"]
    tunes = counters.get("serve.tunes", 0)
    coalesced = counters.get("serve.coalesced", 0)
    shed = counters.get("serve.shed", 0)
    errors = counters.get("serve.errors", 0)
    hits = sum(counters.get(f"serve.hits.{t}", 0) for t in _CACHE_SOURCES)
    cold_path = coalesced + tunes
    coalesce_rate = coalesced / cold_path if cold_path else float("nan")
    warm = snapshot["histograms"].get("serve.latency.warm", {})
    cold = snapshot["histograms"].get("serve.latency.cold", {})
    # the service must account for every issued request, exactly
    reconciled = (
        counters.get("serve.requests", 0) == issued
        and hits + coalesced + tunes + shed + errors == issued
        and len(results) + len(failures) == issued
    )

    rows = []
    for name in names:
        mine = [r for r in results if r.workload == chains[name].name]
        n_tuned = sum(r.source == "tuned" for r in mine)
        n_coal = sum(r.source == "coalesced" for r in mine)
        n_warm = sum(r.source in _CACHE_SOURCES for r in mine)
        warm_lat = sorted(r.latency_seconds for r in mine if r.source in _CACHE_SOURCES)
        p50 = warm_lat[len(warm_lat) // 2] * 1e6 if warm_lat else float("nan")
        rows.append([
            name,
            len(mine),
            n_tuned,
            n_coal,
            n_warm,
            f"{p50:.0f}" if warm_lat else "-",
        ])

    meta = {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "signatures": len(names),
        "zipf_s": zipf_s,
        "requests": issued,
        "wall_seconds": wall,
        "throughput_rps": issued / wall if wall > 0 else float("nan"),
        "tunes": tunes,
        "coalesced": coalesced,
        "cache_hits": hits,
        "shed": shed,
        # failed tunes (the serve.errors counter) vs requests that raised:
        # one failed tune fails its creator plus every coalesced rider
        "errors": errors,
        "failed_requests": len(failures),
        "coalesce_rate": coalesce_rate,
        "warm_p50_us": (warm.get("p50") or float("nan")) * 1e6,
        "warm_p95_us": (warm.get("p95") or float("nan")) * 1e6,
        "cold_p50_ms": (cold.get("p50") or float("nan")) * 1e3,
        "cold_p95_ms": (cold.get("p95") or float("nan")) * 1e3,
        "reconciled": reconciled,
        "snapshot": snapshot,
    }
    return ExperimentResult(
        name="serve_load",
        headers=["workload", "requests", "tuned", "coalesced", "warm hits", "warm p50 (us)"],
        rows=rows,
        meta=meta,
    )


def fmt_stat(value: float, spec: str, suffix: str = "") -> str:
    """Format a summary number; nan (no samples on that path) prints ``-``."""
    import math

    if isinstance(value, float) and math.isnan(value):
        return "-"
    return format(value, spec) + suffix


def summary_lines(meta: dict) -> list[str]:
    """The human-readable roll-up printed by ``main()`` and ``repro serve``."""
    return [
        f"{meta['requests']} requests from {meta['clients']} clients over "
        f"{meta['signatures']} signatures in {meta['wall_seconds']:.2f}s "
        f"({meta['throughput_rps']:.0f} req/s)",
        f"tunes: {meta['tunes']}  coalesced: {meta['coalesced']} "
        f"(rate {fmt_stat(meta['coalesce_rate'], '.0%')})  "
        f"cache hits: {meta['cache_hits']}  "
        f"shed: {meta['shed']}  failed tunes: {meta['errors']} "
        f"({meta['failed_requests']} requests)",
        f"latency: warm p50 {fmt_stat(meta['warm_p50_us'], '.0f', 'us')} / "
        f"p95 {fmt_stat(meta['warm_p95_us'], '.0f', 'us')}   "
        f"cold p50 {fmt_stat(meta['cold_p50_ms'], '.1f', 'ms')} / "
        f"p95 {fmt_stat(meta['cold_p95_ms'], '.1f', 'ms')}",
        f"telemetry reconciled with issued requests: {meta['reconciled']}",
    ]


def main(quick: bool | None = None) -> ExperimentResult:
    """Run with defaults and print the serving report."""
    import os

    if quick is None:
        quick = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
    result = run(quick=quick)
    print_header("Serve load (Zipf replay against CompileService)")
    print(result.table())
    for line in summary_lines(result.meta):
        print(f"  {line}")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
