"""Serve-load experiment: Zipf-replay load generator for the compile service.

This is the serving layer's benchmark artifact. N client threads release
from a start barrier and replay a Zipf-distributed request mix over M
distinct zoo workload signatures against one
:class:`~repro.serving.service.CompileService`. The skew mirrors fleet
traffic — a few hot shapes dominate, a long tail trickles — which is
exactly the regime request coalescing and the hot cache tier exist for.

Each client's *first* request is assigned round-robin over the mix so
every signature is exercised and the opening burst maximally overlaps;
the remaining requests are Zipf samples. The run asserts nothing itself —
it reports, and the benchmark/CI layer asserts:

* **one tune per signature** — concurrent identical requests coalesce;
* **coalesce rate** — ``coalesced / (coalesced + tunes)`` among requests
  that found no cache entry;
* **warm-hit p50 latency** — the hot-tier fast path, in microseconds;
* **reconciliation** — the telemetry counters sum exactly to the number
  of requests the generator issued (the service lost nothing).

Run it standalone (``python -m repro.experiments.serve_load``), through
the CLI (``repro serve``), or under the benchmark suite
(``benchmarks/test_serve_load.py``).
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np

from repro.cache.signature import bucket_dims, bucket_of
from repro.config import SessionConfig, search_overrides
from repro.experiments.common import ExperimentResult, print_header
from repro.gpu.specs import A100, GPUSpec
from repro.serving.service import CompileService, ServeResult
from repro.serving.telemetry import MetricsRegistry
from repro.workloads import build_workload, serve_mix

__all__ = [
    "run",
    "main",
    "QUICK_TUNER_KWARGS",
    "ragged_lengths",
    "ragged_chains",
]

#: Reduced Algorithm-1 budget for quick mode (CI smoke) runs.
QUICK_TUNER_KWARGS = dict(population_size=64, top_n=4, max_rounds=2, min_rounds=1)

#: Request sources that mean "served from a cache tier" (``"bucket"`` is a
#: ceiling-tuned entry found under the bucketed signature — warm by
#: definition: zero enumeration, zero measurements).
_CACHE_SOURCES = ("hot", "memory", "disk", "bucket")

#: Curated ragged sequence lengths: primes, non-powers-of-two, and
#: just-below-bucket-ceiling values — the shapes that break exact-key
#: caching hardest. The generator draws from these first, then fills with
#: seeded uniform draws.
_CURATED_LENGTHS = (
    127, 384, 511, 97, 768, 1023, 160, 251, 640, 48, 896, 509, 320, 193, 960, 73,
)

#: fp32 tolerances for post-run verification of served schedules.
_VERIFY_RTOL = 1e-3
_VERIFY_ATOL = 1e-4


def _zipf_pmf(n: int, s: float) -> np.ndarray:
    """Bounded Zipf probabilities over ranks ``1..n`` (exponent ``s``)."""
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** s
    return weights / weights.sum()


def ragged_lengths(count: int, seed: int = 0, lo: int = 48, hi: int = 1024) -> list[int]:
    """``count`` distinct sequence lengths in ``[lo, hi]``, ragged on purpose.

    Starts from the curated primes/non-pow2/just-below-ceiling list, then
    fills with seeded uniform draws. Deterministic for a given seed.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    picked: list[int] = [m for m in _CURATED_LENGTHS if lo <= m <= hi][:count]
    rng = np.random.default_rng(seed + 104729)
    seen = set(picked)
    while len(picked) < count:
        m = int(rng.integers(lo, hi + 1))
        if m not in seen:
            seen.add(m)
            picked.append(m)
    return picked


def ragged_chains(lengths: list[int]) -> dict:
    """``name -> chain`` mix of two model families over varying lengths.

    Each length ``m`` yields a GEMM chain (``m`` dynamic, ``n`` fixed) and
    an attention module (``m = n = sequence length``) — the two MBCI
    shapes production ragged traffic actually varies.
    """
    from repro.ir.chain import attention_chain, gemm_chain

    chains = {}
    for m in lengths:
        chains[f"gemm@{m}"] = gemm_chain(1, m, 512, 64, 64, name=f"gemm@{m}")
        chains[f"attn@{m}"] = attention_chain(8, m, m, 64, 64, name=f"attn@{m}")
    return chains


def _family(name: str) -> str:
    """Model family of a ragged mix entry (``"gemm@511"`` → ``"gemm"``)."""
    return name.split("@", 1)[0]


def _verify_served(results: list[ServeResult], chains: dict, seed: int) -> dict:
    """Numerically verify served schedules at their exact request shapes.

    One check per distinct (workload, schedule) pair: the served schedule
    is executed under the **scalar** interpreter on the request chain and
    compared against the unfused reference. Returns counts plus the names
    that failed (empty = all good).
    """
    from repro.codegen.interpreter import execute_schedule

    checked: set[tuple[str, str]] = set()
    failures: list[str] = []
    for result in results:
        schedule = result.report.best_schedule
        key = (result.workload, schedule.describe())
        if key in checked:
            continue
        checked.add(key)
        chain = chains[result.workload]
        inputs = chain.random_inputs(seed)
        ref = chain.reference(inputs)[chain.output]
        try:
            out = execute_schedule(schedule, inputs, backend="scalar")[chain.output]
            ok = bool(np.allclose(out, ref, rtol=_VERIFY_RTOL, atol=_VERIFY_ATOL))
        except Exception:  # noqa: BLE001 - a crash is a verification failure
            ok = False
        if not ok:
            failures.append(result.workload)
    return {"verified": len(checked), "verify_failures": failures}


def run(
    clients: int = 32,
    requests_per_client: int = 8,
    workload_names: list[str] | None = None,
    signatures: int = 8,
    zipf_s: float = 1.1,
    seed: int = 0,
    service_workers: int = 4,
    gpu: GPUSpec = A100,
    cache=None,
    tuner_kwargs: dict | None = None,
    telemetry: MetricsRegistry | None = None,
    quick: bool = False,
    dynamic: str = "off",
    lengths: int = 0,
    verify_served: bool | None = None,
    config: SessionConfig | None = None,
) -> ExperimentResult:
    """Replay a Zipf workload mix from concurrent clients; report the service.

    Args:
        clients: Concurrent client threads (all released from one barrier).
        requests_per_client: Requests each client issues back-to-back.
        workload_names: Chain-level registry names to mix; defaults to
            ``serve_mix(signatures)`` (ignored when ``lengths`` is set).
        signatures: Size of the default mix (distinct workload signatures).
        zipf_s: Zipf exponent of the request skew (larger = hotter head).
        seed: Base RNG seed (client ``i`` derives its own stream).
        service_workers: Tune worker-pool width of the service.
        gpu: Target GPU spec.
        cache: Optional :class:`~repro.serving.tiers.TieredCache` or
            :class:`~repro.cache.cache.ScheduleCache`; default memory-only.
        tuner_kwargs: Tuner budget for cold tunes (quick mode defaults to
            :data:`QUICK_TUNER_KWARGS`).
        telemetry: Registry to record into (created if omitted).
        quick: CI smoke mode — fewer clients/requests, reduced tune budget.
        dynamic: ``"off"`` or ``"buckets"`` — the service's dynamic-shape
            mode. Bucketed runs serve ragged lengths from ceiling-tuned
            schedules (source ``"bucket"``, warm) and report per-bucket
            tune counts.
        lengths: Number of *distinct sequence lengths* to mix (ragged
            mode). Replaces the registry mix with :func:`ragged_chains`
            over :func:`ragged_lengths` — two model families per length.
        verify_served: Numerically verify every distinct served schedule
            at its exact request shape under the scalar interpreter after
            the run. Defaults to on for ragged (``lengths > 0``) runs.
        config: A :class:`~repro.config.SessionConfig` for the service —
            the canonical way to set the tune budget. Supersedes ``seed``,
            ``service_workers``, ``tuner_kwargs`` and ``dynamic`` (those
            remain for older callers and are folded into a config when
            ``config`` is omitted).

    Returns:
        An :class:`ExperimentResult` with one row per workload (per model
        family and bucket for ragged runs) and a ``meta`` dict carrying
        the aggregate numbers plus the full telemetry ``snapshot`` (what
        ``repro serve`` persists for ``repro metrics``).
    """
    if quick:
        clients = min(clients, 8)
        requests_per_client = min(requests_per_client, 4)
        if tuner_kwargs is None and config is None:
            tuner_kwargs = QUICK_TUNER_KWARGS
    if config is None:
        config = SessionConfig.make(
            seed=seed,
            serve_workers=service_workers,
            dynamic=dynamic,
            **search_overrides(tuner_kwargs or {}),
        )
    else:
        seed = config.search.seed
        dynamic = config.exec.dynamic
    if lengths:
        mix_lengths = ragged_lengths(lengths, seed)
        chains = ragged_chains(mix_lengths)
        names = list(chains)
    else:
        mix_lengths = []
        names = list(workload_names) if workload_names else serve_mix(signatures)
        chains = {name: build_workload(name) for name in names}
    if verify_served is None:
        verify_served = bool(lengths)
    registry = telemetry if telemetry is not None else MetricsRegistry()
    service = CompileService(gpu, cache=cache, telemetry=registry, config=config)

    pmf = _zipf_pmf(len(names), zipf_s)
    barrier = threading.Barrier(clients)
    records: list[list[ServeResult]] = [[] for _ in range(clients)]
    failures: list[BaseException] = []

    def client(i: int) -> None:
        rng = np.random.default_rng(seed * 7919 + i)
        # round-robin first request: every signature sees the cold burst
        plan = [names[i % len(names)]] + [
            names[j]
            for j in rng.choice(len(names), size=requests_per_client - 1, p=pmf)
        ]
        barrier.wait()
        for name in plan:
            try:
                records[i].append(service.submit(chains[name]).result())
            except BaseException as exc:  # noqa: BLE001 - reported, not raised
                failures.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    # close first: it drains the queue and joins the workers, so the
    # snapshot below is final (no in-flight observation can race it)
    service.close()
    snapshot = service.metrics()

    results = [r for batch in records for r in batch]
    issued = clients * requests_per_client
    counters = snapshot["counters"]
    tunes = counters.get("serve.tunes", 0)
    coalesced = counters.get("serve.coalesced", 0)
    shed = counters.get("serve.shed", 0)
    errors = counters.get("serve.errors", 0)
    hits = sum(counters.get(f"serve.hits.{t}", 0) for t in _CACHE_SOURCES)
    cold_path = coalesced + tunes
    coalesce_rate = coalesced / cold_path if cold_path else float("nan")
    warm = snapshot["histograms"].get("serve.latency.warm", {})
    cold = snapshot["histograms"].get("serve.latency.cold", {})
    # the service must account for every issued request, exactly
    reconciled = (
        counters.get("serve.requests", 0) == issued
        and hits + coalesced + tunes + shed + errors == issued
        and len(results) + len(failures) == issued
    )

    # Row key: workload name, or "family@<=ceiling" per (model family,
    # bucket) for ragged runs — the granularity the tune-count bound is
    # stated at (one ceiling tune serves every length in the bucket).
    def row_key(name: str) -> str:
        if not lengths:
            return name
        # bucket of the varying sequence-length loop ``m`` (``n`` is a
        # fixed hidden dim for the GEMM family and tied to ``m`` for
        # attention, so ``m``'s ceiling identifies the bucket)
        ceiling = bucket_dims(chains[name])["m"]
        return f"{_family(name)}@<={ceiling}"

    row_keys: list[str] = []
    grouped: dict[str, list[ServeResult]] = {}
    for name in names:
        key = row_key(name)
        if key not in grouped:
            grouped[key] = []
            row_keys.append(key)
        grouped[key].extend(r for r in results if r.workload == chains[name].name)

    rows = []
    tunes_per_bucket: dict[str, int] = {}
    for key in sorted(row_keys) if lengths else row_keys:
        mine = grouped[key]
        n_tuned = sum(r.source == "tuned" for r in mine)
        n_coal = sum(r.source == "coalesced" for r in mine)
        n_warm = sum(r.source in _CACHE_SOURCES for r in mine)
        warm_lat = sorted(r.latency_seconds for r in mine if r.source in _CACHE_SOURCES)
        p50 = warm_lat[len(warm_lat) // 2] * 1e6 if warm_lat else float("nan")
        if lengths:
            tunes_per_bucket[key] = n_tuned
        rows.append([
            key,
            len(mine),
            n_tuned,
            n_coal,
            n_warm,
            f"{p50:.0f}" if warm_lat else "-",
        ])

    meta = {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "signatures": len(names),
        "zipf_s": zipf_s,
        "requests": issued,
        "wall_seconds": wall,
        "throughput_rps": issued / wall if wall > 0 else float("nan"),
        "tunes": tunes,
        "coalesced": coalesced,
        "cache_hits": hits,
        "shed": shed,
        # failed tunes (the serve.errors counter) vs requests that raised:
        # one failed tune fails its creator plus every coalesced rider
        "errors": errors,
        "failed_requests": len(failures),
        "coalesce_rate": coalesce_rate,
        "warm_p50_us": (warm.get("p50") or float("nan")) * 1e6,
        "warm_p95_us": (warm.get("p95") or float("nan")) * 1e6,
        "cold_p50_ms": (cold.get("p50") or float("nan")) * 1e3,
        "cold_p95_ms": (cold.get("p95") or float("nan")) * 1e3,
        "reconciled": reconciled,
        "dynamic": dynamic,
        "warm_hit_rate": hits / issued if issued else float("nan"),
        "snapshot": snapshot,
    }
    if lengths:
        lo, hi = min(mix_lengths), max(mix_lengths)
        buckets = sorted({bucket_of(m) for m in mix_lengths})
        meta.update(
            distinct_lengths=len(mix_lengths),
            length_range=(lo, hi),
            distinct_buckets=len(buckets),
            # the paper-level bound: a pow2 bucketing of [lo, hi] has at
            # most ceil(log2(hi/lo)) + 1 buckets, so per (model family)
            # no more tunes than that — and per (family, bucket) exactly 1
            bucket_bound=math.ceil(math.log2(hi / lo)) + 1,
            bucket_hits=counters.get("serve.hits.bucket", 0),
            tunes_per_bucket=tunes_per_bucket,
            max_tunes_per_bucket=max(tunes_per_bucket.values(), default=0),
            tunes_per_1k_requests=1000.0 * tunes / issued if issued else float("nan"),
        )
    if verify_served:
        meta.update(_verify_served(results, chains, seed))
    return ExperimentResult(
        name="serve_load",
        headers=["workload", "requests", "tuned", "coalesced", "warm hits", "warm p50 (us)"],
        rows=rows,
        meta=meta,
    )


def fmt_stat(value: float, spec: str, suffix: str = "") -> str:
    """Format a summary number; nan (no samples on that path) prints ``-``."""
    import math

    if isinstance(value, float) and math.isnan(value):
        return "-"
    return format(value, spec) + suffix


def summary_lines(meta: dict) -> list[str]:
    """The human-readable roll-up printed by ``main()`` and ``repro serve``."""
    lines = [
        f"{meta['requests']} requests from {meta['clients']} clients over "
        f"{meta['signatures']} signatures in {meta['wall_seconds']:.2f}s "
        f"({meta['throughput_rps']:.0f} req/s)",
        f"tunes: {meta['tunes']}  coalesced: {meta['coalesced']} "
        f"(rate {fmt_stat(meta['coalesce_rate'], '.0%')})  "
        f"cache hits: {meta['cache_hits']}  "
        f"shed: {meta['shed']}  failed tunes: {meta['errors']} "
        f"({meta['failed_requests']} requests)",
        f"latency: warm p50 {fmt_stat(meta['warm_p50_us'], '.0f', 'us')} / "
        f"p95 {fmt_stat(meta['warm_p95_us'], '.0f', 'us')}   "
        f"cold p50 {fmt_stat(meta['cold_p50_ms'], '.1f', 'ms')} / "
        f"p95 {fmt_stat(meta['cold_p95_ms'], '.1f', 'ms')}",
        f"telemetry reconciled with issued requests: {meta['reconciled']}",
    ]
    if "distinct_lengths" in meta:
        lo, hi = meta["length_range"]
        lines.append(
            f"ragged mix: {meta['distinct_lengths']} lengths in [{lo}, {hi}] -> "
            f"{meta['distinct_buckets']} buckets (bound "
            f"ceil(log2(spread))+1 = {meta['bucket_bound']})  "
            f"bucket hits: {meta['bucket_hits']}  "
            f"warm hit rate: {fmt_stat(meta['warm_hit_rate'], '.1%')}  "
            f"tunes/1k req: {fmt_stat(meta['tunes_per_1k_requests'], '.0f')}  "
            f"max tunes per (family, bucket): {meta['max_tunes_per_bucket']}"
        )
    if "verified" in meta:
        n_fail = len(meta["verify_failures"])
        lines.append(
            f"numeric verification at request shapes (scalar interpreter): "
            f"{meta['verified'] - n_fail}/{meta['verified']} schedules ok"
            + (f"  FAILED: {meta['verify_failures']}" if n_fail else "")
        )
    return lines


def main(quick: bool | None = None) -> ExperimentResult:
    """Run with defaults and print the serving report."""
    import os

    if quick is None:
        quick = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
    result = run(quick=quick)
    print_header("Serve load (Zipf replay against CompileService)")
    print(result.table())
    for line in summary_lines(result.meta):
        print(f"  {line}")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
