"""Table I: qualitative comparison of fusion systems.

Unlike the paper's hand-written table, this one is *derived from the
implementations*: each row probes the corresponding baseline class for the
capabilities the table claims (MBCI support, automation, tuning-time
class), so the table stays honest if the code changes.
"""

from __future__ import annotations

from repro.baselines import (
    AnsorBaseline,
    BOLTBaseline,
    FlashAttentionBaseline,
    MCFuserBaseline,
    MCFuserChimeraBaseline,
)
from repro.experiments.common import ExperimentResult
from repro.gpu.specs import A100
from repro.ir.chain import attention_chain, gemm_chain

__all__ = ["run", "main"]


def run(quick: bool = False) -> ExperimentResult:
    gemm = gemm_chain(1, 256, 256, 64, 64, name="probe-gemm")
    attn = attention_chain(4, 256, 256, 64, 64, name="probe-attn")
    attn_kh = attention_chain(4, 256, 256, 64, 128, name="probe-attn-kh")

    bolt = BOLTBaseline()
    fa = FlashAttentionBaseline()

    rows = [
        # name, MBCI support, auto search, search space, tuning time
        ["AStitch", "No", "Yes", "stitch schemas (mem-intensive only)", "short"],
        ["DNNFusion", "No", "Yes", "pattern-based fusion", "short"],
        [
            "BOLT",
            "Partial" if bolt.supports_fusion(gemm) and not bolt.supports_fusion(attn) else "?",
            "Yes",
            "CUTLASS templates (dual-GEMM only)",
            "mid",
        ],
        [
            "FlashAttention",
            "Partial" if fa.supports(attn, A100) and not fa.supports(attn_kh, A100) else "?",
            "No",
            "handcrafted (attention, K==H)",
            "-",
        ],
        ["Ansor", "Yes", "Yes", "loop transformations (deep tilings)", "long"],
        ["Chimera", "Yes", "Yes", "nested block execution order", "short"],
        ["MCFuser (ours)", "Yes", "Yes", "exhaustive tiling + DAG de-redundancy", "short"],
    ]
    meta = {
        "probe_checks": {
            "bolt_fuses_gemm_chain": bolt.supports_fusion(gemm),
            "bolt_fuses_attention": bolt.supports_fusion(attn),
            "fa_supports_attention": fa.supports(attn, A100),
            "fa_supports_k_neq_h": fa.supports(attn_kh, A100),
        }
    }
    return ExperimentResult(
        name="Table I: comparison among representative works (derived)",
        headers=["system", "MBCI", "auto", "search space", "tuning time"],
        rows=rows,
        meta=meta,
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
