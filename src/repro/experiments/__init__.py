"""Experiment drivers: one module per paper table/figure.

Run all from the command line::

    python -m repro.experiments.fig2_roofline
    python -m repro.experiments.fig7_pruning
    python -m repro.experiments.fig8_subgraph
    python -m repro.experiments.fig9_e2e
    python -m repro.experiments.fig10_shmem
    python -m repro.experiments.fig11_perf_model
    python -m repro.experiments.table1_comparison
    python -m repro.experiments.table4_tuning_time
    python -m repro.experiments.zoo_e2e
    python -m repro.experiments.serve_load

or all at once with ``python -m repro.experiments``.
"""

from repro.experiments import (
    ablation,
    fig2_roofline,
    fig7_pruning,
    fig8_subgraph,
    fig9_e2e,
    fig10_shmem,
    fig11_perf_model,
    serve_load,
    strategies,
    table1_comparison,
    table4_tuning_time,
    zoo_e2e,
)
from repro.experiments.common import ExperimentResult

ALL_EXPERIMENTS = {
    "fig2": fig2_roofline,
    "fig7": fig7_pruning,
    "fig8": fig8_subgraph,
    "fig9": fig9_e2e,
    "fig10": fig10_shmem,
    "fig11": fig11_perf_model,
    "table1": table1_comparison,
    "table4": table4_tuning_time,
    "ablation": ablation,
    "zoo": zoo_e2e,
    "strategies": strategies,
    "serve": serve_load,
}

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult"]
