"""Ablation study: how much does each MCFuser design choice contribute?

DESIGN.md calls out four load-bearing choices; this driver isolates each
on representative workloads (a memory-bound GEMM chain, a larger one, and
a self-attention module):

* **flat tilings** — full expression space vs deep-only (Chimera's space),
  everything else identical;
* **extent-1 DAG optimization** — memory statements re-homed after dead
  loop removal vs the plain rightmost-related placement;
* **performance model** — eqs. (2)-(5) vs data-movement-only (Chimera's
  objective) vs a *random* ranking (search degenerates to random sampling
  with top-n measurement);
* **top-n** — how many hardware measurements per round the search needs.

Reported numbers are the measured (simulated) time of the candidate each
ablated configuration selects, normalized to full MCFuser.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentResult
from repro.gpu.occupancy import SharedMemoryExceeded
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import A100, GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.evolution import heuristic_search
from repro.search.perf_model import AnalyticalModel, ChimeraModel
from repro.search.space import generate_space
from repro.utils import rng_for
from repro.workloads import attention_workload, gemm_workload

__all__ = ["ablate_chain", "AblationRow", "run", "main"]


@dataclass(frozen=True)
class AblationRow:
    chain: str
    full: float
    no_flat: float
    no_dag_opt: float
    movement_model: float
    random_model: float
    top1: float


def _search_time(
    chain: ComputeChain,
    gpu: GPUSpec,
    deep_only: bool = False,
    optimize: bool = True,
    model_kind: str = "mcfuser",
    top_n: int = 8,
    seed: int = 0,
) -> float:
    space = generate_space(chain, gpu, deep_only=deep_only, optimize_schedules=optimize)
    sim = GPUSimulator(gpu, seed=seed)
    schedules: dict[tuple, object] = {}

    def sched(c):
        if c.key not in schedules:
            schedules[c.key] = space.schedule_for(c, optimize=optimize)
        return schedules[c.key]

    if model_kind == "mcfuser":
        model = AnalyticalModel(gpu)
        estimate = lambda c: model(sched(c))  # noqa: E731
    elif model_kind == "chimera":
        model = ChimeraModel(gpu)
        estimate = lambda c: model(sched(c))  # noqa: E731
    else:  # random ranking
        rng = rng_for("ablation-random", chain.name, seed)
        noise = {c.key: float(rng.random()) for c in space.candidates}
        estimate = lambda c: noise[c.key]  # noqa: E731

    def measure(c):
        try:
            return sim.run(sched(c).kernel_launch(gpu))
        except SharedMemoryExceeded:
            return float("inf")

    result = heuristic_search(space, estimate, measure, top_n=top_n, seed=seed)
    return result.best_time


def ablate_chain(chain: ComputeChain, gpu: GPUSpec = A100, seed: int = 0) -> AblationRow:
    return AblationRow(
        chain=chain.name,
        full=_search_time(chain, gpu, seed=seed),
        no_flat=_search_time(chain, gpu, deep_only=True, seed=seed),
        no_dag_opt=_search_time(chain, gpu, optimize=False, seed=seed),
        movement_model=_search_time(chain, gpu, model_kind="chimera", seed=seed),
        random_model=_search_time(chain, gpu, model_kind="random", seed=seed),
        top1=_search_time(chain, gpu, top_n=1, seed=seed),
    )


def run(gpu: GPUSpec = A100, quick: bool = False, seed: int = 0) -> ExperimentResult:
    names = ["G2", "S2"] if quick else ["G2", "G8", "S2", "S8"]
    chains = [
        gemm_workload(n) if n.startswith("G") else attention_workload(n) for n in names
    ]
    rows = []
    ablations = []
    for chain in chains:
        row = ablate_chain(chain, gpu, seed=seed)
        ablations.append(row)
        rows.append(
            [
                row.chain,
                "1.00",
                f"{row.no_flat / row.full:.2f}",
                f"{row.no_dag_opt / row.full:.2f}",
                f"{row.movement_model / row.full:.2f}",
                f"{row.random_model / row.full:.2f}",
                f"{row.top1 / row.full:.2f}",
            ]
        )
    return ExperimentResult(
        name=f"Ablation: selected-kernel slowdown vs full MCFuser on {gpu.name}",
        headers=["chain", "full", "-flat", "-DAG opt", "movement-only", "random model", "top-1"],
        rows=rows,
        meta={"ablations": ablations, "note": ">= 1.00 means the ablated variant picked a slower kernel"},
    )


def main() -> None:  # pragma: no cover - console entry
    result = run()
    result.meta.pop("ablations", None)
    result.print()


if __name__ == "__main__":  # pragma: no cover
    main()
