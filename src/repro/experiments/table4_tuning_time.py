"""Table IV: tuning times for sub-graph modules and end-to-end models.

Sub-graph: average simulated tuning seconds for BOLT / Ansor /
MCFuser-Chimera / MCFuser over the GEMM-chain and attention workloads
(paper: 88 s / 4895 s / 29 s / 35 s and - / 2897 s / 32 s / 39 s).
End-to-end: Relay / BOLT / MCFuser+Relay / Ansor / MCFuser+Ansor on the
BERT family (paper: MCFuser+Relay within ~1 min of Relay, MCFuser+Ansor
~1.4x faster to tune than Ansor).
"""

from __future__ import annotations

from repro.baselines import (
    AnsorBaseline,
    BOLTBaseline,
    MCFuserBaseline,
    MCFuserChimeraBaseline,
)
from repro.config import SessionConfig
from repro.experiments.common import ExperimentResult
from repro.frontend.executor import compile_model
from repro.frontend.models import bert_encoder
from repro.gpu.specs import A100, GPUSpec
from repro.utils import fmt_time
from repro.workloads import attention_workloads, gemm_workloads

__all__ = ["subgraph_tuning_times", "e2e_tuning_times", "run", "main"]


def subgraph_tuning_times(
    gpu: GPUSpec = A100,
    quick: bool = False,
    seed: int = 0,
    ansor_trials: int = 1000,
) -> dict[str, dict[str, float]]:
    """Average tuning seconds per system for both workload families."""
    gemm = gemm_workloads(["G1", "G4"] if quick else ["G1", "G4", "G8", "G12"])
    attn = attention_workloads(["S1"] if quick else ["S1", "S4", "S9"])
    systems = {
        "BOLT": BOLTBaseline(),
        "Ansor": AnsorBaseline(trials=ansor_trials),
        "MCFuser-Chimera": MCFuserChimeraBaseline(),
        "MCFuser": MCFuserBaseline(),
    }
    out: dict[str, dict[str, float]] = {"GEMM Chain": {}, "Self Attention": {}}
    for family, workloads in (("GEMM Chain", gemm), ("Self Attention", attn)):
        for name, system in systems.items():
            times = []
            for chain in workloads:
                r = system.run_chain(chain, gpu, seed=seed)
                if r is not None and (name != "BOLT" or family == "GEMM Chain"):
                    times.append(r.tuning_seconds)
            out[family][name] = sum(times) / len(times) if times else float("nan")
    return out


def e2e_tuning_times(
    gpu: GPUSpec = A100, quick: bool = False, seed: int = 0
) -> dict[str, dict[str, float]]:
    models = ("Bert-Small",) if quick else ("Bert-Small", "Bert-Base", "Bert-Large")
    strategies = ("relay", "bolt", "mcfuser+relay", "ansor", "mcfuser+ansor")
    config = SessionConfig.make(seed=seed)
    out: dict[str, dict[str, float]] = {}
    for model in models:
        graph = bert_encoder(model, 512)
        out[model] = {
            s: compile_model(graph, gpu, s, config=config).tuning_seconds
            for s in strategies
        }
    return out


def run(gpu: GPUSpec = A100, quick: bool = False, seed: int = 0) -> ExperimentResult:
    sub = subgraph_tuning_times(gpu, quick=quick, seed=seed,
                                ansor_trials=200 if quick else 1000)
    rows = []
    for family, times in sub.items():
        ansor = times.get("Ansor", float("nan"))
        mcf = times.get("MCFuser", float("nan"))
        rows.append(
            [
                family,
                fmt_time(times["BOLT"]) if times["BOLT"] == times["BOLT"] else "-",
                fmt_time(ansor),
                fmt_time(times["MCFuser-Chimera"]),
                fmt_time(mcf),
                f"{ansor / mcf:.0f}x" if mcf and ansor == ansor else "-",
            ]
        )
    e2e = e2e_tuning_times(gpu, quick=quick, seed=seed)
    e2e_rows = []
    for model, times in e2e.items():
        e2e_rows.append(
            [
                model,
                fmt_time(times["relay"]),
                fmt_time(times["bolt"]),
                fmt_time(times["mcfuser+relay"]),
                fmt_time(times["ansor"]),
                fmt_time(times["mcfuser+ansor"]),
            ]
        )
    result = ExperimentResult(
        name=f"Table IV: tuning times on {gpu.name}",
        headers=["sub-graph", "BOLT", "Ansor", "MCFuser-Chimera", "MCFuser", "Ansor/MCFuser"],
        rows=rows,
        meta={
            "e2e_headers": ["model", "Relay", "BOLT", "MCFuser+Relay", "Ansor", "MCFuser+Ansor"],
            "e2e_rows": e2e_rows,
            "subgraph_times": sub,
            "e2e_times": e2e,
        },
    )
    return result


def main() -> None:  # pragma: no cover - console entry
    from repro.utils import format_table

    result = run()
    result_meta = dict(result.meta)
    result.meta = {}
    result.print()
    print()
    print(format_table(result_meta["e2e_headers"], result_meta["e2e_rows"]))


if __name__ == "__main__":  # pragma: no cover
    main()
