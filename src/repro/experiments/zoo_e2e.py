"""Workload zoo end-to-end: the general-DAG partitioner beyond the paper.

For every model-level workload in the registry, compile under ``relay``
and ``mcfuser+relay`` and report how much the general partitioner buys:
fusion groups found (with family/kind), kernels eliminated, rejection
diagnostics, and the end-to-end speedup. The paper's evaluation stops at
BERT-style encoders; this driver is the scenario-diversity extension —
FFN/MLP blocks, LoRA updates, grouped-query and cross-attention, and
residual multi-branch blocks all flow through partition -> tune ->
codegen unchanged.
"""

from __future__ import annotations

from repro.config import SessionConfig
from repro.experiments.common import ExperimentResult
from repro.frontend.executor import compile_model
from repro.frontend.partition import partition_graph
from repro.gpu.specs import A100, GPUSpec
from repro.workloads import build_workload, workload_names

__all__ = ["run", "main", "QUICK_MODELS"]

#: Quick-mode subset: one representative per new zoo family.
QUICK_MODELS = ("ffn-base", "lora-base", "gqa-32x8", "resbranch")

#: Reduced tuning budget — the driver compares partitioning outcomes, not
#: schedule quality, so Algorithm 1 runs with a small population.
_TUNER_KWARGS = dict(population_size=96, top_n=6, max_rounds=3, min_rounds=2)


def run(
    gpu: GPUSpec = A100,
    seed: int = 0,
    quick: bool = False,
) -> ExperimentResult:
    models = list(QUICK_MODELS) if quick else workload_names(level="model")
    rows = []
    rejections: dict[str, dict[str, int]] = {}
    config = SessionConfig.make(seed=seed, **_TUNER_KWARGS)
    for name in models:
        graph = build_workload(name)
        partition = partition_graph(graph, gpu)
        relay = compile_model(graph, gpu, "relay", config=config)
        fused = compile_model(graph, gpu, "mcfuser+relay", config=config)
        kinds = sorted({sg.kind for sg in partition.subgraphs})
        rejections[name] = partition.rejection_reasons()
        rows.append(
            [
                name,
                len(graph.nodes),
                fused.mbci_subgraphs,
                "+".join(kinds) if kinds else "-",
                len(partition.rejected),
                relay.kernel_count - fused.kernel_count,
                f"{relay.time / fused.time:.2f}",
            ]
        )
    return ExperimentResult(
        name=f"Workload zoo end-to-end on {gpu.name} (speedup vs Relay)",
        headers=["model", "ops", "groups", "kinds", "rejected", "kernels saved", "speedup"],
        rows=rows,
        meta={"rejections": rejections},
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
