"""Fig. 10: estimated vs *measured* shared-memory usage per thread block.

Candidates are sampled from the Fig. 8 workloads' search spaces *before*
the Rule-4 filter (the figure's whole point is to validate that filter).
The plane splits into four quadrants at x = 1.2*Shm_max (the pruning
threshold on the estimate) and y = Shm_max (the hardware launch limit):

* I   — kept and runnable (correct keep),
* II  — kept but over the hardware limit (caught later at PTX lowering),
* III — pruned and indeed over the limit (correct prune),
* IV  — pruned although it would have run (false positive).

The paper reports >90% of points in I+III, ~8.2% in II and ~1.2% in IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentResult
from repro.gpu.specs import A100, GPUSpec
from repro.ir.chain import ComputeChain
from repro.search.pruning import RULE4_SLACK
from repro.search.space import generate_space
from repro.workloads import attention_workloads, gemm_workloads

__all__ = ["ShmemPoint", "collect_points", "quadrant_shares", "run", "main"]


@dataclass(frozen=True)
class ShmemPoint:
    chain: str
    candidate: str
    estimated: int
    measured: int
    quadrant: str


def _quadrant(est: int, meas: int, gpu: GPUSpec) -> str:
    limit = gpu.shared_mem_per_block
    kept = est <= RULE4_SLACK * limit
    runnable = meas <= limit
    if kept and runnable:
        return "I"
    if kept and not runnable:
        return "II"
    if not kept and not runnable:
        return "III"
    return "IV"


def collect_points(
    workloads: list[ComputeChain],
    gpu: GPUSpec = A100,
    per_chain: int = 400,
) -> list[ShmemPoint]:
    """Sample candidates (Rule 4 disabled) and record est/measured pairs."""
    # A fictitious GPU with unbounded shared memory disables Rule 4 while
    # keeping rules 1-3 intact; measurement then uses the real GPU.
    unbounded = gpu.with_overrides(
        shared_mem_per_block=1 << 30, shared_mem_per_sm=1 << 30
    )
    points: list[ShmemPoint] = []
    for chain in workloads:
        space = generate_space(chain, unbounded, max_candidates=per_chain)
        for cand in space.candidates:
            sched = space.schedule_for(cand)
            est = sched.shm_estimate()
            meas = sched.shm_measured(gpu)
            points.append(
                ShmemPoint(
                    chain=chain.name,
                    candidate=cand.describe(),
                    estimated=est,
                    measured=meas,
                    quadrant=_quadrant(est, meas, gpu),
                )
            )
    return points


def quadrant_shares(points: list[ShmemPoint]) -> dict[str, float]:
    total = max(len(points), 1)
    return {
        q: 100.0 * sum(1 for p in points if p.quadrant == q) / total
        for q in ("I", "II", "III", "IV")
    }


def run(gpu: GPUSpec = A100, quick: bool = False, per_chain: int = 400) -> ExperimentResult:
    names_g = ["G1", "G4", "G10"] if quick else None
    names_s = ["S1", "S6"] if quick else None
    workloads = gemm_workloads(names_g) + attention_workloads(names_s)
    points = collect_points(workloads, gpu, per_chain=per_chain // (2 if quick else 1))
    shares = quadrant_shares(points)
    rows = [
        ["I (kept, runnable)", f"{shares['I']:.1f}%"],
        ["II (kept, fails at lowering)", f"{shares['II']:.1f}%"],
        ["III (pruned, over limit)", f"{shares['III']:.1f}%"],
        ["IV (pruned, would run)", f"{shares['IV']:.1f}%"],
    ]
    meta = {
        "points": len(points),
        "Shm_max": gpu.shared_mem_per_block,
        "threshold": f"{RULE4_SLACK} * Shm_max",
        "correct(I+III)": f"{shares['I'] + shares['III']:.1f}%",
        "samples": points[:0],  # full list intentionally not dumped
    }
    result = ExperimentResult(
        name=f"Fig.10 shared-memory estimate validation on {gpu.name}",
        headers=["quadrant", "share"],
        rows=rows,
        meta=meta,
    )
    result.meta["points_list"] = points
    return result


def main() -> None:  # pragma: no cover - console entry
    result = run()
    result.meta.pop("points_list", None)
    result.meta.pop("samples", None)
    result.print()


if __name__ == "__main__":  # pragma: no cover
    main()
