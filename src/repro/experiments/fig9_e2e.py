"""Fig. 9: end-to-end BERT performance on the A100, seq length 512.

Strategies: Relay, BOLT, MCFuser+Relay, Ansor, MCFuser+Ansor — normalized
to Relay. The paper's headline ratios: MCFuser+Relay ~1.45x over Relay,
MCFuser+Ansor ~1.33x over Ansor, and MCFuser+Relay beating even Ansor
while tuning in minutes instead of hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SessionConfig
from repro.experiments.common import ExperimentResult
from repro.frontend.executor import E2EResult, compile_model
from repro.frontend.models import bert_encoder
from repro.gpu.specs import A100, GPUSpec

__all__ = ["E2EPanel", "run", "main"]

_STRATEGIES = ("relay", "bolt", "mcfuser+relay", "ansor", "mcfuser+ansor")
_MODELS = ("Bert-Small", "Bert-Base", "Bert-Large")


@dataclass
class E2EPanel:
    gpu: str
    results: dict[str, dict[str, E2EResult]] = field(default_factory=dict)

    def speedup(self, model: str, strategy: str, base: str = "relay") -> float:
        return self.results[model][base].time / self.results[model][strategy].time


def run(
    gpu: GPUSpec = A100,
    seq_len: int = 512,
    seed: int = 0,
    quick: bool = False,
) -> ExperimentResult:
    models = _MODELS[:1] if quick else _MODELS
    panel = E2EPanel(gpu=gpu.name)
    config = SessionConfig.make(seed=seed)
    rows = []
    for model in models:
        graph = bert_encoder(model, seq_len)
        panel.results[model] = {}
        for strategy in _STRATEGIES:
            panel.results[model][strategy] = compile_model(
                graph, gpu, strategy, config=config
            )
        base = panel.results[model]["relay"].time
        rows.append(
            [model]
            + [f"{base / panel.results[model][s].time:.2f}" for s in _STRATEGIES]
        )
    meta = {
        "normalized_to": "Relay",
        "mcfuser+relay_vs_relay": {
            m: f"{panel.speedup(m, 'mcfuser+relay'):.2f}x" for m in models
        },
        "mcfuser+ansor_vs_ansor": {
            m: f"{panel.results[m]['ansor'].time / panel.results[m]['mcfuser+ansor'].time:.2f}x"
            for m in models
        },
        "panel": panel,
    }
    return ExperimentResult(
        name=f"Fig.9 end-to-end BERT on {gpu.name} (seq {seq_len}, speedup vs Relay)",
        headers=["model"] + list(_STRATEGIES),
        rows=rows,
        meta=meta,
    )


def main() -> None:  # pragma: no cover - console entry
    result = run()
    result.meta.pop("panel", None)
    result.print()


if __name__ == "__main__":  # pragma: no cover
    main()
