"""Fig. 11: analytical-model estimates vs measured performance for G1-G4.

For each chain we evaluate the model (eqs. 2-5) and the simulator on a
deterministic sample of the pruned space and report the Pearson
correlation. The paper reports 0.86 / 0.92 / 0.84 / 0.80 — strong but
imperfect, which is exactly why Algorithm 1 measures the top-n instead of
trusting the model's argmin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentResult
from repro.gpu.occupancy import SharedMemoryExceeded
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import A100, GPUSpec
from repro.search.perf_model import AnalyticalModel
from repro.search.space import generate_space
from repro.utils import pearson
from repro.workloads import gemm_workload

__all__ = ["ModelCorrelation", "correlation_for", "run", "main"]

_CHAINS = ("G1", "G2", "G3", "G4")


@dataclass(frozen=True)
class ModelCorrelation:
    chain: str
    corr: float
    num_points: int
    pairs: tuple[tuple[float, float], ...]


def correlation_for(
    name: str, gpu: GPUSpec = A100, sample: int = 200, seed: int = 0
) -> ModelCorrelation:
    chain = gemm_workload(name)
    space = generate_space(chain, gpu, max_candidates=sample)
    model = AnalyticalModel(gpu)
    sim = GPUSimulator(gpu, seed=seed)
    pairs: list[tuple[float, float]] = []
    for cand in space.candidates:
        sched = space.schedule_for(cand)
        est = model(sched)
        try:
            meas = sim.run(sched.kernel_launch(gpu))
        except SharedMemoryExceeded:
            continue  # these never reach measurement on hardware either
        pairs.append((est, meas))
    corr = pearson([p[0] for p in pairs], [p[1] for p in pairs])
    return ModelCorrelation(
        chain=name, corr=corr, num_points=len(pairs), pairs=tuple(pairs)
    )


def run(gpu: GPUSpec = A100, quick: bool = False, seed: int = 0) -> ExperimentResult:
    chains = _CHAINS[:2] if quick else _CHAINS
    sample = 120 if quick else 200
    rows = []
    correlations = {}
    for name in chains:
        mc = correlation_for(name, gpu, sample=sample, seed=seed)
        correlations[name] = mc
        rows.append([name, f"{mc.corr:.2f}", mc.num_points])
    meta = {
        "paper_reference": "corr = 0.86 / 0.92 / 0.84 / 0.80 (G1-G4)",
        "correlations": correlations,
    }
    return ExperimentResult(
        name=f"Fig.11 model vs measurement correlation on {gpu.name}",
        headers=["chain", "pearson_corr", "points"],
        rows=rows,
        meta=meta,
    )


def main() -> None:  # pragma: no cover - console entry
    result = run()
    result.meta.pop("correlations", None)
    result.print()


if __name__ == "__main__":  # pragma: no cover
    main()
