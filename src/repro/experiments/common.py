"""Shared plumbing for the experiment drivers.

Every experiment module exposes ``run(...) -> <Result dataclass>`` plus a
``main()`` that prints the paper's rows/series as a text table. ``quick``
flags shrink workload lists so the benchmark suite stays fast; the full
runs reproduce every row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.gpu.specs import A100, RTX3080, GPUSpec
from repro.utils import format_table

__all__ = ["ExperimentResult", "both_gpus", "print_header"]


@dataclass
class ExperimentResult:
    """Generic tabular result: headers + rows + free-form metadata."""

    name: str
    headers: list[str]
    rows: list[list[object]]
    meta: dict = field(default_factory=dict)

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def print(self) -> None:  # pragma: no cover - console convenience
        print_header(self.name)
        print(self.table())
        for key, value in self.meta.items():
            print(f"  {key}: {value}")


def both_gpus() -> Sequence[GPUSpec]:
    return (A100, RTX3080)


def print_header(title: str) -> None:  # pragma: no cover - console convenience
    bar = "=" * max(8, len(title))
    print(f"\n{bar}\n{title}\n{bar}")
