"""Strategy comparison: quality vs tuning cost of every registered
search strategy.

Not a figure of the paper — this driver validates the engine's pluggable
strategies against the paper's Algorithm 1 (``evolutionary``). For each
workload it runs every registered strategy through the real tuner
(streamed space, analytical model, simulated measurements) and reports:

* the measured time of the selected kernel, normalized to evolutionary's
  (``1.00`` = identical choice; the exhaustive row is the space's true
  optimum, so it lower-bounds every other strategy);
* simulated tuning seconds (Table IV magnitudes) and measurement counts.

The expectation the parity tests enforce: every strategy lands within 5%
of evolutionary's kernel, while exhaustive pays an order of magnitude more
tuning time — which is exactly why the paper's model-guided convergent
search matters.
"""

from __future__ import annotations

from repro.config import SessionConfig
from repro.experiments.common import ExperimentResult
from repro.gpu.specs import A100, GPUSpec
from repro.search.engine.strategy import strategy_names
from repro.search.tuner import MCFuserTuner, TuneReport
from repro.utils import fmt_time
from repro.workloads import attention_workload, gemm_workload

__all__ = ["run", "main"]


def _tune(name: str, gpu: GPUSpec, strategy: str, seed: int, workers: int) -> TuneReport:
    chain = gemm_workload(name) if name.startswith("G") else attention_workload(name)
    config = SessionConfig.make(seed=seed, strategy=strategy, workers=workers)
    return MCFuserTuner(gpu, config=config).tune(chain)


def run(
    gpu: GPUSpec = A100,
    quick: bool = False,
    seed: int = 0,
    workers: int = 1,
) -> ExperimentResult:
    """Run every registered strategy on representative workloads."""
    names = ["G2", "S2"] if quick else ["G2", "G8", "S2", "S8"]
    rows: list[list[object]] = []
    reports: dict[tuple[str, str], TuneReport] = {}
    for name in names:
        for strategy in strategy_names():
            reports[(name, strategy)] = _tune(name, gpu, strategy, seed, workers)
    for name in names:
        base = reports[(name, "evolutionary")]
        for strategy in strategy_names():
            rep = reports[(name, strategy)]
            rows.append(
                [
                    name,
                    strategy,
                    f"{rep.best_time / base.best_time:.2f}",
                    fmt_time(rep.best_time),
                    fmt_time(rep.tuning_seconds),
                    rep.search.num_measurements,
                    rep.search.rounds,
                ]
            )
    return ExperimentResult(
        name=f"Search strategies: selected kernel + tuning cost on {gpu.name}",
        headers=["chain", "strategy", "vs evo", "kernel", "tuning", "measures", "rounds"],
        rows=rows,
        meta={
            "reports": reports,
            "note": "vs evo 1.00 = evolutionary's kernel; exhaustive is the true optimum",
        },
    )


def main() -> None:  # pragma: no cover - console entry
    result = run()
    result.meta.pop("reports", None)
    result.print()


if __name__ == "__main__":  # pragma: no cover
    main()
