"""Fig. 7: the pruning funnel for the GEMM chain with M=N=1024, K=H=512.

The paper reports ~1.09e8 raw candidates collapsing to ~1e4 after the four
rules (-80% expressions from Rule 1, a further cut from Rule 2, -99% tile
combinations from Rule 3, -40% from Rule 4). We print the same funnel from
:func:`repro.search.space.generate_space`'s staged counts.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.gpu.specs import A100, GPUSpec
from repro.ir.chain import gemm_chain
from repro.search.space import generate_space

__all__ = ["run", "main"]


def run(
    gpu: GPUSpec = A100,
    m: int = 1024,
    n: int = 1024,
    k: int = 512,
    h: int = 512,
    quick: bool = False,
) -> ExperimentResult:
    chain = gemm_chain(1, m, n, k, h, name="fig7")
    space = generate_space(chain, gpu)
    stats = space.stats
    rows = []
    prev = None
    for stage, count in stats.funnel():
        cut = "" if prev is None else f"-{100 * (1 - count / prev):.0f}%"
        rows.append([stage, count, cut])
        prev = count
    meta = {
        "expressions": stats.expressions,
        "classes_after_rule1": stats.classes_rule1,
        "classes_after_rule2": stats.classes_rule2,
        "final_candidates": len(space.candidates),
        "reduction_total": f"{stats.original / max(stats.after_rule4, 1):.0f}x",
    }
    return ExperimentResult(
        name=f"Fig.7 pruning funnel (GEMM chain M=N={m}, K=H={k}) on {gpu.name}",
        headers=["stage", "#candidates", "cut"],
        rows=rows,
        meta=meta,
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
