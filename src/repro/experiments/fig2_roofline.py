"""Fig. 2: MatMul transitions from compute-bound to memory-bound as K/M
shrinks at constant total work (M*N*K = 1024^3, M = N).

For each K/M ratio the experiment reports the theoretical ops/byte ratio
``phi`` for a 256-tile (left axis of the paper's figure), the GPU ridge
point P/W, and the *measured* (simulated) throughput of the best library
kernel (right axis). The crossover — throughput tracking ``phi x W`` below
the ridge, saturating above it — is the MBCI phenomenon motivating the
whole paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.library import gemm_kernel
from repro.experiments.common import ExperimentResult
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import A100, GPUSpec

__all__ = ["phi", "matmul_points", "run", "main"]


def phi(tile: int, m: int, n: int, k: int) -> float:
    """The paper's compute/memory ratio for a (tile x tile) thread block:
    ``phi = 2 TM TN K / (2 TM TN + TM K + TN K)`` (in ops per element;
    multiplied by dtype below when compared against P/W in ops/byte)."""
    tm = tn = tile
    return (2.0 * tm * tn * k) / (2.0 * tm * tn + tm * k + tn * k)


@dataclass(frozen=True)
class RooflinePoint:
    k_over_m: float
    m: int
    k: int
    phi_ops_per_byte: float
    tflops: float
    bound: str


def matmul_points(
    gpu: GPUSpec = A100,
    tile: int = 256,
    total_work: int = 1024**3,
    num_points: int = 12,
    seed: int = 0,
) -> list[RooflinePoint]:
    """Sweep K/M from 1 down to ~1/256 at constant M*N*K."""
    points: list[RooflinePoint] = []
    sim = GPUSimulator(gpu, seed=seed, jitter=False)
    ratios = [2.0 ** (-i) for i in range(num_points)]
    for r in ratios:
        # M = N, K = r*M, M^2 * K = total -> M = (total / r)^(1/3)
        m = int(round((total_work / r) ** (1.0 / 3.0) / 16) * 16)
        m = max(m, 64)
        k = max(int(round(r * m / 16) * 16), 16)
        kernel = gemm_kernel(f"roofline_m{m}k{k}", 1, m, m, k, gpu, seed=seed)
        timing = sim.time_kernel(kernel)
        tflops = kernel.flops / timing.total / 1e12
        ops_per_byte = phi(tile, m, m, k) / 2.0  # fp16: 2 bytes/element
        points.append(
            RooflinePoint(
                k_over_m=k / m,
                m=m,
                k=k,
                phi_ops_per_byte=ops_per_byte,
                tflops=tflops,
                bound=timing.bound,
            )
        )
    return points


def run(gpu: GPUSpec = A100, seed: int = 0, quick: bool = False) -> ExperimentResult:
    points = matmul_points(gpu, num_points=6 if quick else 12, seed=seed)
    ridge = gpu.flops_per_byte
    rows = [
        [
            f"{p.k_over_m:.4f}",
            p.m,
            p.k,
            f"{p.phi_ops_per_byte:.1f}",
            f"{p.tflops:.1f}",
            p.bound,
        ]
        for p in points
    ]
    # Shape checks the paper's figure makes visually:
    high = [p for p in points if p.phi_ops_per_byte > ridge]
    low = [p for p in points if p.phi_ops_per_byte < ridge / 2]
    meta = {
        "ridge_ops_per_byte(P/W)": f"{ridge:.1f}",
        "compute_bound_tflops": f"{max((p.tflops for p in high), default=0):.1f}",
        "memory_bound_tflops": f"{min((p.tflops for p in low), default=0):.1f}",
    }
    return ExperimentResult(
        name=f"Fig.2 roofline transition on {gpu.name}",
        headers=["K/M", "M=N", "K", "ops/byte(phi)", "TFLOPS", "bound"],
        rows=rows,
        meta=meta,
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
