"""Fig. 8: sub-graph performance of fused batch GEMM chains (a, b) and
self-attention modules (c, d) on A100 and RTX 3080, normalized to PyTorch.

Baselines in legend order: PyTorch, Ansor, BOLT (sm80 only, dual-GEMM
fusion only), FlashAttention (attention with K == H only), MCFuser-Chimera
and MCFuser. Missing bars print as ``-``, mirroring the paper's gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import BaselineResult, default_baselines
from repro.experiments.common import ExperimentResult
from repro.gpu.specs import A100, GPUSpec
from repro.ir.chain import ComputeChain
from repro.utils import geomean
from repro.workloads import attention_workloads, gemm_workloads

__all__ = ["SubgraphPanel", "run_panel", "run", "main"]

_QUICK_GEMM = ["G1", "G4", "G8", "G12"]
_QUICK_ATTN = ["S1", "S4", "S9"]


@dataclass
class SubgraphPanel:
    """One panel of Fig. 8: normalized speedups per workload x baseline."""

    gpu: str
    workload_kind: str
    baselines: list[str]
    speedups: dict[str, dict[str, float | None]] = field(default_factory=dict)
    times: dict[str, dict[str, float | None]] = field(default_factory=dict)
    tuning: dict[str, dict[str, float | None]] = field(default_factory=dict)

    def average(self, baseline: str) -> float:
        vals = [
            row[baseline]
            for row in self.speedups.values()
            if row.get(baseline) is not None
        ]
        return geomean([v for v in vals if v]) if vals else float("nan")


def run_panel(
    workloads: list[ComputeChain],
    gpu: GPUSpec,
    kind: str,
    seed: int = 0,
    ansor_trials: int = 1000,
) -> SubgraphPanel:
    baselines = default_baselines(ansor_trials=ansor_trials)
    panel = SubgraphPanel(
        gpu=gpu.name, workload_kind=kind, baselines=[b.name for b in baselines]
    )
    for chain in workloads:
        results: dict[str, BaselineResult | None] = {}
        for b in baselines:
            results[b.name] = b.run_chain(chain, gpu, seed=seed)
        pt = results["PyTorch"]
        assert pt is not None
        panel.times[chain.name] = {
            k: (r.time if r else None) for k, r in results.items()
        }
        panel.tuning[chain.name] = {
            k: (r.tuning_seconds if r else None) for k, r in results.items()
        }
        panel.speedups[chain.name] = {
            k: (pt.time / r.time if r and r.time not in (0.0, float("inf")) else None)
            for k, r in results.items()
        }
    return panel


def _panel_to_result(panel: SubgraphPanel, title: str) -> ExperimentResult:
    rows = []
    for wl, row in panel.speedups.items():
        rows.append(
            [wl] + [f"{row[b]:.2f}" if row.get(b) else "-" for b in panel.baselines]
        )
    rows.append(
        ["avg"]
        + [
            f"{panel.average(b):.2f}" if panel.average(b) == panel.average(b) else "-"
            for b in panel.baselines
        ]
    )
    return ExperimentResult(
        name=title, headers=["workload"] + panel.baselines, rows=rows,
        meta={"normalized_to": "PyTorch"},
    )


def run(
    gpu: GPUSpec = A100,
    kind: str = "gemm",
    seed: int = 0,
    quick: bool = False,
    ansor_trials: int = 1000,
) -> ExperimentResult:
    """One Fig. 8 panel. ``kind`` is ``"gemm"`` (a/b) or ``"attention"`` (c/d)."""
    if kind == "gemm":
        workloads = gemm_workloads(_QUICK_GEMM if quick else None)
        letter = "a" if gpu.name == "A100" else "b"
    elif kind == "attention":
        workloads = attention_workloads(_QUICK_ATTN if quick else None)
        letter = "c" if gpu.name == "A100" else "d"
    else:
        raise ValueError(f"kind must be 'gemm' or 'attention', got {kind!r}")
    panel = run_panel(workloads, gpu, kind, seed=seed, ansor_trials=ansor_trials)
    result = _panel_to_result(
        panel, f"Fig.8({letter}) {kind} chains on {gpu.name} (speedup vs PyTorch)"
    )
    result.meta["panel"] = panel
    return result


def main() -> None:  # pragma: no cover - console entry
    from repro.gpu.specs import RTX3080

    for gpu in (A100, RTX3080):
        for kind in ("gemm", "attention"):
            run(gpu, kind).print()


if __name__ == "__main__":  # pragma: no cover
    main()
