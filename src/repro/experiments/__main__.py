"""Run every experiment driver in sequence: ``python -m repro.experiments``."""

from repro.experiments import ALL_EXPERIMENTS


def main() -> None:  # pragma: no cover - console entry
    for name, module in ALL_EXPERIMENTS.items():
        module.main()


if __name__ == "__main__":  # pragma: no cover
    main()
