"""Fig. 10 — shared-memory estimation accuracy (quadrant analysis)."""

from conftest import QUICK, show

from repro.experiments import fig10_shmem
from repro.gpu.specs import A100


def test_fig10_shared_memory_validation(run_once):
    result = run_once(fig10_shmem.run, A100, quick=QUICK)
    show(result)
    shares = {q: float(row[1].rstrip("%")) for row, q in zip(result.rows, ("I", "II", "III", "IV"))}
    # Paper: I=60.6%, II=8.2%, III=30.0%, IV=1.2%; >90% correct.
    assert shares["I"] + shares["III"] > 85.0
    assert shares["II"] < 15.0
    assert shares["IV"] < 5.0
