"""Microbenchmark — cold vs warm tuning through the schedule cache.

Not a paper figure: this measures the caching subsystem itself. One tuning
run of a Table II-sized GEMM chain is timed cold (full enumerate → prune →
search pipeline, result persisted) and warm (signature lookup + schedule
rebuild from the JSON store). The warm path must be dramatically cheaper in
*wall-clock* time and free in *simulated* tuning time.

Run: pytest benchmarks/test_cache_micro.py --benchmark-only -q
"""

import time

from repro.cache import ScheduleCache
from repro.config import SessionConfig
from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.tuner import MCFuserTuner
from repro.utils import fmt_time, format_table

CONFIG = SessionConfig.make(seed=0)


def _chain():
    return gemm_chain(1, 512, 256, 64, 128, name="cache-bench")


def test_cold_vs_warm_tuning(tmp_path, run_once):
    cache_dir = tmp_path / "bench-cache"

    def cold():
        tuner = MCFuserTuner(A100, cache=ScheduleCache(cache_dir), config=CONFIG)
        start = time.perf_counter()
        report = tuner.tune(_chain())
        return report, time.perf_counter() - start

    cold_report, cold_wall = run_once(cold)

    # Fresh cache instance on the same directory — a new process would see
    # exactly this: disk store only, nothing in memory.
    warm_tuner = MCFuserTuner(A100, cache=ScheduleCache(cache_dir), config=CONFIG)
    start = time.perf_counter()
    warm_report = warm_tuner.tune(_chain())
    warm_wall = time.perf_counter() - start

    print()
    print(format_table(
        ["run", "wall clock", "simulated tuning", "measurements", "cache"],
        [
            ["cold", fmt_time(cold_wall), fmt_time(cold_report.tuning_seconds),
             cold_report.search.num_measurements, "miss"],
            ["warm", fmt_time(warm_wall), fmt_time(warm_report.tuning_seconds),
             warm_report.search.num_measurements, "hit"],
        ],
    ))
    print(f"wall-clock speedup: {cold_wall / warm_wall:.0f}x")

    assert not cold_report.cache_hit and warm_report.cache_hit
    assert warm_report.tuning_seconds == 0.0
    assert warm_report.search.num_measurements == 0
    # The warm path skips enumeration entirely; even allowing generous
    # scheduling noise it must be far cheaper than the full pipeline.
    assert warm_wall < cold_wall / 2
    assert warm_report.best_time == cold_report.best_time
