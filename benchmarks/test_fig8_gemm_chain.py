"""Fig. 8(a)/(b) — batch GEMM chain performance on A100 and RTX 3080.

The full panel (G1-G12, all baselines, 1000 Ansor trials) runs in a few
minutes; the benchmark uses a reduced Ansor budget to stay snappy while
preserving every workload row.
"""

import math

from conftest import QUICK, show

from repro.experiments import fig8_subgraph
from repro.gpu.specs import A100, RTX3080

ANSOR_TRIALS = 64 if QUICK else 256  # reduced budget for the benchmark harness


def _check_panel(result):
    panel = result.meta["panel"]
    averages = {b: panel.average(b) for b in panel.baselines}
    best = max(v for v in averages.values() if not math.isnan(v))
    assert averages["MCFuser"] == best
    assert averages["MCFuser"] > 1.5


def test_fig8a_gemm_chain_a100(run_once):
    result = run_once(
        fig8_subgraph.run, A100, "gemm", quick=QUICK, ansor_trials=ANSOR_TRIALS
    )
    show(result)
    _check_panel(result)


def test_fig8b_gemm_chain_rtx3080(run_once):
    result = run_once(
        fig8_subgraph.run, RTX3080, "gemm", quick=QUICK, ansor_trials=ANSOR_TRIALS
    )
    show(result)
    panel = result.meta["panel"]
    # BOLT does not build for sm86 — its column must be empty (paper §VI-B1).
    assert all(row["BOLT"] is None for row in panel.speedups.values())
    _check_panel(result)
