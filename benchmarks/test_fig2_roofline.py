"""Fig. 2 — MatMul compute->memory-bound transition under a K/M sweep."""

from conftest import show

from repro.experiments import fig2_roofline
from repro.gpu.specs import A100


def test_fig2_roofline(run_once):
    # Always the full sweep: the shape assertions below compare the two
    # ends of the K/M range, and the sweep is cheap even for the smoke job.
    result = run_once(fig2_roofline.run, A100)
    show(result)
    points = result.meta
    ridge = float(points["ridge_ops_per_byte(P/W)"])
    assert 195 < ridge < 205
    # Shape: throughput at the compute-bound end dwarfs the deep memory-bound tail.
    rows = result.rows
    assert float(rows[0][4]) > 3 * float(rows[-1][4])
