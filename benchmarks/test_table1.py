"""Table I — derived capability comparison of the implemented systems."""

from conftest import show

from repro.experiments import table1_comparison


def test_table1_capability_matrix(run_once):
    result = run_once(table1_comparison.run)
    show(result)
    checks = result.meta["probe_checks"]
    assert checks["bolt_fuses_gemm_chain"] and not checks["bolt_fuses_attention"]
    assert checks["fa_supports_attention"] and not checks["fa_supports_k_neq_h"]
    ours = [r for r in result.rows if "MCFuser (ours)" in r[0]][0]
    assert ours[1] == "Yes" and ours[4] == "short"
