"""Observability overhead microbenchmark: the disabled tracer must be free.

Every hot path (tuner, search loop, evaluator, runtime, interpreter) now
calls ``get_tracer().span(...)``; when tracing is off those calls return the
``NOOP_SPAN`` singleton without allocating. This module bounds the cost of
that instrumentation on the *warm-tune* path — a cache-hit tune, the
latency-critical serving operation — and records the numbers into the
``BENCH_obs.json`` artifact.

Methodology (flake-resistant): rather than differencing two noisy wall-clock
timings, we (a) time the warm tune with tracing disabled, (b) count how many
spans one *traced* warm tune actually records, and (c) microbenchmark the
per-call cost of a disabled ``span()``. The instrumentation tax is then
bounded by ``spans_per_tune * noop_cost``, which must stay under
``MAX_OVERHEAD`` of the warm-tune time. The enabled-tracer timing is
recorded alongside for context but not asserted — it includes real
recording work, not overhead of the disabled path.
"""

import time

from conftest import record_bench

from repro.cache.cache import ScheduleCache
from repro.config import SessionConfig
from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.obs import disable_tracing, enable_tracing, get_tracer
from repro.search.tuner import MCFuserTuner

#: Acceptance ceiling: disabled-tracer tax on a warm tune.
MAX_OVERHEAD = 0.05

#: Fast tuner budget — the cold tune only populates the cache.
QUICK_CONFIG = SessionConfig.make(
    seed=0, population_size=64, top_n=4, max_rounds=3, min_rounds=2
)

WARM_REPEATS = 50
NOOP_CALLS = 20_000


def _make_tuner():
    chain = gemm_chain(2, 96, 80, 64, 48, name="obs-warm-gemm")
    tuner = MCFuserTuner(A100, cache=ScheduleCache(path=None), config=QUICK_CONFIG)
    report = tuner.tune(chain)  # cold tune populates the in-memory cache
    assert not report.cache_hit
    return tuner, chain


def _time_warm_tunes(tuner, chain, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = tuner.tune(chain)
        best = min(best, time.perf_counter() - t0)
        assert report.cache_hit
    return best


def _noop_span_cost(calls):
    tracer = get_tracer()
    t0 = time.perf_counter()
    for _ in range(calls):
        with tracer.span("bench", k=1) as span:
            span.set(v=2)
    return (time.perf_counter() - t0) / calls


def test_disabled_tracer_overhead(run_once):
    tuner, chain = _make_tuner()

    def measure():
        disable_tracing()
        warm_disabled = _time_warm_tunes(tuner, chain, WARM_REPEATS)
        noop_cost = _noop_span_cost(NOOP_CALLS)

        tracer = enable_tracing()
        try:
            t0 = time.perf_counter()
            report = tuner.tune(chain)
            warm_enabled = time.perf_counter() - t0
            assert report.cache_hit
            spans_per_tune = len(tracer.recorder)
        finally:
            disable_tracing()
        return warm_disabled, warm_enabled, noop_cost, spans_per_tune

    warm_disabled, warm_enabled, noop_cost, spans_per_tune = run_once(measure)
    bound = spans_per_tune * noop_cost
    overhead = bound / warm_disabled
    record_bench(
        "obs",
        "obs_overhead[warm-tune]",
        workload=chain.name,
        warm_tune_disabled_seconds=warm_disabled,
        warm_tune_enabled_seconds=warm_enabled,
        noop_span_seconds=noop_cost,
        spans_per_warm_tune=spans_per_tune,
        overhead_bound=overhead,
        max_overhead=MAX_OVERHEAD,
    )
    print(f"\nwarm tune {warm_disabled * 1e6:.0f}us  "
          f"noop span {noop_cost * 1e9:.0f}ns x {spans_per_tune} spans  "
          f"overhead bound {overhead * 100:.2f}% (limit {MAX_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_OVERHEAD, (
        f"disabled-tracer instrumentation tax {overhead * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% of the warm-tune path"
    )
