"""Table IV — tuning times for sub-graphs and end-to-end models."""

from conftest import QUICK, show

from repro.experiments import table4_tuning_time
from repro.gpu.specs import A100
from repro.utils import format_table


def test_table4_tuning_times(run_once):
    result = run_once(table4_tuning_time.run, A100, quick=QUICK)
    show(result)
    print()
    print(format_table(result.meta["e2e_headers"], result.meta["e2e_rows"]))

    sub = result.meta["subgraph_times"]
    gemm = sub["GEMM Chain"]
    # Paper: 88s / 4895s / 29s / 35s -> MCFuser ~139x faster than Ansor.
    assert gemm["Ansor"] / gemm["MCFuser"] > 20
    assert gemm["MCFuser"] < 120
    attn = sub["Self Attention"]
    assert attn["Ansor"] / attn["MCFuser"] > 20

    e2e = result.meta["e2e_times"]
    for model, times in e2e.items():
        # MCFuser+Relay adds little over Relay; MCFuser+Ansor tunes faster than Ansor.
        assert times["mcfuser+relay"] < times["ansor"] * 0.1
        assert times["mcfuser+ansor"] < times["ansor"]
