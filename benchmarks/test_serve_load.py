"""Serving-layer benchmark: Zipf replay load against the compile service.

This is the PR's acceptance artifact: 32 concurrent clients over 8
distinct zoo signatures (quick mode: 8 clients over 4). Beyond timing the
run, it *asserts* the serving guarantees — each signature tuned exactly
once, coalesce rate >= 75%, a reported warm-hit p50, and telemetry
counters that reconcile with the generator's request count — and records
throughput/latency/hit-rate into ``BENCH_serve.json``.
"""

from conftest import QUICK, record_bench, show

from repro.experiments import serve_load


def test_serve_load(run_once):
    clients = 8 if QUICK else 32
    signatures = 4 if QUICK else 8
    result = run_once(
        serve_load.run,
        clients=clients,
        requests_per_client=4 if QUICK else 8,
        signatures=signatures,
        quick=QUICK,
    )
    show(result)
    m = result.meta

    # acceptance: exactly one tune per distinct signature (full coalescing)
    assert m["tunes"] == signatures
    assert all(row[2] == 1 for row in result.rows), "a signature tuned twice"
    if not QUICK:
        # acceptance: >= 75% of cold-path requests coalesced onto a running
        # tune. Quick mode shrinks the cold window below what a meaningful
        # rate floor needs, so the smoke job checks everything but this.
        assert m["coalesce_rate"] >= 0.75
    # acceptance: warm-hit p50 latency is measured and sane
    assert m["warm_p50_us"] > 0
    # acceptance: the service accounted for every issued request
    assert m["reconciled"]
    assert m["errors"] == 0 and m["failed_requests"] == 0 and m["shed"] == 0

    record_bench(
        "serve",
        "test_serve_load",
        clients=m["clients"],
        requests=m["requests"],
        signatures=m["signatures"],
        throughput_rps=m["throughput_rps"],
        coalesce_rate=m["coalesce_rate"],
        warm_p50_us=m["warm_p50_us"],
        warm_p95_us=m["warm_p95_us"],
        cold_p50_ms=m["cold_p50_ms"],
        cold_p95_ms=m["cold_p95_ms"],
        tunes=m["tunes"],
        cache_hits=m["cache_hits"],
    )
