"""Dynamic-shape serving benchmark: ragged Zipf mix over shape buckets.

The acceptance artifact for shape-bucketed serving (issue 8): concurrent
clients replay a Zipf mix of distinct sequence lengths (quick mode: a
smaller mix) against a ``dynamic="buckets"`` compile service. Beyond
timing, it *asserts* the bucketing guarantees — every (family, bucket)
tuned exactly once, total tunes bounded by the number of power-of-two
buckets the length range spans, a >= 90% warm hit rate in full mode, and
every served schedule numerically verified at its exact request shape
against the scalar interpreter — and records hit rate and
tunes-per-1k-requests into ``BENCH_buckets.json``.

Hit-rate and tune-count metrics are independent of the per-tune search
budget, so both modes run a reduced tuner budget and the full mode spends
its time on a larger request mix instead.
"""

from conftest import QUICK, record_bench, show

from repro.config import SessionConfig
from repro.experiments import serve_load

#: moderate search budget: ceiling tunes at m=1024 are still seconds, and
#: none of the asserted serving metrics depend on schedule quality.
CONFIG = SessionConfig.make(
    population_size=128, top_n=4, max_rounds=3, min_rounds=1,
    dynamic="buckets", serve_workers=4,
)


def test_serve_buckets(run_once):
    lengths = 10 if QUICK else 32
    clients = 8 if QUICK else 32
    requests = 8 if QUICK else 32
    result = run_once(
        serve_load.run,
        clients=clients,
        requests_per_client=requests,
        lengths=lengths,
        quick=QUICK,
        config=CONFIG,
    )
    show(result)
    m = result.meta

    assert m["distinct_lengths"] == lengths
    # acceptance: one ceiling tune per (family, bucket), never more
    assert m["max_tunes_per_bucket"] == 1, m["tunes_per_bucket"]
    # acceptance: per family, at most ceil(log2(spread)) + 1 buckets tuned
    per_family: dict[str, int] = {}
    for key, tunes in m["tunes_per_bucket"].items():
        family = key.split("@", 1)[0]
        per_family[family] = per_family.get(family, 0) + tunes
    assert all(t <= m["bucket_bound"] for t in per_family.values()), per_family
    # acceptance: every served schedule passes numeric verification at the
    # exact request shape (scalar interpreter vs the unfused reference)
    assert m["verify_failures"] == [], m["verify_failures"]
    assert m["verified"] > 0
    # acceptance: the service accounted for every issued request
    assert m["reconciled"]
    assert m["errors"] == 0 and m["failed_requests"] == 0 and m["shed"] == 0
    if not QUICK:
        # acceptance: >= 32 distinct lengths serve >= 90% warm. Quick mode
        # clamps to 32 total requests — too few to amortize the cold burst.
        assert m["warm_hit_rate"] >= 0.90, m["warm_hit_rate"]

    record_bench(
        "buckets",
        "test_serve_buckets",
        clients=m["clients"],
        requests=m["requests"],
        distinct_lengths=m["distinct_lengths"],
        distinct_buckets=m["distinct_buckets"],
        bucket_bound=m["bucket_bound"],
        warm_hit_rate=m["warm_hit_rate"],
        bucket_hits=m["bucket_hits"],
        tunes=m["tunes"],
        tunes_per_1k_requests=m["tunes_per_1k_requests"],
        max_tunes_per_bucket=m["max_tunes_per_bucket"],
        throughput_rps=m["throughput_rps"],
        warm_p50_us=m["warm_p50_us"],
        verified=m["verified"],
    )
