"""Benchmark harness conventions.

Every paper table/figure has one benchmark module. Each benchmark runs the
corresponding experiment driver once under ``pytest-benchmark`` (pedantic
mode, 1 round — the drivers are deterministic end-to-end pipelines, not
microseconds-scale functions) and prints the reproduced rows so
``pytest benchmarks/ --benchmark-only`` regenerates every result of the
paper's evaluation section in one command.

Setting ``REPRO_BENCH_QUICK=1`` switches the heavy modules to the drivers'
``quick`` workload lists and reduced Ansor budgets — the CI smoke job uses
this so the perf harnesses are exercised on every push without the full
runtime. Leave it unset for the paper-faithful numbers.

**Summary artifacts.** Each session writes per-suite JSON summaries —
``BENCH_core.json`` (the paper-reproduction suites), ``BENCH_serve.json``
(the serving load generator), ``BENCH_exec.json`` (the execution-backend
microbenchmark) and ``BENCH_obs.json`` (the disabled-tracer overhead
bound) — into ``$REPRO_BENCH_OUT`` (default:
this directory). Wall time is recorded for every benchmark run through the
``run_once`` fixture; modules can attach richer metrics (throughput,
hit rates, ...) with :func:`record_bench`. CI uploads both files so the
perf trajectory is inspectable across PRs.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

#: Quick mode for the CI smoke job (reduced workload lists + budgets).
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Where the per-suite summary artifacts are written.
ARTIFACT_DIR = os.environ.get("REPRO_BENCH_OUT") or os.path.dirname(__file__)

#: suite name -> {benchmark name -> metrics dict}; flushed at session end.
_RECORDS: dict[str, dict[str, dict]] = {}


def record_bench(suite: str, name: str, **metrics) -> None:
    """Attach metrics to this session's ``BENCH_<suite>.json`` artifact.

    ``suite`` is ``"core"`` or ``"serve"``; later calls with the same
    ``name`` merge (and override) keys, so a module can record its wall
    time through ``run_once`` and richer numbers separately.
    """
    _RECORDS.setdefault(suite, {}).setdefault(name, {}).update(metrics)


def _suite_for(node) -> str:
    """The serve load generator feeds the serving artifact, the exec-backend
    microbenchmark the exec one; the paper reproduction modules feed core."""
    name = node.module.__name__
    if "obs" in name:
        return "obs"
    if "buckets" in name:
        return "buckets"
    if "serve" in name:
        return "serve"
    if "compiled" in name:
        return "compiled"
    if "cost_model" in name:
        return "tuning"
    if "exec" in name:
        return "exec"
    return "core"


@pytest.fixture
def run_once(benchmark, request):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        t0 = time.perf_counter()
        out = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        record_bench(
            _suite_for(request.node),
            request.node.name,
            seconds=time.perf_counter() - t0,
        )
        return out

    return _run


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<suite>.json`` per suite that actually ran."""
    for suite, benchmarks in _RECORDS.items():
        doc = {
            "schema": 1,
            "suite": suite,
            "quick": QUICK,
            "created_at": time.time(),
            "python": platform.python_version(),
            "benchmarks": benchmarks,
        }
        path = os.path.join(ARTIFACT_DIR, f"BENCH_{suite}.json")
        try:
            os.makedirs(ARTIFACT_DIR, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
        except OSError:  # an unwritable artifact dir must not fail the run
            pass


def show(result) -> None:
    """Print an ExperimentResult table beneath the benchmark output."""
    print()
    print(result.name)
    print(result.table())
