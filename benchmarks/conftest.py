"""Benchmark harness conventions.

Every paper table/figure has one benchmark module. Each benchmark runs the
corresponding experiment driver once under ``pytest-benchmark`` (pedantic
mode, 1 round — the drivers are deterministic end-to-end pipelines, not
microseconds-scale functions) and prints the reproduced rows so
``pytest benchmarks/ --benchmark-only`` regenerates every result of the
paper's evaluation section in one command.

Setting ``REPRO_BENCH_QUICK=1`` switches the heavy modules to the drivers'
``quick`` workload lists and reduced Ansor budgets — the CI smoke job uses
this so the perf harnesses are exercised on every push without the full
runtime. Leave it unset for the paper-faithful numbers.
"""

from __future__ import annotations

import os

import pytest

#: Quick mode for the CI smoke job (reduced workload lists + budgets).
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


def show(result) -> None:
    """Print an ExperimentResult table beneath the benchmark output."""
    print()
    print(result.name)
    print(result.table())
