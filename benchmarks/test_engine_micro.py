"""Microbenchmark — the streaming engine builds each schedule exactly once.

Not a paper figure: this measures the engine refactor itself. The
pre-engine implementation paid for every schedule twice — ``generate_space``
built one per enumerated candidate to validate it and threw it away, then
the tuner rebuilt one per distinct candidate the search estimated or
measured. The streaming pipeline builds each schedule once, inside the
validation stage, and carries it through to the model and the measurement
executor.

The benchmark counts *actual* ``build_schedule`` invocations during a full
tune of the Fig. 7 GEMM chain and asserts the total is strictly below what
the old implementation would have spent (pipeline builds + one rebuild per
distinct schedule the search touched).

Run: pytest benchmarks/test_engine_micro.py --benchmark-only -q -rA
"""

from conftest import show

import repro.search.engine.pipeline as pipeline_mod
import repro.search.space as space_mod
from repro.config import SessionConfig
from repro.experiments.common import ExperimentResult
from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.space import SearchSpace
from repro.search.tuner import MCFuserTuner
from repro.tiling.schedule import build_schedule as real_build


def test_schedules_built_once(run_once, monkeypatch):
    counts = {"pipeline": 0, "tuner_path": 0}

    def pipeline_build(*args, **kwargs):
        counts["pipeline"] += 1
        return real_build(*args, **kwargs)

    def space_build(*args, **kwargs):
        counts["tuner_path"] += 1
        return real_build(*args, **kwargs)

    monkeypatch.setattr(pipeline_mod, "build_schedule", pipeline_build)
    monkeypatch.setattr(space_mod, "build_schedule", space_build)

    touched: set[tuple] = set()
    real_schedule_for = SearchSpace.schedule_for

    def tracking_schedule_for(self, cand, optimize=True):
        touched.add(cand.key)
        return real_schedule_for(self, cand, optimize=optimize)

    monkeypatch.setattr(SearchSpace, "schedule_for", tracking_schedule_for)

    chain = gemm_chain(1, 1024, 1024, 512, 512, name="engine-micro")
    report = run_once(
        MCFuserTuner(A100, config=SessionConfig.make(seed=0)).tune, chain
    )

    new_builds = counts["pipeline"] + counts["tuner_path"]
    # What the pre-engine implementation spent: every enumerated candidate
    # built for validation, plus one rebuild per distinct schedule the
    # search actually requested.
    old_builds = counts["pipeline"] + len(touched)

    show(
        ExperimentResult(
            name="Engine micro: build_schedule invocations (GEMM chain, full tune)",
            headers=["where", "builds"],
            rows=[
                ["pipeline (validation, built once)", counts["pipeline"]],
                ["search path (rebuilds)", counts["tuner_path"]],
                ["total (streaming engine)", new_builds],
                ["total (pre-engine, reconstructed)", old_builds],
                ["distinct schedules searched", len(touched)],
            ],
        )
    )

    assert report.best_time > 0
    assert len(touched) > 0
    # The acceptance bar: strictly fewer builds than the old build-twice path.
    assert counts["tuner_path"] == 0
    assert new_builds < old_builds
