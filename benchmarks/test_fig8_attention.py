"""Fig. 8(c)/(d) — self-attention module performance on A100 and RTX 3080."""

import math

from conftest import QUICK, show

from repro.experiments import fig8_subgraph
from repro.gpu.specs import A100, RTX3080

ANSOR_TRIALS = 64 if QUICK else 256


def _check_panel(result, min_avg):
    panel = result.meta["panel"]
    averages = {b: panel.average(b) for b in panel.baselines}
    best = max(v for v in averages.values() if not math.isnan(v))
    assert averages["MCFuser"] == best
    assert averages["MCFuser"] > min_avg
    # FlashAttention supports every Table III module (K == H throughout)...
    assert all(row["FlashAttention"] is not None for row in panel.speedups.values())
    # ...but MCFuser outperforms it on average (paper: ~3x).
    assert averages["MCFuser"] > 1.5 * averages["FlashAttention"]


def test_fig8c_attention_a100(run_once):
    result = run_once(
        fig8_subgraph.run, A100, "attention", quick=QUICK, ansor_trials=ANSOR_TRIALS
    )
    show(result)
    _check_panel(result, min_avg=3.0)


def test_fig8d_attention_rtx3080(run_once):
    result = run_once(
        fig8_subgraph.run, RTX3080, "attention", quick=QUICK, ansor_trials=ANSOR_TRIALS
    )
    show(result)
    _check_panel(result, min_avg=2.0)
