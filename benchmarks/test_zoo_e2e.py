"""Workload-zoo end-to-end benchmark: the general partitioner's scenarios.

Quick mode (``REPRO_BENCH_QUICK=1``) runs one representative per new zoo
family; the full run covers every model-level workload in the registry.
"""

from conftest import QUICK, show

from repro.experiments import zoo_e2e


def test_zoo_end_to_end(run_once):
    result = run_once(zoo_e2e.run, quick=QUICK)
    assert len(result.rows) >= (4 if QUICK else 10)
    # every zoo model must fuse at least one group, except models whose
    # point is a rejection diagnostic would still fuse their clean branch
    for row in result.rows:
        model, _, groups = row[0], row[1], row[2]
        assert groups >= 1, f"{model} fused nothing"
    # fusion must not lose to the library path on any zoo model
    for row in result.rows:
        assert float(row[-1]) >= 1.0, f"{row[0]} regressed vs relay"
    show(result)
