"""Fig. 7 — pruning funnel on the paper's GEMM-chain example."""

from conftest import show

from repro.experiments import fig7_pruning


def test_fig7_pruning_funnel(run_once):
    result = run_once(fig7_pruning.run)
    show(result)
    counts = [r[1] for r in result.rows]
    assert counts[0] == 109_051_904  # the paper's raw-space size
    assert counts[-1] < 10_000  # "reduced from 1e8 to 1e4"
    assert counts == sorted(counts, reverse=True)
