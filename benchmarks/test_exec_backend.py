"""Execution-backend microbenchmark: vectorized vs scalar interpreter.

Measures functional execution of tuned-style schedules for the attention
module and the three-GEMM chain on both backends, asserts the acceptance
criterion — the vectorized backend is at least ``MIN_SPEEDUP`` x faster
while agreeing with ``ComputeChain.reference`` — and records the numbers
into the ``BENCH_exec.json`` artifact (uploaded by CI next to the core and
serve summaries).

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the shapes so the scalar
interpreter stays under ~1 s per workload; full mode uses the
paper-scale sequence lengths.
"""

import time

import numpy as np
import pytest

from conftest import QUICK, record_bench

from repro.codegen.interpreter import execute_schedule, resolve_exec_backend
from repro.ir.chain import attention_chain, gemm3_chain
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

#: Acceptance floor: vectorized must beat scalar by at least this factor.
MIN_SPEEDUP = 10.0

#: fp32 agreement with the unfused reference.
RTOL, ATOL = 1e-3, 1e-4


def _attention_case():
    """FlashAttention-style flat tiling over a multi-head attention module."""
    m = 512 if QUICK else 1024
    chain = attention_chain(8, m, m, 32, 32, name=f"bench-attn-{m}")
    tiles = {"m": 16, "n": 16, "k": 32, "h": 32}
    return chain, "mn(k,h)", tiles


def _gemm3_case():
    """Three chained GEMMs (MLP stack) under a deep tiling."""
    m = 1024
    batch = 1 if QUICK else 2
    chain = gemm3_chain(batch, m, 256, 64, 64, 64, name=f"bench-g3-b{batch}")
    tiles = {"m": 16, "n": 16, "k": 16, "h": 64, "p": 64}
    return chain, "mnkhp", tiles


CASES = {"attention": _attention_case, "gemm3": _gemm3_case}


def _time_backend(schedule, inputs, backend, repeats):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = execute_schedule(schedule, inputs, backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.mark.parametrize("case", sorted(CASES))
def test_vectorized_speedup(case, run_once):
    chain, expr, tiles = CASES[case]()
    schedule = build_schedule(chain, TilingExpr.parse(expr), tiles)
    assert resolve_exec_backend(schedule, "vectorized") == "vectorized"
    inputs = chain.random_inputs(0)
    ref = chain.reference(inputs)[chain.output]

    def measure():
        # min-of-3 for the fast backend (dominated by noise), single shot
        # for the scalar interpreter (seconds-scale, self-averaging).
        t_vec, out_vec = _time_backend(schedule, inputs, "vectorized", repeats=3)
        t_scalar, out_scalar = _time_backend(schedule, inputs, "scalar", repeats=1)
        return t_vec, t_scalar, out_vec, out_scalar

    t_vec, t_scalar, out_vec, out_scalar = run_once(measure)
    speedup = t_scalar / t_vec
    np.testing.assert_allclose(
        out_vec[chain.output], ref, rtol=RTOL, atol=ATOL,
        err_msg=f"vectorized diverged from reference on {chain.name}",
    )
    np.testing.assert_allclose(
        out_vec[chain.output], out_scalar[chain.output], rtol=RTOL, atol=ATOL,
        err_msg=f"backend parity broke on {chain.name}",
    )
    record_bench(
        "exec",
        f"exec_backend[{case}]",
        workload=chain.name,
        schedule=schedule.describe(),
        grid_cells=schedule.grid_size,
        scalar_seconds=t_scalar,
        vectorized_seconds=t_vec,
        speedup=speedup,
        min_speedup=MIN_SPEEDUP,
        quick=QUICK,
    )
    print(f"\n{chain.name}: scalar {t_scalar * 1e3:.1f}ms  "
          f"vectorized {t_vec * 1e3:.1f}ms  speedup {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"{case}: vectorized backend only {speedup:.1f}x faster than scalar "
        f"(need >= {MIN_SPEEDUP}x)"
    )
