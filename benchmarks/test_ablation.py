"""Ablation bench: each design choice must not hurt (and some must help)."""

from conftest import QUICK, show

from repro.experiments import ablation
from repro.gpu.specs import A100


def test_ablation_design_choices(run_once):
    result = run_once(ablation.run, A100, quick=QUICK)
    show(result)
    rows = result.meta["ablations"]
    # No ablated variant may select a *faster* kernel than the full system
    # by more than noise; at least one workload must show each ablation cost.
    for row in rows:
        for variant in (row.no_flat, row.no_dag_opt, row.movement_model, row.random_model):
            assert variant >= 0.94 * row.full, row.chain  # search noise tolerance
    # The movement-only objective (Chimera's) must hurt somewhere.
    assert any(r.movement_model > 1.1 * r.full for r in rows)
