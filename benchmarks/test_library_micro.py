"""Micro-benchmarks of the library itself (true pytest-benchmark timing):
search-space generation, schedule expansion, analytical-model evaluation,
simulator throughput and the NumPy interpreter."""

from repro.codegen.interpreter import execute_schedule
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.perf_model import AnalyticalModel
from repro.search.space import generate_space
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

CHAIN = gemm_chain(1, 512, 512, 128, 128, name="micro")
TILES = {"m": 64, "n": 64, "k": 32, "h": 32}


def test_bench_space_generation(benchmark):
    space = benchmark(generate_space, CHAIN, A100)
    assert len(space) > 100


def test_bench_schedule_expansion(benchmark):
    expr = TilingExpr.parse("mhnk")
    sched = benchmark(build_schedule, CHAIN, expr, TILES)
    assert sched.grid_size > 1


def test_bench_analytical_model(benchmark):
    sched = build_schedule(CHAIN, TilingExpr.parse("mhnk"), TILES)
    model = AnalyticalModel(A100)
    t = benchmark(model, sched)
    assert t > 0


def test_bench_simulator(benchmark):
    sched = build_schedule(CHAIN, TilingExpr.parse("mhnk"), TILES)
    kernel = sched.kernel_launch(A100)
    sim = GPUSimulator(A100, seed=0)
    t = benchmark(sim.run, kernel)
    assert t > 0


def test_bench_interpreter(benchmark):
    small = gemm_chain(1, 128, 128, 64, 64, name="micro-int")
    sched = build_schedule(small, TilingExpr.parse("mhnk"), {"m": 64, "n": 64, "k": 64, "h": 64})
    inputs = small.random_inputs(0)
    out = benchmark(execute_schedule, sched, inputs)
    assert "E" in out
