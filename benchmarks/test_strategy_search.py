"""Strategy comparison bench — every registered strategy, quality vs cost.

Runs the ``strategies`` experiment driver: each registered search strategy
(evolutionary / random / exhaustive / annealing) tunes the representative
workloads end-to-end. Evolutionary is the paper's Algorithm 1; exhaustive
is ground truth at an order of magnitude more simulated tuning time.

Run: pytest benchmarks/test_strategy_search.py --benchmark-only -q -rA
"""

from conftest import QUICK, show

from repro.experiments import strategies
from repro.gpu.specs import A100


def test_strategy_quality_vs_cost(run_once):
    result = run_once(strategies.run, A100, quick=QUICK)
    show(result)
    reports = result.meta["reports"]
    chains = {chain for chain, _ in reports}
    for chain in chains:
        evo = reports[(chain, "evolutionary")]
        exhaustive = reports[(chain, "exhaustive")]
        # Exhaustive is the true optimum: nothing beats it, and the paper's
        # convergent model-guided search must land within 15% of it while
        # paying a fraction of its measurement budget.
        for strategy in ("evolutionary", "random", "annealing"):
            rep = reports[(chain, strategy)]
            assert rep.best_time >= exhaustive.best_time * 0.999, (chain, strategy)
            assert rep.best_time <= 1.15 * exhaustive.best_time, (chain, strategy)
        assert evo.search.num_measurements < 0.5 * exhaustive.search.num_measurements
        assert evo.tuning_seconds < exhaustive.tuning_seconds
