"""Fig. 11 — analytical model vs measured performance correlation (G1-G4)."""

from conftest import QUICK, show

from repro.experiments import fig11_perf_model
from repro.gpu.specs import A100


def test_fig11_model_correlation(run_once):
    result = run_once(fig11_perf_model.run, A100, quick=QUICK)
    show(result)
    corrs = [float(r[1]) for r in result.rows]
    # Paper band: 0.80-0.92 across G1-G4. Strong but deliberately imperfect.
    assert all(0.6 < c < 0.999 for c in corrs)
    assert sum(corrs) / len(corrs) > 0.7
