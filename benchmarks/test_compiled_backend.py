"""Compiled-backend microbenchmark: native C kernels vs vectorized numpy.

Measures functional execution of tuned-style schedules for the attention
module and the three-GEMM chain on the compiled and vectorized backends,
asserts the acceptance criterion — the compiled backend is at least
``MIN_SPEEDUP`` x faster while agreeing with ``ComputeChain.reference`` —
and records the numbers into the ``BENCH_compiled.json`` artifact.

The tile shapes differ from ``test_exec_backend``: the C emitter's
register-blocked contractions favor wider unit-stride tiles than numpy's
einsum batching, so each backend is benchmarked at a configuration it was
tuned for rather than a shared compromise.

Skips with an explicit marker when no C compiler is on PATH. Quick mode
(``REPRO_BENCH_QUICK=1``) shrinks the shapes to keep the sweep under a
few seconds per workload.
"""

import time

import numpy as np
import pytest

from conftest import QUICK, record_bench

from repro.codegen.clang_runtime import compiler_available
from repro.codegen.interpreter import execute_schedule, resolve_exec_backend
from repro.ir.chain import attention_chain, gemm3_chain
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

pytestmark = pytest.mark.skipif(
    not compiler_available(),
    reason="no C compiler on PATH; compiled backend unavailable",
)

#: Acceptance floor: compiled must beat vectorized by at least this factor.
MIN_SPEEDUP = 2.0

#: fp32 agreement with the unfused reference. The compiled backend fuses
#: multiplies into FMAs under -march=native and re-associates the jammed
#: accumulator sums, so big-k contractions differ from numpy at ~1e-4 —
#: the same order as vectorized-vs-scalar drift on these shapes.
RTOL, ATOL = 1e-3, 1e-3


def _attention_case():
    """FlashAttention-style flat tiling over a multi-head attention module."""
    m = 512 if QUICK else 1024
    chain = attention_chain(8, m, m, 32, 32, name=f"bench-cattn-{m}")
    tiles = {"m": 32, "n": 64, "k": 32, "h": 32}
    return chain, "mn(k,h)", tiles


def _gemm3_case():
    """Three chained GEMMs (MLP stack) under a deep tiling."""
    m = 512 if QUICK else 1024
    chain = gemm3_chain(2, m, 256, 64, 64, 64, name=f"bench-cg3-{m}")
    tiles = {"m": 16, "n": 16, "k": 16, "h": 64, "p": 64}
    return chain, "mnkhp", tiles


CASES = {"attention": _attention_case, "gemm3": _gemm3_case}


def _time_backend(schedule, inputs, backend, repeats):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = execute_schedule(schedule, inputs, backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.mark.parametrize("case", sorted(CASES))
def test_compiled_speedup(case, run_once):
    chain, expr, tiles = CASES[case]()
    schedule = build_schedule(chain, TilingExpr.parse(expr), tiles)
    assert resolve_exec_backend(schedule, "compiled") == "compiled"
    inputs = chain.random_inputs(0)
    ref = chain.reference(inputs)[chain.output]

    # Warm both paths outside the clock: first compiled call renders and
    # invokes the C compiler (disk-cached thereafter), first vectorized
    # call populates the lowering memo.
    execute_schedule(schedule, inputs, backend="compiled")
    execute_schedule(schedule, inputs, backend="vectorized")

    def measure():
        # min-of-5 for both backends: single-core box, both sides are
        # milliseconds-scale and exposed to scheduler jitter.
        t_c, out_c = _time_backend(schedule, inputs, "compiled", repeats=5)
        t_vec, out_vec = _time_backend(schedule, inputs, "vectorized", repeats=5)
        return t_c, t_vec, out_c, out_vec

    t_c, t_vec, out_c, out_vec = run_once(measure)
    speedup = t_vec / t_c
    np.testing.assert_allclose(
        out_c[chain.output], ref, rtol=RTOL, atol=ATOL,
        err_msg=f"compiled diverged from reference on {chain.name}",
    )
    np.testing.assert_allclose(
        out_c[chain.output], out_vec[chain.output], rtol=RTOL, atol=ATOL,
        err_msg=f"backend parity broke on {chain.name}",
    )
    record_bench(
        "compiled",
        f"compiled_backend[{case}]",
        workload=chain.name,
        schedule=schedule.describe(),
        grid_cells=schedule.grid_size,
        vectorized_seconds=t_vec,
        compiled_seconds=t_c,
        speedup=speedup,
        min_speedup=MIN_SPEEDUP,
        quick=QUICK,
    )
    print(f"\n{chain.name}: vectorized {t_vec * 1e3:.1f}ms  "
          f"compiled {t_c * 1e3:.1f}ms  speedup {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"{case}: compiled backend only {speedup:.1f}x faster than vectorized "
        f"(need >= {MIN_SPEEDUP}x)"
    )
