"""Learned-cost-model tuning efficiency — the Table-IV-style multiplier.

Not a paper figure: this measures the top-k guided search against the
classic measure-the-top-n loop on zoo workloads. For each workload, a
*baseline* tune runs with full per-round measurement (its measurements
feed a fresh cost model's dataset); the model is then fitted and a second,
guided tune measures only the predicted top-k per round. The acceptance
bar is the ISSUE-7 criterion: **>= 5x fewer hardware measurements at a
final schedule within 5% of the full-measurement baseline**, across at
least three workloads.

The per-workload results land in ``BENCH_tuning.json`` via
:func:`record_bench`, so CI tracks measurement counts, ratios, and model
ranking accuracy across PRs.

Run: pytest benchmarks/test_cost_model.py --benchmark-only -q
"""

from conftest import QUICK, record_bench

from repro.config import SessionConfig
from repro.gpu.specs import A100
from repro.search.cost_model import LearnedCostModel
from repro.search.tuner import MCFuserTuner
from repro.utils import fmt_time, format_table
from repro.workloads import get_workload

#: Zoo workloads the efficiency bar is checked on (>= 3 per the issue).
WORKLOADS = ["G2", "S1", "G4"] if QUICK else ["G2", "G4", "G6", "S1", "S3"]

#: Guided measurements per search round.
TOPK = 1

#: Dataset size gate for the benchmark's freshly bootstrapped model.
MIN_SAMPLES = 16


def _tune_pair(name: str, seed: int = 0):
    """(baseline report, guided report, model) for one workload."""
    chain = get_workload(name).build()
    model = LearnedCostModel(seed=seed, min_samples=MIN_SAMPLES)
    config = SessionConfig.make(seed=seed)
    baseline = MCFuserTuner(A100, cost_model=model, config=config).tune(chain)
    model.fit(force=True)
    guided = MCFuserTuner(
        A100, cost_model=model, config=config.evolve(measure_topk=TOPK)
    ).tune(chain)
    return baseline, guided, model


def test_topk_measurement_reduction(run_once):
    def sweep():
        return [(name, *_tune_pair(name)) for name in WORKLOADS]

    results = run_once(sweep)

    rows = []
    for name, baseline, guided, model in results:
        ratio = baseline.search.num_measurements / max(
            guided.search.num_measurements, 1
        )
        quality = guided.best_time / baseline.best_time
        accuracy = model.accuracy if model.accuracy is not None else float("nan")
        rows.append([
            name,
            baseline.search.num_measurements,
            guided.search.num_measurements,
            f"{ratio:.1f}x",
            fmt_time(baseline.best_time),
            fmt_time(guided.best_time),
            f"{quality:.3f}",
            f"{accuracy:.0%}",
        ])
        record_bench(
            "tuning",
            f"cost_model[{name}]",
            baseline_measurements=baseline.search.num_measurements,
            topk_measurements=guided.search.num_measurements,
            measurement_ratio=ratio,
            baseline_best_time=baseline.best_time,
            topk_best_time=guided.best_time,
            quality_ratio=quality,
            model_rounds=guided.search.model_rounds,
            ranking_accuracy=accuracy,
            topk=TOPK,
            dataset_samples=len(model.dataset),
        )

    print()
    print(format_table(
        ["workload", "meas(full)", "meas(topk)", "ratio",
         "best(full)", "best(topk)", "quality", "model acc"],
        rows,
    ))

    # The ISSUE-7 acceptance bar, per workload.
    for name, baseline, guided, model in results:
        ratio = baseline.search.num_measurements / max(
            guided.search.num_measurements, 1
        )
        assert ratio >= 5.0, (
            f"{name}: only {ratio:.1f}x fewer measurements "
            f"({baseline.search.num_measurements} -> "
            f"{guided.search.num_measurements})"
        )
        assert guided.best_time <= baseline.best_time * 1.05, (
            f"{name}: guided schedule {guided.best_time} vs "
            f"baseline {baseline.best_time} (> 5% regression)"
        )
        # every guided round actually used the model (it was pre-fitted)
        assert guided.search.model_rounds == guided.search.rounds
        assert guided.search.measure_topk == TOPK
