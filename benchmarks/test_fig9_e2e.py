"""Fig. 9 — end-to-end BERT on the A100 (Relay / BOLT / MCFuser+Relay /
Ansor / MCFuser+Ansor, normalized to Relay)."""

from conftest import QUICK, show

from repro.experiments import fig9_e2e
from repro.gpu.specs import A100


def test_fig9_end_to_end_bert(run_once):
    result = run_once(fig9_e2e.run, A100, quick=QUICK)
    show(result)
    panel = result.meta["panel"]
    models = ("Bert-Small",) if QUICK else ("Bert-Small", "Bert-Base", "Bert-Large")
    for model in models:
        # Paper: MCFuser+Relay ~1.45x over Relay; we require a solid margin.
        assert panel.speedup(model, "mcfuser+relay") > 1.15
        # Paper: MCFuser+Ansor ~1.33-1.45x over Ansor.
        r = panel.results[model]
        assert r["ansor"].time / r["mcfuser+ansor"].time > 1.1
        # MCFuser+Relay beats Ansor at a fraction of its tuning time.
        assert r["mcfuser+relay"].time < r["ansor"].time
        assert r["mcfuser+relay"].tuning_seconds < 0.05 * r["ansor"].tuning_seconds
