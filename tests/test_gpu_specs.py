"""Unit tests for repro.gpu.specs."""

import pytest

from repro.gpu.specs import A100, GENERIC, RTX3080, GPUSpec, by_name


class TestPresets:
    def test_a100_datasheet(self):
        assert A100.num_sms == 108
        assert A100.arch == "sm80"
        assert A100.peak_flops == pytest.approx(312e12)
        assert A100.mem_bandwidth == pytest.approx(1555e9)
        assert A100.l2_bytes == 40 * 1024 * 1024

    def test_rtx3080_datasheet(self):
        assert RTX3080.num_sms == 68
        assert RTX3080.arch == "sm86"
        assert RTX3080.shared_mem_per_block == 99 * 1024

    def test_a100_ridge_point(self):
        # P/W ~ 200 ops/byte — the MBCI threshold used throughout the paper.
        assert 195 < A100.flops_per_byte < 205

    def test_rtx3080_ridge_point(self):
        assert 150 < RTX3080.flops_per_byte < 160

    def test_shared_mem_block_le_sm(self):
        for gpu in (A100, RTX3080, GENERIC):
            assert gpu.shared_mem_per_block <= gpu.shared_mem_per_sm


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            GPUSpec("x", "sm00", 0, 1e12, 1e11, 1024, 2048)

    def test_rejects_nonpositive_flops(self):
        with pytest.raises(ValueError):
            GPUSpec("x", "sm00", 4, 0, 1e11, 1024, 2048)

    def test_rejects_block_shm_over_sm(self):
        with pytest.raises(ValueError):
            GPUSpec("x", "sm00", 4, 1e12, 1e11, 4096, 2048)


class TestHelpers:
    def test_with_overrides(self):
        tweaked = A100.with_overrides(num_sms=4)
        assert tweaked.num_sms == 4
        assert tweaked.peak_flops == A100.peak_flops
        assert A100.num_sms == 108  # original untouched

    def test_by_name_case_insensitive(self):
        assert by_name("a100") is A100
        assert by_name("RTX3080") is RTX3080

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            by_name("H100")

    def test_frozen(self):
        with pytest.raises(Exception):
            A100.num_sms = 1  # type: ignore[misc]
