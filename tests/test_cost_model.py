"""Tests for the learned cost-model subsystem: the shared feature
extractor, the measurement dataset, the residual model, the SearchLoop's
top-k mode, cache-key hygiene, serving telemetry, and the CLI verbs."""

import json

import numpy as np
import pytest

from repro.baselines.ansor import candidate_features
from repro.cache import ScheduleCache
from repro.cache.signature import variant_key
from repro.search.cost_model import (
    LearnedCostModel,
    MeasurementDataset,
    pairwise_ranking_accuracy,
)
from repro.search.features import (
    ANSOR_FEATURE_NAMES,
    FEATURE_NAMES,
    FEATURE_VERSION,
    feature_dict,
    is_pow2,
    schedule_features,
)
from repro.search.tuner import MCFuserTuner

QUICK = dict(population_size=96, top_n=6, max_rounds=4, min_rounds=2, seed=0)


def _schedule(chain):
    """A deterministic small schedule of ``chain`` for feature tests."""
    from repro.search.space import generate_space
    from repro.gpu.specs import A100

    space = generate_space(chain, A100)
    cand = space.candidates[0]
    return space.schedule_for(cand)


def _synthetic(model, n=48, seed=0):
    """Fill ``model``'s dataset with a learnable synthetic relation."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, len(FEATURE_NAMES)))
    analytic = np.exp(rng.normal(size=n))
    measured = analytic * np.exp(0.5 * x[:, 0] - 0.25 * x[:, 3])
    for i in range(n):
        assert model.observe(x[i], analytic[i], measured[i], workload=f"w{i % 3}")
    return x, analytic, measured


class TestFeatures:
    def test_arity_matches_names(self, small_gemm, a100):
        feats = schedule_features(_schedule(small_gemm), a100)
        assert feats.shape == (len(FEATURE_NAMES),)
        assert np.isfinite(feats).all()

    def test_deterministic(self, small_gemm, a100):
        sched = _schedule(small_gemm)
        np.testing.assert_array_equal(
            schedule_features(sched, a100), schedule_features(sched, a100)
        )

    def test_ansor_prefix_is_ansor_vector(self, small_gemm, a100):
        """The retargeted Ansor features are exactly the leading components
        of the shared vector — one feature definition, no drift."""
        sched = _schedule(small_gemm)
        full = schedule_features(sched, a100)
        ansor = candidate_features(sched, a100)
        assert len(ansor) == len(ANSOR_FEATURE_NAMES) == 10
        np.testing.assert_array_equal(ansor, full[:10])

    def test_feature_dict_alignment(self, small_attention, a100):
        sched = _schedule(small_attention)
        named = feature_dict(sched, a100)
        assert tuple(named) == FEATURE_NAMES
        np.testing.assert_array_equal(
            np.array(list(named.values())), schedule_features(sched, a100)
        )

    def test_is_pow2(self):
        assert is_pow2(1) and is_pow2(64)
        assert not is_pow2(0) and not is_pow2(-4) and not is_pow2(48)


class TestMeasurementDataset:
    def test_memory_only(self):
        ds = MeasurementDataset(None)
        assert ds.append([0.0] * len(FEATURE_NAMES), 1.0, 2.0)
        assert len(ds) == 1
        x, analytic, measured = ds.arrays()
        assert x.shape == (1, len(FEATURE_NAMES))
        assert analytic[0] == 1.0 and measured[0] == 2.0

    def test_rejects_bad_records(self):
        ds = MeasurementDataset(None)
        good = [0.0] * len(FEATURE_NAMES)
        assert not ds.append(good, 1.0, float("inf"))   # launch failure
        assert not ds.append(good, 1.0, float("nan"))
        assert not ds.append(good, 0.0, 1.0)            # non-positive prior
        assert not ds.append([1.0, 2.0], 1.0, 1.0)      # wrong arity
        assert len(ds) == 0

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        ds = MeasurementDataset(path)
        feats = list(range(len(FEATURE_NAMES)))
        ds.append(feats, 2.0, 3.0, workload="G1", gpu="A100")
        reloaded = MeasurementDataset(path)
        assert len(reloaded) == 1
        rec = reloaded.records()[0]
        assert rec["workload"] == "G1" and rec["gpu"] == "A100"
        np.testing.assert_array_equal(reloaded.arrays()[0][0], feats)

    def test_corruption_recovery(self, tmp_path):
        """Corrupted/foreign lines are skipped, valid ones survive —
        mirrors the schedule store's degrade-never-break policy."""
        path = tmp_path / "m.jsonl"
        MeasurementDataset(path).append([1.0] * len(FEATURE_NAMES), 1.0, 2.0)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
            fh.write('{"v": 999, "features": [], "analytic": 1, "measured": 1}\n')
            fh.write(json.dumps({"v": FEATURE_VERSION, "features": [1.0]}) + "\n")
            fh.write("\n")  # blank lines are not corruption
        MeasurementDataset(path).append([2.0] * len(FEATURE_NAMES), 1.0, 3.0)
        ds = MeasurementDataset(path)
        assert len(ds) == 2
        assert ds.corrupt_lines == 3
        np.testing.assert_array_equal(ds.arrays()[2], [2.0, 3.0])

    def test_capacity_evicts_oldest(self):
        ds = MeasurementDataset(None, capacity=3)
        for i in range(5):
            ds.append([float(i)] * len(FEATURE_NAMES), 1.0, float(i + 1))
        assert len(ds) == 3
        np.testing.assert_array_equal(ds.arrays()[2], [3.0, 4.0, 5.0])

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "m.jsonl"
        ds = MeasurementDataset(path)
        ds.append([0.0] * len(FEATURE_NAMES), 1.0, 2.0)
        ds.clear()
        assert len(ds) == 0 and not path.exists()
        assert len(MeasurementDataset(path)) == 0

    def test_missing_file_reads_empty(self, tmp_path):
        assert len(MeasurementDataset(tmp_path / "absent.jsonl")) == 0


class TestPairwiseRankingAccuracy:
    def test_perfect_and_inverted(self):
        actual = np.array([1.0, 2.0, 3.0, 4.0])
        assert pairwise_ranking_accuracy(actual, actual) == 1.0
        assert pairwise_ranking_accuracy(-actual, actual) == 0.0

    def test_degenerate_inputs(self):
        assert np.isnan(pairwise_ranking_accuracy(np.array([1.0]), np.array([1.0])))
        assert np.isnan(
            pairwise_ranking_accuracy(np.array([1.0, 2.0]), np.array([3.0, 3.0]))
        )

    def test_sampled_pairs_deterministic(self):
        rng = np.random.default_rng(1)
        pred, actual = rng.normal(size=200), rng.normal(size=200)
        a = pairwise_ranking_accuracy(pred, actual, max_pairs=50,
                                      rng=np.random.default_rng(3))
        b = pairwise_ranking_accuracy(pred, actual, max_pairs=50,
                                      rng=np.random.default_rng(3))
        assert a == b


class TestLearnedCostModel:
    def test_unfitted_predicts_prior(self):
        model = LearnedCostModel()
        analytic = np.array([3.0, 1.0, 2.0])
        x = np.zeros((3, len(FEATURE_NAMES)))
        np.testing.assert_array_equal(model.predict(x, analytic), analytic)
        # stable ranking falls back to the analytic order
        np.testing.assert_array_equal(model.rank(x, analytic), [1, 2, 0])

    def test_fit_refuses_when_starved(self):
        model = LearnedCostModel(min_samples=32)
        _synthetic(model, n=10)
        assert not model.fit()
        assert not model.ready

    def test_fit_learns_residual(self):
        model = LearnedCostModel(min_samples=16, seed=1)
        x, analytic, measured = _synthetic(model, n=64)
        assert model.fit()
        assert model.ready
        assert 0.5 <= model.accuracy <= 1.0
        pred = model.predict(x, analytic)
        # learned ranking must beat the pure prior on the training relation
        assert pairwise_ranking_accuracy(pred, measured) > pairwise_ranking_accuracy(
            analytic, measured
        )

    def test_refit_noop_without_new_data(self):
        model = LearnedCostModel(min_samples=16)
        _synthetic(model, n=32)
        assert model.fit()
        assert not model.fit()          # nothing new
        assert model.fit(force=True)    # unless forced
        assert model.fits == 2

    def test_deterministic_for_seed_and_dataset(self, tmp_path):
        path = tmp_path / "m.jsonl"
        seed_model = LearnedCostModel(dataset=MeasurementDataset(path))
        x, analytic, _ = _synthetic(seed_model, n=40)

        def fresh():
            m = LearnedCostModel(
                dataset=MeasurementDataset(path), seed=7, min_samples=16
            )
            assert m.fit()
            return m

        a, b = fresh(), fresh()
        assert a.accuracy == b.accuracy
        np.testing.assert_array_equal(
            a.predict(x, analytic), b.predict(x, analytic)
        )
        np.testing.assert_array_equal(a.rank(x, analytic), b.rank(x, analytic))

    def test_save_load_roundtrip(self, tmp_path):
        model = LearnedCostModel(min_samples=16, seed=3)
        x, analytic, _ = _synthetic(model, n=40)
        model.fit()
        path = model.save(tmp_path / "cm.json")
        clone = LearnedCostModel.load(path)
        assert clone is not None and clone.ready
        assert clone.accuracy == model.accuracy
        assert clone.samples == model.samples
        np.testing.assert_array_equal(
            clone.predict(x, analytic), model.predict(x, analytic)
        )

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            LearnedCostModel().save(tmp_path / "cm.json")

    def test_load_missing_or_corrupt_returns_none(self, tmp_path):
        assert LearnedCostModel.load(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert LearnedCostModel.load(bad) is None
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"schema": 999}))
        assert LearnedCostModel.load(foreign) is None


class TestTopkSearch:
    """SearchLoop integration through MCFuserTuner on a small chain."""

    def test_fallback_with_empty_dataset_matches_classic(self, small_gemm, a100):
        """An unfitted (sample-starved) model must not change the search:
        same measurement count, same chosen schedule as no model at all."""
        plain = MCFuserTuner(a100, **QUICK).tune(small_gemm)
        model = LearnedCostModel(min_samples=10**9)  # can never fit
        guided = MCFuserTuner(
            a100, cost_model=model, measure_topk=2, **QUICK
        ).tune(small_gemm)
        assert guided.search.model_rounds == 0
        assert guided.search.num_measurements == plain.search.num_measurements
        assert guided.best_candidate.key == plain.best_candidate.key
        assert guided.best_time == plain.best_time
        # ... but the fallback rounds still bootstrapped the dataset
        assert len(model.dataset) > 0

    def test_topk_cuts_measurements_at_equal_quality(self, small_gemm, a100):
        model = LearnedCostModel(min_samples=8)
        baseline = MCFuserTuner(a100, cost_model=model, **QUICK).tune(small_gemm)
        model.fit(force=True)
        assert model.ready
        guided = MCFuserTuner(
            a100, cost_model=model, measure_topk=1, **QUICK
        ).tune(small_gemm)
        assert guided.search.model_rounds == guided.search.rounds > 0
        assert guided.search.num_measurements < baseline.search.num_measurements
        assert guided.best_time <= baseline.best_time * 1.05
        assert guided.search.measure_topk == 1
        assert guided.measure_topk == 1

    def test_same_seed_and_dataset_is_deterministic(self, small_gemm, a100, tmp_path):
        import shutil

        path = tmp_path / "m.jsonl"
        boot = LearnedCostModel(dataset=MeasurementDataset(path), min_samples=8)
        MCFuserTuner(a100, cost_model=boot, **QUICK).tune(small_gemm)

        def run(tag):
            # each run gets its own copy: the guided tune appends its new
            # observations, which must not leak into the other run's fit
            copy = tmp_path / f"m-{tag}.jsonl"
            shutil.copy(path, copy)
            model = LearnedCostModel(
                dataset=MeasurementDataset(copy), seed=5, min_samples=8
            )
            model.fit(force=True)
            return MCFuserTuner(
                a100, cost_model=model, measure_topk=1, **QUICK
            ).tune(small_gemm)

        r1, r2 = run("a"), run("b")
        assert r1.best_candidate.key == r2.best_candidate.key
        assert r1.best_time == r2.best_time
        assert r1.search.measured == r2.search.measured  # identical picks
        assert r1.search.ranking_accuracy == r2.search.ranking_accuracy

    def test_observations_land_in_dataset(self, small_gemm, a100):
        model = LearnedCostModel()
        report = MCFuserTuner(a100, cost_model=model, **QUICK).tune(small_gemm)
        finite = sum(
            1 for t in report.search.measured.values() if np.isfinite(t)
        )
        assert len(model.dataset) == finite > 0

    def test_negative_topk_rejected(self, a100):
        with pytest.raises(ValueError):
            MCFuserTuner(a100, measure_topk=-1)

    def test_auto_model_created_for_topk(self, a100):
        tuner = MCFuserTuner(a100, measure_topk=2)
        assert tuner.cost_model is not None
        assert not tuner.cost_model.ready


class TestCacheKeyHygiene:
    def test_variant_key_composition(self):
        assert variant_key("mcfuser") == "mcfuser"
        assert variant_key("mcfuser", "evolutionary", 0) == "mcfuser"
        assert variant_key("mcfuser", "evolutionary", 2) == "mcfuser+topk2"
        assert variant_key("mcfuser", "random", 2) == "mcfuser+random+topk2"
        assert variant_key("chimera", "random") == "chimera+random"

    def test_topk_entries_never_serve_exhaustive_tunes(
        self, small_gemm, a100, tmp_path
    ):
        cache = ScheduleCache(tmp_path / "cache")
        model = LearnedCostModel(min_samples=8)
        MCFuserTuner(a100, cost_model=model, **QUICK).tune(small_gemm)
        model.fit(force=True)
        first = MCFuserTuner(
            a100, cache=cache, cost_model=model, measure_topk=1, **QUICK
        ).tune(small_gemm)
        assert not first.cache_hit

        # same topk setting: hit (model not even needed to serve it)
        again = MCFuserTuner(
            a100, cache=cache, measure_topk=1, **QUICK
        ).tune(small_gemm)
        assert again.cache_hit
        assert again.best_time == first.best_time
        assert again.measure_topk == 1

        # exhaustive tuner: distinct key space, must re-tune
        exhaustive = MCFuserTuner(a100, cache=cache, **QUICK).tune(small_gemm)
        assert not exhaustive.cache_hit
        variants = {e.variant for e in cache.entries()}
        assert variants == {"mcfuser", "mcfuser+topk1"}


class TestServiceTelemetry:
    def test_measurements_and_accuracy_metrics(self, small_gemm, a100):
        from repro.serving.service import CompileService

        model = LearnedCostModel(min_samples=8)
        with CompileService(
            a100,
            workers=1,
            cost_model=model,
            measure_topk=1,
            tuner_kwargs=dict(
                population_size=96, top_n=6, max_rounds=4, min_rounds=2
            ),
        ) as svc:
            result = svc.compile(small_gemm)
            snapshot = svc.metrics()
        meas = snapshot["histograms"]["serve.tune.measurements"]
        assert meas["count"] == 1
        assert meas["mean"] == result.report.search.num_measurements
        # the first tune bootstraps and refits mid-run, so accuracy reports
        acc = snapshot["histograms"]["serve.model.ranking_accuracy"]
        assert acc["count"] == 1
        assert 0.0 <= acc["mean"] <= 1.0

    def test_topk_and_exhaustive_requests_do_not_alias(self, small_gemm, a100):
        from repro.serving.service import CompileService

        with CompileService(
            a100,
            workers=1,
            tuner_kwargs=dict(
                population_size=96, top_n=6, max_rounds=4, min_rounds=2
            ),
        ) as svc:
            exhaustive = svc.compile(small_gemm)
            guided = svc.compile(small_gemm, measure_topk=1)
            assert exhaustive.signature != guided.signature
            assert guided.source == "tuned"  # not served from the other key
            snapshot = svc.metrics()
        assert snapshot["counters"]["serve.tunes"] == 2


class TestCLI:
    def test_tune_cost_model_flag(self, capsys):
        from repro.cli import main

        assert main(["tune", "G1", "--cost-model", "--topk", "1",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "model:" in out and "dataset sample(s)" in out

    def test_model_train_and_stats_roundtrip(self, capsys):
        from repro.cli import main

        assert main(["model", "stats"]) == 0
        assert "no snapshot" in capsys.readouterr().out

        assert main(["model", "train"]) == 1  # empty dataset: nothing to fit
        assert "dataset too small" in capsys.readouterr().out

        assert main(["model", "train", "G1"]) == 0
        out = capsys.readouterr().out
        assert "measured G1" in out and "model snapshot written" in out

        assert main(["model", "stats"]) == 0
        out = capsys.readouterr().out
        assert "fitted on" in out and "G1" in out

    def test_trained_model_guides_tune(self, capsys):
        from repro.cli import main

        assert main(["model", "train", "G1"]) == 0
        capsys.readouterr()
        assert main(["tune", "G1", "--cost-model", "--topk", "1",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        # the persisted model was loaded ready -> every round was guided
        assert "top-1 guidance" in out
