"""Storage layers: entry codec, LRU behavior, disk round-trip, recovery."""

import json
import os

import pytest

from repro.cache.store import (
    SCHEMA_VERSION,
    CacheDecodeError,
    CacheEntry,
    LRUCache,
    PersistentStore,
)


def entry(sig: str, **overrides) -> CacheEntry:
    fields = dict(
        signature=sig,
        workload="G1",
        gpu="A100",
        variant="mcfuser",
        expr="mhnk",
        tiles={"m": 64, "n": 64, "k": 64, "h": 32},
        optimized=True,
        best_time=6.3e-6,
        tuning_seconds=42.0,
    )
    fields.update(overrides)
    return CacheEntry(**fields)


class TestEntryCodec:
    def test_round_trip(self):
        original = entry("a" * 32, hits=3)
        restored = CacheEntry.from_json(original.to_json())
        assert restored == original

    def test_json_serializable(self):
        json.dumps(entry("a" * 32).to_json())

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda d: d.pop("expr"),
            lambda d: d.pop("tiles"),
            lambda d: d.update(best_time="fast"),
            lambda d: d.update(tiles="mhnk"),
            lambda d: d.update(best_time=-1.0),
            lambda d: d.update(signature=""),
        ],
    )
    def test_malformed_entries_rejected(self, mutation):
        data = entry("a" * 32).to_json()
        mutation(data)
        with pytest.raises(CacheDecodeError):
            CacheEntry.from_json(data)

    def test_non_dict_rejected(self):
        with pytest.raises(CacheDecodeError):
            CacheEntry.from_json(["not", "an", "entry"])


class TestLRU:
    def test_basic_get_put(self):
        lru = LRUCache(capacity=4)
        e = entry("sig1")
        lru.put("sig1", e)
        assert lru.get("sig1") is e
        assert lru.get("sig2") is None
        assert len(lru) == 1

    def test_eviction_is_least_recently_used(self):
        lru = LRUCache(capacity=2)
        lru.put("a", entry("a"))
        lru.put("b", entry("b"))
        lru.get("a")  # refresh a, so b is now oldest
        lru.put("c", entry("c"))
        assert "a" in lru and "c" in lru and "b" not in lru

    def test_capacity_zero_disables(self):
        lru = LRUCache(capacity=0)
        lru.put("a", entry("a"))
        assert len(lru) == 0 and lru.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)


class TestPersistentStore:
    def test_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        store = PersistentStore(path)
        store.put(entry("sig1"))
        reopened = PersistentStore(path)
        got = reopened.get("sig1")
        assert got is not None
        assert got.expr == "mhnk" and got.tiles == {"m": 64, "n": 64, "k": 64, "h": 32}

    def test_hit_counters_persist(self, tmp_path):
        path = tmp_path / "cache.json"
        store = PersistentStore(path)
        store.record_miss()  # misses persist with the next flush (the put)
        store.put(entry("sig1"))
        store.record_hit(store.get("sig1"))
        reopened = PersistentStore(path)
        assert reopened.hits == 1 and reopened.misses == 1
        assert reopened.get("sig1").hits == 1

    def test_miss_alone_does_not_touch_disk(self, tmp_path):
        """A miss is counted lazily — no O(entries) rewrite per lookup."""
        path = tmp_path / "cache.json"
        store = PersistentStore(path)
        store.put(entry("sig1"))
        mtime = os.path.getmtime(path)
        store.record_miss()
        assert os.path.getmtime(path) == mtime
        assert store.misses == 1
        store.flush()  # any later flush settles the pending counter
        assert PersistentStore(path).misses == 1

    def test_concurrent_stores_merge_instead_of_overwriting(self, tmp_path):
        """Two store instances (≈ two warmup processes) on one file must
        both land their entries and counters."""
        path = tmp_path / "cache.json"
        a = PersistentStore(path)
        b = PersistentStore(path)
        a.put(entry("sig-a"))
        b.put(entry("sig-b"))  # must not clobber a's write
        b.record_hit(b.get("sig-b"))
        a.record_hit(a.get("sig-a"))
        merged = PersistentStore(path)
        assert merged.get("sig-a") is not None and merged.get("sig-b") is not None
        assert merged.hits == 2

    def test_corrupted_file_recovers(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ this is not json")
        store = PersistentStore(path)
        assert len(store) == 0
        assert (tmp_path / "cache.json.corrupt").exists()
        store.put(entry("sig1"))  # store is usable after recovery
        assert PersistentStore(path).get("sig1") is not None

    def test_wrong_schema_version_discarded(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION + 1, "entries": {}}))
        store = PersistentStore(path)
        assert len(store) == 0
        assert (tmp_path / "cache.json.corrupt").exists()

    def test_malformed_entry_discards_store(self, tmp_path):
        path = tmp_path / "cache.json"
        doc = {
            "schema": SCHEMA_VERSION,
            "hits": 0,
            "misses": 0,
            "entries": {"sig1": {"signature": "sig1"}},  # missing fields
        }
        path.write_text(json.dumps(doc))
        assert len(PersistentStore(path)) == 0

    def test_eviction_drops_least_recently_used(self, tmp_path):
        store = PersistentStore(tmp_path / "cache.json", max_entries=3)
        for i in range(3):
            store.put(entry(f"sig{i}", last_used=float(i)))
        store.put(entry("sig9", last_used=100.0))
        assert len(store) == 3
        assert store.get("sig0") is None  # oldest evicted
        assert store.get("sig9") is not None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = PersistentStore(tmp_path / "cache.json")
        store.put(entry("sig1"))
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp." in f]
        assert leftovers == []

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "cache.json"
        store = PersistentStore(path)
        store.put(entry("sig1"))
        assert path.exists()
        store.clear()
        assert not path.exists() and len(store) == 0

    def test_unwritable_directory_degrades_silently(self, tmp_path):
        missing = tmp_path / "file"
        missing.write_text("x")  # a *file*, so path/"sub" can never be created
        store = PersistentStore(missing / "sub" / "cache.json")
        store.put(entry("sig1"))  # must not raise
        assert store.get("sig1") is not None  # still works in memory

    def test_entries_sorted_most_recent_first(self, tmp_path):
        store = PersistentStore(tmp_path / "cache.json")
        store.put(entry("old", last_used=1.0))
        store.put(entry("new", last_used=2.0))
        assert [e.signature for e in store.entries()] == ["new", "old"]
