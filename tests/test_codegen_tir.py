"""Unit tests for the TIR lowering and the tiling-expression round-trip."""

import dataclasses

import pytest

from repro.codegen.program import lower_schedule
from repro.codegen.render_c import RenderError
from repro.codegen.tir import (
    TIRScheduleBuilder,
    TIRStmt,
    extract_tiling_expr,
    tir_from_program,
    tir_from_schedule,
)
from repro.tiling.enumeration import all_tilings
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

TILES = {"m": 32, "n": 16, "k": 16, "h": 16}


class TestLowering:
    def test_grid_loops_thread_bound(self, small_gemm):
        sched = build_schedule(small_gemm, TilingExpr.parse("mhnk"), TILES)
        module = tir_from_schedule(sched)
        bound = [l for l in module.loops() if l.bind]
        assert {l.var for l in bound} == {"b", "m", "h"}

    def test_serial_loops_match_residual(self, small_gemm):
        sched = build_schedule(small_gemm, TilingExpr.parse("mhnk"), TILES)
        module = tir_from_schedule(sched)
        serial = [l.var for l in module.loops() if not l.bind]
        assert serial == ["n", "k"]

    def test_render_is_python_like(self, small_gemm):
        sched = build_schedule(small_gemm, TilingExpr.parse("mhnk"), TILES)
        text = tir_from_schedule(sched).render()
        assert "@T.prim_func" in text
        assert "T.thread_binding" in text
        assert "T.load_shared('A')" in text
        assert "T.store_global('E')" in text


class TestRoundTrip:
    def test_extract_matches_residual_all_expressions(self, small_gemm):
        """The paper's TIR AST visitor: expression -> TIR -> expression."""
        for expr in all_tilings(small_gemm):
            sched = build_schedule(small_gemm, expr, TILES)
            recovered = extract_tiling_expr(tir_from_schedule(sched))
            assert recovered.render() == sched.residual.render(), expr.render()

    def test_extract_flat(self, small_gemm):
        sched = build_schedule(
            small_gemm, TilingExpr.parse("mn(k,h)"), {"m": 32, "n": 16, "k": 16, "h": 48}
        )
        recovered = extract_tiling_expr(tir_from_schedule(sched))
        assert recovered.render() == sched.residual.render()


class TestProgramTIR:
    """tir_from_program: the schedule walk cross-checked against the
    unrolled flat op list."""

    def test_matches_schedule_emission(self, small_gemm):
        sched = build_schedule(small_gemm, TilingExpr.parse("mhnk"), TILES)
        program = lower_schedule(sched)
        assert tir_from_program(program).render() == tir_from_schedule(sched).render()

    def test_validates_every_lowerable_expression(self, small_gemm):
        from repro.codegen.program import LoweringError
        from repro.tiling.schedule import InvalidScheduleError

        checked = 0
        for expr in all_tilings(small_gemm):
            sched = build_schedule(small_gemm, expr, TILES)
            try:
                program = lower_schedule(sched)
            except (LoweringError, InvalidScheduleError):
                continue
            module = tir_from_program(program)
            recovered = extract_tiling_expr(module)
            assert recovered.render() == sched.residual.render()
            checked += 1
        assert checked >= 1

    def test_tampered_program_rejected(self, small_gemm):
        """A flat program that disagrees with the schedule's loop structure
        must be refused, not silently emitted."""
        sched = build_schedule(small_gemm, TilingExpr.parse("mhnk"), TILES)
        program = lower_schedule(sched)
        tampered = dataclasses.replace(program, ops=program.ops[:-1])
        with pytest.raises(RenderError):
            tir_from_program(tampered)


class TestScheduleBuilder:
    def test_split(self):
        b = TIRScheduleBuilder("t", {"m": 256})
        outer, inner = b.split("m", 64)
        assert (outer, inner) == ("mo", "mi")
        assert b.extents == {"mo": 4, "mi": 64}

    def test_split_rounds_up(self):
        b = TIRScheduleBuilder("t", {"m": 100})
        b.split("m", 64)
        assert b.extents["mo"] == 2

    def test_split_unknown_loop(self):
        b = TIRScheduleBuilder("t", {"m": 256})
        with pytest.raises(KeyError):
            b.split("z", 8)

    def test_reorder_permutes_positions(self):
        b = TIRScheduleBuilder("t", {"a": 2, "b": 3, "c": 4})
        b.reorder("c", "a", "b")
        assert b.order == ["c", "a", "b"]

    def test_bind_requires_outermost(self):
        b = TIRScheduleBuilder("t", {"a": 2, "b": 3})
        with pytest.raises(ValueError):
            b.bind("b", "blockIdx.x")
        b.bind("a", "blockIdx.x")
        b.bind("b", "blockIdx.y")

    def test_full_pipeline_reproduces_expression(self):
        """split + reorder + bind from the naive nest yields the tiled TIR
        whose extracted expression is the residual — convertibility both
        ways (§V-B)."""
        b = TIRScheduleBuilder("demo", {"m": 256, "n": 128, "k": 64, "h": 64})
        mo, mi = b.split("m", 64)
        no, ni = b.split("n", 32)
        ko, ki = b.split("k", 32)
        ho, hi = b.split("h", 32)
        b.reorder(mo, ho, no, ko, mi, ni, ki, hi)
        b.bind(mo, "blockIdx.x")
        b.bind(ho, "blockIdx.y")
        module = b.finalize([TIRStmt("compute", "C", "C")])
        expr = extract_tiling_expr(module)
        assert expr.loops()[:2] == ("no", "ko")
        assert b.log[0] == "split(m, 64)"
