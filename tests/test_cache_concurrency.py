"""Schedule cache under concurrent threads: no corruption, no lost entries.

Regression suite for the serving-era hardening: ``PersistentStore`` holds
an internal re-entrant lock and writes through per-flush temp files, so
interleaved writers can never publish a partially written store file and
trip the corruption-recovery path (the pre-hardening failure mode: two
threads sharing one pid-named temp file).
"""

import glob
import os
import threading
from types import SimpleNamespace

from repro.cache import ScheduleCache
from repro.cache.store import PersistentStore
from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.tiling.expr import TilingExpr


def stub_report(i: int) -> SimpleNamespace:
    """A minimal object satisfying ScheduleCache.put's TuneReport duck type.

    The stored expression/tiles never get re-expanded here, so a real tuned
    schedule is unnecessary — which is what lets this suite hammer the
    store with dozens of distinct signatures in milliseconds.
    """
    schedule = SimpleNamespace(
        expr=TilingExpr.parse("mhnk"), tiles={"m": 16, "n": 16}, optimized=True
    )
    return SimpleNamespace(
        best_time=1e-5 + i * 1e-8,
        best_schedule=schedule,
        tuning_seconds=0.5,
        variant="mcfuser",
        strategy="evolutionary",
    )


def no_corruption(directory) -> bool:
    return not glob.glob(os.path.join(str(directory), "*.corrupt"))


class TestScheduleCacheThreaded:
    def test_concurrent_writers_and_readers(self, tmp_path):
        """8 threads x 8 distinct signatures each, with interleaved reads."""
        cache = ScheduleCache(tmp_path)
        chains = {
            (t, i): gemm_chain(1, 64 + 16 * t, 64 + 16 * i, 32, 32, name=f"cc-{t}-{i}")
            for t in range(8)
            for i in range(8)
        }
        errors: list[BaseException] = []

        def writer(t: int):
            try:
                for i in range(8):
                    chain = chains[(t, i)]
                    cache.put(chain, A100, stub_report(t * 8 + i))
                    # read back own and a neighbour's workload
                    cache.get(chain, A100)
                    cache.get(chains[((t + 1) % 8, i)], A100)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        assert not errors
        assert no_corruption(tmp_path)
        # every signature survived, and a fresh instance (= new process)
        # reads them all back from the file
        fresh = ScheduleCache(tmp_path)
        assert fresh.stats().disk_entries == 64
        for chain in chains.values():
            assert fresh.get(chain, A100) is not None

    def test_concurrent_hits_keep_counters_consistent(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        chain = gemm_chain(1, 128, 128, 64, 64, name="cc-hits")
        cache.put(chain, A100, stub_report(0))

        def reader():
            for _ in range(10):
                assert cache.get(chain, A100) is not None

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert cache.stats().hits == 60
        assert no_corruption(tmp_path)
        # persisted cumulative counters match too
        assert ScheduleCache(tmp_path).stats().total_hits == 60


class TestPersistentStoreSharedPath:
    def test_two_instances_one_path_merge_not_clobber(self, tmp_path):
        """Two stores flushing the same file concurrently must merge.

        This models two ScheduleCache processes sharing a cache directory,
        compressed into threads: every entry written by either instance
        must survive in the final file, with no corruption quarantine.
        """
        path = tmp_path / "schedule_cache.json"
        store_a = PersistentStore(path)
        store_b = PersistentStore(path)

        def fill(store: PersistentStore, base: int):
            for i in range(12):
                chain = gemm_chain(1, 64 + 16 * (base + i), 64, 32, 32,
                                   name=f"ps-{base}-{i}")
                # build a CacheEntry through the public put() of a
                # memory-only cache, then hand it to the store under test
                made = ScheduleCache(path=None).put(chain, A100, stub_report(base + i))
                store.put(made)

        t_a = threading.Thread(target=fill, args=(store_a, 0))
        t_b = threading.Thread(target=fill, args=(store_b, 100))
        t_a.start()
        t_b.start()
        t_a.join()
        t_b.join()

        # the concurrent phase must never quarantine the file; a racing
        # final write may momentarily shadow the other instance's tail,
        # so settle both stores sequentially before counting
        assert no_corruption(tmp_path)
        store_a.flush()
        store_b.flush()
        merged = PersistentStore(path)
        assert len(merged) == 24
        assert no_corruption(tmp_path)
