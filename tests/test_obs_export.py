"""Tests for the trace/metrics exporters (`repro.obs.export`)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    load_trace_jsonl,
    prometheus_text,
    save_chrome_trace,
    save_trace_jsonl,
    trace_coverage,
    validate_chrome_trace,
)
from repro.serving.telemetry import MetricsRegistry


def _sample_tracer() -> Tracer:
    """root > (child-with-event, leaf), plus a span on a second thread."""
    tracer = Tracer()
    with tracer.span("root", model="gqa") as root:
        with tracer.span("child") as child:
            child.event("mark", n=1)
        with tracer.span("leaf"):
            pass

        def worker():
            with tracer.span("pool-item", parent=root):
                pass

        t = threading.Thread(target=worker, name="pool-0")
        t.start()
        t.join()
    return tracer


class TestChromeTrace:
    def test_empty_trace_is_valid(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []
        validate_chrome_trace(doc)

    def test_phases_and_nesting(self):
        tracer = _sample_tracer()
        doc = chrome_trace(tracer.recorder)
        validate_chrome_trace(doc)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "B", "E", "X", "i"}
        # the root has children, so it opens a B/E pair; childless spans
        # are X completes; the span event is an instant
        by_phase = {ph: [e for e in doc["traceEvents"] if e["ph"] == ph] for ph in phases}
        assert {e["name"] for e in by_phase["B"]} == {"root"}
        assert {e["name"] for e in by_phase["X"]} == {"child", "leaf", "pool-item"}
        assert [e["name"] for e in by_phase["i"]] == ["mark"]

    def test_timestamps_rebased_and_microseconds(self):
        tracer = _sample_tracer()
        records = tracer.recorder.spans()
        doc = chrome_trace(records)
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert min(ts) == 0.0
        root = next(r for r in records if r.name == "root")
        root_b = next(e for e in doc["traceEvents"] if e["ph"] == "B")
        root_e = next(e for e in doc["traceEvents"] if e["ph"] == "E")
        assert root_e["ts"] - root_b["ts"] == pytest.approx(
            root.duration * 1e6, rel=1e-3, abs=0.01
        )

    def test_thread_metadata_rows(self):
        tracer = _sample_tracer()
        doc = chrome_trace(tracer.recorder)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 2  # main thread + pool-0
        assert {e["args"]["name"] for e in meta} >= {"pool-0"}

    def test_span_ids_exported_in_args(self):
        tracer = _sample_tracer()
        doc = chrome_trace(tracer.recorder)
        child = next(e for e in doc["traceEvents"] if e.get("name") == "child")
        assert child["args"]["trace_id"] and child["args"]["parent_id"]

    def test_nonserializable_attrs_are_coerced(self):
        tracer = Tracer()
        with tracer.span("odd", obj=object(), nan=float("nan"), seq=(1, 2)):
            pass
        doc = chrome_trace(tracer.recorder)
        json.dumps(doc)  # must not raise
        args = next(e for e in doc["traceEvents"] if e.get("name") == "odd")["args"]
        assert args["seq"] == [1, 2]
        assert args["nan"] == "nan"

    def test_save_validates_and_writes(self, tmp_path):
        tracer = _sample_tracer()
        path = save_chrome_trace(tracer.recorder, tmp_path / "out" / "t.json")
        doc = json.loads(open(path, encoding="utf-8").read())
        validate_chrome_trace(doc)


class TestValidateChromeTrace:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Q", "name": "x", "pid": 1, "tid": 1, "ts": 0}]}
            )

    def test_rejects_missing_required_keys(self):
        with pytest.raises(ValueError, match="missing name/pid/tid"):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]})

    def test_rejects_negative_ts(self):
        with pytest.raises(ValueError, match="bad ts"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1,
                                  "ts": -1, "dur": 1}]}
            )

    def test_rejects_unbalanced_begin(self):
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "B", "name": "x", "pid": 1, "tid": 1, "ts": 0}]}
            )

    def test_rejects_end_without_begin(self):
        with pytest.raises(ValueError, match="E without matching B"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "E", "name": "x", "pid": 1, "tid": 1, "ts": 0}]}
            )

    def test_rejects_x_without_dur(self):
        with pytest.raises(ValueError, match="bad dur"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0}]}
            )

    def test_rejects_end_before_begin(self):
        with pytest.raises(ValueError, match="precedes"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "B", "name": "x", "pid": 1, "tid": 1, "ts": 5},
                    {"ph": "E", "name": "x", "pid": 1, "tid": 1, "ts": 3},
                ]}
            )


class TestPrometheusText:
    def test_registry_and_snapshot_agree(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(3)
        registry.gauge("serve.queue.depth").set(2)
        hist = registry.histogram("serve.latency.warm")
        for v in (0.1, 0.2, 0.3, 0.4):
            hist.observe(v)
        from_registry = prometheus_text(registry)
        from_snapshot = prometheus_text(registry.snapshot())
        assert from_registry == from_snapshot

    def test_every_metric_is_exposed(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc()
        registry.counter("serve.hits.hot").inc()
        registry.gauge("serve.inflight").set(1)
        registry.histogram("serve.latency.cold").observe(1.5)
        text = prometheus_text(registry)
        assert "repro_serve_requests_total 1" in text
        assert "repro_serve_hits_hot_total 1" in text
        assert "repro_serve_inflight 1" in text
        for q in ("0.5", "0.9", "0.95", "0.99"):
            assert f'repro_serve_latency_cold{{quantile="{q}"}}' in text
        assert "repro_serve_latency_cold_sum 1.5" in text
        assert "repro_serve_latency_cold_count 1" in text

    def test_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        text = prometheus_text(registry)
        lines = text.splitlines()
        assert text.endswith("\n")
        assert lines[0].startswith("# HELP repro_a_b_total")
        assert lines[1] == "# TYPE repro_a_b_total counter"
        assert lines[2] == "repro_a_b_total 1"
        # sample lines are "name value" or 'name{labels} value'
        for line in lines:
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name and value

    def test_empty_histogram_quantiles_are_nan(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        text = prometheus_text(registry)
        assert 'repro_h{quantile="0.5"} NaN' in text
        assert "repro_h_count 0" in text

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            prometheus_text(42)


class TestTraceJsonl:
    def test_roundtrip_from_record_list(self, tmp_path):
        tracer = _sample_tracer()
        path = save_trace_jsonl(tracer.recorder.spans(), tmp_path / "spans.jsonl")
        docs = load_trace_jsonl(path)
        assert {d["name"] for d in docs} == {"root", "child", "leaf", "pool-item"}

    def test_roundtrip_from_recorder(self, tmp_path):
        tracer = _sample_tracer()
        path = save_trace_jsonl(tracer.recorder, tmp_path / "spans.jsonl")
        assert len(load_trace_jsonl(path)) == 4


class TestTraceCoverage:
    def test_full_coverage(self):
        import time

        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                time.sleep(0.002)
            with tracer.span("b"):
                time.sleep(0.002)
        # children nearly tile the root (context-manager overhead only)
        assert trace_coverage(tracer.recorder) > 0.9

    def test_no_children_is_zero(self):
        tracer = Tracer()
        with tracer.span("lonely"):
            pass
        assert trace_coverage(tracer.recorder) == 0.0

    def test_no_roots_is_zero(self):
        assert trace_coverage([]) == 0.0

    def test_overlapping_children_not_double_counted(self):
        tracer = Tracer()
        with tracer.span("root") as root:

            def worker():
                with tracer.span("concurrent", parent=root):
                    pass

            threads = [threading.Thread(target=worker) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert trace_coverage(tracer.recorder) <= 1.0

    def test_root_name_filter(self):
        tracer = Tracer()
        with tracer.span("tune"):
            with tracer.span("search"):
                pass
        assert trace_coverage(tracer.recorder, root_name="tune") > 0
        assert trace_coverage(tracer.recorder, root_name="absent") == 0.0
