"""CompileService: coalescing, lanes, shedding, stress, CLI round-trip."""

import json
import threading
import time

import pytest

from repro.cache import ScheduleCache
from repro.cli import main
from repro.frontend.executor import compile_model
from repro.gpu.specs import A100, RTX3080
from repro.ir.chain import gemm_chain
from repro.ir.graph import Graph
from repro.ir.ops import BatchMatmul, Softmax
from repro.serving import (
    CompileService,
    MetricsRegistry,
    QueueFull,
    ServiceClosed,
    TieredCache,
)

QUICK = dict(population_size=64, top_n=4, max_rounds=2, min_rounds=1)

#: Request outcomes that terminate a ticket (for reconciliation sums).
OUTCOMES = (
    "serve.hits.hot",
    "serve.hits.memory",
    "serve.hits.disk",
    "serve.coalesced",
    "serve.tunes",
    "serve.shed",
    "serve.errors",
)


def chain_for(i: int):
    """Distinct-signature small chains (distinct shapes)."""
    return gemm_chain(1, 96 + 16 * i, 96, 32, 32, name=f"svc-{i}")


def quick_service(**kwargs) -> CompileService:
    kwargs.setdefault("tuner_kwargs", QUICK)
    return CompileService(A100, **kwargs)


def outcome_sum(registry: MetricsRegistry) -> int:
    counters = registry.snapshot()["counters"]
    return sum(counters.get(name, 0) for name in OUTCOMES)


class TestBasics:
    def test_cold_then_hot(self):
        with quick_service(workers=1) as svc:
            cold = svc.compile(chain_for(0))
            warm = svc.compile(chain_for(0))
        assert cold.source == "tuned" and not cold.report.cache_hit
        assert warm.source == "hot" and warm.report.cache_hit
        assert warm.report.best_time == cold.report.best_time
        assert warm.latency_seconds < cold.latency_seconds

    def test_registry_names_resolve(self):
        with quick_service(workers=1) as svc:
            result = svc.compile("G1")
        assert result.report.best_time > 0

    def test_model_name_rejected_by_submit(self):
        with quick_service(workers=1) as svc:
            with pytest.raises(ValueError, match="model-level"):
                svc.submit("ffn-base")
            with pytest.raises(ValueError, match="chain-level"):
                svc.submit_model("G1")

    def test_unknown_lane_rejected(self):
        with quick_service(workers=1) as svc:
            with pytest.raises(ValueError, match="lane"):
                svc.submit(chain_for(0), lane="express")

    def test_closed_service_rejects_submits(self):
        svc = quick_service(workers=1)
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(ServiceClosed):
            svc.submit(chain_for(0))

    def test_shared_schedule_cache_serves_disk_tier(self, tmp_path):
        base_dir = tmp_path / "store"
        with quick_service(workers=1, cache=ScheduleCache(base_dir)) as svc:
            svc.compile(chain_for(0))
        # a second service over the same directory = a later process
        with quick_service(workers=1, cache=ScheduleCache(base_dir)) as svc2:
            result = svc2.compile(chain_for(0))
        assert result.source == "disk"
        assert result.report.cache_hit


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_tune(self):
        release = threading.Event()
        holder = {}

        def gated(job):
            release.wait(5)
            return holder["svc"]._default_tune(job)

        svc = quick_service(workers=1, tune_fn=gated)
        holder["svc"] = svc

        barrier = threading.Barrier(8 + 1)
        results = []

        def client():
            barrier.wait()
            results.append(svc.compile(chain_for(1)))

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        barrier.wait()
        # all 8 submitted against one blocked tune; let it finish
        time.sleep(0.05)
        release.set()
        for t in threads:
            t.join()
        svc.close()
        sources = sorted(r.source for r in results)
        assert sources.count("tuned") == 1
        assert sources.count("coalesced") == 7
        counters = svc.telemetry.snapshot()["counters"]
        assert counters["serve.tunes"] == 1
        assert counters["serve.coalesced"] == 7
        best = {r.report.best_time for r in results}
        assert len(best) == 1  # everyone got the same schedule


class TestLanesAndShedding:
    def _gated_service(self, **kwargs):
        """workers=1 service whose first tune blocks until `release` is set."""
        release = threading.Event()
        order: list[str] = []
        svc = {}

        def tune(job):
            order.append(job.chain.name)
            if job.chain.name == "svc-0":
                release.wait(5)
            return svc["svc"]._default_tune(job)

        svc["svc"] = quick_service(workers=1, tune_fn=tune, **kwargs)
        return svc["svc"], release, order

    def _wait_queue_drained(self, svc):
        deadline = time.time() + 5
        while svc._queue.qsize() > 0:
            assert time.time() < deadline, "worker never picked up the job"
            time.sleep(0.005)

    def test_interactive_overtakes_background(self):
        svc, release, order = self._gated_service()
        blocker = svc.submit(chain_for(0))
        self._wait_queue_drained(svc)  # worker now blocked inside svc-0
        bg = svc.submit(chain_for(1), lane="background")
        it = svc.submit(chain_for(2), lane="interactive")
        release.set()
        for t in (blocker, bg, it):
            t.result(timeout=10)
        svc.close()
        assert order == ["svc-0", "svc-2", "svc-1"]

    def test_full_queue_sheds(self):
        svc, release, _ = self._gated_service(queue_limit=1)
        blocker = svc.submit(chain_for(0))
        self._wait_queue_drained(svc)
        queued = svc.submit(chain_for(1))  # fills the single queue slot
        shed = svc.submit(chain_for(2))  # over the bound: load-shed
        with pytest.raises(QueueFull):
            shed.result(timeout=5)
        release.set()
        assert queued.result(timeout=10).source == "tuned"
        assert blocker.result(timeout=10).source == "tuned"
        counters = svc.telemetry.snapshot()["counters"]
        assert counters["serve.shed"] == 1
        assert counters["serve.shed.interactive"] == 1
        # the shed signature is not poisoned: it can be resubmitted
        retry = svc.compile(chain_for(2))
        assert retry.source == "tuned"
        svc.close()

    def test_failed_tune_fans_out_and_unblocks_signature(self):
        calls = []
        svc = {}

        def flaky(job):
            calls.append(job.signature)
            if len(calls) == 1:
                raise RuntimeError("transient tuner failure")
            return svc["svc"]._default_tune(job)

        svc["svc"] = quick_service(workers=1, tune_fn=flaky)
        ticket = svc["svc"].submit(chain_for(3))
        with pytest.raises(RuntimeError, match="transient"):
            ticket.result(timeout=10)
        # the in-flight record is gone: the same signature tunes fine now
        result = svc["svc"].compile(chain_for(3))
        assert result.source == "tuned"
        counters = svc["svc"].telemetry.snapshot()["counters"]
        assert counters["serve.errors"] == 1
        svc["svc"].close()


class TestStress:
    def test_threaded_stress_one_tune_per_signature(self):
        """N clients x M signatures: exactly one tune each, nothing lost,
        counters monotonic, accounting reconciles."""
        n_clients, n_signatures, per_client = 16, 4, 6
        chains = [chain_for(10 + i) for i in range(n_signatures)]
        registry = MetricsRegistry()
        svc = quick_service(workers=4, telemetry=registry)
        barrier = threading.Barrier(n_clients)
        results: list[list] = [[] for _ in range(n_clients)]
        snapshots: list[dict] = []
        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                snapshots.append(registry.snapshot()["counters"])
                time.sleep(0.002)

        def client(i: int):
            barrier.wait()
            for r in range(per_client):
                results[i].append(svc.compile(chains[(i + r) % n_signatures]))

        sampling = threading.Thread(target=sampler)
        sampling.start()
        threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        sampling.join()
        svc.close()

        flat = [r for batch in results for r in batch]
        issued = n_clients * per_client
        # no lost responses
        assert len(flat) == issued
        counters = registry.snapshot()["counters"]
        # exactly one tune per distinct signature
        assert counters["serve.tunes"] == n_signatures
        assert sum(r.source == "tuned" for r in flat) == n_signatures
        # every request resolved through exactly one outcome
        assert outcome_sum(registry) == counters["serve.requests"] == issued
        assert counters.get("serve.shed", 0) == 0
        assert counters.get("serve.errors", 0) == 0
        # per-signature results agree with the one tune
        by_sig: dict[str, set] = {}
        for r in flat:
            by_sig.setdefault(r.signature, set()).add(r.report.best_time)
        assert len(by_sig) == n_signatures
        assert all(len(times) == 1 for times in by_sig.values())
        # telemetry counters never went backwards mid-run
        snapshots.append(counters)
        for before, after in zip(snapshots, snapshots[1:]):
            for name, value in before.items():
                assert after.get(name, 0) >= value, name

    def test_queue_gauges_return_to_zero(self):
        registry = MetricsRegistry()
        with quick_service(workers=2, telemetry=registry) as svc:
            tickets = [svc.submit(chain_for(20 + i)) for i in range(3)]
            for t in tickets:
                t.result(timeout=30)
        gauges = registry.snapshot()["gauges"]
        assert gauges["serve.queue.depth"] == 0
        assert gauges["serve.inflight"] == 0


class TestPrefetchAndModels:
    def test_prefetch_warms_background_lane(self):
        registry = MetricsRegistry()
        with quick_service(workers=2, telemetry=registry) as svc:
            tickets = svc.prefetch(["G1", "S1"])
            for t in tickets:
                assert t.lane == "background"
                t.result(timeout=60)
            hit = svc.compile("G1")
        assert hit.source == "hot"
        counters = registry.snapshot()["counters"]
        assert counters["serve.requests.background"] == 2
        assert counters["serve.requests.interactive"] == 1

    def test_prefetch_expands_model_workloads(self):
        with quick_service(workers=2) as svc:
            tickets = svc.prefetch(["ffn-base"])
            assert tickets  # one per fusion group
            for t in tickets:
                t.result(timeout=60)

    def test_submit_model_ticket(self):
        graph = _tiny_attention_graph()
        with quick_service(workers=2) as svc:
            ticket = svc.submit_model(graph)
            results = ticket.results(timeout=60)
            assert ticket.done()
        assert len(results) == len(ticket.partition.subgraphs) == 1
        assert results[0].report.best_time > 0

    def test_compile_model_through_service(self):
        graph = _tiny_attention_graph()
        with quick_service(workers=2) as svc:
            cold = compile_model(graph, A100, "mcfuser+relay", service=svc,
                                 tuner_kwargs=QUICK)
            warm = compile_model(graph, A100, "mcfuser+relay", service=svc,
                                 tuner_kwargs=QUICK)
        assert cold.detail["served"] == {"tuned": 1}
        assert warm.detail["served"] == {"hot": 1}
        assert warm.detail["cache_hits"] == 1
        assert warm.tuning_seconds < cold.tuning_seconds
        assert warm.time == cold.time  # same kernels either way

    def test_compile_model_rejects_gpu_mismatch(self):
        graph = _tiny_attention_graph()
        with quick_service(workers=1) as svc:
            with pytest.raises(ValueError, match="one service serves one GPU"):
                compile_model(graph, RTX3080, "mcfuser+relay", service=svc)


def _tiny_attention_graph() -> Graph:
    g = Graph("tiny-serve")
    g.add_input("q", (4, 64, 32))
    g.add_input("k", (4, 64, 32))
    g.add_input("v", (4, 64, 32))
    g.add(BatchMatmul(("q", "k"), "s", transpose_b=True))
    g.add(Softmax(("s",), "p"))
    g.add(BatchMatmul(("p", "v"), "o"))
    g.mark_output("o")
    return g


class TestServeCLI:
    def test_serve_then_metrics_then_stats(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "servecli")
        assert main([
            "serve", "--quick", "--clients", "4", "--requests", "2",
            "--signatures", "2", "--cache-dir", cache_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot written" in out
        assert "telemetry reconciled with issued requests: True" in out

        assert main(["metrics", "--cache-dir", cache_dir]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["serve.requests"] == 8
        assert snapshot["counters"]["serve.tunes"] == 2

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats_out = capsys.readouterr().out
        assert "per-variant:" in stats_out
        assert "per-tier (last serving session):" in stats_out
        assert "coalesced:" in stats_out

    def test_metrics_without_serve_run(self, tmp_path, capsys):
        assert main(["metrics", "--cache-dir", str(tmp_path / "empty")]) == 1
        assert "no metrics snapshot" in capsys.readouterr().out

    def test_serve_experiment_is_registered(self):
        from repro.experiments import ALL_EXPERIMENTS

        assert "serve" in ALL_EXPERIMENTS


class TestExecBackend:
    def test_backend_threaded_into_reports(self):
        with quick_service(exec_backend="vectorized") as svc:
            cold = svc.compile(chain_for(60))
            warm = svc.compile(chain_for(60))
        assert cold.source == "tuned"
        assert cold.report.exec_backend == "vectorized"
        assert warm.source == "hot"
        assert warm.report.exec_backend == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            CompileService(A100, exec_backend="cuda")
