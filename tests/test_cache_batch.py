"""BatchTuner: signature dedup, concurrency, cache interplay."""

import pytest

from repro.cache import BatchTuner, ScheduleCache
from repro.gpu.specs import A100
from repro.ir.chain import attention_chain, gemm_chain

QUICK = dict(population_size=64, top_n=4, max_rounds=2, min_rounds=1)


def batch_tuner(cache=None, max_workers=2):
    return BatchTuner(A100, cache=cache, max_workers=max_workers, seed=0, **QUICK)


class TestDedup:
    def test_duplicate_shapes_share_one_report(self):
        chains = [
            gemm_chain(1, 128, 128, 64, 64, name="layer0"),
            gemm_chain(1, 128, 128, 64, 64, name="layer1"),  # same shape
            attention_chain(4, 128, 128, 32, 32, name="attn"),
        ]
        result = batch_tuner().tune_all(chains)
        assert result.unique == 2
        assert result.duplicates == 1
        assert len(result.reports) == 3
        # the two duplicated chains got the *same* report object
        assert result.reports[0] is result.reports[1]
        assert result.reports[2] is not result.reports[0]
        assert result.signatures[0] == result.signatures[1]

    def test_reports_align_with_input_order(self):
        g = gemm_chain(1, 128, 128, 64, 64, name="g")
        a = attention_chain(4, 128, 128, 32, 32, name="a")
        result = batch_tuner().tune_all([a, g, a])
        assert result.reports[0].chain.name == "a"
        assert result.reports[1].chain.name == "g"
        assert result.reports[0] is result.reports[2]

    def test_empty_batch(self):
        result = batch_tuner().tune_all([])
        assert result.reports == [] and result.unique == 0 and result.duplicates == 0


class TestConcurrency:
    def test_worker_count_does_not_change_results(self):
        chains = [
            gemm_chain(1, 128, 128, 64, 64, name="g1"),
            gemm_chain(1, 96, 96, 32, 32, name="g2"),
            attention_chain(4, 128, 128, 32, 32, name="a1"),
        ]
        serial = BatchTuner(A100, max_workers=1, seed=0, **QUICK).tune_all(chains)
        threaded = BatchTuner(A100, max_workers=3, seed=0, **QUICK).tune_all(chains)
        for s, t in zip(serial.reports, threaded.reports):
            assert s.best_candidate.key == t.best_candidate.key
            assert s.best_time == t.best_time

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            BatchTuner(A100, max_workers=0)


class TestCacheInterplay:
    def test_batch_fills_cache_and_second_batch_hits(self, tmp_path):
        chains = [
            gemm_chain(1, 128, 128, 64, 64, name="g"),
            attention_chain(4, 128, 128, 32, 32, name="a"),
        ]
        cache = ScheduleCache(tmp_path)
        first = batch_tuner(cache).tune_all(chains)
        assert first.cache_hits == 0
        assert first.tuning_seconds > 0
        second = batch_tuner(cache).tune_all(chains)
        assert second.cache_hits == second.unique == 2
        assert second.tuning_seconds == 0.0
        for a, b in zip(first.reports, second.reports):
            assert a.best_candidate.key == b.best_candidate.key

    def test_concurrent_writes_to_one_cache(self, tmp_path):
        """Several workers storing into one cache must not corrupt it."""
        chains = [
            gemm_chain(1, 128, 128, 64, 64, name="g1"),
            gemm_chain(1, 96, 96, 32, 32, name="g2"),
            gemm_chain(1, 96, 80, 64, 48, name="g3"),
            attention_chain(4, 128, 128, 32, 32, name="a1"),
        ]
        cache = ScheduleCache(tmp_path)
        batch_tuner(cache, max_workers=4).tune_all(chains)
        reopened = ScheduleCache(tmp_path)
        assert reopened.stats().disk_entries == 4
