"""ParallelEvaluator: determinism, worker pools, and clock accounting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.search.engine.evaluator import ParallelEvaluator, batch_makespan
from repro.search.tuning_cost import COSTS, TuningClock


class FakeCandidate:
    """Stands in for a Candidate: the evaluator only forwards it."""

    def __init__(self, t):
        self.t = t

    @property
    def key(self):
        return ("fake", self.t)


def measure(c):
    return c.t


class TestBatchMakespan:
    def test_empty_batch(self):
        assert batch_makespan([], 4) == 0.0

    def test_single_worker_is_serial_sum(self):
        costs = [1.0, 2.0, 3.0]
        assert batch_makespan(costs, 1) == pytest.approx(6.0)

    def test_greedy_assignment(self):
        # Submission order, earliest-free worker: [3, 1] then 2 lands on the
        # worker that finished the 1 -> finishes at 3.0, not 4.0.
        assert batch_makespan([3.0, 1.0, 2.0], 2) == pytest.approx(3.0)

    def test_more_workers_than_tasks(self):
        assert batch_makespan([5.0, 1.0], 8) == pytest.approx(5.0)

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            batch_makespan([1.0], 0)


class TestEvaluator:
    def test_results_align_with_submission_order(self):
        cands = [FakeCandidate(i * 1e-6) for i in range(10)]
        ev = ParallelEvaluator(measure, workers=1)
        assert ev.measure(cands) == [c.t for c in cands]

    def test_parallel_matches_serial(self):
        cands = [FakeCandidate(i * 1e-6) for i in range(17)]
        serial = ParallelEvaluator(measure, workers=1).measure(cands)
        parallel = ParallelEvaluator(measure, workers=4).measure(cands)
        assert serial == parallel

    def test_counters(self):
        ev = ParallelEvaluator(measure, workers=2)
        ev.measure([FakeCandidate(1e-6)] * 3)
        ev.measure([FakeCandidate(1e-6)] * 2)
        assert ev.measurements == 5
        assert ev.batches == 2

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ParallelEvaluator(measure, workers=0)

    def test_unknown_cost_kind_rejected(self):
        with pytest.raises(KeyError):
            ParallelEvaluator(measure, cost_kind="quantum_compile")


class TestClockAccounting:
    UNIT = COSTS["triton_compile_measure"]

    def test_serial_billing_matches_legacy_per_measure_charges(self):
        """workers=1 must bill exactly what the old serial loop billed:
        one compile charge + repetitions x time per measurement."""
        times = [2e-6, 3e-6, 5e-6]
        clock = TuningClock()
        ev = ParallelEvaluator(measure, workers=1, clock=clock, repetitions=100)
        ev.measure([FakeCandidate(t) for t in times])
        expected = sum(self.UNIT + 100 * t for t in times)
        assert clock.seconds == pytest.approx(expected)
        assert clock.breakdown == {"triton_compile_measure": pytest.approx(expected)}

    def test_parallel_bills_makespan_not_sum(self):
        times = [1e-6] * 8
        serial_clock, par_clock = TuningClock(), TuningClock()
        ParallelEvaluator(measure, workers=1, clock=serial_clock).measure(
            [FakeCandidate(t) for t in times]
        )
        ParallelEvaluator(measure, workers=4, clock=par_clock).measure(
            [FakeCandidate(t) for t in times]
        )
        assert par_clock.seconds == pytest.approx(serial_clock.seconds / 4)

    def test_parallel_billing_deterministic(self):
        times = [1e-6, 9e-6, 2e-6, 7e-6, 4e-6]
        clocks = []
        for _ in range(3):
            clock = TuningClock()
            ParallelEvaluator(measure, workers=3, clock=clock).measure(
                [FakeCandidate(t) for t in times]
            )
            clocks.append(clock.seconds)
        assert clocks[0] == clocks[1] == clocks[2]
        # And it equals the analytic makespan of the per-task costs.
        costs = [self.UNIT + 100 * t for t in times]
        assert clocks[0] == pytest.approx(batch_makespan(costs, 3))

    def test_launch_failures_bill_no_runtime(self):
        clock = TuningClock()
        ev = ParallelEvaluator(measure, workers=1, clock=clock)
        ev.measure([FakeCandidate(float("inf"))])
        assert clock.seconds == pytest.approx(self.UNIT)

    def test_nan_bills_no_runtime(self):
        """A NaN measurement is a launch failure, not a NaN makespan —
        the historical `t == inf` check let NaN poison the clock forever."""
        clock = TuningClock()
        ev = ParallelEvaluator(measure, workers=1, clock=clock)
        ev.measure([FakeCandidate(float("nan"))])
        assert math.isfinite(clock.seconds)
        assert clock.seconds == pytest.approx(self.UNIT)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_nan_inf_mix_bills_only_finite_runtime(self, workers):
        times = [1e-6, float("nan"), 3e-6, float("inf"), float("-inf"), 2e-6]
        clock = TuningClock()
        ev = ParallelEvaluator(measure, workers=workers, clock=clock, repetitions=100)
        out = ev.measure([FakeCandidate(t) for t in times])
        # results pass through unnormalized (the loop normalizes), but the
        # bill covers only the finite measurements.
        assert out[3] == float("inf") and math.isnan(out[1])
        costs = [self.UNIT + (100 * t if math.isfinite(t) else 0.0) for t in times]
        assert math.isfinite(clock.seconds)
        assert clock.seconds == pytest.approx(batch_makespan(costs, workers))

    def test_zero_repetitions_bills_compile_only(self):
        clock = TuningClock()
        ev = ParallelEvaluator(measure, workers=1, clock=clock, repetitions=0)
        ev.measure([FakeCandidate(5.0), FakeCandidate(float("nan"))])
        assert clock.seconds == pytest.approx(2 * self.UNIT)

    def test_no_clock_no_billing(self):
        ev = ParallelEvaluator(measure, workers=2)
        assert ev.measure([FakeCandidate(1e-6)]) == [1e-6]

    def test_empty_batch_bills_nothing(self):
        clock = TuningClock()
        ParallelEvaluator(measure, workers=2, clock=clock).measure([])
        assert clock.seconds == 0.0


class TestMakespanProperties:
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            max_size=32,
        )
    )
    def test_single_worker_makespan_is_serial_sum(self, costs):
        """batch_makespan(costs, 1) == sum(costs) for every float input."""
        assert batch_makespan(costs, 1) == pytest.approx(
            sum(costs, 0.0), rel=1e-9, abs=1e-30
        )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=24,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_makespan_bounded_by_serial_and_ideal(self, costs, workers):
        span = batch_makespan(costs, workers)
        assert max(costs) - 1e-9 <= span <= sum(costs) + 1e-9


class TestLoopNonFiniteHandling:
    """SearchLoop must treat NaN measurements exactly like launch failures."""

    @pytest.fixture(scope="class")
    def space(self):
        from repro.gpu.specs import A100
        from repro.ir.chain import gemm_chain
        from repro.search.space import generate_space

        return generate_space(gemm_chain(1, 256, 256, 64, 64, name="nan-loop"), A100)

    def test_nan_measurements_blacklisted_and_never_best(self, space):
        from repro.search.engine.loop import SearchLoop
        from repro.search.engine.strategy import make_strategy

        calls = {"n": 0}

        def measure(c):
            calls["n"] += 1
            return float("nan") if calls["n"] % 2 else 1e-6 * calls["n"]

        clock = TuningClock()
        loop = SearchLoop(
            space,
            lambda c: 1e-6,
            ParallelEvaluator(measure, clock=clock),
            max_rounds=4,
            min_rounds=1,
            seed=0,
        )
        result = loop.run(make_strategy("random"))
        assert math.isfinite(result.best_time)
        # NaNs were normalized to inf and blacklisted
        assert loop.failed
        assert all(not math.isnan(t) for t in result.measured.values())
        assert all(not math.isnan(t) for _, t in result.pairs)
        # and the makespan billing stayed finite
        assert math.isfinite(clock.seconds)

    def test_all_nan_round_keeps_searching(self, space):
        from repro.search.engine.loop import SearchLoop
        from repro.search.engine.strategy import make_strategy

        loop = SearchLoop(
            space,
            lambda c: 1e-6,
            ParallelEvaluator(lambda c: float("nan")),
            max_rounds=3,
            seed=0,
        )
        result = loop.run(make_strategy("evolutionary"))
        assert result.best_time == float("inf")  # not NaN
        assert set(result.measured) == loop.failed


class TestTunerIntegration:
    def test_workers_change_clock_not_result(self):
        from repro.gpu.specs import A100
        from repro.ir.chain import gemm_chain
        from repro.search.tuner import MCFuserTuner

        chain = gemm_chain(1, 256, 256, 64, 64, name="eval-int")
        serial = MCFuserTuner(A100, seed=0, workers=1).tune(chain)
        parallel = MCFuserTuner(A100, seed=0, workers=4).tune(chain)
        assert serial.best_candidate.key == parallel.best_candidate.key
        assert serial.best_time == parallel.best_time
        assert serial.search.num_measurements == parallel.search.num_measurements
        # The parallel run's simulated wall clock must be strictly cheaper.
        assert parallel.tuning_seconds < serial.tuning_seconds
        assert parallel.workers == 4
