"""Unit tests for the ComputeChain fusion IR."""

import numpy as np
import pytest

from repro.gpu.specs import A100
from repro.ir.chain import ComputeBlock, ComputeChain, TensorRef, attention_chain, gemm_chain


class TestGemmChainStructure:
    def test_loops(self, small_gemm):
        assert small_gemm.loops == {"m": 96, "n": 80, "k": 64, "h": 48}

    def test_blocks(self, small_gemm):
        assert [b.name for b in small_gemm.blocks] == ["C", "E"]
        assert small_gemm.block("C").related == ("m", "n", "k")
        assert small_gemm.block("E").related == ("m", "h", "n")

    def test_output(self, small_gemm):
        assert small_gemm.output == "E"
        assert small_gemm.output_spatial == ("m", "h")

    def test_shared_private_loops(self, small_gemm):
        assert set(small_gemm.shared_loops()) == {"m", "n"}
        assert small_gemm.private_loops(small_gemm.block("C")) == ("k",)
        assert small_gemm.private_loops(small_gemm.block("E")) == ("h",)

    def test_tensor_shapes_include_batch(self, small_gemm):
        assert small_gemm.tensor_shape("A") == (2, 96, 64)
        assert small_gemm.tensor_shape("E") == (2, 96, 48)

    def test_producers_consumers(self, small_gemm):
        assert small_gemm.producer_of("C").name == "C"
        assert small_gemm.producer_of("A") is None
        assert [b.name for b in small_gemm.consumers_of("C")] == ["E"]

    def test_input_names(self, small_gemm):
        assert set(small_gemm.input_names()) == {"A", "B", "D"}


class TestWorkAccounting:
    def test_block_flops(self, small_gemm):
        c = small_gemm.block("C")
        assert small_gemm.block_flops(c) == 2.0 * 2 * 96 * 80 * 64

    def test_total_flops(self, small_gemm):
        expect = 2.0 * 2 * 96 * 80 * 64 + 2.0 * 2 * 96 * 80 * 48
        assert small_gemm.total_flops() == expect

    def test_min_dram_bytes(self, small_gemm):
        # inputs A,B,D + output E, once each, fp16
        expect = 2 * (96 * 64 + 64 * 80 + 80 * 48 + 96 * 48) * 2
        assert small_gemm.min_dram_bytes() == expect

    def test_unfused_exceeds_min(self, small_gemm):
        assert small_gemm.unfused_dram_bytes() > small_gemm.min_dram_bytes()

    def test_attention_softmax_flops(self, small_attention):
        o = small_attention.block("O")
        base = 2.0 * 3 * 96 * 96 * 32
        assert small_attention.block_flops(o) == base + 5.0 * 3 * 96 * 96

    def test_mbci_classification(self):
        memory_bound = gemm_chain(1, 512, 256, 64, 64)
        compute_bound = gemm_chain(1, 4096, 4096, 4096, 4096)
        assert memory_bound.is_mbci(A100)
        assert not compute_bound.is_mbci(A100)


class TestReference:
    def test_gemm_reference_matches_einsum(self, small_gemm):
        inputs = small_gemm.random_inputs(0)
        env = small_gemm.reference(inputs)
        c = np.einsum("zmk,zkn->zmn", inputs["A"], inputs["B"])
        e = np.einsum("zmn,znh->zmh", c, inputs["D"])
        np.testing.assert_allclose(env["E"], e, rtol=1e-5)

    def test_attention_reference_matches_manual(self, small_attention):
        inputs = small_attention.random_inputs(0)
        env = small_attention.reference(inputs)
        s = np.einsum("zmk,znk->zmn", inputs["Q"], inputs["K"]) / np.sqrt(32.0)
        p = np.exp(s - s.max(-1, keepdims=True))
        p /= p.sum(-1, keepdims=True)
        o = np.einsum("zmn,znh->zmh", p, inputs["V"])
        np.testing.assert_allclose(env["O"], o, rtol=1e-4, atol=1e-6)

    def test_epilogue_applied(self):
        chain = gemm_chain(1, 32, 32, 16, 16, epilogue="relu")
        env = chain.reference(chain.random_inputs(0))
        c_raw = np.einsum("zmk,zkn->zmn", *[chain.random_inputs(0)[t] for t in ("A", "B")])
        np.testing.assert_allclose(env["C"], np.maximum(c_raw, 0.0), rtol=1e-5)

    def test_missing_input_rejected(self, small_gemm):
        with pytest.raises(KeyError):
            small_gemm.reference({"A": np.zeros((2, 96, 64))})

    def test_wrong_shape_rejected(self, small_gemm):
        inputs = small_gemm.random_inputs(0)
        inputs["A"] = inputs["A"][:, :10]
        with pytest.raises(ValueError):
            small_gemm.reference(inputs)

    def test_random_inputs_deterministic(self, small_gemm):
        a = small_gemm.random_inputs(5)
        b = small_gemm.random_inputs(5)
        np.testing.assert_array_equal(a["A"], b["A"])


class TestValidation:
    def test_rejects_unknown_loop_in_block(self):
        with pytest.raises(ValueError):
            ComputeChain(
                "bad",
                {"m": 16, "n": 16},
                (ComputeBlock("C", ("A",), "C", ("m",), ("z",)),),
                {
                    "A": TensorRef("A", ("m",), "input"),
                    "C": TensorRef("C", ("m",), "output"),
                },
            )

    def test_rejects_consume_before_produce(self):
        with pytest.raises(ValueError):
            ComputeChain(
                "bad",
                {"m": 16, "n": 16, "k": 16},
                (
                    ComputeBlock("E", ("C",), "E", ("m",), ("n",)),
                    ComputeBlock("C", ("A",), "C", ("m", "n"), ("k",)),
                ),
                {
                    "A": TensorRef("A", ("m", "k"), "input"),
                    "C": TensorRef("C", ("m", "n"), "intermediate"),
                    "E": TensorRef("E", ("m",), "output"),
                },
            )

    def test_rejects_spatial_reduction_overlap(self):
        with pytest.raises(ValueError):
            ComputeBlock("C", ("A",), "C", ("m",), ("m",))

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            gemm_chain(0, 16, 16, 16, 16)

    def test_rejects_output_dims_mismatch(self):
        with pytest.raises(ValueError):
            ComputeChain(
                "bad",
                {"m": 16, "n": 16, "k": 16},
                (ComputeBlock("C", ("A",), "C", ("m", "n"), ("k",)),),
                {
                    "A": TensorRef("A", ("m", "k"), "input"),
                    "C": TensorRef("C", ("m",), "output"),
                },
            )

    def test_rejects_softmax_on_non_reduction(self):
        with pytest.raises(ValueError):
            ComputeBlock("O", ("S", "V"), "O", ("m", "h"), ("n",), softmax_over="k")

    def test_attention_heads_fold_into_batch(self):
        chain = attention_chain(4, 64, 64, 32, 32, batch=2)
        assert chain.batch == 8
