"""Unit tests for repro.gpu.occupancy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.occupancy import SharedMemoryExceeded, occupancy_for
from repro.gpu.specs import A100, GENERIC


class TestBasics:
    def test_full_grid_one_wave(self):
        occ = occupancy_for(108, 1024, A100)
        assert occ.waves == 1
        assert occ.quantization == pytest.approx(1.0)

    def test_small_grid_penalized(self):
        occ = occupancy_for(27, 1024, A100)
        assert occ.quantization == pytest.approx(4.0)

    def test_tail_wave(self):
        occ = occupancy_for(109, 1024, A100)
        assert occ.waves == 2
        assert occ.quantization == pytest.approx(2 * 108 / 109)

    def test_exact_multiple(self):
        occ = occupancy_for(216, 1024, A100)
        assert occ.waves == 2
        assert occ.quantization == pytest.approx(1.0)

    def test_blocks_per_sm_shm_limited(self):
        occ = occupancy_for(1000, 82 * 1024, A100)  # 164KB SM / 82KB -> 2
        assert occ.blocks_per_sm == 2

    def test_blocks_per_sm_capped(self):
        occ = occupancy_for(10000, 64, A100)
        assert occ.blocks_per_sm == A100.max_blocks_per_sm

    def test_zero_shm_max_residency(self):
        occ = occupancy_for(10, 0, A100)
        assert occ.blocks_per_sm == A100.max_blocks_per_sm

    def test_concurrent_blocks(self):
        occ = occupancy_for(50, 1024, A100)
        assert occ.concurrent_blocks == 50
        occ = occupancy_for(100000, 1024, A100)
        assert occ.concurrent_blocks == 108 * A100.max_blocks_per_sm


class TestErrors:
    def test_over_limit_raises(self):
        with pytest.raises(SharedMemoryExceeded) as exc:
            occupancy_for(1, A100.shared_mem_per_block + 1, A100)
        assert exc.value.requested == A100.shared_mem_per_block + 1

    def test_zero_grid_rejected(self):
        with pytest.raises(ValueError):
            occupancy_for(0, 0, A100)


class TestProperties:
    @given(st.integers(1, 10**6), st.integers(0, GENERIC.shared_mem_per_block))
    def test_quantization_at_least_one(self, grid, shm):
        occ = occupancy_for(grid, shm, GENERIC)
        assert occ.quantization >= 1.0 - 1e-12

    @given(st.integers(1, 10**5))
    def test_waves_monotone_in_grid(self, grid):
        occ1 = occupancy_for(grid, 1024, GENERIC)
        occ2 = occupancy_for(grid + 1, 1024, GENERIC)
        assert occ2.waves >= occ1.waves
